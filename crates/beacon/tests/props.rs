//! Property tests for the beacon apparatus.

use anycast_beacon::{MeasurementPolicy, Slot, TimingModel};
use anycast_dns::RedirectionPolicy;
use anycast_geo::GeoPoint;
use anycast_netsim::{CdnAddressing, SiteId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn policy(n_sites: u16, candidates: usize) -> MeasurementPolicy {
    let sites: Vec<(SiteId, GeoPoint)> = (0..n_sites)
        .map(|i| {
            // Spread sites around the globe deterministically.
            let lat = -60.0 + (f64::from(i) * 37.0) % 120.0;
            let lon = -180.0 + (f64::from(i) * 83.0) % 360.0;
            (SiteId(i), GeoPoint::new(lat, lon))
        })
        .collect();
    MeasurementPolicy::new(sites, CdnAddressing::standard(n_sites), candidates, 300, 5)
}

proptest! {
    #[test]
    fn slot_ids_partition_the_id_space(id in any::<u64>()) {
        let slot = Slot::from_id(id);
        let exec = Slot::execution_of(id);
        prop_assert_eq!(slot.id_for(exec) & !3, id & !3);
        prop_assert_eq!(Slot::from_id(slot.id_for(exec)), slot);
    }

    #[test]
    fn geo_closest_is_always_the_nearest_candidate(
        lat in -85.0..85.0f64, lon in -180.0..180.0f64, counter in any::<u64>()
    ) {
        let p = policy(24, 10);
        let loc = GeoPoint::new(lat, lon);
        let candidates = p.candidate_sites(&loc);
        prop_assert_eq!(candidates.len(), 10);
        let chosen = p.select_site(Slot::GeoClosest, Slot::GeoClosest.id_for(counter), &loc);
        prop_assert_eq!(chosen, Some(candidates[0].0));
    }

    #[test]
    fn random_slots_stay_within_the_candidate_set(
        lat in -85.0..85.0f64, lon in -180.0..180.0f64, counter in any::<u64>()
    ) {
        let p = policy(24, 10);
        let loc = GeoPoint::new(lat, lon);
        let candidates: Vec<SiteId> =
            p.candidate_sites(&loc).into_iter().map(|(s, _)| s).collect();
        for slot in [Slot::Random1, Slot::Random2] {
            let site = p.select_site(slot, slot.id_for(counter), &loc).unwrap();
            prop_assert!(candidates.contains(&site));
            // Never the geo-closest ("the other nine candidates").
            prop_assert_ne!(site, candidates[0]);
        }
    }

    #[test]
    fn anycast_slot_never_selects_a_site(
        lat in -85.0..85.0f64, lon in -180.0..180.0f64, counter in any::<u64>()
    ) {
        let p = policy(24, 10);
        let loc = GeoPoint::new(lat, lon);
        prop_assert_eq!(p.select_site(Slot::Anycast, Slot::Anycast.id_for(counter), &loc), None);
    }

    #[test]
    fn tiny_deployments_still_answer(
        n_sites in 2u16..5, lat in -85.0..85.0f64, lon in -180.0..180.0f64, counter in any::<u64>()
    ) {
        // Candidate cap larger than the deployment must degrade gracefully.
        let p = policy(n_sites, 10);
        let loc = GeoPoint::new(lat, lon);
        for slot in [Slot::GeoClosest, Slot::Random1, Slot::Random2] {
            let site = p.select_site(slot, slot.id_for(counter), &loc);
            prop_assert!(site.is_some());
            prop_assert!(site.unwrap().0 < n_sites);
        }
    }

    #[test]
    fn timing_reports_are_integers_and_bounded_below(
        rtt in 0.1..2000.0f64, compliant in any::<bool>(), seed in any::<u64>()
    ) {
        let m = TimingModel::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = m.observe(rtt, compliant, &mut rng);
        prop_assert_eq!(v, v.round());
        prop_assert!(v >= rtt.round() - 0.5 - 1e-9, "report below truth: {v} < {rtt}");
    }

    #[test]
    fn policy_answers_resolve_to_valid_addresses(
        lat in -85.0..85.0f64, lon in -180.0..180.0f64, counter in 0u64..10_000
    ) {
        use anycast_dns::{DnsName, LdnsId, QueryContext};
        use anycast_netsim::Day;
        let p = policy(24, 10);
        let plan = CdnAddressing::standard(24);
        let zone = DnsName::new("cdn.example").unwrap();
        for slot in Slot::ALL {
            let qname = DnsName::measurement(slot.id_for(counter), &zone);
            let ctx = QueryContext {
                qname: &qname,
                ldns: LdnsId(0),
                ldns_location: GeoPoint::new(lat, lon),
                ecs: None,
                day: Day(0),
                time_s: 0.0,
            };
            let answer = p.answer(&ctx);
            let valid = plan.is_anycast(answer.addr) || plan.site_for_ip(answer.addr).is_some();
            prop_assert!(valid, "unroutable answer {}", answer.addr);
        }
    }
}
