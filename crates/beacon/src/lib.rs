//! The JavaScript-beacon measurement apparatus (§3 of the paper).
//!
//! "We inject a JavaScript beacon into a small fraction of Bing Search
//! results. After the results page has completely loaded, the beacon
//! instructs the client to fetch four test URLs" — one resolved to the
//! anycast VIP, one to the front-end geographically closest to the client's
//! LDNS, and two to distance-weighted random picks from the remaining nine
//! nearest candidates (§3.3).
//!
//! Module map, following the paper's pipeline:
//!
//! * [`slots`] — the four measurement slots and unique measurement ids;
//! * [`policy`] — the authoritative DNS policy that implements the
//!   candidate-selection rules server-side;
//! * [`timing`] — the browser timing accuracy model (W3C Resource Timing
//!   vs. primitive JavaScript timings);
//! * [`runner`] — one beacon execution: warm-up query, cached fetch, four
//!   timed downloads, client-side report;
//! * [`join`] — joining client-side HTTP results with server-side DNS logs
//!   on the globally unique hostname id;
//! * [`collect`] — the joined dataset, grouped into per-execution and
//!   per-prefix views that the analyses consume.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collect;
pub mod join;
pub mod policy;
pub mod runner;
pub mod slots;
pub mod timing;

pub use collect::{BeaconDataset, BeaconExecution};
pub use join::{join, BeaconMeasurement, Target};
pub use policy::MeasurementPolicy;
pub use runner::{run_beacon, BeaconClient, FetchConfig, HttpResult};
pub use slots::Slot;
pub use timing::TimingModel;
