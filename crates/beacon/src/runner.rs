//! One beacon execution.
//!
//! The beacon's client-side sequence, per §3.2.2:
//!
//! 1. for each of the four test URLs, issue a **warm-up** DNS resolution so
//!    the timed fetch uses the cached answer ("to remove the impact of DNS
//!    lookup from our measurements");
//! 2. fetch each URL and time the download — primitive timings first,
//!    substituted by Resource Timing values on compliant browsers;
//! 3. report `(measurement id, reported latency)` rows to the backend.
//!
//! The warm-up resolution is what lands in the authoritative DNS log, and
//! its unique hostname is the join key.

use std::borrow::Cow;
use std::net::Ipv4Addr;

use anycast_geo::GeoPoint;
use anycast_netsim::{
    CdnAddressing, ClientAttachment, ClientRoutes, Day, Internet, Prefix24, SiteId,
};
use anycast_obs::{counter, histogram};
use rand::Rng;

use anycast_dns::{AuthoritativeServer, DnsName, Ldns};

use crate::policy::MeasurementPolicy;
use crate::slots::Slot;
use crate::timing::TimingModel;

/// A client-side HTTP result row: what the beacon uploads to the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HttpResult {
    /// The measurement's globally unique id.
    pub measurement_id: u64,
    /// The client's /24 (the backend sees the reporting connection's IP).
    pub prefix: Prefix24,
    /// IP the test URL resolved to (anycast VIP or a unicast site address).
    pub fetched_ip: Ipv4Addr,
    /// The front-end that actually served the fetch (from the CDN's own
    /// HTTP logs; for unicast it equals the target, for anycast it is
    /// whichever site routing chose). For a failed fetch this is the site
    /// the client was *trying* to reach when every attempt timed out.
    pub served_site: SiteId,
    /// Latency the beacon reported, ms. For a failed fetch this is the
    /// total time burned across timed-out attempts, not an RTT.
    pub reported_ms: f64,
    /// Whether every fetch attempt timed out (front-end down or the
    /// client's route still converging around a withdrawal).
    pub failed: bool,
    /// How many fetch attempts were made (1 on first-try success).
    pub attempts: u32,
    /// Day of the execution.
    pub day: Day,
    /// Seconds within the day.
    pub time_s: f64,
}

/// Client-side fetch resilience knobs: how long a beacon fetch waits
/// before declaring a timeout and how many times it retries. Real beacon
/// JavaScript bounds both so a dead front-end costs a few seconds, not a
/// hung measurement — and so the failure is *recorded* rather than lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchConfig {
    /// Per-attempt timeout, ms.
    pub timeout_ms: f64,
    /// Total attempts (first try + retries), at least 1.
    pub max_attempts: u32,
}

impl Default for FetchConfig {
    fn default() -> FetchConfig {
        FetchConfig {
            timeout_ms: 3_000.0,
            max_attempts: 2,
        }
    }
}

/// The client-side identity a beacon execution runs as.
#[derive(Debug, Clone, Copy)]
pub struct BeaconClient {
    /// The client's /24 prefix.
    pub prefix: Prefix24,
    /// Its network attachment.
    pub attachment: ClientAttachment,
}

/// Runs one beacon execution and returns the four client-side result rows.
///
/// `ldns_believed_location` is where the CDN's geolocation database places
/// the client's resolver — the location the server-side candidate selection
/// uses (§3.3).
///
/// `execution` is the caller-assigned execution counter (measurement ids
/// are `Slot::id_for(execution)`), and `routes` is the client's view of
/// the day's [route snapshot](anycast_netsim::RouteSnapshot) — both are
/// supplied by the campaign engine so executions can be computed out of
/// order and on any thread. The engine also derives `rng` per beacon, so
/// this function's draws never interleave with another execution's.
///
/// Fetches honor the failure schedule: an attempt against a down (or
/// still-converging) front-end times out after `fetch.timeout_ms`, retries
/// re-route at the later instant (the DNS answer stays cached, so retries
/// reuse the same address), and an execution whose every attempt times out
/// is reported as a *failed* row rather than silently dropped. In a world
/// with no scheduled failures the sequence — and every random draw — is
/// identical to the non-retrying path.
#[allow(clippy::too_many_arguments)]
pub fn run_beacon(
    internet: &Internet,
    routes: ClientRoutes<'_>,
    addressing: &CdnAddressing,
    timing: &TimingModel,
    fetch_cfg: &FetchConfig,
    zone: &DnsName,
    client: &BeaconClient,
    ldns: &mut Ldns,
    ldns_believed_location: GeoPoint,
    auth: &mut AuthoritativeServer<MeasurementPolicy>,
    execution: u64,
    time_s: f64,
    rng: &mut impl Rng,
) -> Vec<HttpResult> {
    let day = routes.day();
    counter!("beacon_executions_total").inc();
    let compliant = timing.browser_is_compliant(rng);
    let mut results = Vec::with_capacity(4);
    for slot in Slot::ALL {
        let id = slot.id_for(execution);
        let qname = DnsName::measurement(id, zone);
        // Warm-up: populates the LDNS cache and the authoritative log.
        let warm = ldns.resolve(
            &qname,
            client.prefix,
            ldns_believed_location,
            auth,
            day,
            time_s,
        );
        debug_assert!(!warm.cache_hit, "unique names always miss on warm-up");
        // Timed fetch: resolves again (cache hit — TTL outlives the beacon)
        // and downloads from the answered address.
        let fetch = ldns.resolve(
            &qname,
            client.prefix,
            ldns_believed_location,
            auth,
            day,
            time_s + 0.5,
        );
        debug_assert!(fetch.cache_hit, "timed fetch must be served from cache");
        let addr = fetch.addr;
        let max_attempts = fetch_cfg.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut served: Option<(SiteId, f64)> = None;
        for attempt in 0..max_attempts {
            attempts = attempt + 1;
            // Each retry happens one timeout later; routing is re-resolved
            // at that instant, so anycast clients pick up the post-failover
            // catchment while unicast retries keep hitting the dead site.
            let t = time_s + 0.5 + f64::from(attempt) * fetch_cfg.timeout_ms / 1000.0;
            let route = if addressing.is_anycast(addr) {
                routes.anycast_at(internet, t)
            } else {
                let site = addressing
                    .site_for_ip(addr)
                    .expect("measurement answer must be a service address");
                routes.unicast_at(site, t).map(Cow::Borrowed)
            };
            if let Some(decision) = route {
                // Success path draws exactly the same randomness as the
                // failure-free runner: one RTT jitter sample, one timing
                // observation. Timed-out attempts draw none.
                let true_rtt = internet.sample_rtt(&decision, rng);
                served = Some((decision.site, timing.observe(true_rtt, compliant, rng)));
                break;
            }
        }
        counter!("beacon_fetch_attempts_total").add(u64::from(attempts));
        if attempts > 1 {
            counter!("beacon_fetch_retries_total").add(u64::from(attempts - 1));
        }
        let (served_site, reported_ms, failed) = match served {
            Some((site, ms)) => (site, ms, false),
            None => {
                counter!("beacon_fetch_failures_total").inc();
                // Every attempt timed out. Attribute the failure to the
                // site the client was steered towards (the unicast target,
                // or anycast's steady-state catchment) and report the time
                // the beacon burned waiting.
                let site = if addressing.is_anycast(addr) {
                    routes.steady_anycast().site
                } else {
                    addressing
                        .site_for_ip(addr)
                        .expect("measurement answer must be a service address")
                };
                (site, f64::from(attempts) * fetch_cfg.timeout_ms, true)
            }
        };
        histogram!("beacon_reported_ms").observe(reported_ms);
        results.push(HttpResult {
            measurement_id: id,
            prefix: client.prefix,
            fetched_ip: addr,
            served_site,
            reported_ms,
            failed,
            attempts,
            day,
            time_s,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dns::{LdnsId, ResolverKind};
    use anycast_netsim::{AccessTech, NetConfig, RouteSnapshot};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct World {
        internet: Internet,
        addressing: CdnAddressing,
        zone: DnsName,
    }

    fn world() -> World {
        let internet = Internet::new(NetConfig::small(), 9).unwrap();
        let n = internet.topology().cdn.sites.len() as u16;
        World {
            internet,
            addressing: CdnAddressing::standard(n),
            zone: DnsName::new("cdn.example").unwrap(),
        }
    }

    fn auth(w: &World) -> AuthoritativeServer<MeasurementPolicy> {
        let policy = MeasurementPolicy::new(w.internet.site_locations(), w.addressing, 10, 300, 1);
        AuthoritativeServer::new(policy, false)
    }

    fn client(w: &World) -> BeaconClient {
        let e = &w.internet.topology().eyeballs[0];
        let loc = w.internet.topology().atlas.metro(e.home_metro).location();
        BeaconClient {
            prefix: Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1)),
            attachment: ClientAttachment {
                as_id: e.id,
                metro: e.home_metro,
                location: loc,
                access: AccessTech::Cable,
            },
        }
    }

    fn run_one(w: &World, seed: u64) -> (Vec<HttpResult>, AuthoritativeServer<MeasurementPolicy>) {
        let mut a = auth(w);
        let c = client(w);
        let mut ldns = Ldns::new(
            LdnsId(0),
            ResolverKind::IspLocal,
            c.attachment.location,
            false,
        );
        let snap = RouteSnapshot::build(&w.internet, &[c.attachment], Day(0));
        let mut rng = SmallRng::seed_from_u64(seed);
        let results = run_beacon(
            &w.internet,
            snap.client(0),
            &w.addressing,
            &TimingModel::perfect(),
            &FetchConfig::default(),
            &w.zone,
            &c,
            &mut ldns,
            c.attachment.location,
            &mut a,
            0,
            100.0,
            &mut rng,
        );
        (results, a)
    }

    #[test]
    fn beacon_makes_four_measurements() {
        let w = world();
        let (results, _) = run_one(&w, 1);
        assert_eq!(results.len(), 4);
        let slots: Vec<Slot> = results
            .iter()
            .map(|r| Slot::from_id(r.measurement_id))
            .collect();
        assert_eq!(slots, Slot::ALL.to_vec());
    }

    #[test]
    fn first_slot_is_anycast_rest_are_unicast() {
        let w = world();
        let (results, _) = run_one(&w, 2);
        assert!(w.addressing.is_anycast(results[0].fetched_ip));
        for r in &results[1..] {
            let site = w
                .addressing
                .site_for_ip(r.fetched_ip)
                .expect("unicast address");
            assert_eq!(site, r.served_site, "unicast serves the targeted site");
        }
    }

    #[test]
    fn anycast_served_site_matches_routing() {
        let w = world();
        let (results, _) = run_one(&w, 3);
        let c = client(&w);
        let expected = w.internet.anycast_route(&c.attachment, Day(0)).site;
        assert_eq!(results[0].served_site, expected);
    }

    #[test]
    fn warm_up_logs_each_name_once() {
        let w = world();
        let (_, a) = run_one(&w, 4);
        // One authoritative query per slot (the fetch is a cache hit).
        assert_eq!(a.log().len(), 4);
        let mut ids: Vec<u64> = a.log().iter().filter_map(|l| l.measurement_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn latencies_are_positive_and_plausible() {
        let w = world();
        let (results, _) = run_one(&w, 5);
        for r in &results {
            assert!(
                r.reported_ms > 0.0 && r.reported_ms < 2000.0,
                "{}",
                r.reported_ms
            );
        }
    }

    #[test]
    fn healthy_world_fetches_never_fail() {
        let w = world();
        let (results, _) = run_one(&w, 7);
        for r in &results {
            assert!(!r.failed);
            assert_eq!(r.attempts, 1);
        }
    }

    /// Midpoint of the first scheduled outage window (past reconvergence).
    fn first_outage(internet: &Internet, sites: u16) -> Option<(Day, f64)> {
        for day in 0..30u32 {
            for s in 0..sites {
                if let Some(win) = internet.outages().window_on(SiteId(s), Day(day)) {
                    return Some((Day(day), (win.start_s + win.end_s) / 2.0));
                }
            }
        }
        None
    }

    #[test]
    fn fetches_against_down_front_ends_are_recorded_as_failures() {
        let cfg = NetConfig {
            p_site_outage: 0.4,
            ..NetConfig::small()
        };
        let internet = Internet::new(cfg, 11).unwrap();
        let n = internet.topology().cdn.sites.len() as u16;
        let addressing = CdnAddressing::standard(n);
        let zone = DnsName::new("cdn.example").unwrap();
        let (day, when) = first_outage(&internet, n).expect("outage scheduled at rate 0.4");
        let fetch = FetchConfig::default();
        let policy = MeasurementPolicy::new(internet.site_locations(), addressing, 10, 300, 1);
        let mut auth = AuthoritativeServer::new(policy, false);
        let mut execution = 0u64;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut saw_failure = false;
        for e in &internet.topology().eyeballs {
            let loc = internet.topology().atlas.metro(e.home_metro).location();
            let c = BeaconClient {
                prefix: Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1)),
                attachment: ClientAttachment {
                    as_id: e.id,
                    metro: e.home_metro,
                    location: loc,
                    access: AccessTech::Cable,
                },
            };
            let snap = RouteSnapshot::build(&internet, &[c.attachment], day);
            let mut ldns = Ldns::new(LdnsId(0), ResolverKind::IspLocal, loc, false);
            for i in 0..4u32 {
                execution += 1;
                let rs = run_beacon(
                    &internet,
                    snap.client(0),
                    &addressing,
                    &TimingModel::perfect(),
                    &fetch,
                    &zone,
                    &c,
                    &mut ldns,
                    loc,
                    &mut auth,
                    execution,
                    when + f64::from(i) * 60.0,
                    &mut rng,
                );
                for r in rs {
                    if r.failed {
                        saw_failure = true;
                        assert_eq!(r.attempts, fetch.max_attempts);
                        assert_eq!(
                            r.reported_ms,
                            f64::from(fetch.max_attempts) * fetch.timeout_ms,
                            "failed rows report total timeout time"
                        );
                        assert!(
                            internet.outages().is_down(r.served_site, day, r.time_s),
                            "failure must be attributed to a down site"
                        );
                    } else {
                        assert!(r.reported_ms < fetch.timeout_ms);
                    }
                }
            }
        }
        assert!(
            saw_failure,
            "some fetch must target the down front-end mid-outage"
        );
    }

    #[test]
    fn executions_get_distinct_ids() {
        let w = world();
        let mut a = auth(&w);
        let c = client(&w);
        let mut ldns = Ldns::new(
            LdnsId(0),
            ResolverKind::IspLocal,
            c.attachment.location,
            false,
        );
        let snap = RouteSnapshot::build(&w.internet, &[c.attachment], Day(0));
        let mut rng = SmallRng::seed_from_u64(6);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10u64 {
            let rs = run_beacon(
                &w.internet,
                snap.client(0),
                &w.addressing,
                &TimingModel::default(),
                &FetchConfig::default(),
                &w.zone,
                &c,
                &mut ldns,
                c.attachment.location,
                &mut a,
                i,
                100.0 + i as f64 * 60.0,
                &mut rng,
            );
            for r in rs {
                assert!(seen.insert(r.measurement_id));
            }
        }
        assert_eq!(seen.len(), 40);
    }
}
