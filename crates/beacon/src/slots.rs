//! Measurement slots and unique ids.
//!
//! Each beacon execution makes exactly four measurements (§3.3). A
//! measurement's globally unique id encodes both the execution counter and
//! its slot, so the server-side DNS policy can tell which of the four
//! selection rules to apply from the qname alone, and the backend can
//! regroup the four measurements of one execution after the join.

/// The four measurement slots of one beacon execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// (a) the front-end selected by anycast routing.
    Anycast,
    /// (b) the front-end judged geographically closest to the LDNS.
    GeoClosest,
    /// (c) first distance-weighted random pick from the other candidates.
    Random1,
    /// (d) second distance-weighted random pick.
    Random2,
}

impl Slot {
    /// All slots in execution order.
    pub const ALL: [Slot; 4] = [
        Slot::Anycast,
        Slot::GeoClosest,
        Slot::Random1,
        Slot::Random2,
    ];

    /// Slot index in `0..4`.
    pub fn index(&self) -> u64 {
        match self {
            Slot::Anycast => 0,
            Slot::GeoClosest => 1,
            Slot::Random1 => 2,
            Slot::Random2 => 3,
        }
    }

    /// Decodes a slot from a measurement id.
    pub fn from_id(id: u64) -> Slot {
        Slot::ALL[(id & 3) as usize]
    }

    /// Builds the measurement id for execution `counter` and this slot.
    pub fn id_for(&self, counter: u64) -> u64 {
        (counter << 2) | self.index()
    }

    /// The execution counter a measurement id belongs to.
    pub fn execution_of(id: u64) -> u64 {
        id >> 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        for counter in [0u64, 1, 42, 1 << 40] {
            for slot in Slot::ALL {
                let id = slot.id_for(counter);
                assert_eq!(Slot::from_id(id), slot);
                assert_eq!(Slot::execution_of(id), counter);
            }
        }
    }

    #[test]
    fn ids_are_unique_across_slots_and_executions() {
        let mut seen = std::collections::HashSet::new();
        for counter in 0..100 {
            for slot in Slot::ALL {
                assert!(seen.insert(slot.id_for(counter)));
            }
        }
        assert_eq!(seen.len(), 400);
    }

    #[test]
    fn slot_order_matches_paper() {
        assert_eq!(Slot::ALL[0], Slot::Anycast);
        assert_eq!(Slot::ALL[1], Slot::GeoClosest);
    }
}
