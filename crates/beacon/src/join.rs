//! Joining client-side HTTP results with server-side DNS logs.
//!
//! "Each test URL has a globally unique identifier, allowing us to join
//! HTTP results from the client side with DNS results from the server side"
//! (§3.2.2). The join attaches the resolver identity (which only the DNS
//! side knows) to the latency observation (which only the client side
//! knows) — the LDNS-based prediction scheme of §6 is impossible without
//! it.

use std::collections::HashMap;

use anycast_netsim::{CdnAddressing, Day, Prefix, Prefix24, SiteId};

use anycast_dns::{DnsQueryLog, LdnsId};

use crate::runner::HttpResult;
use crate::slots::Slot;

/// What a measurement targeted. The `Ord` is the deterministic target
/// order downstream aggregation keys on: anycast first, then unicast by
/// site id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Target {
    /// The anycast VIP; routing picked the site.
    Anycast,
    /// A specific unicast front-end.
    Unicast(SiteId),
}

/// One joined measurement: the unit record of the §5–§6 analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconMeasurement {
    /// Unique measurement id.
    pub measurement_id: u64,
    /// The slot this measurement filled.
    pub slot: Slot,
    /// Client /24 (client-side).
    pub prefix: Prefix24,
    /// Resolver that forwarded the DNS query (server-side).
    pub ldns: LdnsId,
    /// Client subnet the resolver forwarded via ECS, if any (server-side).
    /// Variable-length: a privacy-truncating resolver may disclose a
    /// coarser prefix than the client's /24.
    pub ecs: Option<Prefix>,
    /// What was targeted.
    pub target: Target,
    /// The site that served the fetch (equals the target site for unicast).
    pub served_site: SiteId,
    /// Reported latency, ms (total timeout time for failed fetches).
    pub rtt_ms: f64,
    /// Whether the fetch failed (every attempt timed out). Failed rows
    /// carry no usable latency and are excluded from latency aggregation,
    /// but they are what the availability analyses count.
    pub failed: bool,
    /// Day of the measurement.
    pub day: Day,
    /// Seconds within the day.
    pub time_s: f64,
}

/// Joins HTTP results with DNS logs on the measurement id. Rows without a
/// matching DNS log entry (possible in real systems when logs are lossy;
/// impossible in this simulator unless logs were truncated) are dropped,
/// mirroring the paper's join semantics.
pub fn join(
    http: &[HttpResult],
    dns: &[DnsQueryLog],
    addressing: &CdnAddressing,
) -> Vec<BeaconMeasurement> {
    let dns_by_id: HashMap<u64, &DnsQueryLog> = dns
        .iter()
        .filter_map(|row| row.measurement_id().map(|id| (id, row)))
        .collect();
    http.iter()
        .filter_map(|h| {
            let d = dns_by_id.get(&h.measurement_id)?;
            let target = if addressing.is_anycast(h.fetched_ip) {
                Target::Anycast
            } else {
                Target::Unicast(addressing.site_for_ip(h.fetched_ip)?)
            };
            Some(BeaconMeasurement {
                measurement_id: h.measurement_id,
                slot: Slot::from_id(h.measurement_id),
                prefix: h.prefix,
                ldns: d.ldns,
                ecs: d.ecs,
                target,
                served_site: h.served_site,
                rtt_ms: h.reported_ms,
                failed: h.failed,
                day: h.day,
                time_s: h.time_s,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dns::DnsName;
    use std::net::Ipv4Addr;

    fn http_row(id: u64, ip: Ipv4Addr, site: u16) -> HttpResult {
        HttpResult {
            measurement_id: id,
            prefix: Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1)),
            fetched_ip: ip,
            served_site: SiteId(site),
            reported_ms: 42.0,
            failed: false,
            attempts: 1,
            day: Day(0),
            time_s: 1.0,
        }
    }

    fn dns_row(id: u64, answer: Ipv4Addr) -> DnsQueryLog {
        let zone = DnsName::new("cdn.example").unwrap();
        DnsQueryLog {
            qname: DnsName::measurement(id, &zone),
            ldns: LdnsId(7),
            ecs: None,
            answer,
            day: Day(0),
            time_s: 1.0,
        }
    }

    #[test]
    fn join_matches_on_id_and_classifies_targets() {
        let plan = CdnAddressing::standard(8);
        let any_id = Slot::Anycast.id_for(0);
        let uni_id = Slot::GeoClosest.id_for(0);
        let http = vec![
            http_row(any_id, plan.anycast_ip(), 3),
            http_row(uni_id, plan.site_ip(SiteId(5)), 5),
        ];
        let dns = vec![
            dns_row(any_id, plan.anycast_ip()),
            dns_row(uni_id, plan.site_ip(SiteId(5))),
        ];
        let joined = join(&http, &dns, &plan);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].target, Target::Anycast);
        assert_eq!(joined[0].slot, Slot::Anycast);
        assert_eq!(joined[0].served_site, SiteId(3));
        assert_eq!(joined[1].target, Target::Unicast(SiteId(5)));
        assert_eq!(joined[1].ldns, LdnsId(7));
    }

    #[test]
    fn unmatched_http_rows_are_dropped() {
        let plan = CdnAddressing::standard(8);
        let http = vec![http_row(99, plan.anycast_ip(), 0)];
        let joined = join(&http, &[], &plan);
        assert!(joined.is_empty());
    }

    #[test]
    fn foreign_ips_are_dropped() {
        let plan = CdnAddressing::standard(8);
        let id = Slot::Random1.id_for(1);
        let http = vec![http_row(id, Ipv4Addr::new(8, 8, 8, 8), 0)];
        let dns = vec![dns_row(id, Ipv4Addr::new(8, 8, 8, 8))];
        assert!(join(&http, &dns, &plan).is_empty());
    }

    #[test]
    fn failure_flag_propagates_through_join() {
        let plan = CdnAddressing::standard(8);
        let id = Slot::Anycast.id_for(3);
        let mut h = http_row(id, plan.anycast_ip(), 3);
        h.failed = true;
        h.reported_ms = 6000.0;
        let dns = vec![dns_row(id, plan.anycast_ip())];
        let joined = join(&[h], &dns, &plan);
        assert!(joined[0].failed);
        assert_eq!(joined[0].rtt_ms, 6000.0);
    }

    #[test]
    fn ecs_propagates_through_join() {
        let plan = CdnAddressing::standard(8);
        let id = Slot::GeoClosest.id_for(2);
        let subnet = Prefix24::containing(Ipv4Addr::new(11, 0, 5, 0));
        let mut d = dns_row(id, plan.site_ip(SiteId(1)));
        d.ecs = Some(subnet.into());
        let http = vec![http_row(id, plan.site_ip(SiteId(1)), 1)];
        let joined = join(&http, &[d], &plan);
        assert_eq!(joined[0].ecs, Some(subnet.into()));
    }
}
