//! The measurement backend: collected, joined beacon data.
//!
//! Two access patterns cover every analysis in the paper:
//!
//! * **per-execution** — Figure 3 compares, within one beacon run, the
//!   anycast fetch against the best of the three unicast fetches;
//! * **per-group per-target** — §5's daily medians and §6's prediction
//!   scheme aggregate latency distributions per client group (/24 prefix or
//!   LDNS) towards each target.

use std::collections::HashMap;

use anycast_netsim::{Day, Prefix24, SiteId};

use anycast_dns::LdnsId;

use crate::join::{BeaconMeasurement, Target};
use crate::slots::Slot;

/// One beacon run reassembled from its four measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BeaconExecution {
    /// Execution counter (measurement id >> 2).
    pub execution: u64,
    /// Client /24.
    pub prefix: Prefix24,
    /// Resolver used.
    pub ldns: LdnsId,
    /// Day of the run.
    pub day: Day,
    /// Anycast measurement: `(served site, rtt)` if present.
    pub anycast: Option<(SiteId, f64)>,
    /// Unicast measurements: `(target site, rtt)`.
    pub unicast: Vec<(SiteId, f64)>,
}

impl BeaconExecution {
    /// The lowest-latency unicast measurement of this run.
    pub fn best_unicast(&self) -> Option<(SiteId, f64)> {
        self.unicast
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Figure 3's per-request quantity: anycast latency minus the best of
    /// the unicast latencies (positive = anycast was slower). `None` if the
    /// run is missing either side.
    pub fn anycast_penalty_ms(&self) -> Option<f64> {
        let (_, any) = self.anycast?;
        let (_, best) = self.best_unicast()?;
        Some(any - best)
    }
}

/// The joined dataset.
#[derive(Debug, Clone, Default)]
pub struct BeaconDataset {
    measurements: Vec<BeaconMeasurement>,
}

impl BeaconDataset {
    /// Creates an empty dataset.
    pub fn new() -> BeaconDataset {
        BeaconDataset::default()
    }

    /// Appends joined measurements.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = BeaconMeasurement>) {
        self.measurements.extend(rows);
    }

    /// All measurements.
    pub fn measurements(&self) -> &[BeaconMeasurement] {
        &self.measurements
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Measurements restricted to one day.
    pub fn day(&self, day: Day) -> impl Iterator<Item = &BeaconMeasurement> {
        self.measurements.iter().filter(move |m| m.day == day)
    }

    /// Reassembles executions (each beacon run's four measurements).
    /// Incomplete runs are kept — the analyses guard on missing sides.
    pub fn executions(&self) -> Vec<BeaconExecution> {
        let mut by_exec: HashMap<u64, BeaconExecution> = HashMap::new();
        for m in &self.measurements {
            let exec = Slot::execution_of(m.measurement_id);
            let entry = by_exec.entry(exec).or_insert_with(|| BeaconExecution {
                execution: exec,
                prefix: m.prefix,
                ldns: m.ldns,
                day: m.day,
                anycast: None,
                unicast: Vec::new(),
            });
            if m.failed {
                // A failed fetch contributes no latency; the run is simply
                // missing that side, like a lossy real-world report.
                continue;
            }
            match m.target {
                Target::Anycast => entry.anycast = Some((m.served_site, m.rtt_ms)),
                Target::Unicast(site) => entry.unicast.push((site, m.rtt_ms)),
            }
        }
        let mut out: Vec<BeaconExecution> = by_exec.into_values().collect();
        out.sort_by_key(|e| e.execution);
        out
    }

    /// Latency samples grouped by `(prefix, target)` for one day — the §5
    /// per-/24 daily medians and the §6 ECS prediction input.
    pub fn by_prefix_target(&self, day: Day) -> HashMap<(Prefix24, Target), Vec<f64>> {
        let mut out: HashMap<(Prefix24, Target), Vec<f64>> = HashMap::new();
        for m in self.day(day) {
            if m.failed {
                continue;
            }
            out.entry((m.prefix, m.target)).or_default().push(m.rtt_ms);
        }
        out
    }

    /// Latency samples grouped by `(ldns, target)` for one day — the §6
    /// LDNS prediction input ("assigning each front-end measurement made by
    /// a client to the client's LDNS").
    pub fn by_ldns_target(&self, day: Day) -> HashMap<(LdnsId, Target), Vec<f64>> {
        let mut out: HashMap<(LdnsId, Target), Vec<f64>> = HashMap::new();
        for m in self.day(day) {
            if m.failed {
                continue;
            }
            out.entry((m.ldns, m.target)).or_default().push(m.rtt_ms);
        }
        out
    }

    /// `(served, failed)` counts per target for one day — the availability
    /// side of the dataset that the latency groupings above deliberately
    /// exclude.
    pub fn outcomes_by_target(&self, day: Day) -> HashMap<Target, (u64, u64)> {
        let mut out: HashMap<Target, (u64, u64)> = HashMap::new();
        for m in self.day(day) {
            let e = out.entry(m.target).or_insert((0, 0));
            if m.failed {
                e.1 += 1;
            } else {
                e.0 += 1;
            }
        }
        out
    }

    /// `(served, failed)` counts per `(prefix, target)` for one day — the
    /// per-/24 availability input of the evaluation layer.
    pub fn outcomes_by_prefix_target(&self, day: Day) -> HashMap<(Prefix24, Target), (u64, u64)> {
        let mut out: HashMap<(Prefix24, Target), (u64, u64)> = HashMap::new();
        for m in self.day(day) {
            let e = out.entry((m.prefix, m.target)).or_insert((0, 0));
            if m.failed {
                e.1 += 1;
            } else {
                e.0 += 1;
            }
        }
        out
    }

    /// Total failed measurements across the dataset.
    pub fn failed_count(&self) -> u64 {
        self.measurements.iter().filter(|m| m.failed).count() as u64
    }

    /// The days present, ascending.
    pub fn days(&self) -> Vec<Day> {
        let mut days: Vec<Day> = self.measurements.iter().map(|m| m.day).collect();
        days.sort();
        days.dedup();
        days
    }

    /// Writes the dataset as CSV (header + one row per measurement) — the
    /// interchange format for replotting outside the workspace.
    pub fn write_csv<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(
            w,
            "measurement_id,slot,prefix,ldns,target,served_site,rtt_ms,failed,day,time_s"
        )?;
        for m in &self.measurements {
            let target = match m.target {
                Target::Anycast => "anycast".to_string(),
                Target::Unicast(s) => s.to_string(),
            };
            writeln!(
                w,
                "{},{},{},{},{},{},{:.1},{},{},{:.1}",
                m.measurement_id,
                m.slot.index(),
                m.prefix,
                m.ldns,
                target,
                m.served_site,
                m.rtt_ms,
                u8::from(m.failed),
                m.day.0,
                m.time_s,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn m(
        exec: u64,
        slot: Slot,
        target: Target,
        served: u16,
        rtt: f64,
        day: u32,
    ) -> BeaconMeasurement {
        BeaconMeasurement {
            measurement_id: slot.id_for(exec),
            slot,
            prefix: Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1)),
            ldns: LdnsId(0),
            ecs: None,
            target,
            served_site: SiteId(served),
            rtt_ms: rtt,
            failed: false,
            day: Day(day),
            time_s: 0.0,
        }
    }

    fn full_run(exec: u64, any_rtt: f64, uni: [(u16, f64); 3], day: u32) -> Vec<BeaconMeasurement> {
        vec![
            m(exec, Slot::Anycast, Target::Anycast, 2, any_rtt, day),
            m(
                exec,
                Slot::GeoClosest,
                Target::Unicast(SiteId(uni[0].0)),
                uni[0].0,
                uni[0].1,
                day,
            ),
            m(
                exec,
                Slot::Random1,
                Target::Unicast(SiteId(uni[1].0)),
                uni[1].0,
                uni[1].1,
                day,
            ),
            m(
                exec,
                Slot::Random2,
                Target::Unicast(SiteId(uni[2].0)),
                uni[2].0,
                uni[2].1,
                day,
            ),
        ]
    }

    #[test]
    fn executions_reassemble() {
        let mut ds = BeaconDataset::new();
        ds.extend(full_run(0, 50.0, [(1, 40.0), (3, 60.0), (4, 45.0)], 0));
        ds.extend(full_run(1, 30.0, [(1, 35.0), (3, 33.0), (4, 90.0)], 0));
        let execs = ds.executions();
        assert_eq!(execs.len(), 2);
        assert_eq!(execs[0].unicast.len(), 3);
        assert_eq!(execs[0].anycast, Some((SiteId(2), 50.0)));
    }

    #[test]
    fn penalty_is_anycast_minus_best_unicast() {
        let mut ds = BeaconDataset::new();
        ds.extend(full_run(0, 50.0, [(1, 40.0), (3, 60.0), (4, 45.0)], 0));
        let e = &ds.executions()[0];
        assert_eq!(e.best_unicast(), Some((SiteId(1), 40.0)));
        assert_eq!(e.anycast_penalty_ms(), Some(10.0));
    }

    #[test]
    fn negative_penalty_when_anycast_wins() {
        let mut ds = BeaconDataset::new();
        ds.extend(full_run(0, 30.0, [(1, 40.0), (3, 60.0), (4, 45.0)], 0));
        assert_eq!(ds.executions()[0].anycast_penalty_ms(), Some(-10.0));
    }

    #[test]
    fn incomplete_run_yields_none_penalty() {
        let mut ds = BeaconDataset::new();
        ds.extend(vec![m(0, Slot::Anycast, Target::Anycast, 1, 50.0, 0)]);
        let e = &ds.executions()[0];
        assert_eq!(e.anycast_penalty_ms(), None);
        assert_eq!(e.best_unicast(), None);
    }

    #[test]
    fn grouping_by_prefix_and_day() {
        let mut ds = BeaconDataset::new();
        ds.extend(full_run(0, 50.0, [(1, 40.0), (3, 60.0), (4, 45.0)], 0));
        ds.extend(full_run(1, 55.0, [(1, 42.0), (3, 61.0), (4, 46.0)], 1));
        let day0 = ds.by_prefix_target(Day(0));
        let prefix = Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1));
        assert_eq!(day0[&(prefix, Target::Anycast)], vec![50.0]);
        assert_eq!(day0[&(prefix, Target::Unicast(SiteId(1)))], vec![40.0]);
        assert_eq!(ds.days(), vec![Day(0), Day(1)]);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut ds = BeaconDataset::new();
        ds.extend(full_run(0, 50.0, [(1, 40.0), (3, 60.0), (4, 45.0)], 0));
        let mut buf = Vec::new();
        ds.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.lines().next().unwrap().starts_with("measurement_id,"));
        assert!(text.contains("anycast"));
    }

    #[test]
    fn failed_rows_count_towards_availability_not_latency() {
        let mut ds = BeaconDataset::new();
        ds.extend(full_run(0, 50.0, [(1, 40.0), (3, 60.0), (4, 45.0)], 0));
        let mut bad = m(1, Slot::Anycast, Target::Anycast, 2, 6000.0, 0);
        bad.failed = true;
        ds.extend(vec![bad]);
        let prefix = Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1));
        // Latency groupings exclude the failed row…
        assert_eq!(
            ds.by_prefix_target(Day(0))[&(prefix, Target::Anycast)],
            vec![50.0]
        );
        assert_eq!(
            ds.by_ldns_target(Day(0))[&(LdnsId(0), Target::Anycast)],
            vec![50.0]
        );
        // …the availability view counts it…
        assert_eq!(ds.outcomes_by_target(Day(0))[&Target::Anycast], (1, 1));
        assert_eq!(ds.failed_count(), 1);
        // …and the failed run's execution is missing its anycast side.
        assert_eq!(ds.executions()[1].anycast, None);
        let mut buf = Vec::new();
        ds.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().next().unwrap().contains(",failed,"));
        assert!(text.lines().any(|l| l.contains(",6000.0,1,")));
    }

    #[test]
    fn ldns_grouping() {
        let mut ds = BeaconDataset::new();
        ds.extend(full_run(0, 50.0, [(1, 40.0), (3, 60.0), (4, 45.0)], 0));
        let groups = ds.by_ldns_target(Day(0));
        assert_eq!(groups[&(LdnsId(0), Target::Anycast)].len(), 1);
        assert_eq!(groups.len(), 4);
    }
}
