//! The authoritative measurement policy: server-side candidate selection.
//!
//! §3.3's three overhead/accuracy mechanisms, implemented where the paper
//! implements them — at the DNS server:
//!
//! 1. only the **ten closest front-ends to the LDNS** (by the CDN's
//!    geolocation of the LDNS) are candidates;
//! 2. each beacon gets four answers: the anycast VIP, the geo-closest
//!    candidate, and two random candidates **weighted towards closer ones**
//!    ("we return the 3rd closest front-end with higher probability than
//!    the 4th closest");
//! 3. answers are deterministic per measurement id, so reruns of a seed
//!    reproduce the same "random" diversity.

use anycast_geo::{GeoPoint, NearestIndex};
use anycast_netsim::{CdnAddressing, SiteId};
use rand::{Rng, SeedableRng};

use anycast_dns::{DnsAnswer, QueryContext, RedirectionPolicy};

use crate::slots::Slot;

/// The measurement redirection policy installed on the authoritative server
/// for the beacon's probe zone.
#[derive(Debug, Clone)]
pub struct MeasurementPolicy {
    sites: NearestIndex<SiteId>,
    addressing: CdnAddressing,
    /// Candidate-set size (the paper's ten).
    pub candidates: usize,
    /// TTL for measurement answers — "longer than the duration of the
    /// beacon" so the timed fetch is a cache hit.
    pub ttl_s: u32,
    seed: u64,
}

impl MeasurementPolicy {
    /// Builds the policy over the CDN's site catalog.
    pub fn new(
        site_locations: Vec<(SiteId, GeoPoint)>,
        addressing: CdnAddressing,
        candidates: usize,
        ttl_s: u32,
        seed: u64,
    ) -> MeasurementPolicy {
        assert!(candidates >= 2, "need at least two candidates");
        MeasurementPolicy {
            sites: NearestIndex::new(site_locations),
            addressing,
            candidates,
            ttl_s,
            seed,
        }
    }

    /// The candidate front-ends for an LDNS at `ldns_location`: the k
    /// nearest sites with distances, ascending.
    pub fn candidate_sites(&self, ldns_location: &GeoPoint) -> Vec<(SiteId, f64)> {
        self.sites.k_nearest(ldns_location, self.candidates)
    }

    /// The site a given slot's answer selects for an LDNS location, or
    /// `None` for the anycast slot (whose answer is the VIP, not a site).
    /// Exposed for tests and for the Figure 1 candidate-rank analysis.
    pub fn select_site(&self, slot: Slot, id: u64, ldns_location: &GeoPoint) -> Option<SiteId> {
        let candidates = self.candidate_sites(ldns_location);
        match slot {
            Slot::Anycast => None,
            Slot::GeoClosest => candidates.first().map(|&(s, _)| s),
            Slot::Random1 | Slot::Random2 => {
                let rest = &candidates[1.min(candidates.len())..];
                if rest.is_empty() {
                    return candidates.first().map(|&(s, _)| s);
                }
                // Weight ∝ 1/(rank+1): the 3rd closest beats the 4th.
                let weights: Vec<f64> = (0..rest.len()).map(|r| 1.0 / (r as f64 + 2.0)).collect();
                let total: f64 = weights.iter().sum();
                let mut rng = id_rng(self.seed, id);
                let mut draw = rng.gen::<f64>() * total;
                for (i, w) in weights.iter().enumerate() {
                    draw -= w;
                    if draw <= 0.0 {
                        return Some(rest[i].0);
                    }
                }
                rest.last().map(|&(s, _)| s)
            }
        }
    }
}

impl RedirectionPolicy for MeasurementPolicy {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        let Some(id) = query.qname.measurement_id() else {
            // Non-measurement names in the probe zone resolve to anycast —
            // the production default.
            return DnsAnswer::global(self.addressing.anycast_ip(), self.ttl_s);
        };
        let slot = Slot::from_id(id);
        match self.select_site(slot, id, &query.ldns_location) {
            None => DnsAnswer::global(self.addressing.anycast_ip(), self.ttl_s),
            Some(site) => DnsAnswer::global(self.addressing.site_ip(site), self.ttl_s),
        }
    }
}

fn id_rng(seed: u64, id: u64) -> rand::rngs::SmallRng {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    rand::rngs::SmallRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dns::{DnsName, LdnsId};
    use anycast_netsim::Day;

    fn policy() -> MeasurementPolicy {
        // Sites along the equator at 0, 10, 20, ... 110 degrees east.
        let sites: Vec<(SiteId, GeoPoint)> = (0..12)
            .map(|i| (SiteId(i), GeoPoint::new(0.0, f64::from(i) * 10.0)))
            .collect();
        MeasurementPolicy::new(sites, CdnAddressing::standard(12), 10, 300, 7)
    }

    fn ctx<'a>(qname: &'a DnsName, loc: GeoPoint) -> QueryContext<'a> {
        QueryContext {
            qname,
            ldns: LdnsId(0),
            ldns_location: loc,
            ecs: None,
            day: Day(0),
            time_s: 0.0,
        }
    }

    #[test]
    fn anycast_slot_returns_vip() {
        let p = policy();
        let zone = DnsName::new("cdn.example").unwrap();
        let qname = DnsName::measurement(Slot::Anycast.id_for(5), &zone);
        let a = p.answer(&ctx(&qname, GeoPoint::new(0.0, 1.0)));
        assert!(p.addressing.is_anycast(a.addr));
    }

    #[test]
    fn geo_closest_slot_returns_nearest_site() {
        let p = policy();
        let zone = DnsName::new("cdn.example").unwrap();
        // LDNS at 42°E: nearest site is #4 (40°E).
        let qname = DnsName::measurement(Slot::GeoClosest.id_for(5), &zone);
        let a = p.answer(&ctx(&qname, GeoPoint::new(0.0, 42.0)));
        assert_eq!(p.addressing.site_for_ip(a.addr), Some(SiteId(4)));
    }

    #[test]
    fn random_slots_never_return_the_geo_closest() {
        let p = policy();
        let loc = GeoPoint::new(0.0, 42.0);
        for counter in 0..200 {
            for slot in [Slot::Random1, Slot::Random2] {
                let site = p.select_site(slot, slot.id_for(counter), &loc).unwrap();
                assert_ne!(site, SiteId(4), "random pick equals geo-closest");
            }
        }
    }

    #[test]
    fn random_picks_stay_within_candidates() {
        let p = policy();
        let loc = GeoPoint::new(0.0, 0.0);
        let candidates: std::collections::HashSet<SiteId> = p
            .candidate_sites(&loc)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(candidates.len(), 10);
        for counter in 0..200 {
            let site = p
                .select_site(Slot::Random1, Slot::Random1.id_for(counter), &loc)
                .unwrap();
            assert!(candidates.contains(&site));
        }
    }

    #[test]
    fn random_weighting_prefers_closer_candidates() {
        let p = policy();
        let loc = GeoPoint::new(0.0, 0.0);
        // Candidate ranks: site1 is 2nd closest, site9 is 10th closest.
        let mut n_second = 0;
        let mut n_tenth = 0;
        for counter in 0..5000 {
            let site = p
                .select_site(Slot::Random1, Slot::Random1.id_for(counter), &loc)
                .unwrap();
            if site == SiteId(1) {
                n_second += 1;
            } else if site == SiteId(9) {
                n_tenth += 1;
            }
        }
        assert!(
            n_second > 2 * n_tenth,
            "2nd-closest picked {n_second}, 10th-closest {n_tenth}"
        );
    }

    #[test]
    fn selection_is_deterministic_per_id() {
        let p = policy();
        let loc = GeoPoint::new(0.0, 33.0);
        for counter in 0..50 {
            let id = Slot::Random2.id_for(counter);
            assert_eq!(
                p.select_site(Slot::Random2, id, &loc),
                p.select_site(Slot::Random2, id, &loc)
            );
        }
    }

    #[test]
    fn non_measurement_names_resolve_to_anycast() {
        let p = policy();
        let qname = DnsName::new("www.cdn.example").unwrap();
        let a = p.answer(&ctx(&qname, GeoPoint::new(0.0, 0.0)));
        assert!(p.addressing.is_anycast(a.addr));
    }

    #[test]
    fn different_ldns_locations_get_different_candidates() {
        let p = policy();
        let west = p.candidate_sites(&GeoPoint::new(0.0, 0.0));
        let east = p.candidate_sites(&GeoPoint::new(0.0, 110.0));
        assert_ne!(west[0].0, east[0].0);
    }
}
