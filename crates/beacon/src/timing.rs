//! Browser timing accuracy.
//!
//! "Using JavaScript to measure the elapsed time between the start and end
//! of a fetch is known to not be a precise measurement of performance,
//! whereas the W3C Resource Timing API provides access to accurate resource
//! download timing information from compliant Web browsers. The beacon
//! first records latency using the primitive timings. Upon completion, if
//! the browser supports the resource timing API, then the beacon
//! substitutes the more accurate values" (§3.2.2).
//!
//! [`TimingModel`] reproduces that: a configurable fraction of beacon runs
//! come from compliant browsers and report the true RTT; the rest report
//! the primitive timing — the true RTT plus a positive, lognormal overhead
//! (event-loop scheduling, DOM callbacks).

use anycast_geo::LogNormal;
use rand::distributions::Distribution;
use rand::Rng;

/// The accuracy model applied to every client-side latency report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Fraction of browsers supporting the Resource Timing API (mid-2015:
    /// most evergreen desktop browsers, not yet Safari).
    pub resource_timing_support: f64,
    /// Median of the primitive-timing overhead, ms.
    pub primitive_overhead_ms: f64,
    /// Lognormal sigma of the overhead.
    pub primitive_overhead_sigma: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            resource_timing_support: 0.78,
            primitive_overhead_ms: 9.0,
            primitive_overhead_sigma: 0.9,
        }
    }
}

impl TimingModel {
    /// A perfect model: every browser is compliant (for ablations).
    pub fn perfect() -> TimingModel {
        TimingModel {
            resource_timing_support: 1.0,
            primitive_overhead_ms: 0.0,
            primitive_overhead_sigma: 0.0,
        }
    }

    /// Whether this beacon run's browser supports resource timing (drawn
    /// once per execution — all four measurements share the browser).
    pub fn browser_is_compliant(&self, rng: &mut impl Rng) -> bool {
        rng.gen::<f64>() < self.resource_timing_support
    }

    /// The latency the beacon reports for a fetch whose true RTT is
    /// `true_rtt_ms`, given browser compliance.
    ///
    /// Reports are quantized to **whole milliseconds**: both `Date.now()`
    /// deltas and the 2015-era Resource Timing attributes surface integer
    /// (or integer-rounded) millisecond values. This quantization matters
    /// analytically — it is what lets two statistically identical paths
    /// produce *exactly* equal medians, so the §5 "any improvement"
    /// classification is not dominated by sub-millisecond noise ties.
    pub fn observe(&self, true_rtt_ms: f64, compliant: bool, rng: &mut impl Rng) -> f64 {
        let raw = if compliant || self.primitive_overhead_ms <= 0.0 {
            true_rtt_ms
        } else {
            true_rtt_ms
                + LogNormal::new(self.primitive_overhead_ms, self.primitive_overhead_sigma)
                    .sample(rng)
        };
        raw.round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn compliant_browsers_report_truth_in_whole_ms() {
        let m = TimingModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.observe(42.0, true, &mut rng), 42.0);
            assert_eq!(m.observe(42.4, true, &mut rng), 42.0);
            assert_eq!(m.observe(42.6, true, &mut rng), 43.0);
        }
    }

    #[test]
    fn reports_are_integer_milliseconds() {
        let m = TimingModel::default();
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0..1000 {
            let rtt = 10.0 + f64::from(i) * 0.37;
            let compliant = i % 2 == 0;
            let v = m.observe(rtt, compliant, &mut rng);
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn primitive_timings_overestimate() {
        let m = TimingModel::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut overheads: Vec<f64> = (0..5000)
            .map(|_| m.observe(42.0, false, &mut rng) - 42.0)
            .collect();
        assert!(overheads.iter().all(|&o| o >= 0.0));
        overheads.sort_by(|a, b| a.total_cmp(b));
        let median = overheads[overheads.len() / 2];
        assert!((median - 9.0).abs() < 1.5, "median overhead {median}");
    }

    #[test]
    fn support_fraction_is_respected() {
        let m = TimingModel::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let compliant = (0..20_000)
            .filter(|_| m.browser_is_compliant(&mut rng))
            .count() as f64
            / 20_000.0;
        assert!(
            (compliant - 0.78).abs() < 0.02,
            "compliant fraction {compliant}"
        );
    }

    #[test]
    fn perfect_model_only_quantizes() {
        let m = TimingModel::perfect();
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(m.browser_is_compliant(&mut rng));
        assert_eq!(m.observe(10.0, false, &mut rng), 10.0);
        assert_eq!(m.observe(10.2, false, &mut rng), 10.0);
    }
}
