//! Splittable RNG stream derivation.
//!
//! The simulator's determinism story has two tiers. Pure schedule models
//! ([`crate::outage::OutageModel`], [`crate::churn::ChurnModel`]) hash
//! `(seed, entity, day)` straight to a decision and need no generator at
//! all. Stochastic per-event noise (RTT jitter, beacon scheduling, browser
//! timing) does need a generator — and if every event in a campaign pulls
//! from one shared sequential RNG, the draw order becomes part of the
//! output and nothing can be computed out of order, let alone on another
//! thread.
//!
//! This module closes that gap: [`derive`] folds an arbitrary key path
//! (e.g. `(day, client, beacon)`) through the same SplitMix64-style mixer
//! the schedule models use, and [`stream_rng`] seeds a [`SmallRng`] from
//! the result. Two properties make the campaign engine parallelizable:
//!
//! * **Independence** — streams for different key paths are statistically
//!   uncorrelated (SplitMix64's finalizer decorrelates adjacent keys), so
//!   per-client streams can be consumed in any order, on any thread.
//! * **Stability** — a stream's identity is exactly `(seed, key path)`.
//!   Adding workers, reordering clients, or skipping events never shifts
//!   another stream's draws.
//!
//! A stream may make a *variable* number of draws (rejection sampling is
//! fine) as long as the draw count depends only on that stream's own
//! output — never on draws from a different stream.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64-style mixing of (seed, key, salt) into a well-distributed
/// u64. Identical to the mixer used by the schedule models so the whole
/// repo shares one derivation idiom.
pub fn mix(seed: u64, key: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval with 53 bits of precision.
pub fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Folds a key path into a single stream identity. The position of each
/// key is salted in, so `derive(s, &[a, b]) != derive(s, &[b, a])` and a
/// path is never a prefix-collision of a longer one with zero keys.
pub fn derive(seed: u64, keys: &[u64]) -> u64 {
    let mut h = seed ^ 0x5354_5245_414d_7321; // "STREAMs!"
    for (i, &k) in keys.iter().enumerate() {
        h = mix(h, k, (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    h
}

/// A fresh generator for the stream identified by `(seed, keys)`. Cheap
/// enough to build per event: seeding a [`SmallRng`] is a few multiplies.
pub fn stream_rng(seed: u64, keys: &[u64]) -> SmallRng {
    SmallRng::seed_from_u64(derive(seed, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive(7, &[1, 2, 3]), derive(7, &[1, 2, 3]));
        let mut a = stream_rng(7, &[0, 5]);
        let mut b = stream_rng(7, &[0, 5]);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn key_order_and_depth_matter() {
        assert_ne!(derive(7, &[1, 2]), derive(7, &[2, 1]));
        assert_ne!(derive(7, &[1]), derive(7, &[1, 0]));
        assert_ne!(derive(7, &[]), derive(7, &[0]));
        assert_ne!(derive(7, &[1, 2]), derive(8, &[1, 2]));
    }

    #[test]
    fn adjacent_streams_are_decorrelated() {
        // Crude independence check: first draws of adjacent client streams
        // should look uniform, not clustered.
        let draws: Vec<f64> = (0..1000).map(|c| to_unit(derive(42, &[3, c]))).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        let below = draws.iter().filter(|&&x| x < 0.5).count();
        assert!((400..600).contains(&below), "{below} below median");
    }
}
