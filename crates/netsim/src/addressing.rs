//! CDN service addressing: the anycast VIP and per-site unicast prefixes.
//!
//! §3.1: "All test front-ends locations have both anycast and unicast IP
//! addresses … we also assign each front-end location a unique /24 prefix
//! which does not serve production traffic." This module is that address
//! plan: one anycast VIP announced everywhere, and one /24 per site for the
//! measurement traffic, with bidirectional IP ↔ site mapping for log joins.

use std::net::Ipv4Addr;

use crate::ids::SiteId;

/// The CDN's address plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdnAddressing {
    anycast: Ipv4Addr,
    /// First two octets of the unicast super-block; site `s` owns
    /// `<block>.<s>.0/24`.
    unicast_block: [u8; 2],
    n_sites: u16,
}

impl CdnAddressing {
    /// The standard plan: anycast VIP `198.18.0.1` (benchmarking range, so
    /// it cannot collide with client prefixes), unicast block
    /// `198.19.<site>.0/24`.
    pub fn standard(n_sites: u16) -> CdnAddressing {
        assert!(
            n_sites > 0 && n_sites <= 256,
            "sites must fit one /16: {n_sites}"
        );
        CdnAddressing {
            anycast: Ipv4Addr::new(198, 18, 0, 1),
            unicast_block: [198, 19],
            n_sites,
        }
    }

    /// The anycast VIP.
    pub fn anycast_ip(&self) -> Ipv4Addr {
        self.anycast
    }

    /// The unicast service address of `site` (the `.1` host of its /24).
    ///
    /// # Panics
    /// Panics if the site id is outside this plan (a cross-deployment id
    /// mixup).
    pub fn site_ip(&self, site: SiteId) -> Ipv4Addr {
        assert!(site.0 < self.n_sites, "site {site} outside address plan");
        Ipv4Addr::new(
            self.unicast_block[0],
            self.unicast_block[1],
            site.0 as u8,
            1,
        )
    }

    /// Whether `ip` is the anycast VIP.
    pub fn is_anycast(&self, ip: Ipv4Addr) -> bool {
        ip == self.anycast
    }

    /// The site owning `ip`, if it is one of the unicast service addresses.
    pub fn site_for_ip(&self, ip: Ipv4Addr) -> Option<SiteId> {
        let o = ip.octets();
        if o[0] == self.unicast_block[0]
            && o[1] == self.unicast_block[1]
            && u16::from(o[2]) < self.n_sites
        {
            Some(SiteId(u16::from(o[2])))
        } else {
            None
        }
    }

    /// Number of sites covered by this plan.
    pub fn n_sites(&self) -> u16 {
        self.n_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_site_ips() {
        let plan = CdnAddressing::standard(44);
        for s in 0..44u16 {
            let ip = plan.site_ip(SiteId(s));
            assert_eq!(plan.site_for_ip(ip), Some(SiteId(s)));
            assert!(!plan.is_anycast(ip));
        }
    }

    #[test]
    fn anycast_is_distinct() {
        let plan = CdnAddressing::standard(10);
        assert!(plan.is_anycast(plan.anycast_ip()));
        assert_eq!(plan.site_for_ip(plan.anycast_ip()), None);
    }

    #[test]
    fn foreign_ips_map_to_nothing() {
        let plan = CdnAddressing::standard(10);
        assert_eq!(plan.site_for_ip(Ipv4Addr::new(8, 8, 8, 8)), None);
        // Inside the block but beyond the site count.
        assert_eq!(plan.site_for_ip(Ipv4Addr::new(198, 19, 11, 1)), None);
    }

    #[test]
    #[should_panic(expected = "outside address plan")]
    fn out_of_plan_site_panics() {
        CdnAddressing::standard(4).site_ip(SiteId(4));
    }

    #[test]
    #[should_panic(expected = "fit one /16")]
    fn oversized_plan_rejected() {
        CdnAddressing::standard(257);
    }
}
