//! Client /24 prefixes.
//!
//! The paper aggregates clients into /24 prefixes throughout ("we aggregated
//! client IP addresses from measurements into /24 prefixes because they tend
//! to be localized", §3.2), and the ECS prediction scheme operates at /24
//! granularity. [`Prefix24`] is that identity: the top 24 bits of an IPv4
//! address.

use std::net::Ipv4Addr;

/// An IPv4 /24 prefix, stored as the network address with the low octet
/// zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// The prefix containing `addr`.
    pub fn containing(addr: Ipv4Addr) -> Prefix24 {
        Prefix24(u32::from(addr) & 0xFFFF_FF00)
    }

    /// Constructs from a raw network value; the low octet is masked off.
    pub fn from_raw(raw: u32) -> Prefix24 {
        Prefix24(raw & 0xFFFF_FF00)
    }

    /// The network address (low octet zero).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.0)
    }

    /// The raw 32-bit network value.
    pub fn raw(&self) -> u32 {
        self.0
    }

    /// The host address with the given low octet inside this prefix.
    pub fn host(&self, low: u8) -> Ipv4Addr {
        Ipv4Addr::from(self.0 | u32::from(low))
    }

    /// Whether `addr` belongs to this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & 0xFFFF_FF00) == self.0
    }

    /// A stable 64-bit key for hashing into seeded random streams.
    pub fn key(&self) -> u64 {
        u64::from(self.0)
    }
}

impl std::fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// Allocates distinct /24 prefixes sequentially from a base, skipping
/// reserved ranges. The workload generator uses one allocator per world so
/// every client /24 is unique.
#[derive(Debug, Clone)]
pub struct PrefixAllocator {
    next: u32,
}

impl Default for PrefixAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixAllocator {
    /// Starts allocation at 11.0.0.0/24 (clear of 0/8, 10/8 private space,
    /// and loopback).
    pub fn new() -> Self {
        PrefixAllocator {
            next: u32::from(Ipv4Addr::new(11, 0, 0, 0)),
        }
    }

    /// Allocates the next unused /24.
    ///
    /// # Panics
    /// Panics if the allocator runs past 223.255.255.0 (more /24s than any
    /// experiment could use — a loud failure beats silent reuse).
    pub fn alloc(&mut self) -> Prefix24 {
        loop {
            let candidate = self.next;
            assert!(
                candidate < u32::from(Ipv4Addr::new(224, 0, 0, 0)),
                "prefix space exhausted"
            );
            self.next = candidate.wrapping_add(0x100);
            let first_octet = (candidate >> 24) as u8;
            // Skip loopback and multicast-adjacent ranges, and private 172.16/12
            // and 192.168/16 for realism.
            let private_172 = first_octet == 172
                && ((candidate >> 16) & 0xFF) >= 16
                && ((candidate >> 16) & 0xFF) < 32;
            let private_192 = first_octet == 192 && ((candidate >> 16) & 0xFF) == 168;
            if first_octet == 127 || private_172 || private_192 {
                continue;
            }
            return Prefix24::from_raw(candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_masks_low_octet() {
        let p = Prefix24::containing(Ipv4Addr::new(93, 184, 216, 34));
        assert_eq!(p.network(), Ipv4Addr::new(93, 184, 216, 0));
        assert!(p.contains(Ipv4Addr::new(93, 184, 216, 255)));
        assert!(!p.contains(Ipv4Addr::new(93, 184, 217, 0)));
    }

    #[test]
    fn host_addresses_stay_inside() {
        let p = Prefix24::from_raw(u32::from(Ipv4Addr::new(10, 1, 2, 99)));
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(p.host(7), Ipv4Addr::new(10, 1, 2, 7));
        assert!(p.contains(p.host(200)));
    }

    #[test]
    fn display_format() {
        let p = Prefix24::containing(Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(p.to_string(), "8.8.8.0/24");
    }

    #[test]
    fn allocator_yields_unique_prefixes() {
        let mut alloc = PrefixAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(alloc.alloc()), "duplicate prefix");
        }
    }

    #[test]
    fn allocator_skips_loopback_and_private() {
        let mut alloc = PrefixAllocator::new();
        for _ in 0..2_000_000 {
            let p = alloc.alloc();
            let first = (p.raw() >> 24) as u8;
            let second = ((p.raw() >> 16) & 0xFF) as u8;
            assert_ne!(first, 127);
            assert!(!(first == 172 && (16..32).contains(&second)));
            assert!(!(first == 192 && second == 168));
        }
    }

    #[test]
    fn keys_are_distinct() {
        let a = Prefix24::containing(Ipv4Addr::new(1, 2, 3, 4));
        let b = Prefix24::containing(Ipv4Addr::new(1, 2, 4, 4));
        assert_ne!(a.key(), b.key());
    }
}
