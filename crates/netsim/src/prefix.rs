//! Client prefixes.
//!
//! The paper aggregates clients into /24 prefixes throughout ("we aggregated
//! client IP addresses from measurements into /24 prefixes because they tend
//! to be localized", §3.2), and the ECS prediction scheme operates at /24
//! granularity. [`Prefix24`] is that identity: the top 24 bits of an IPv4
//! address. [`Prefix`] generalizes it to any length 0–32 — what RFC 7871
//! ECS actually carries on the wire (resolvers may truncate below /24 for
//! privacy), and what the routing-aware aggregation pass produces when it
//! merges /24s that share a best front-end.

use std::net::Ipv4Addr;

/// An IPv4 prefix of any length 0–32, stored as the network address with
/// all bits beyond the length zeroed.
///
/// Ordering is `(network, length)` lexicographic, so a covering prefix
/// sorts immediately before the subnets it contains — the order compiled
/// tables and aggregation passes iterate in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    net: u32,
    len: u8,
}

impl Prefix {
    /// The `/len` prefix containing `addr`. Lengths above 32 are clamped;
    /// host bits are masked off.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix {
        Prefix::from_raw(u32::from(addr), len)
    }

    /// Constructs from a raw 32-bit network value; host bits are masked.
    pub fn from_raw(raw: u32, len: u8) -> Prefix {
        let len = len.min(32);
        Prefix {
            net: raw & mask(len),
            len,
        }
    }

    /// The network address (host bits zero).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.net)
    }

    /// The raw 32-bit network value.
    pub fn raw(&self) -> u32 {
        self.net
    }

    /// The prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length prefix (all of IPv4).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// This prefix truncated to `len` bits (no-op when `len` is not
    /// shorter).
    pub fn truncate(&self, len: u8) -> Prefix {
        if len >= self.len {
            *self
        } else {
            Prefix::from_raw(self.net, len)
        }
    }

    /// Whether `addr` belongs to this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & mask(self.len)) == self.net
    }

    /// Whether this prefix covers `other` (is equal or shorter and
    /// contains its network).
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.net & mask(self.len)) == self.net
    }

    /// A stable 64-bit key for hashing into seeded random streams,
    /// distinct across `(network, length)` pairs.
    pub fn key(&self) -> u64 {
        (u64::from(self.net) << 8) | u64::from(self.len)
    }
}

impl From<Prefix24> for Prefix {
    fn from(p: Prefix24) -> Prefix {
        Prefix {
            net: p.raw(),
            len: 24,
        }
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// The network mask for a prefix length (0 → all-zero mask).
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else if len >= 32 {
        u32::MAX
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

/// An IPv4 /24 prefix, stored as the network address with the low octet
/// zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// The prefix containing `addr`.
    pub fn containing(addr: Ipv4Addr) -> Prefix24 {
        Prefix24(u32::from(addr) & 0xFFFF_FF00)
    }

    /// Constructs from a raw network value; the low octet is masked off.
    pub fn from_raw(raw: u32) -> Prefix24 {
        Prefix24(raw & 0xFFFF_FF00)
    }

    /// The network address (low octet zero).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.0)
    }

    /// The raw 32-bit network value.
    pub fn raw(&self) -> u32 {
        self.0
    }

    /// The host address with the given low octet inside this prefix.
    pub fn host(&self, low: u8) -> Ipv4Addr {
        Ipv4Addr::from(self.0 | u32::from(low))
    }

    /// Whether `addr` belongs to this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & 0xFFFF_FF00) == self.0
    }

    /// A stable 64-bit key for hashing into seeded random streams.
    pub fn key(&self) -> u64 {
        u64::from(self.0)
    }
}

impl std::fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// Allocates distinct /24 prefixes sequentially from a base, skipping
/// reserved ranges. The workload generator uses one allocator per world so
/// every client /24 is unique.
#[derive(Debug, Clone)]
pub struct PrefixAllocator {
    next: u32,
}

impl Default for PrefixAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixAllocator {
    /// Starts allocation at 11.0.0.0/24 (clear of 0/8, 10/8 private space,
    /// and loopback).
    pub fn new() -> Self {
        PrefixAllocator {
            next: u32::from(Ipv4Addr::new(11, 0, 0, 0)),
        }
    }

    /// Allocates the next unused /24.
    ///
    /// # Panics
    /// Panics if the allocator runs past 223.255.255.0 (more /24s than any
    /// experiment could use — a loud failure beats silent reuse).
    pub fn alloc(&mut self) -> Prefix24 {
        loop {
            let candidate = self.next;
            assert!(
                candidate < u32::from(Ipv4Addr::new(224, 0, 0, 0)),
                "prefix space exhausted"
            );
            self.next = candidate.wrapping_add(0x100);
            let first_octet = (candidate >> 24) as u8;
            // Skip loopback and multicast-adjacent ranges, and private 172.16/12
            // and 192.168/16 for realism.
            let private_172 = first_octet == 172
                && ((candidate >> 16) & 0xFF) >= 16
                && ((candidate >> 16) & 0xFF) < 32;
            let private_192 = first_octet == 192 && ((candidate >> 16) & 0xFF) == 168;
            if first_octet == 127 || private_172 || private_192 {
                continue;
            }
            return Prefix24::from_raw(candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_masks_low_octet() {
        let p = Prefix24::containing(Ipv4Addr::new(93, 184, 216, 34));
        assert_eq!(p.network(), Ipv4Addr::new(93, 184, 216, 0));
        assert!(p.contains(Ipv4Addr::new(93, 184, 216, 255)));
        assert!(!p.contains(Ipv4Addr::new(93, 184, 217, 0)));
    }

    #[test]
    fn host_addresses_stay_inside() {
        let p = Prefix24::from_raw(u32::from(Ipv4Addr::new(10, 1, 2, 99)));
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(p.host(7), Ipv4Addr::new(10, 1, 2, 7));
        assert!(p.contains(p.host(200)));
    }

    #[test]
    fn display_format() {
        let p = Prefix24::containing(Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(p.to_string(), "8.8.8.0/24");
    }

    #[test]
    fn allocator_yields_unique_prefixes() {
        let mut alloc = PrefixAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(alloc.alloc()), "duplicate prefix");
        }
    }

    #[test]
    fn allocator_skips_loopback_and_private() {
        let mut alloc = PrefixAllocator::new();
        for _ in 0..2_000_000 {
            let p = alloc.alloc();
            let first = (p.raw() >> 24) as u8;
            let second = ((p.raw() >> 16) & 0xFF) as u8;
            assert_ne!(first, 127);
            assert!(!(first == 172 && (16..32).contains(&second)));
            assert!(!(first == 192 && second == 168));
        }
    }

    #[test]
    fn keys_are_distinct() {
        let a = Prefix24::containing(Ipv4Addr::new(1, 2, 3, 4));
        let b = Prefix24::containing(Ipv4Addr::new(1, 2, 4, 4));
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn prefix_masks_host_bits_at_any_length() {
        let p = Prefix::new(Ipv4Addr::new(10, 20, 30, 40), 16);
        assert_eq!(p.network(), Ipv4Addr::new(10, 20, 0, 0));
        assert_eq!(p.len(), 16);
        assert!(p.contains(Ipv4Addr::new(10, 20, 255, 1)));
        assert!(!p.contains(Ipv4Addr::new(10, 21, 0, 0)));
        assert_eq!(p.to_string(), "10.20.0.0/16");
        // Degenerate lengths.
        assert!(Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 0).contains(Ipv4Addr::new(9, 9, 9, 9)));
        let host = Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 32);
        assert!(host.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!host.contains(Ipv4Addr::new(1, 2, 3, 5)));
        // Over-long lengths clamp to 32.
        assert_eq!(Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 40).len(), 32);
    }

    #[test]
    fn prefix_truncate_and_covers() {
        let p24: Prefix = Prefix24::containing(Ipv4Addr::new(93, 184, 216, 34)).into();
        assert_eq!(p24.len(), 24);
        assert_eq!(p24.network(), Ipv4Addr::new(93, 184, 216, 0));
        let p16 = p24.truncate(16);
        assert_eq!(
            (p16.network(), p16.len()),
            (Ipv4Addr::new(93, 184, 0, 0), 16)
        );
        assert!(p16.covers(&p24));
        assert!(!p24.covers(&p16));
        assert!(p24.covers(&p24));
        // Truncating to a longer length is the identity.
        assert_eq!(p24.truncate(32), p24);
        let other = Prefix::new(Ipv4Addr::new(93, 185, 0, 0), 16);
        assert!(!other.covers(&p24));
    }

    #[test]
    fn prefix_keys_separate_lengths() {
        let a = Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 16);
        let b = Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 24);
        assert_ne!(a.key(), b.key());
        assert!(a < b, "shorter prefix of the same network sorts first");
    }
}
