//! The latency model: from a route path to a measured RTT.
//!
//! A measured latency decomposes into:
//!
//! * **propagation** — path length × fiber stretch ÷ speed of light in
//!   fiber, both directions;
//! * **per-hop processing** — a small charge per router, with router count
//!   derived from path length;
//! * **last mile** — access-technology dependent (fiber / cable / DSL /
//!   mobile);
//! * **stable peering congestion** — a per-`(AS, ingress)` penalty that a
//!   fixed fraction of adjacencies carry persistently; this is what makes
//!   some prefixes *consistently* poor (Figures 5–6) rather than just
//!   unlucky;
//! * **per-measurement noise** — lognormal jitter plus occasional transient
//!   spikes, matching the paper's observation that "higher percentiles of
//!   latency distributions are very noisy" (§6);
//! * **server time** — the HTTP fetch the beacon times includes it.
//!
//! The deterministic part ([`LatencyModel::base_rtt_ms`]) is split from the
//! stochastic part ([`LatencyModel::sample_extra_ms`]) so routing decisions
//! can be analyzed noise-free and measurements remain reproducible given an
//! explicit RNG.

use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};

use anycast_geo::LogNormal;

use crate::config::NetConfig;
use crate::ids::{AsId, BorderId};
use crate::path::RoutePath;
use crate::sim::Day;

/// Client access technology, setting the last-mile RTT floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessTech {
    /// FTTH: ~3 ms last-mile RTT.
    Fiber,
    /// DOCSIS cable: ~8 ms.
    Cable,
    /// DSL: ~16 ms.
    Dsl,
    /// Cellular: ~42 ms.
    Mobile,
}

impl AccessTech {
    /// All technologies with their population mix (mid-2010s broadband
    /// shares, coarse).
    pub const MIX: [(AccessTech, f64); 4] = [
        (AccessTech::Fiber, 0.22),
        (AccessTech::Cable, 0.36),
        (AccessTech::Dsl, 0.32),
        (AccessTech::Mobile, 0.10),
    ];

    /// Median last-mile RTT contribution in milliseconds.
    pub fn last_mile_ms(&self) -> f64 {
        match self {
            AccessTech::Fiber => 3.0,
            AccessTech::Cable => 8.0,
            AccessTech::Dsl => 16.0,
            AccessTech::Mobile => 42.0,
        }
    }

    /// Samples a technology from the population mix using a uniform draw
    /// `u ∈ [0,1)`.
    pub fn sample(u: f64) -> AccessTech {
        let mut acc = 0.0;
        for (tech, w) in AccessTech::MIX {
            acc += w;
            if u < acc {
                return tech;
            }
        }
        AccessTech::Mobile
    }
}

/// The workspace latency model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    cfg: NetConfig,
    congestion_seed: u64,
}

impl LatencyModel {
    /// Builds the model. `seed` fixes the stable-congestion assignment of
    /// `(AS, ingress)` adjacencies.
    pub fn new(cfg: NetConfig, seed: u64) -> Self {
        LatencyModel {
            cfg,
            congestion_seed: seed ^ 0x636f_6e67_6573_7400,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Deterministic RTT for a path on a given day: propagation + hops +
    /// last mile + congestion (chronic and episodic). Excludes jitter,
    /// spikes and server time.
    /// `extra_km` charges route-specific detours (the transit-leg stretch
    /// computed by the route builder) on top of the path's geodesic length.
    pub fn base_rtt_ms(
        &self,
        path: &RoutePath,
        access: AccessTech,
        as_id: AsId,
        ingress: BorderId,
        day: Day,
        extra_km: f64,
    ) -> f64 {
        let km = (path.total_km() + extra_km.max(0.0)) * self.cfg.fiber_path_stretch;
        let propagation = 2.0 * km / self.cfg.fiber_km_per_ms;
        // Router count grows with distance: every ~400 km of fiber crosses
        // another IP hop, on top of a handful of fixed hops at the edges.
        let routers = 4.0 + km / 400.0;
        let processing = routers * self.cfg.per_hop_ms;
        let last_mile = access.last_mile_ms() * self.cfg.last_mile_scale;
        propagation + processing + last_mile + self.congestion_ms(as_id, ingress, day)
    }

    /// The congestion penalty of the `(AS, ingress)` adjacency on `day`.
    ///
    /// Two deterministic components model the two persistence regimes of
    /// Figure 6:
    ///
    /// * **chronic** — a small fraction of adjacencies carry the penalty
    ///   every day (the 5+-consecutive-day tail);
    /// * **episodic** — healthy adjacencies suffer independent per-day
    ///   episodes, so most poor paths last exactly one day.
    pub fn congestion_ms(&self, as_id: AsId, ingress: BorderId, day: Day) -> f64 {
        let key = (u64::from(as_id.0) << 24) | u64::from(ingress.0);
        if self.cfg.p_chronic_congestion > 0.0 {
            let mut rng =
                rand::rngs::SmallRng::seed_from_u64(mix64(self.congestion_seed, key, 0xc401));
            if rng.gen::<f64>() < self.cfg.p_chronic_congestion {
                return LogNormal::new(self.cfg.congestion_ms_median, self.cfg.congestion_ms_sigma)
                    .sample(&mut rng);
            }
        }
        if self.cfg.p_episodic_congestion > 0.0 {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(mix64(
                self.congestion_seed,
                key ^ (u64::from(day.0) << 40),
                0xe915,
            ));
            if rng.gen::<f64>() < self.cfg.p_episodic_congestion {
                return LogNormal::new(self.cfg.congestion_ms_median, self.cfg.congestion_ms_sigma)
                    .sample(&mut rng);
            }
        }
        0.0
    }

    /// Samples the per-measurement additive components: jitter, transient
    /// spike, and server time.
    pub fn sample_extra_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let jitter =
            LogNormal::new(self.cfg.jitter_ms_median, self.cfg.jitter_ms_sigma).sample(rng);
        let spike = if rng.gen::<f64>() < self.cfg.spike_prob {
            rng.gen_range(self.cfg.spike_min_ms..=self.cfg.spike_max_ms)
        } else {
            0.0
        };
        let server =
            LogNormal::new(self.cfg.server_ms_median, self.cfg.server_ms_sigma).sample(rng);
        jitter + spike + server
    }
}

impl LatencyModel {
    /// The stable path penalty of routing towards `announcement`'s unicast
    /// /24 from `as_id`'s network: zero for most pairs, a lognormal penalty
    /// for the configured fraction (non-engineered single-prefix paths).
    pub fn unicast_path_penalty_ms(&self, as_id: AsId, announcement: BorderId) -> f64 {
        if self.cfg.p_unicast_path_penalty <= 0.0 {
            return 0.0;
        }
        let key = 0x5550_0000_0000_0000 | (u64::from(as_id.0) << 24) | u64::from(announcement.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(mix64(self.congestion_seed, key, 0x751c));
        if rng.gen::<f64>() < self.cfg.p_unicast_path_penalty {
            LogNormal::new(
                self.cfg.unicast_penalty_ms_median,
                self.cfg.unicast_penalty_ms_sigma,
            )
            .sample(&mut rng)
        } else {
            0.0
        }
    }
}

/// SplitMix64-style (seed, key, salt) mixer.
fn mix64(seed: u64, key: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{Hop, HopKind};
    use anycast_geo::{GeoPoint, MetroId};
    use rand::rngs::SmallRng;

    fn straight_path(km_target: f64) -> RoutePath {
        // Build an equatorial two-hop path of roughly the requested length.
        let start = GeoPoint::new(0.0, 0.0);
        let end = start.destination(90.0, km_target);
        RoutePath::new(vec![
            Hop {
                kind: HopKind::ClientAccess,
                metro: MetroId(0),
                location: start,
            },
            Hop {
                kind: HopKind::FrontEnd,
                metro: MetroId(1),
                location: end,
            },
        ])
    }

    fn model() -> LatencyModel {
        LatencyModel::new(NetConfig::default(), 7)
    }

    #[test]
    fn rtt_scales_with_distance() {
        let m = model();
        let near = m.base_rtt_ms(
            &straight_path(100.0),
            AccessTech::Fiber,
            AsId(50),
            BorderId(0),
            Day(0),
            0.0,
        );
        let far = m.base_rtt_ms(
            &straight_path(5000.0),
            AccessTech::Fiber,
            AsId(50),
            BorderId(0),
            Day(0),
            0.0,
        );
        assert!(far > near + 40.0, "near {near} far {far}");
        // 5000 km * 1.25 stretch / 200 km/ms * 2 = 62.5 ms of propagation.
        assert!(far > 62.0 && far < 120.0, "far {far}");
    }

    #[test]
    fn last_mile_orders_by_technology() {
        let m = model();
        let path = straight_path(500.0);
        let fiber = m.base_rtt_ms(&path, AccessTech::Fiber, AsId(50), BorderId(0), Day(0), 0.0);
        let cable = m.base_rtt_ms(&path, AccessTech::Cable, AsId(50), BorderId(0), Day(0), 0.0);
        let dsl = m.base_rtt_ms(&path, AccessTech::Dsl, AsId(50), BorderId(0), Day(0), 0.0);
        let mobile = m.base_rtt_ms(
            &path,
            AccessTech::Mobile,
            AsId(50),
            BorderId(0),
            Day(0),
            0.0,
        );
        assert!(fiber < cable && cable < dsl && dsl < mobile);
        assert!((mobile - fiber - 39.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_fraction_matches_config() {
        let cfg = NetConfig::default();
        let m = model();
        let n = 20_000u32;
        let congested_today = (0..n)
            .filter(|&i| m.congestion_ms(AsId(i % 400), BorderId((i / 400) as u16), Day(3)) > 0.0)
            .count();
        let frac = congested_today as f64 / f64::from(n);
        let expected =
            cfg.p_chronic_congestion + (1.0 - cfg.p_chronic_congestion) * cfg.p_episodic_congestion;
        assert!(
            (frac - expected).abs() < 0.01,
            "congested fraction {frac} vs expected {expected}"
        );
    }

    #[test]
    fn chronic_congestion_is_stable_across_days() {
        // A pair congested on *every* probed day must carry the identical
        // chronic penalty, and such pairs must exist.
        let m = model();
        let mut found_chronic = false;
        for i in 0..2000u32 {
            let a = AsId(i % 400);
            let b = BorderId((i / 400) as u16);
            let per_day: Vec<f64> = (0..20).map(|d| m.congestion_ms(a, b, Day(d))).collect();
            if per_day.iter().all(|&x| x > 0.0) {
                found_chronic = true;
                assert!(
                    per_day.windows(2).all(|w| w[0] == w[1]),
                    "chronic penalty varies"
                );
            }
        }
        assert!(found_chronic, "no chronic adjacency found");
    }

    #[test]
    fn episodic_congestion_is_mostly_single_day() {
        // Among non-chronic congested (pair, day) observations, runs of
        // consecutive congested days should be rare.
        let m = model();
        let mut episode_days = 0u32;
        let mut followed_by_another = 0u32;
        for i in 0..4000u32 {
            let a = AsId(i % 400);
            let b = BorderId((i / 400) as u16);
            if (0..28).all(|d| m.congestion_ms(a, b, Day(d)) > 0.0) {
                continue; // chronic
            }
            for d in 0..27 {
                if m.congestion_ms(a, b, Day(d)) > 0.0 {
                    episode_days += 1;
                    if m.congestion_ms(a, b, Day(d + 1)) > 0.0 {
                        followed_by_another += 1;
                    }
                }
            }
        }
        assert!(
            episode_days > 100,
            "too few episodes to judge ({episode_days})"
        );
        let continuation = f64::from(followed_by_another) / f64::from(episode_days);
        assert!(
            continuation < 0.15,
            "episodes too persistent: {continuation}"
        );
    }

    #[test]
    fn congestion_disabled_in_idealized_config() {
        let m = LatencyModel::new(NetConfig::idealized(), 7);
        for i in 0..500u16 {
            for d in 0..5 {
                assert_eq!(
                    m.congestion_ms(AsId(u32::from(i)), BorderId(i % 50), Day(d)),
                    0.0
                );
            }
        }
    }

    #[test]
    fn noise_is_positive_and_noisy_in_the_tail() {
        let m = model();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut xs: Vec<f64> = (0..20_000).map(|_| m.sample_extra_ms(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.total_cmp(b));
        let p50 = xs[xs.len() / 2];
        let p99 = xs[xs.len() * 99 / 100];
        // The tail must be much fatter than the median — the §6 noise
        // argument for preferring low percentiles as prediction metrics.
        assert!(p99 > 3.0 * p50, "p50 {p50} p99 {p99}");
    }

    #[test]
    fn access_mix_sums_to_one_and_samples_cover_all() {
        let total: f64 = AccessTech::MIX.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(AccessTech::sample(i as f64 / 100.0));
        }
        assert_eq!(seen.len(), 4);
        // Boundary draw falls back to Mobile rather than panicking.
        assert_eq!(AccessTech::sample(1.0), AccessTech::Mobile);
    }

    #[test]
    fn empty_path_still_has_floor_latency() {
        let m = model();
        let rtt = m.base_rtt_ms(
            &RoutePath::default(),
            AccessTech::Dsl,
            AsId(50),
            BorderId(0),
            Day(0),
            0.0,
        );
        // Fixed hops + last mile, no propagation.
        assert!(rtt > 15.0 && rtt < 30.0, "floor {rtt}");
    }
}
