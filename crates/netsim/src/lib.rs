//! Internet substrate for the anycast-CDN reproduction.
//!
//! The paper measures a production CDN over the real Internet; this crate is
//! the synthetic stand-in. It models exactly the routing mechanisms the paper
//! identifies as the root causes of poor anycast performance (§5):
//!
//! 1. **BGP is latency-blind.** Route selection uses local preference
//!    (direct peer over transit), AS-path length, and an arbitrary
//!    deterministic tie-break — never latency ([`bgp`]).
//! 2. **Hot-potato intradomain routing.** An ISP hands traffic to the CDN at
//!    the egress its *own* policy prefers; some ISPs only peer at a remote
//!    location, reproducing the paper's Denver→Phoenix and Moscow→Stockholm
//!    case studies ([`bgp::EgressPolicy`]).
//! 3. **The CDN cannot signal its internal topology.** Once traffic ingresses
//!    at a border router, the CDN's IGP sends it to the front-end with the
//!    lowest *internal* cost from that ingress, which is not necessarily the
//!    front-end closest to the client ([`igp`]).
//! 4. **Routes churn.** Tie-breaks and internal weights flip day to day, with
//!    reduced operator activity on weekends (Figure 7) ([`churn`]).
//! 5. **Front-ends fail.** Sites crash or are drained for maintenance; the
//!    anycast announcement is withdrawn and BGP re-resolves the catchment,
//!    while unicast routes to the dead site simply fail ([`outage`]).
//!
//! The crate is fully deterministic: topology generation, routing, churn and
//! latency noise all derive from explicit seeds. The same seed reproduces the
//! same Internet.
//!
//! # Layering
//!
//! ```text
//! anycast-core (CDN service: addressing, redirection, prediction)
//!        │ uses
//! anycast-netsim (this crate: who routes where, at what latency)
//!        │ uses
//! anycast-geo (where everything is)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addressing;
pub mod bgp;
pub mod churn;
pub mod config;
pub mod ids;
pub mod igp;
pub mod internet;
pub mod latency;
pub mod outage;
pub mod path;
pub mod prefix;
pub mod sim;
pub mod snapshot;
pub mod stream;
pub mod topology;
pub mod trace;
pub mod worldgen;

pub use addressing::CdnAddressing;
pub use bgp::EgressPolicy;
pub use config::NetConfig;
pub use ids::{AsId, BorderId, SiteId};
pub use internet::{ClientAttachment, Internet, RouteDecision};
pub use latency::AccessTech;
pub use outage::{OutageKind, OutageModel, OutageWindow};
pub use path::{Hop, HopKind, RoutePath};
pub use prefix::{Prefix, Prefix24, PrefixAllocator};
pub use sim::{Day, Timeline};
pub use snapshot::{ClientRoutes, RouteSnapshot};
pub use stream::stream_rng;
pub use topology::{CdnNetwork, EyeballAs, Topology, TransitAs};
pub use trace::{Probe, ProbeFleet, Traceroute};
pub use worldgen::{AsClass, CatchmentTable, PolicyGraph, PolicyWorld, WorldGenConfig};
