//! Topology generation: the CDN network, transit providers, and eyeball ASes.
//!
//! The generated world mirrors the deployment the paper studies:
//!
//! * a single **CDN AS** ("all within the same Microsoft-operated autonomous
//!   system", §3) with a few dozen front-end sites placed in major metros,
//!   plus peering-only border routers — locations where traffic can ingress
//!   even though no front-end is present;
//! * a handful of **transit providers** with global backbones, peering with
//!   the CDN at most of its border routers;
//! * a population of **eyeball ASes** (access ISPs) with regional footprints.
//!   Most peer directly with the CDN at several locations; a configurable
//!   minority peer only at one — possibly distant — location, or pin their
//!   egress by policy, reproducing the paper's §5 pathologies.
//!
//! Generation is a pure function of `(NetConfig, seed)`.

use std::collections::HashMap;

use anycast_geo::{Metro, MetroId, Region, WorldAtlas};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::bgp::EgressPolicy;
use crate::config::NetConfig;
use crate::ids::{AsId, BorderId, SiteId};

/// A CDN front-end site: terminates client TCP connections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontEndSite {
    /// Metro hosting the site.
    pub metro: MetroId,
    /// The border router colocated with this site (every site metro hosts a
    /// border router; the reverse is not true).
    pub colocated_border: BorderId,
}

/// A CDN border router: a peering location where the anycast prefix is
/// announced and traffic ingresses the CDN's backbone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BorderRouter {
    /// Metro hosting the border router.
    pub metro: MetroId,
    /// The front-end site colocated at this metro, if any.
    pub colocated_site: Option<SiteId>,
}

/// The CDN's network: sites, border routers, and internal (IGP) costs.
#[derive(Debug, Clone)]
pub struct CdnNetwork {
    /// Front-end sites, indexed by [`SiteId`].
    pub sites: Vec<FrontEndSite>,
    /// Border routers, indexed by [`BorderId`].
    pub borders: Vec<BorderRouter>,
    /// IGP cost multiplier per `(border, site)` pair, ≥ 1. A multiplier
    /// above 1 models internal links that are longer or more expensive than
    /// geography suggests — the §5 case where "router A has a longer
    /// intradomain route to the nearest front-end".
    pub igp_multiplier: Vec<Vec<f64>>,
}

impl CdnNetwork {
    /// Location of a site.
    pub fn site_metro(&self, site: SiteId) -> MetroId {
        self.sites[site.0 as usize].metro
    }

    /// Location of a border router.
    pub fn border_metro(&self, border: BorderId) -> MetroId {
        self.borders[border.0 as usize].metro
    }

    /// All site ids.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> {
        (0..self.sites.len() as u16).map(SiteId)
    }

    /// All border ids.
    pub fn border_ids(&self) -> impl Iterator<Item = BorderId> {
        (0..self.borders.len() as u16).map(BorderId)
    }

    /// The border router at which the CDN announces the *unicast* prefix of
    /// `site` — per §3.1, "only the routers at the closest peering point to
    /// that front-end announce the prefix". Sites are colocated with a
    /// border router, so this is that router.
    pub fn unicast_announcement_border(&self, site: SiteId) -> BorderId {
        self.sites[site.0 as usize].colocated_border
    }
}

/// A transit (tier-1-like) provider: global backbone, peers with the CDN at
/// most border routers.
#[derive(Debug, Clone)]
pub struct TransitAs {
    /// This AS's id.
    pub id: AsId,
    /// Backbone PoP metros.
    pub pops: Vec<MetroId>,
    /// CDN border routers this transit peers at.
    pub peering_borders: Vec<BorderId>,
}

/// An eyeball (access) AS: hosts clients, reaches the CDN via direct peering
/// and/or transit.
#[derive(Debug, Clone)]
pub struct EyeballAs {
    /// This AS's id.
    pub id: AsId,
    /// The metro where the ISP is headquartered; its footprint grows
    /// outwards from here.
    pub home_metro: MetroId,
    /// Country of the home metro (footprints are national).
    pub country: &'static str,
    /// Metros where this AS has client attachment points.
    pub pops: Vec<MetroId>,
    /// CDN border routers this AS peers with directly. Empty means
    /// transit-only.
    pub peering_borders: Vec<BorderId>,
    /// Transit providers (always at least one, even for peered ASes, as
    /// backup and for prefixes not learned over peering).
    pub transit: Vec<AsId>,
    /// How the AS picks among multiple egress options.
    pub egress_policy: EgressPolicy,
}

impl EyeballAs {
    /// Whether this AS reaches the CDN only through transit.
    pub fn is_transit_only(&self) -> bool {
        self.peering_borders.is_empty()
    }
}

/// The generated world: atlas, CDN, transits, eyeballs.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The world atlas all locations refer to.
    pub atlas: WorldAtlas,
    /// The CDN network.
    pub cdn: CdnNetwork,
    /// Transit providers (ids `0..n_transit`).
    pub transits: Vec<TransitAs>,
    /// Eyeball ASes (ids `n_transit..n_transit + n_eyeball`).
    pub eyeballs: Vec<EyeballAs>,
    eyeballs_by_metro: HashMap<MetroId, Vec<AsId>>,
}

impl Topology {
    /// Generates a world from configuration and seed. The same inputs always
    /// produce the same world.
    pub fn generate(cfg: &NetConfig, seed: u64) -> Topology {
        if cfg.worldgen.is_some() {
            // Policy-routed worlds come from the AS-graph generator; the
            // bridged topology is identical to the one Internet::new uses.
            return crate::worldgen::build(cfg, seed).0;
        }
        let atlas = WorldAtlas::new();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x7069_6e67_746f_706f);

        let cdn = generate_cdn(&atlas, cfg, &mut rng);
        let transits = generate_transits(&atlas, &cdn, cfg, &mut rng);
        let mut eyeballs = generate_eyeballs(&atlas, &cdn, &transits, cfg, &mut rng);
        ensure_metro_coverage(&atlas, &mut eyeballs);

        let mut eyeballs_by_metro: HashMap<MetroId, Vec<AsId>> = HashMap::new();
        for e in &eyeballs {
            for &m in &e.pops {
                eyeballs_by_metro.entry(m).or_default().push(e.id);
            }
        }

        Topology {
            atlas,
            cdn,
            transits,
            eyeballs,
            eyeballs_by_metro,
        }
    }

    /// Assembles a topology from pre-generated parts (the worldgen bridge),
    /// rebuilding the metro index.
    pub(crate) fn from_parts(
        atlas: WorldAtlas,
        cdn: CdnNetwork,
        transits: Vec<TransitAs>,
        eyeballs: Vec<EyeballAs>,
    ) -> Topology {
        let mut eyeballs_by_metro: HashMap<MetroId, Vec<AsId>> = HashMap::new();
        for e in &eyeballs {
            for &m in &e.pops {
                eyeballs_by_metro.entry(m).or_default().push(e.id);
            }
        }
        Topology {
            atlas,
            cdn,
            transits,
            eyeballs,
            eyeballs_by_metro,
        }
    }

    /// The eyeball AS with the given id. Panics on a transit or unknown id
    /// (a programming error).
    pub fn eyeball(&self, id: AsId) -> &EyeballAs {
        let idx = (id.0 as usize)
            .checked_sub(self.transits.len())
            .expect("AsId is a transit, not an eyeball");
        &self.eyeballs[idx]
    }

    /// The transit AS with the given id. Panics on an eyeball or unknown id.
    pub fn transit(&self, id: AsId) -> &TransitAs {
        &self.transits[id.0 as usize]
    }

    /// Whether the id denotes a transit provider.
    pub fn is_transit(&self, id: AsId) -> bool {
        (id.0 as usize) < self.transits.len()
    }

    /// Eyeball ASes with an attachment point at `metro` (possibly empty for
    /// metros only covered via the coverage pass of a different metro).
    pub fn eyeballs_at_metro(&self, metro: MetroId) -> &[AsId] {
        self.eyeballs_by_metro
            .get(&metro)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The metro of a front-end site (convenience).
    pub fn site_metro(&self, site: SiteId) -> &'static Metro {
        self.atlas.metro(self.cdn.site_metro(site))
    }
}

/// Regional allocation weights for front-end sites, mirroring the paper's
/// deployment: dense in North America and Europe (§5: "the CDN front-end
/// density in North America and Europe"), present but sparser elsewhere.
const SITE_REGION_WEIGHTS: [(Region, f64); 6] = [
    (Region::NorthAmerica, 0.34),
    (Region::Europe, 0.30),
    (Region::Asia, 0.20),
    (Region::SouthAmerica, 0.06),
    (Region::Oceania, 0.05),
    (Region::Africa, 0.05),
];

pub(crate) fn generate_cdn(atlas: &WorldAtlas, cfg: &NetConfig, rng: &mut impl Rng) -> CdnNetwork {
    // Allocate site counts per region by weight (largest remainder).
    let mut counts: Vec<(Region, usize)> = SITE_REGION_WEIGHTS
        .iter()
        .map(|&(r, w)| (r, (w * cfg.n_sites as f64).floor() as usize))
        .collect();
    let mut assigned: usize = counts.iter().map(|&(_, c)| c).sum();
    let n_regions = counts.len();
    let mut i = 0;
    while assigned < cfg.n_sites {
        counts[i % n_regions].1 += 1;
        assigned += 1;
        i += 1;
    }

    let mut site_metros: Vec<MetroId> = Vec::with_capacity(cfg.n_sites);
    for (region, count) in counts {
        for id in atlas.top_by_population(count, Some(region)) {
            if !site_metros.contains(&id) {
                site_metros.push(id);
            }
        }
    }
    site_metros.truncate(cfg.n_sites);

    // Peering-only borders: the next most populous metros not already used.
    let mut extra: Vec<MetroId> = Vec::new();
    for id in atlas.top_by_population(atlas.len(), None) {
        if extra.len() >= cfg.n_extra_borders {
            break;
        }
        if !site_metros.contains(&id) {
            extra.push(id);
        }
    }

    let mut sites = Vec::with_capacity(site_metros.len());
    let mut borders = Vec::with_capacity(site_metros.len() + extra.len());
    for (i, &m) in site_metros.iter().enumerate() {
        let border = BorderId(borders.len() as u16);
        borders.push(BorderRouter {
            metro: m,
            colocated_site: Some(SiteId(i as u16)),
        });
        sites.push(FrontEndSite {
            metro: m,
            colocated_border: border,
        });
    }
    for &m in &extra {
        borders.push(BorderRouter {
            metro: m,
            colocated_site: None,
        });
    }

    // IGP multipliers: mostly 1.0; for a fraction of borders, inflate the
    // cost towards their geographically nearest site so the IGP prefers the
    // second-nearest — §5 case study 1.
    let mut igp = vec![vec![1.0; sites.len()]; borders.len()];
    for (b_idx, border) in borders.iter().enumerate() {
        // Colocated site always stays cheap: traffic ingressing at a
        // front-end metro is served there.
        if border.colocated_site.is_some() {
            continue;
        }
        if rng.gen::<f64>() < cfg.p_igp_inflated && sites.len() > 1 {
            let bloc = atlas.metro(border.metro).location();
            let nearest = sites
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    atlas
                        .metro(a.metro)
                        .location()
                        .haversine_km(&bloc)
                        .total_cmp(&atlas.metro(b.metro).location().haversine_km(&bloc))
                })
                .map(|(i, _)| i)
                .expect("at least one site");
            igp[b_idx][nearest] = cfg.igp_inflation_factor;
        }
    }

    CdnNetwork {
        sites,
        borders,
        igp_multiplier: igp,
    }
}

fn generate_transits(
    atlas: &WorldAtlas,
    cdn: &CdnNetwork,
    cfg: &NetConfig,
    rng: &mut impl Rng,
) -> Vec<TransitAs> {
    let global_pops = atlas.top_by_population(cfg.transit_pops, None);
    let all_borders: Vec<BorderId> = cdn.border_ids().collect();
    (0..cfg.n_transit)
        .map(|i| {
            // Each transit drops a small random subset of PoPs and peerings
            // so providers are distinguishable.
            let mut pops = global_pops.clone();
            pops.shuffle(rng);
            let keep_pops = (pops.len() * 9) / 10;
            pops.truncate(keep_pops.max(1));
            let mut peering = all_borders.clone();
            peering.shuffle(rng);
            let keep_peer = (peering.len() * 9) / 10;
            peering.truncate(keep_peer.max(1));
            peering.sort();
            pops.sort();
            TransitAs {
                id: AsId(i as u32),
                pops,
                peering_borders: peering,
            }
        })
        .collect()
}

fn generate_eyeballs(
    atlas: &WorldAtlas,
    cdn: &CdnNetwork,
    transits: &[TransitAs],
    cfg: &NetConfig,
    rng: &mut impl Rng,
) -> Vec<EyeballAs> {
    let mut eyeballs = Vec::with_capacity(cfg.n_eyeball);
    for i in 0..cfg.n_eyeball {
        let id = AsId((transits.len() + i) as u32);
        let home = atlas.sample_by_population(rng.gen());
        let home_metro = atlas.metro(home);
        let home_loc = home_metro.location();

        // Footprint: same-country metros by distance from home, up to a
        // random size. Small-country ISPs may have only their home metro.
        let mut candidates: Vec<(MetroId, f64)> = atlas
            .iter()
            .filter(|(_, m)| m.country == home_metro.country)
            .map(|(mid, m)| (mid, m.location().haversine_km(&home_loc)))
            .collect();
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
        let size = rng
            .gen_range(1..=cfg.eyeball_max_pops)
            .min(candidates.len());
        let pops: Vec<MetroId> = candidates[..size].iter().map(|&(m, _)| m).collect();

        // Direct peering: borders "reachable" from the footprint.
        let peering_borders = if rng.gen::<f64>() < cfg.p_direct_peering {
            choose_peering(atlas, cdn, &pops, cfg, rng)
        } else {
            Vec::new()
        };

        // Egress policy: pathological fixed egress for a fraction of
        // multi-homed ASes.
        let egress_policy =
            if peering_borders.len() > 1 && rng.gen::<f64>() < cfg.p_fixed_regional_egress {
                // Pin to the egress *farthest* from home: the operator optimizes
                // for its own transit costs, not for client latency.
                let far = *peering_borders
                    .iter()
                    .max_by(|a, b| {
                        atlas
                            .metro(cdn.border_metro(**a))
                            .location()
                            .haversine_km(&home_loc)
                            .total_cmp(
                                &atlas
                                    .metro(cdn.border_metro(**b))
                                    .location()
                                    .haversine_km(&home_loc),
                            )
                    })
                    .expect("non-empty peering");
                EgressPolicy::FixedEgress(far)
            } else {
                EgressPolicy::HotPotato
            };

        // 1–2 transit providers.
        let mut transit_ids: Vec<AsId> = transits.iter().map(|t| t.id).collect();
        transit_ids.shuffle(rng);
        transit_ids.truncate(rng.gen_range(1..=2));

        eyeballs.push(EyeballAs {
            id,
            home_metro: home,
            country: home_metro.country,
            pops,
            peering_borders,
            transit: transit_ids,
            egress_policy,
        });
    }
    eyeballs
}

/// Picks the CDN borders an eyeball AS peers at.
fn choose_peering(
    atlas: &WorldAtlas,
    cdn: &CdnNetwork,
    pops: &[MetroId],
    cfg: &NetConfig,
    rng: &mut impl Rng,
) -> Vec<BorderId> {
    // Candidate borders ranked by distance to the nearest footprint metro.
    let mut ranked: Vec<(BorderId, f64)> = cdn
        .border_ids()
        .map(|b| {
            let bloc = atlas.metro(cdn.border_metro(b)).location();
            let d = pops
                .iter()
                .map(|&m| atlas.metro(m).location().haversine_km(&bloc))
                .fold(f64::INFINITY, f64::min);
            (b, d)
        })
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));

    if rng.gen::<f64>() < cfg.p_remote_peering_only {
        // The pathological case: a single peering session at a location in
        // the middle of the ranked list — not adjacent, not antipodal.
        // (Moscow ISPs peering in Stockholm, not in Moscow.)
        let lo = (ranked.len() / 8).max(1).min(ranked.len() - 1);
        let hi = (ranked.len() / 3).max(lo + 1).min(ranked.len());
        let pick = rng.gen_range(lo..hi);
        vec![ranked[pick].0]
    } else {
        // Normal case: the AS peers at the exchange nearest each of its
        // PoPs (big eyeballs interconnect in every major city they serve).
        // This footprint-tracking peering is what keeps hot-potato egress
        // *local* to the client, so anycast "performs well despite the lack
        // of centralized control" for most clients.
        let mut out: Vec<BorderId> = pops
            .iter()
            .map(|&pop| {
                let loc = atlas.metro(pop).location();
                cdn.border_ids()
                    .min_by(|a, b| {
                        atlas
                            .metro(cdn.border_metro(*a))
                            .location()
                            .haversine_km(&loc)
                            .total_cmp(
                                &atlas
                                    .metro(cdn.border_metro(*b))
                                    .location()
                                    .haversine_km(&loc),
                            )
                            .then(a.cmp(b))
                    })
                    .expect("at least one border")
            })
            .collect();
        out.sort();
        out.dedup();
        // Plus the overall-nearest exchanges so even single-PoP ASes are
        // multi-homed towards the CDN.
        for &(b, _) in ranked.iter().take(2) {
            if !out.contains(&b) {
                out.push(b);
            }
        }
        out.sort();
        out
    }
}

/// Guarantees every metro hosts at least one eyeball AS, so the workload
/// generator can place clients anywhere people live. Uncovered metros are
/// appended to the footprint of the eyeball AS with the nearest home metro
/// in the same region (any region as fallback).
fn ensure_metro_coverage(atlas: &WorldAtlas, eyeballs: &mut [EyeballAs]) {
    if eyeballs.is_empty() {
        return;
    }
    let covered: std::collections::HashSet<MetroId> = eyeballs
        .iter()
        .flat_map(|e| e.pops.iter().copied())
        .collect();
    for (mid, metro) in atlas.iter() {
        if covered.contains(&mid) {
            continue;
        }
        let loc = metro.location();
        let best = eyeballs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = region_penalty(atlas, a.home_metro, metro)
                    + atlas.metro(a.home_metro).location().haversine_km(&loc);
                let db = region_penalty(atlas, b.home_metro, metro)
                    + atlas.metro(b.home_metro).location().haversine_km(&loc);
                da.total_cmp(&db)
            })
            .map(|(i, _)| i)
            .expect("non-empty eyeballs");
        eyeballs[best].pops.push(mid);
    }
}

fn region_penalty(atlas: &WorldAtlas, home: MetroId, target: &Metro) -> f64 {
    if atlas.metro(home).region == target.region {
        0.0
    } else {
        // Strongly prefer same-region ISPs when covering orphan metros.
        20_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Topology {
        Topology::generate(&NetConfig::small(), 1)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::generate(&NetConfig::small(), 7);
        let b = Topology::generate(&NetConfig::small(), 7);
        assert_eq!(a.cdn.sites.len(), b.cdn.sites.len());
        for (x, y) in a.cdn.sites.iter().zip(&b.cdn.sites) {
            assert_eq!(x.metro, y.metro);
        }
        for (x, y) in a.eyeballs.iter().zip(&b.eyeballs) {
            assert_eq!(x.home_metro, y.home_metro);
            assert_eq!(x.pops, y.pops);
            assert_eq!(x.peering_borders, y.peering_borders);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Topology::generate(&NetConfig::small(), 1);
        let b = Topology::generate(&NetConfig::small(), 2);
        let same = a
            .eyeballs
            .iter()
            .zip(&b.eyeballs)
            .filter(|(x, y)| x.home_metro == y.home_metro)
            .count();
        assert!(same < a.eyeballs.len());
    }

    #[test]
    fn site_count_matches_config() {
        let cfg = NetConfig::small();
        let t = Topology::generate(&cfg, 3);
        assert_eq!(t.cdn.sites.len(), cfg.n_sites);
        assert_eq!(t.cdn.borders.len(), cfg.n_sites + cfg.n_extra_borders);
    }

    #[test]
    fn sites_are_colocated_with_borders() {
        let t = world();
        for (i, site) in t.cdn.sites.iter().enumerate() {
            let b = &t.cdn.borders[site.colocated_border.0 as usize];
            assert_eq!(b.metro, site.metro);
            assert_eq!(b.colocated_site, Some(SiteId(i as u16)));
        }
    }

    #[test]
    fn extra_borders_host_no_site() {
        let t = world();
        let extra = t
            .cdn
            .borders
            .iter()
            .filter(|b| b.colocated_site.is_none())
            .count();
        assert_eq!(extra, NetConfig::small().n_extra_borders);
    }

    #[test]
    fn site_metros_are_unique() {
        let t = world();
        let mut metros: Vec<MetroId> = t.cdn.sites.iter().map(|s| s.metro).collect();
        metros.sort();
        metros.dedup();
        assert_eq!(metros.len(), t.cdn.sites.len());
    }

    #[test]
    fn sites_cover_multiple_regions() {
        let t = Topology::generate(&NetConfig::default(), 5);
        let regions: std::collections::HashSet<Region> = t
            .cdn
            .sites
            .iter()
            .map(|s| t.atlas.metro(s.metro).region)
            .collect();
        assert!(regions.len() >= 5, "only {} regions covered", regions.len());
    }

    #[test]
    fn every_metro_has_an_eyeball() {
        let t = world();
        for (mid, m) in t.atlas.iter() {
            assert!(
                !t.eyeballs_at_metro(mid).is_empty(),
                "metro {} uncovered",
                m.name
            );
        }
    }

    #[test]
    fn eyeball_footprints_stay_in_country_before_coverage_pass() {
        // The home-country rule is only violated by the coverage pass, which
        // appends orphan metros; the *home* metro is always in-country.
        let t = world();
        for e in &t.eyeballs {
            assert_eq!(t.atlas.metro(e.home_metro).country, e.country);
            assert!(e.pops.contains(&e.home_metro));
        }
    }

    #[test]
    fn every_eyeball_has_transit() {
        let t = world();
        for e in &t.eyeballs {
            assert!(!e.transit.is_empty());
            for tid in &e.transit {
                assert!(t.is_transit(*tid));
            }
        }
    }

    #[test]
    fn some_but_not_all_eyeballs_peer_directly() {
        let t = Topology::generate(&NetConfig::default(), 11);
        let peered = t.eyeballs.iter().filter(|e| !e.is_transit_only()).count();
        let frac = peered as f64 / t.eyeballs.len() as f64;
        assert!(frac > 0.6 && frac < 0.95, "peered fraction {frac}");
    }

    #[test]
    fn remote_peering_and_fixed_egress_exist() {
        let t = Topology::generate(&NetConfig::default(), 13);
        let single = t
            .eyeballs
            .iter()
            .filter(|e| e.peering_borders.len() == 1)
            .count();
        assert!(single > 0, "no remote-peering-only ASes generated");
        let fixed = t
            .eyeballs
            .iter()
            .filter(|e| matches!(e.egress_policy, EgressPolicy::FixedEgress(_)))
            .count();
        assert!(fixed > 0, "no fixed-egress ASes generated");
    }

    #[test]
    fn idealized_world_has_no_pathologies() {
        let t = Topology::generate(
            &NetConfig {
                n_eyeball: 60,
                ..NetConfig::idealized()
            },
            17,
        );
        for e in &t.eyeballs {
            assert!(matches!(e.egress_policy, EgressPolicy::HotPotato));
        }
        for row in &t.cdn.igp_multiplier {
            assert!(row.iter().all(|&m| m == 1.0));
        }
    }

    #[test]
    fn igp_inflation_only_on_peering_only_borders() {
        let t = Topology::generate(&NetConfig::default(), 19);
        for (b_idx, border) in t.cdn.borders.iter().enumerate() {
            if border.colocated_site.is_some() {
                assert!(
                    t.cdn.igp_multiplier[b_idx].iter().all(|&m| m == 1.0),
                    "site-colocated border {b_idx} must not be inflated"
                );
            }
        }
    }

    #[test]
    fn unicast_announcement_is_colocated() {
        let t = world();
        for s in t.cdn.site_ids() {
            let b = t.cdn.unicast_announcement_border(s);
            assert_eq!(t.cdn.border_metro(b), t.cdn.site_metro(s));
        }
    }

    #[test]
    fn transit_backbones_are_global() {
        let t = Topology::generate(&NetConfig::default(), 23);
        for tr in &t.transits {
            assert!(tr.pops.len() >= 30);
            assert!(tr.peering_borders.len() >= t.cdn.borders.len() / 2);
        }
    }

    #[test]
    fn eyeball_lookup_roundtrip() {
        let t = world();
        for e in &t.eyeballs {
            assert_eq!(t.eyeball(e.id).home_metro, e.home_metro);
            assert!(!t.is_transit(e.id));
        }
        for tr in &t.transits {
            assert!(t.is_transit(tr.id));
        }
    }

    #[test]
    #[should_panic(expected = "transit")]
    fn eyeball_accessor_rejects_transit_id() {
        let t = world();
        let _ = t.eyeball(AsId(0));
    }
}
