//! The `Internet` facade: routing decisions and latency measurements.
//!
//! This is the surface the rest of the workspace programs against. Given a
//! client attachment and a day, it answers the two questions the paper's
//! beacon asks of the real Internet:
//!
//! * *where does anycast take this client today?* ([`Internet::anycast_route`])
//! * *what would the RTT be to a specific unicast front-end?*
//!   ([`Internet::unicast_route`] + [`Internet::sample_rtt`])
//!
//! Routing is deterministic per `(client, day)`; measured RTTs add explicit
//! RNG-driven noise on top of the route's base RTT.

use std::sync::Arc;

use anycast_geo::{GeoPoint, MetroId};
use anycast_obs::counter;
use rand::Rng;

use crate::bgp::{self, EgressDecision};
use crate::churn::ChurnModel;
use crate::config::NetConfig;
use crate::ids::{AsId, BorderId, SiteId};
use crate::igp;
use crate::latency::{AccessTech, LatencyModel};
use crate::outage::OutageModel;
use crate::path::{Hop, HopKind, RoutePath};
use crate::sim::Day;
use crate::topology::Topology;
use crate::worldgen::{self, CatchmentTable, PolicyWorld, CDN_NEXT};

/// A client's network attachment: which AS it sits in, at which metro, at
/// which exact location, over which access technology. The workload crate
/// produces one of these per client /24 prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientAttachment {
    /// The client's (eyeball) AS.
    pub as_id: AsId,
    /// Attachment metro (the ISP PoP serving the client).
    pub metro: MetroId,
    /// The client's actual location (within tens of km of the metro).
    pub location: GeoPoint,
    /// Access technology.
    pub access: AccessTech,
}

/// A resolved route: where traffic ingresses, which front-end serves it, the
/// geographic path, and the noise-free base RTT.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// CDN border router where traffic enters.
    pub ingress: BorderId,
    /// Serving front-end site.
    pub site: SiteId,
    /// Hop-by-hop path (traceroute equivalent).
    pub path: RoutePath,
    /// Deterministic RTT in ms (propagation + hops + last mile + stable
    /// congestion); add [`Internet::sample_rtt`] noise for a measurement.
    pub base_rtt_ms: f64,
    /// Transit provider used, if any.
    pub via_transit: Option<AsId>,
}

/// The simulated Internet: topology + churn + latency under one roof.
///
/// ```
/// use anycast_netsim::{AccessTech, ClientAttachment, Day, Internet, NetConfig};
///
/// let net = Internet::new(NetConfig::small(), 7).unwrap();
/// let eyeball = &net.topology().eyeballs[0];
/// let client = ClientAttachment {
///     as_id: eyeball.id,
///     metro: eyeball.home_metro,
///     location: net.topology().atlas.metro(eyeball.home_metro).location(),
///     access: AccessTech::Cable,
/// };
/// let route = net.anycast_route(&client, Day(0));
/// assert!(route.base_rtt_ms > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Internet {
    topo: Topology,
    churn: ChurnModel,
    outages: OutageModel,
    latency: LatencyModel,
    episode_seed: u64,
    /// Present in worldgen worlds: the policy-routed AS graph and its
    /// catchment engine. Clones share the memoized catchment tables.
    policy: Option<Arc<PolicyWorld>>,
}

impl Internet {
    /// Generates a world from configuration and seed.
    ///
    /// # Errors
    /// Returns a description of the violated constraint if `cfg` is invalid.
    pub fn new(cfg: NetConfig, seed: u64) -> Result<Internet, String> {
        cfg.validate()?;
        if cfg.worldgen.is_some() {
            let (topo, world) = worldgen::build(&cfg, seed);
            let mut net = Self::from_topology(topo, cfg, seed);
            net.policy = Some(Arc::new(world));
            return Ok(net);
        }
        let topo = Topology::generate(&cfg, seed);
        Ok(Self::from_topology(topo, cfg, seed))
    }

    /// Wraps an existing topology (used by tests that build bespoke worlds).
    /// `cfg` must be the configuration the topology was generated with, or
    /// at least one whose latency/churn parameters you intend.
    pub fn from_topology(topo: Topology, cfg: NetConfig, seed: u64) -> Internet {
        let churn = ChurnModel::new(&cfg, seed);
        let outages = OutageModel::new(&cfg, seed);
        let latency = LatencyModel::new(cfg, seed);
        Internet {
            topo,
            churn,
            outages,
            latency,
            episode_seed: seed ^ 0x6970_6765_7069,
            policy: None,
        }
    }

    /// The policy-routing engine, present only in worldgen worlds.
    pub fn policy_world(&self) -> Option<&Arc<PolicyWorld>> {
        self.policy.as_ref()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetConfig {
        self.latency.config()
    }

    /// The churn model (exposed for affinity analyses).
    pub fn churn(&self) -> &ChurnModel {
        &self.churn
    }

    /// The latency model (exposed for ablations).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The failure schedule (exposed for availability analyses).
    pub fn outages(&self) -> &OutageModel {
        &self.outages
    }

    /// The front-end sites that are down at `(day, time_s)`. Empty in every
    /// world that does not configure failure injection.
    pub fn down_sites(&self, day: Day, time_s: f64) -> Vec<SiteId> {
        if !self.outages.enabled() {
            return Vec::new();
        }
        self.topo
            .cdn
            .site_ids()
            .filter(|&s| self.outages.is_down(s, day, time_s))
            .collect()
    }

    /// Front-end site locations as `(site, location)` pairs — the catalog
    /// the beacon's candidate selection indexes.
    pub fn site_locations(&self) -> Vec<(SiteId, GeoPoint)> {
        self.topo
            .cdn
            .site_ids()
            .map(|s| {
                (
                    s,
                    self.topo
                        .atlas
                        .metro(self.topo.cdn.site_metro(s))
                        .location(),
                )
            })
            .collect()
    }

    /// Where anycast routes `client` on `day` (after any route flip
    /// scheduled that day has taken effect).
    ///
    /// In worldgen worlds this is the steady valley-free catchment — one
    /// shared table lookup, identical for every day with the same
    /// announcement set.
    pub fn anycast_route(&self, client: &ClientAttachment, day: Day) -> RouteDecision {
        if let Some(pw) = &self.policy {
            let table = pw.steady_table();
            return self
                .policy_route(pw, &table, client, day, &[])
                .expect("steady policy catchment routes every client AS");
        }
        let rank = self.churn.selection_rank(client.as_id, client.metro, day);
        self.anycast_route_ranked(client, rank, day)
    }

    /// Where anycast routed `client` at the *start* of `day`, before any
    /// flip event scheduled on that day. Differs from
    /// [`Internet::anycast_route`] exactly on flip days; the passive-log
    /// generator uses both to reproduce intra-day front-end switches. In
    /// worldgen worlds there is no per-day tie-break churn — all intra-day
    /// movement comes from windowed route dynamics
    /// ([`Internet::anycast_route_at`]) — so this equals
    /// [`Internet::anycast_route`].
    pub fn anycast_route_at_day_start(&self, client: &ClientAttachment, day: Day) -> RouteDecision {
        if self.policy.is_some() {
            return self.anycast_route(client, day);
        }
        let rank = self
            .churn
            .selection_rank_before(client.as_id, client.metro, day);
        self.anycast_route_ranked(client, rank, day)
    }

    /// Resolves a policy-table route entry into a full [`RouteDecision`]:
    /// the table fixes the ingress border, the IGP picks the front-end, and
    /// multi-hop AS paths are charged the transit detour through the
    /// first-hop provider's home. `None` when the client AS is unrouted
    /// under this table or every candidate front-end is down.
    fn policy_route(
        &self,
        pw: &PolicyWorld,
        table: &CatchmentTable,
        client: &ClientAttachment,
        day: Day,
        down: &[SiteId],
    ) -> Option<RouteDecision> {
        let node = client.as_id.0;
        let entry = table.entry(node)?;
        let ingress = BorderId(entry.ingress);
        let igp_rank = usize::from(self.igp_episode_on(ingress, day));
        let site = if down.is_empty() {
            igp::select_site_ranked(&self.topo, ingress, igp_rank)
        } else {
            igp::select_site_avoiding(&self.topo, ingress, igp_rank, down)?
        };
        let (via_transit, handoff_metro) = if entry.next_hop == CDN_NEXT {
            (None, None)
        } else {
            let v1 = entry.next_hop;
            (Some(AsId(v1)), Some(pw.graph.home_metro[v1 as usize]))
        };
        Some(self.build_decision(
            client,
            EgressDecision {
                ingress,
                via_transit,
                handoff_metro,
            },
            site,
            day,
        ))
    }

    /// All windows on `day` during which the anycast catchment may deviate
    /// from steady state due to *route dynamics* (session/border flaps and
    /// egress shifts). Empty outside worldgen worlds; site outage windows
    /// are tracked separately by [`crate::outage::OutageModel`].
    pub fn anycast_disturbance_windows(&self, day: Day) -> Vec<(f64, f64)> {
        match &self.policy {
            Some(pw) => pw.disturbance_windows(day),
            None => Vec::new(),
        }
    }

    fn anycast_route_ranked(
        &self,
        client: &ClientAttachment,
        rank: usize,
        day: Day,
    ) -> RouteDecision {
        let egress = bgp::select_anycast_ingress(&self.topo, rank, client.as_id, client.metro);
        let igp_rank = usize::from(self.igp_episode_on(egress.ingress, day));
        let site = igp::select_site_ranked(&self.topo, egress.ingress, igp_rank);
        self.build_decision(client, egress, site, day)
    }

    /// Where anycast routes `client` at the instant `(day, time_s)`, with
    /// the failure schedule applied.
    ///
    /// Returns `None` when the request is lost:
    ///
    /// * the client's steady route lands on a site that just suffered an
    ///   *unplanned* outage and BGP has not yet reconverged
    ///   (`bgp_reconvergence_s`), so packets still follow the withdrawn
    ///   announcement into the dead site; or
    /// * every front-end is down at once.
    ///
    /// Otherwise the dead sites' borders are treated as having withdrawn
    /// the anycast announcement and selection re-runs over the survivors —
    /// one routing step later the client is served by its next-best
    /// catchment (§2). Maintenance drains are pre-announced, so routing
    /// has already moved by the window start and no request is ever lost.
    /// In a world without failure injection this is exactly
    /// [`Internet::anycast_route`].
    pub fn anycast_route_at(
        &self,
        client: &ClientAttachment,
        day: Day,
        time_s: f64,
    ) -> Option<RouteDecision> {
        let down = self.down_sites(day, time_s);
        if let Some(pw) = &self.policy {
            let steady = self.anycast_route(client, day);
            if down.contains(&steady.site) && self.outages.converging(steady.site, day, time_s) {
                counter!("netsim_reconvergence_losses_total").inc();
                return None;
            }
            let withdrawn: Vec<BorderId> = down
                .iter()
                .map(|&s| self.topo.cdn.unicast_announcement_border(s))
                .collect();
            let env = pw.env_at(day, time_s, &withdrawn);
            if env.is_steady() {
                return Some(steady);
            }
            let table = pw.table_for(&env);
            let decision = self.policy_route(pw, &table, client, day, &down);
            match &decision {
                Some(d) if d.site != steady.site => {
                    counter!("netsim_failover_reroutes_total").inc();
                }
                None => counter!("netsim_policy_unrouted_total").inc(),
                _ => {}
            }
            return decision;
        }
        if down.is_empty() {
            return Some(self.anycast_route(client, day));
        }
        let steady = self.anycast_route(client, day);
        if down.contains(&steady.site) && self.outages.converging(steady.site, day, time_s) {
            counter!("netsim_reconvergence_losses_total").inc();
            return None;
        }
        let withdrawn: Vec<BorderId> = down
            .iter()
            .map(|&s| self.topo.cdn.unicast_announcement_border(s))
            .collect();
        let rank = self.churn.selection_rank(client.as_id, client.metro, day);
        let egress = bgp::select_anycast_ingress_avoiding(
            &self.topo,
            rank,
            client.as_id,
            client.metro,
            &withdrawn,
        );
        let igp_rank = usize::from(self.igp_episode_on(egress.ingress, day));
        let site = igp::select_site_avoiding(&self.topo, egress.ingress, igp_rank, &down)?;
        if site != steady.site {
            counter!("netsim_failover_reroutes_total").inc();
        }
        Some(self.build_decision(client, egress, site, day))
    }

    /// The unicast route to `site` at the instant `(day, time_s)`: `None`
    /// while the site is down (its unicast prefix points at a dead machine
    /// for the *whole* window — there is no alternative announcement to
    /// fail over to, which is the §2 asymmetry against DNS redirection).
    pub fn unicast_route_at(
        &self,
        client: &ClientAttachment,
        site: SiteId,
        day: Day,
        time_s: f64,
    ) -> Option<RouteDecision> {
        if self.outages.is_down(site, day, time_s) {
            return None;
        }
        Some(self.unicast_route(client, site, day))
    }

    /// Whether `border`'s ingress→front-end mapping is diverted to its
    /// runner-up site on `day` (internal maintenance episode). Anycast-only:
    /// unicast prefixes are pinned to their sites.
    pub fn igp_episode_on(&self, border: BorderId, day: Day) -> bool {
        let p = self.config().p_igp_episode;
        if p <= 0.0 {
            return false;
        }
        let key = (u64::from(border.0) << 32) | u64::from(day.0);
        let mut z = self.episode_seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// The route to `site`'s **unicast** prefix for `client` on `day`.
    pub fn unicast_route(
        &self,
        client: &ClientAttachment,
        site: SiteId,
        day: Day,
    ) -> RouteDecision {
        let announcement = self.topo.cdn.unicast_announcement_border(site);
        if let Some(pw) = &self.policy {
            // The unicast prefix is announced only at the site's colocated
            // border (§3.1); its catchment table is computed once and shared
            // by every day.
            let table = pw.unicast_table(announcement);
            let node = client.as_id.0;
            let entry = table
                .entry(node)
                .expect("unicast policy catchment routes every client AS");
            let (via_transit, handoff_metro) = if entry.next_hop == CDN_NEXT {
                (None, None)
            } else {
                let v1 = entry.next_hop;
                (Some(AsId(v1)), Some(pw.graph.home_metro[v1 as usize]))
            };
            let mut decision = self.build_decision(
                client,
                EgressDecision {
                    ingress: BorderId(entry.ingress),
                    via_transit,
                    handoff_metro,
                },
                site,
                day,
            );
            decision.base_rtt_ms += self
                .latency
                .unicast_path_penalty_ms(client.as_id, announcement);
            return decision;
        }
        let rank = self.churn.selection_rank(client.as_id, client.metro, day);
        let egress =
            bgp::select_unicast_ingress(&self.topo, rank, client.as_id, client.metro, announcement);
        let mut decision = self.build_decision(client, egress, site, day);
        // Single-prefix routes are often not the ISP's engineered best path.
        decision.base_rtt_ms += self
            .latency
            .unicast_path_penalty_ms(client.as_id, announcement);
        decision
    }

    /// Samples one measured RTT over a resolved route: base RTT plus
    /// jitter/spike/server noise.
    pub fn sample_rtt<R: Rng + ?Sized>(&self, decision: &RouteDecision, rng: &mut R) -> f64 {
        decision.base_rtt_ms + self.latency.sample_extra_ms(rng)
    }

    /// Convenience: anycast route + one RTT sample.
    pub fn measure_anycast<R: Rng + ?Sized>(
        &self,
        client: &ClientAttachment,
        day: Day,
        rng: &mut R,
    ) -> (SiteId, f64) {
        let d = self.anycast_route(client, day);
        let rtt = self.sample_rtt(&d, rng);
        (d.site, rtt)
    }

    /// Convenience: unicast route to `site` + one RTT sample.
    pub fn measure_unicast<R: Rng + ?Sized>(
        &self,
        client: &ClientAttachment,
        site: SiteId,
        day: Day,
        rng: &mut R,
    ) -> f64 {
        let d = self.unicast_route(client, site, day);
        self.sample_rtt(&d, rng)
    }

    /// Great-circle distance from `client` to `site`, in km — the Figure 2/4
    /// quantity.
    pub fn client_site_km(&self, client: &ClientAttachment, site: SiteId) -> f64 {
        let s = self
            .topo
            .atlas
            .metro(self.topo.cdn.site_metro(site))
            .location();
        client.location.haversine_km(&s)
    }

    fn build_decision(
        &self,
        client: &ClientAttachment,
        egress: EgressDecision,
        site: SiteId,
        day: Day,
    ) -> RouteDecision {
        let atlas = &self.topo.atlas;
        let mut hops = Vec::with_capacity(6);
        hops.push(Hop {
            kind: HopKind::ClientAccess,
            metro: client.metro,
            location: client.location,
        });
        let client_metro_loc = atlas.metro(client.metro).location();
        // ISP backbone hop at the attachment metro center (distinct from the
        // client's own location).
        hops.push(Hop {
            kind: HopKind::IspBackbone,
            metro: client.metro,
            location: client_metro_loc,
        });
        if let Some(handoff) = egress.handoff_metro {
            if handoff != client.metro {
                hops.push(Hop {
                    kind: HopKind::TransitBackbone,
                    metro: handoff,
                    location: atlas.metro(handoff).location(),
                });
            }
        }
        let ingress_metro = self.topo.cdn.border_metro(egress.ingress);
        hops.push(Hop {
            kind: HopKind::Peering,
            metro: ingress_metro,
            location: atlas.metro(ingress_metro).location(),
        });
        let site_metro = self.topo.cdn.site_metro(site);
        if site_metro != ingress_metro {
            hops.push(Hop {
                kind: HopKind::CdnBackbone,
                metro: site_metro,
                location: atlas.metro(site_metro).location(),
            });
        }
        hops.push(Hop {
            kind: HopKind::FrontEnd,
            metro: site_metro,
            location: atlas.metro(site_metro).location(),
        });
        let path = RoutePath::new(hops);
        // Transit-carried legs detour through provider hubs: charge the
        // configured extra stretch on the handoff→ingress leg.
        let extra_km = match egress.handoff_metro {
            Some(handoff) => {
                let leg = atlas
                    .metro(handoff)
                    .location()
                    .haversine_km(&atlas.metro(ingress_metro).location());
                (self.config().transit_detour_stretch - 1.0) * leg
            }
            None => 0.0,
        };
        let base_rtt_ms = self.latency.base_rtt_ms(
            &path,
            client.access,
            client.as_id,
            egress.ingress,
            day,
            extra_km,
        );
        RouteDecision {
            ingress: egress.ingress,
            site,
            path,
            base_rtt_ms,
            via_transit: egress.via_transit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn world() -> Internet {
        Internet::new(NetConfig::small(), 42).unwrap()
    }

    fn client_at(net: &Internet, as_idx: usize) -> ClientAttachment {
        let e = &net.topology().eyeballs[as_idx % net.topology().eyeballs.len()];
        let metro = e.home_metro;
        let loc = net
            .topology()
            .atlas
            .metro(metro)
            .location()
            .destination(45.0, 20.0);
        ClientAttachment {
            as_id: e.id,
            metro,
            location: loc,
            access: AccessTech::Cable,
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = NetConfig {
            p_direct_peering: 2.0,
            ..NetConfig::small()
        };
        assert!(Internet::new(cfg, 1).is_err());
    }

    #[test]
    fn anycast_route_is_deterministic_per_day() {
        let net = world();
        let c = client_at(&net, 3);
        let a = net.anycast_route(&c, Day(2));
        let b = net.anycast_route(&c, Day(2));
        assert_eq!(a, b);
    }

    #[test]
    fn path_starts_at_client_and_ends_at_site() {
        let net = world();
        for i in 0..10 {
            let c = client_at(&net, i);
            let d = net.anycast_route(&c, Day(0));
            let hops = d.path.hops();
            assert_eq!(hops.first().unwrap().kind, HopKind::ClientAccess);
            assert_eq!(hops.last().unwrap().kind, HopKind::FrontEnd);
            assert_eq!(
                hops.last().unwrap().metro,
                net.topology().cdn.site_metro(d.site)
            );
        }
    }

    #[test]
    fn base_rtt_is_positive_and_reflects_path() {
        let net = world();
        for i in 0..20 {
            let c = client_at(&net, i);
            let d = net.anycast_route(&c, Day(0));
            assert!(d.base_rtt_ms > 0.0);
            // RTT must at least cover two-way propagation on the path.
            let min_prop = 2.0 * d.path.total_km() * net.config().fiber_path_stretch
                / net.config().fiber_km_per_ms;
            assert!(d.base_rtt_ms >= min_prop);
        }
    }

    #[test]
    fn sampled_rtt_exceeds_base() {
        let net = world();
        let c = client_at(&net, 1);
        let d = net.anycast_route(&c, Day(0));
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(net.sample_rtt(&d, &mut rng) > d.base_rtt_ms);
        }
    }

    #[test]
    fn unicast_route_serves_requested_site() {
        let net = world();
        let c = client_at(&net, 5);
        for site in net.topology().cdn.site_ids() {
            let d = net.unicast_route(&c, site, Day(0));
            assert_eq!(d.site, site);
        }
    }

    #[test]
    fn unicast_ingress_is_near_the_front_end() {
        // §3.1: unicast traffic ingresses near the front-end. The ingress
        // border must be much closer to the site than the client is (for
        // remote clients).
        let net = world();
        let c = client_at(&net, 7);
        for site in net.topology().cdn.site_ids() {
            let d = net.unicast_route(&c, site, Day(0));
            let site_loc = net
                .topology()
                .atlas
                .metro(net.topology().cdn.site_metro(site))
                .location();
            let ingress_loc = net
                .topology()
                .atlas
                .metro(net.topology().cdn.border_metro(d.ingress))
                .location();
            let ingress_to_site = ingress_loc.haversine_km(&site_loc);
            let client_to_site = c.location.haversine_km(&site_loc);
            if client_to_site > 3000.0 {
                assert!(
                    ingress_to_site < client_to_site,
                    "ingress {ingress_to_site} km vs client {client_to_site} km"
                );
            }
        }
    }

    #[test]
    fn anycast_prefers_nearby_sites_in_idealized_world() {
        // With no pathologies, anycast should land most clients on a
        // front-end no farther than ~2x their nearest.
        let cfg = NetConfig {
            n_eyeball: 60,
            ..NetConfig::idealized()
        };
        let net = Internet::new(cfg, 7).unwrap();
        let sites = net.site_locations();
        let mut optimal = 0;
        let mut total = 0;
        for i in 0..net.topology().eyeballs.len() {
            let c = client_at(&net, i);
            let d = net.anycast_route(&c, Day(0));
            let nearest = sites
                .iter()
                .map(|(_, loc)| loc.haversine_km(&c.location))
                .fold(f64::INFINITY, f64::min);
            let chosen = net.client_site_km(&c, d.site);
            total += 1;
            if chosen <= nearest.max(50.0) * 2.0 + 200.0 {
                optimal += 1;
            }
        }
        let frac = f64::from(optimal) / f64::from(total);
        assert!(frac > 0.8, "only {frac} of idealized clients near-optimal");
    }

    #[test]
    fn measure_helpers_agree_with_routes() {
        let net = world();
        let c = client_at(&net, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let (site, rtt) = net.measure_anycast(&c, Day(0), &mut rng);
        assert_eq!(site, net.anycast_route(&c, Day(0)).site);
        assert!(rtt > 0.0);
        let u = net.measure_unicast(&c, site, Day(0), &mut rng);
        assert!(u > 0.0);
    }

    #[test]
    fn client_site_km_is_geodesic() {
        let net = world();
        let c = client_at(&net, 0);
        for (site, loc) in net.site_locations() {
            assert!((net.client_site_km(&c, site) - c.location.haversine_km(&loc)).abs() < 1e-9);
        }
    }

    #[test]
    fn route_at_matches_route_without_failures() {
        let net = world();
        for i in 0..8 {
            let c = client_at(&net, i);
            for day in Day(0).span(3) {
                for t in [0.0, 30_000.0, 80_000.0] {
                    assert_eq!(
                        net.anycast_route_at(&c, day, t),
                        Some(net.anycast_route(&c, day))
                    );
                    let site = net.topology().cdn.site_ids().next().unwrap();
                    assert_eq!(
                        net.unicast_route_at(&c, site, day, t),
                        Some(net.unicast_route(&c, site, day))
                    );
                }
            }
        }
    }

    fn failure_world() -> Internet {
        let cfg = NetConfig {
            p_site_outage: 0.3,
            p_site_drain: 0.15,
            ..NetConfig::small()
        };
        Internet::new(cfg, 11).unwrap()
    }

    #[test]
    fn failover_routes_avoid_down_sites() {
        let net = failure_world();
        for i in 0..10 {
            let c = client_at(&net, i);
            for day in Day(0).span(10) {
                for t in [10_000.0, 40_000.0, 70_000.0] {
                    if let Some(d) = net.anycast_route_at(&c, day, t) {
                        assert!(
                            !net.outages().is_down(d.site, day, t),
                            "client routed to a down site"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unicast_to_down_site_fails_for_the_whole_window() {
        let net = failure_world();
        let c = client_at(&net, 0);
        let (site, day, w) = net
            .topology()
            .cdn
            .site_ids()
            .flat_map(|s| Day(0).span(30).map(move |d| (s, d)))
            .find_map(|(s, d)| net.outages().window_on(s, d).map(|w| (s, d, w)))
            .expect("failure world schedules some window");
        let mid = (w.start_s + w.end_s) / 2.0;
        assert_eq!(net.unicast_route_at(&c, site, day, mid), None);
        if w.end_s < 86_000.0 {
            assert!(net.unicast_route_at(&c, site, day, w.end_s + 1.0).is_some());
        }
    }

    #[test]
    fn unplanned_outage_blackholes_then_fails_over_in_one_step() {
        use crate::outage::OutageKind;
        let net = failure_world();
        let reconv = net.config().bgp_reconvergence_s;
        assert!(reconv > 2.0, "test needs a visible convergence window");
        // Find a client whose steady route lands on a site with an
        // unplanned outage that day.
        let found = (0..net.topology().eyeballs.len()).find_map(|i| {
            let c = client_at(&net, i);
            Day(0).span(30).find_map(|day| {
                let steady = net.anycast_route(&c, day);
                match net.outages().window_on(steady.site, day) {
                    Some(w) if w.kind == OutageKind::Unplanned && w.end_s < 86_000.0 => {
                        Some((c, day, steady, w))
                    }
                    _ => None,
                }
            })
        });
        let (c, day, steady, w) = found.expect("some client is hit by an unplanned outage");
        // During reconvergence: the stale route blackholes.
        assert_eq!(net.anycast_route_at(&c, day, w.start_s + 1.0), None);
        // One routing step later: served by a different, live site.
        let after = net
            .anycast_route_at(&c, day, w.start_s + reconv + 1.0)
            .expect("failover route exists");
        assert_ne!(after.site, steady.site);
        assert!(!net
            .outages()
            .is_down(after.site, day, w.start_s + reconv + 1.0));
    }

    #[test]
    fn same_seed_same_world_same_routes() {
        let a = Internet::new(NetConfig::small(), 5).unwrap();
        let b = Internet::new(NetConfig::small(), 5).unwrap();
        for i in 0..10 {
            let ca = client_at(&a, i);
            let cb = client_at(&b, i);
            assert_eq!(
                a.anycast_route(&ca, Day(3)).site,
                b.anycast_route(&cb, Day(3)).site
            );
        }
    }
}
