//! Typed identifiers for network entities.
//!
//! Newtypes prevent the classic simulator bug of indexing one table with
//! another table's id. All ids are dense indexes into their owning
//! collection, assigned at topology-build time and stable for the lifetime
//! of a [`crate::Topology`].

/// An autonomous system (eyeball ISP, transit provider, or the CDN itself).
///
/// `u32` so that generated Internet-scale worlds (up to 75k ASes, see
/// [`crate::worldgen`]) are addressable; the hand-built worlds never exceed
/// a few hundred, and every hash key derived from an id goes through
/// `u64::from`, so widening the representation changes no existing output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

/// A CDN front-end site (a "front-end location" in the paper's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u16);

/// A CDN border router / peering location.
///
/// The paper's case studies distinguish *border routers announcing the
/// anycast route* from *front-ends*; traffic ingresses at a border router
/// and the CDN's IGP then picks a front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BorderId(pub u16);

impl std::fmt::Display for AsId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fe{}", self.0)
    }
}

impl std::fmt::Display for BorderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "br{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(AsId(3).to_string(), "AS3");
        assert_eq!(SiteId(7).to_string(), "fe7");
        assert_eq!(BorderId(1).to_string(), "br1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SiteId(1));
        set.insert(SiteId(1));
        set.insert(SiteId(2));
        assert_eq!(set.len(), 2);
        assert!(SiteId(1) < SiteId(2));
    }
}
