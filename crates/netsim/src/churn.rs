//! Route churn: day-to-day instability of route selection.
//!
//! Figure 7 of the paper tracks the cumulative fraction of clients that have
//! switched front-ends by each day of a week: ~7% within the first day,
//! another 2–4% per weekday, and almost nothing on weekends, plateauing
//! around 21%. Figure 8 shows that switches usually move a client to a
//! *nearby* alternative front-end (median 483 km).
//!
//! [`ChurnModel`] reproduces this with a per-attachment-point process:
//!
//! * a fixed fraction of `(AS, metro)` attachment points are **flappy**;
//!   the rest never change routes (the stable majority);
//! * each day, a flappy attachment flips its BGP tie-break with a
//!   weekday-dependent probability (weekends heavily damped);
//! * a flip is a **one-day excursion**: from the flip time to the end of
//!   the day the runner-up egress carries the traffic, and the preferred
//!   route is back in force at the day boundary (operators push a change
//!   and roll it back). A switch therefore lands on a nearby alternative —
//!   the Figure 8 behaviour — and poor days from churn are short-lived —
//!   the Figure 6 behaviour.
//!
//! Everything is a pure function of `(seed, as, metro, day)`: no state to
//! update, no ordering constraints, and any day can be queried in isolation.

use anycast_geo::MetroId;

use crate::config::NetConfig;
use crate::ids::AsId;
use crate::sim::Day;

/// Deterministic churn process over attachment points.
#[derive(Debug, Clone, Copy)]
pub struct ChurnModel {
    seed: u64,
    flappy_fraction: f64,
    weekday_flip_prob: f64,
    weekend_flip_prob: f64,
}

impl ChurnModel {
    /// Builds the model from configuration.
    pub fn new(cfg: &NetConfig, seed: u64) -> Self {
        ChurnModel {
            seed: seed ^ 0x6368_7572_6e21_0000,
            flappy_fraction: cfg.flappy_fraction,
            weekday_flip_prob: cfg.weekday_flip_prob,
            weekend_flip_prob: cfg.weekend_flip_prob,
        }
    }

    /// A churn-free model (for idealized worlds and tests).
    pub fn frozen(seed: u64) -> Self {
        ChurnModel {
            seed,
            flappy_fraction: 0.0,
            weekday_flip_prob: 0.0,
            weekend_flip_prob: 0.0,
        }
    }

    /// Whether the attachment point `(as_id, metro)` ever changes routes.
    pub fn is_flappy(&self, as_id: AsId, metro: MetroId) -> bool {
        if self.flappy_fraction <= 0.0 {
            return false;
        }
        let h = mix(self.seed, key(as_id, metro), 0xf1a9);
        to_unit(h) < self.flappy_fraction
    }

    /// Whether a flip event occurs *on* `day` for this attachment point.
    pub fn flips_on(&self, as_id: AsId, metro: MetroId, day: Day) -> bool {
        if !self.is_flappy(as_id, metro) {
            return false;
        }
        let p = if day.weekday().is_weekend() {
            self.weekend_flip_prob
        } else {
            self.weekday_flip_prob
        };
        let h = mix(self.seed, key(as_id, metro), 0xd00d ^ u64::from(day.0));
        to_unit(h) < p
    }

    /// The egress-selection rank in force on `day`: 0 selects the best
    /// candidate, 1 the runner-up. A flip day is a one-day excursion — an
    /// operator pushes a change and rolls it back — so the rank is 1 exactly
    /// on flip days. Figure 6 shows poor paths are mostly short-lived, and
    /// Figure 7's weekday churn is consistent with change windows rather
    /// than permanent reroutes; consecutive flip days still model the rarer
    /// multi-day reroute.
    pub fn selection_rank(&self, as_id: AsId, metro: MetroId, day: Day) -> usize {
        usize::from(self.flips_on(as_id, metro, day))
    }

    /// The selection rank in force at the *start* of `day`, before any flip
    /// event scheduled on that day takes effect.
    ///
    /// An excursion runs from its flip time to the end of its day, so at
    /// every day boundary the preferred route (rank 0) is back in force:
    /// this is always 0. It is kept as a method mirroring
    /// [`ChurnModel::selection_rank`] so route builders read symmetrically
    /// and the day-boundary semantics are documented in one place. Clients
    /// observed both before and after the flip time see two different
    /// front-ends on the same day — the intra-day churn Figure 7 counts on
    /// day one.
    pub fn selection_rank_before(&self, _as_id: AsId, _metro: MetroId, _day: Day) -> usize {
        0
    }
}

fn key(as_id: AsId, metro: MetroId) -> u64 {
    (u64::from(as_id.0) << 32) | u64::from(metro.0)
}

/// SplitMix64-style mixing of (seed, key, salt) into a well-distributed u64.
fn mix(seed: u64, key: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChurnModel {
        ChurnModel::new(&NetConfig::default(), 99)
    }

    #[test]
    fn frozen_model_never_flips() {
        let m = ChurnModel::frozen(1);
        for a in 0..50 {
            for day in Day(0).span(14) {
                assert!(!m.flips_on(AsId(a), MetroId(0), day));
                assert_eq!(m.selection_rank(AsId(a), MetroId(0), day), 0);
            }
        }
    }

    #[test]
    fn flappy_fraction_approximates_config() {
        let cfg = NetConfig::default();
        let m = model();
        let n = 20_000;
        let flappy = (0..n)
            .filter(|&i| m.is_flappy(AsId(i % 500), MetroId(i / 500)))
            .count();
        let frac = flappy as f64 / n as f64;
        assert!(
            (frac - cfg.flappy_fraction).abs() < 0.02,
            "flappy fraction {frac} vs configured {}",
            cfg.flappy_fraction
        );
    }

    #[test]
    fn rank_is_one_exactly_on_flip_days() {
        let m = model();
        // Find a flappy attachment.
        let (a, mm) = (0..2000u32)
            .map(|i| (AsId(i % 300), MetroId(i / 300)))
            .find(|(a, mm)| m.is_flappy(*a, *mm))
            .expect("some flappy attachment");
        for day in Day(0).span(28) {
            let rank = m.selection_rank(a, mm, day);
            assert_eq!(rank == 1, m.flips_on(a, mm, day), "{day}");
        }
    }

    #[test]
    fn weekends_are_damped() {
        let m = model();
        let mut weekday_flips = 0u32;
        let mut weekend_flips = 0u32;
        let mut weekday_opps = 0u32;
        let mut weekend_opps = 0u32;
        for i in 0..3000u32 {
            let a = AsId(i % 300);
            let mm = MetroId(i / 300);
            if !m.is_flappy(a, mm) {
                continue;
            }
            for day in Day(0).span(28) {
                if day.weekday().is_weekend() {
                    weekend_opps += 1;
                    weekend_flips += u32::from(m.flips_on(a, mm, day));
                } else {
                    weekday_opps += 1;
                    weekday_flips += u32::from(m.flips_on(a, mm, day));
                }
            }
        }
        let cfg = NetConfig::default();
        let wd = f64::from(weekday_flips) / f64::from(weekday_opps.max(1));
        let we = f64::from(weekend_flips) / f64::from(weekend_opps.max(1));
        assert!(
            (wd - cfg.weekday_flip_prob).abs() < 0.03,
            "weekday rate {wd} vs configured {}",
            cfg.weekday_flip_prob
        );
        assert!(we < cfg.weekend_flip_prob + 0.02, "weekend rate {we}");
    }

    #[test]
    fn cumulative_flippers_match_process_parameters() {
        // Attachment-level flip accumulation must follow the configured
        // process: day-one fraction ≈ flappy × weekday_prob, and the weekly
        // cumulative ≈ flappy × (1 - (1-p_wd)^5 (1-p_we)^2). The *client-
        // visible* Figure 7 calibration happens end-to-end in the bench
        // crate, where flips are filtered by whether they change the
        // serving front-end.
        let cfg = NetConfig::default();
        let m = model();
        let n = 8000u32;
        let mut switched_by_day = [0u32; 7];
        for i in 0..n {
            let a = AsId(i % 400);
            let mm = MetroId(i / 400);
            let mut switched = false;
            for (di, day) in Day(0).span(7).enumerate() {
                if m.flips_on(a, mm, day) {
                    switched = true;
                }
                if switched {
                    switched_by_day[di] += 1;
                }
            }
        }
        let day0 = f64::from(switched_by_day[0]) / f64::from(n);
        let week = f64::from(switched_by_day[6]) / f64::from(n);
        let expect_day0 = cfg.flappy_fraction * cfg.weekday_flip_prob;
        let expect_week = cfg.flappy_fraction
            * (1.0 - (1.0 - cfg.weekday_flip_prob).powi(5) * (1.0 - cfg.weekend_flip_prob).powi(2));
        assert!(
            (day0 - expect_day0).abs() < 0.03,
            "day-one {day0} vs {expect_day0}"
        );
        assert!(
            (week - expect_week).abs() < 0.04,
            "week {week} vs {expect_week}"
        );
    }

    #[test]
    fn determinism() {
        let a = model();
        let b = model();
        for i in 0..500u32 {
            let asid = AsId(i % 100);
            let metro = MetroId(i / 100);
            for day in Day(0).span(10) {
                assert_eq!(a.flips_on(asid, metro, day), b.flips_on(asid, metro, day));
            }
        }
    }
}
