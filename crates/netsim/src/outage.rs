//! Front-end failures: unplanned outages and planned maintenance drains.
//!
//! The paper's operational argument for anycast (§2) is that when a
//! front-end dies, BGP "automatically" re-routes its clients to the
//! next-best catchment, whereas DNS-based redirection keeps handing out the
//! dead unicast address until cached answers expire. To reproduce that
//! claim the simulator needs a notion of a site being *down* — this module
//! supplies it, mirroring [`crate::churn::ChurnModel`]: everything is a
//! pure function of `(seed, site, day, time)`, so any instant can be
//! queried in isolation and results are identical across processes,
//! threads, and replays.
//!
//! Two kinds of window exist, with different data-plane consequences:
//!
//! * **Unplanned outages** — the site crashes mid-announcement. Its border
//!   withdraws the anycast prefix *reactively*, so clients whose steady
//!   route lands on the dead site lose packets until BGP reconverges
//!   (`bgp_reconvergence_s`); after that one routing step they are served
//!   by the next-best catchment.
//! * **Maintenance drains** — operators withdraw the announcement *before*
//!   taking the site down (the FastRoute-style drains Sinha et al. study
//!   on the same CDN). Routing has already moved everyone by the window
//!   start, so anycast clients see zero loss.
//!
//! In both kinds the site's **unicast** prefix points at a machine that is
//! off: unicast requests fail for the entire window. That asymmetry — and
//! the DNS TTL lag it creates — is exactly what the failure experiments in
//! `bench` measure.

use crate::config::NetConfig;
use crate::ids::SiteId;
use crate::sim::Day;
use crate::stream::{mix, to_unit};

/// Why a site is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutageKind {
    /// Unannounced crash: the anycast withdrawal races client traffic, so
    /// the old catchment blackholes until BGP reconverges.
    Unplanned,
    /// Pre-announced drain: routing moved before the site went dark, so
    /// anycast clients never notice.
    Maintenance,
}

/// One contiguous down-window within a day, in seconds since midnight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// Outage or drain.
    pub kind: OutageKind,
    /// Window start, seconds within the day (inclusive).
    pub start_s: f64,
    /// Window end, seconds within the day (exclusive).
    pub end_s: f64,
}

impl OutageWindow {
    /// Whether `time_s` falls inside the window.
    pub fn contains(&self, time_s: f64) -> bool {
        self.start_s <= time_s && time_s < self.end_s
    }
}

/// Deterministic failure schedule over `(site, day, time)`.
///
/// At most one window per site per day; windows never span a day boundary
/// (their start is hash-placed inside `[0, 86400 - duration]`). A site is
/// never drawn for *both* an outage and a drain on the same day — operators
/// do not schedule maintenance on a site that just crashed.
#[derive(Debug, Clone, Copy)]
pub struct OutageModel {
    seed: u64,
    p_outage: f64,
    p_drain: f64,
    outage_duration_s: f64,
    drain_duration_s: f64,
    reconvergence_s: f64,
}

impl OutageModel {
    /// Builds the model from configuration.
    pub fn new(cfg: &NetConfig, seed: u64) -> Self {
        OutageModel {
            seed: seed ^ 0x6f75_7467_6f21_0000,
            p_outage: cfg.p_site_outage,
            p_drain: cfg.p_site_drain,
            outage_duration_s: cfg.outage_duration_s,
            drain_duration_s: cfg.drain_duration_s,
            reconvergence_s: cfg.bgp_reconvergence_s,
        }
    }

    /// A failure-free model (for idealized worlds and tests).
    pub fn frozen(seed: u64) -> Self {
        OutageModel {
            seed,
            p_outage: 0.0,
            p_drain: 0.0,
            outage_duration_s: 1.0,
            drain_duration_s: 1.0,
            reconvergence_s: 0.0,
        }
    }

    /// Whether any failure injection is configured at all (fast path for
    /// route builders: most worlds never schedule a window).
    pub fn enabled(&self) -> bool {
        self.p_outage > 0.0 || self.p_drain > 0.0
    }

    /// How long an unplanned withdrawal takes to propagate, seconds.
    pub fn reconvergence_s(&self) -> f64 {
        self.reconvergence_s
    }

    /// The down-window scheduled for `site` on `day`, if any.
    pub fn window_on(&self, site: SiteId, day: Day) -> Option<OutageWindow> {
        let d = u64::from(day.0);
        if self.p_outage > 0.0 {
            let roll = to_unit(mix(self.seed, key(site), 0x0dd5_0000_0000_0000 ^ d));
            if roll < self.p_outage {
                let span = (86_400.0 - self.outage_duration_s).max(0.0);
                let start = to_unit(mix(self.seed, key(site), 0x57a2_0000_0000_0000 ^ d)) * span;
                return Some(OutageWindow {
                    kind: OutageKind::Unplanned,
                    start_s: start,
                    end_s: start + self.outage_duration_s,
                });
            }
        }
        if self.p_drain > 0.0 {
            let roll = to_unit(mix(self.seed, key(site), 0xd2a1_0000_0000_0000 ^ d));
            if roll < self.p_drain {
                let span = (86_400.0 - self.drain_duration_s).max(0.0);
                let start = to_unit(mix(self.seed, key(site), 0x3a1e_0000_0000_0000 ^ d)) * span;
                return Some(OutageWindow {
                    kind: OutageKind::Maintenance,
                    start_s: start,
                    end_s: start + self.drain_duration_s,
                });
            }
        }
        None
    }

    /// Whether `site` is down (serving nothing) at `(day, time_s)`.
    pub fn is_down(&self, site: SiteId, day: Day, time_s: f64) -> bool {
        if !self.enabled() {
            return false;
        }
        self.window_on(site, day)
            .is_some_and(|w| w.contains(time_s))
    }

    /// Whether an *unplanned* withdrawal of `site` is still propagating at
    /// `(day, time_s)`: packets following the stale route are lost. Drains
    /// never converge-lag — the withdrawal preceded the window.
    pub fn converging(&self, site: SiteId, day: Day, time_s: f64) -> bool {
        if !self.enabled() {
            return false;
        }
        match self.window_on(site, day) {
            Some(w) if w.kind == OutageKind::Unplanned => {
                let converged_at = (w.start_s + self.reconvergence_s).min(w.end_s);
                w.start_s <= time_s && time_s < converged_at
            }
            _ => false,
        }
    }
}

fn key(site: SiteId) -> u64 {
    u64::from(site.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failing_cfg() -> NetConfig {
        NetConfig {
            p_site_outage: 0.2,
            p_site_drain: 0.1,
            ..NetConfig::small()
        }
    }

    fn model() -> OutageModel {
        OutageModel::new(&failing_cfg(), 7)
    }

    #[test]
    fn frozen_model_schedules_nothing() {
        let m = OutageModel::frozen(3);
        assert!(!m.enabled());
        for s in 0..40 {
            for day in Day(0).span(30) {
                assert!(m.window_on(SiteId(s), day).is_none());
                assert!(!m.is_down(SiteId(s), day, 43_200.0));
            }
        }
    }

    #[test]
    fn windows_fit_within_the_day() {
        let m = model();
        for s in 0..40 {
            for day in Day(0).span(60) {
                if let Some(w) = m.window_on(SiteId(s), day) {
                    assert!(w.start_s >= 0.0);
                    assert!(w.end_s <= 86_400.0 + 1e-6, "window spills past midnight");
                    assert!(w.end_s > w.start_s);
                }
            }
        }
    }

    #[test]
    fn is_down_matches_window_membership() {
        let m = model();
        let (site, day, w) = (0..40u16)
            .flat_map(|s| Day(0).span(60).map(move |d| (SiteId(s), d)))
            .find_map(|(s, d)| m.window_on(s, d).map(|w| (s, d, w)))
            .expect("some window scheduled");
        assert!(m.is_down(site, day, (w.start_s + w.end_s) / 2.0));
        assert!(!m.is_down(site, day, w.end_s + 1.0));
        if w.start_s > 1.0 {
            assert!(!m.is_down(site, day, w.start_s - 1.0));
        }
    }

    #[test]
    fn unplanned_outages_converge_after_the_configured_lag() {
        let m = model();
        let found = (0..40u16)
            .flat_map(|s| Day(0).span(120).map(move |d| (SiteId(s), d)))
            .find_map(|(s, d)| match m.window_on(s, d) {
                Some(w) if w.kind == OutageKind::Unplanned => Some((s, d, w)),
                _ => None,
            })
            .expect("some unplanned outage");
        let (site, day, w) = found;
        let reconv = m.reconvergence_s();
        assert!(m.converging(site, day, w.start_s + reconv / 2.0));
        assert!(!m.converging(site, day, w.start_s + reconv + 1.0));
        // Still down after convergence — just no longer blackholing the
        // old catchment.
        assert!(m.is_down(site, day, w.start_s + reconv + 1.0));
    }

    #[test]
    fn drains_never_blackhole() {
        let m = model();
        for s in 0..40u16 {
            for day in Day(0).span(120) {
                if let Some(w) = m.window_on(SiteId(s), day) {
                    if w.kind == OutageKind::Maintenance {
                        assert!(!m.converging(SiteId(s), day, w.start_s + 1.0));
                    }
                }
            }
        }
    }

    #[test]
    fn scheduled_fraction_tracks_config() {
        let cfg = failing_cfg();
        let m = model();
        let mut outages = 0u32;
        let mut drains = 0u32;
        let n_draws = 40u32 * 250;
        for s in 0..40u16 {
            for day in Day(0).span(250) {
                match m.window_on(SiteId(s), day).map(|w| w.kind) {
                    Some(OutageKind::Unplanned) => outages += 1,
                    Some(OutageKind::Maintenance) => drains += 1,
                    None => {}
                }
            }
        }
        let out_frac = f64::from(outages) / f64::from(n_draws);
        let drain_frac = f64::from(drains) / f64::from(n_draws);
        assert!(
            (out_frac - cfg.p_site_outage).abs() < 0.02,
            "outage fraction {out_frac} vs configured {}",
            cfg.p_site_outage
        );
        // Drains only roll when no outage was drawn.
        let expect_drain = (1.0 - cfg.p_site_outage) * cfg.p_site_drain;
        assert!(
            (drain_frac - expect_drain).abs() < 0.02,
            "drain fraction {drain_frac} vs expected {expect_drain}"
        );
    }

    #[test]
    fn determinism() {
        let a = model();
        let b = model();
        for s in 0..20u16 {
            for day in Day(0).span(30) {
                assert_eq!(a.window_on(SiteId(s), day), b.window_on(SiteId(s), day));
                for t in [0.0, 21_600.0, 43_200.0, 64_800.0] {
                    assert_eq!(a.is_down(SiteId(s), day, t), b.is_down(SiteId(s), day, t));
                }
            }
        }
    }
}
