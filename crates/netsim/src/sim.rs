//! Simulation time and the event timeline.
//!
//! The study spans calendar time: Figure 5 is a month of daily analyses,
//! Figure 7 a week keyed by weekday. [`Day`] is the simulation's coarse
//! clock. Within a day, measurement arrivals are scheduled on a [`Timeline`]
//! — a deterministic discrete-event queue in the smoltcp/event-driven idiom:
//! no wall clock, no global state, strict (time, sequence) ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Whether this is Saturday or Sunday — the churn-damped days of
    /// Figure 7.
    pub fn is_weekend(&self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }

    /// Three-letter label.
    pub fn label(&self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

impl std::fmt::Display for Weekday {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A simulated calendar day, counted from the experiment epoch.
///
/// Day 0 is a **Wednesday**, matching Figure 7's x-axis (Wed…Tue). The
/// Figure 5/6 experiments run over 28 consecutive days, the Figure 7/8
/// experiments over one 7-day week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Day(pub u32);

impl Day {
    /// Weekday of day 0.
    pub const EPOCH_WEEKDAY: Weekday = Weekday::Wed;

    /// The weekday this day falls on.
    pub fn weekday(&self) -> Weekday {
        // Wednesday has index 2 in ALL.
        let idx = (2 + self.0 as usize) % 7;
        Weekday::ALL[idx]
    }

    /// The next day.
    pub fn next(&self) -> Day {
        Day(self.0 + 1)
    }

    /// Iterator over `count` days starting at this one.
    pub fn span(&self, count: u32) -> impl Iterator<Item = Day> {
        let start = self.0;
        (start..start + count).map(Day)
    }
}

impl std::fmt::Display for Day {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "day{}({})", self.0, self.weekday())
    }
}

/// A deterministic discrete-event queue.
///
/// Events are ordered by time (seconds within the day, f64), with insertion
/// order breaking ties so identical-time events pop in push order. Times
/// must be finite; pushing a NaN time is a programming error and panics.
#[derive(Debug)]
pub struct Timeline<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for Timeline<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Timeline<E> {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time` (seconds). Panics on non-finite time.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pops the earliest event, or `None` when drained.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_zero_is_wednesday() {
        assert_eq!(Day(0).weekday(), Weekday::Wed);
        assert_eq!(Day(1).weekday(), Weekday::Thu);
        assert_eq!(Day(3).weekday(), Weekday::Sat);
        assert!(Day(3).weekday().is_weekend());
        assert!(Day(4).weekday().is_weekend());
        assert_eq!(Day(5).weekday(), Weekday::Mon);
        assert_eq!(Day(7).weekday(), Weekday::Wed);
    }

    #[test]
    fn span_produces_consecutive_days() {
        let days: Vec<Day> = Day(3).span(4).collect();
        assert_eq!(days, vec![Day(3), Day(4), Day(5), Day(6)]);
        assert_eq!(Day(2).next(), Day(3));
    }

    #[test]
    fn week_has_two_weekend_days() {
        let weekends = Day(0).span(7).filter(|d| d.weekday().is_weekend()).count();
        assert_eq!(weekends, 2);
    }

    #[test]
    fn timeline_orders_by_time() {
        let mut tl = Timeline::new();
        tl.push(3.0, "c");
        tl.push(1.0, "a");
        tl.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| tl.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn timeline_ties_pop_in_push_order() {
        let mut tl = Timeline::new();
        for i in 0..10 {
            tl.push(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| tl.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timeline_peek_and_len() {
        let mut tl = Timeline::new();
        assert!(tl.is_empty());
        assert_eq!(tl.peek_time(), None);
        tl.push(2.0, ());
        tl.push(1.0, ());
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.peek_time(), Some(1.0));
        tl.pop();
        assert_eq!(tl.peek_time(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn timeline_rejects_nan_time() {
        let mut tl = Timeline::new();
        tl.push(f64::NAN, ());
    }
}
