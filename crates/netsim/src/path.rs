//! Route paths: the hop-by-hop geographic trajectory of a request.
//!
//! The paper troubleshoots poor anycast routes with RIPE Atlas traceroutes
//! (§5). [`RoutePath`] is this simulator's equivalent observable: the ordered
//! list of waypoints a request traverses from client to front-end, each
//! tagged with the network segment it belongs to. The latency model consumes
//! the same path, so a printed traceroute always agrees with the latency the
//! client measured.

use anycast_geo::{GeoPoint, MetroId, WorldAtlas};

/// The network segment a hop belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopKind {
    /// The client's access link (first hop).
    ClientAccess,
    /// Inside the client's ISP backbone.
    IspBackbone,
    /// Inside a transit provider's backbone.
    TransitBackbone,
    /// The peering/hand-off point into the CDN's AS (a border router).
    Peering,
    /// Inside the CDN's backbone.
    CdnBackbone,
    /// The terminating front-end.
    FrontEnd,
}

impl HopKind {
    /// Short label for traceroute-style rendering.
    pub fn label(&self) -> &'static str {
        match self {
            HopKind::ClientAccess => "access",
            HopKind::IspBackbone => "isp",
            HopKind::TransitBackbone => "transit",
            HopKind::Peering => "peering",
            HopKind::CdnBackbone => "cdn",
            HopKind::FrontEnd => "front-end",
        }
    }
}

/// One waypoint on a route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Segment this hop belongs to.
    pub kind: HopKind,
    /// Metro the hop is located in.
    pub metro: MetroId,
    /// Exact location (metro center for infrastructure, the client's own
    /// location for the first hop).
    pub location: GeoPoint,
}

/// An ordered list of hops from client to front-end.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoutePath {
    hops: Vec<Hop>,
}

impl RoutePath {
    /// Creates a path from hops. The first hop should be the client access
    /// point and the last the front-end; [`RoutePath::total_km`] and the
    /// latency model assume consecutive hops are physically adjacent
    /// segments.
    pub fn new(hops: Vec<Hop>) -> Self {
        RoutePath { hops }
    }

    /// The hops, in order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Total great-circle length of the path in km (sum over consecutive
    /// hop pairs). This is the distance the latency model charges
    /// propagation for; it exceeds the client→front-end geodesic whenever
    /// routing detours — the quantity at the heart of the paper's §5 case
    /// studies.
    pub fn total_km(&self) -> f64 {
        self.hops
            .windows(2)
            .map(|w| w[0].location.haversine_km(&w[1].location))
            .sum()
    }

    /// Direct great-circle distance from the first to the last hop, in km.
    pub fn direct_km(&self) -> f64 {
        match (self.hops.first(), self.hops.last()) {
            (Some(a), Some(b)) => a.location.haversine_km(&b.location),
            _ => 0.0,
        }
    }

    /// Path stretch: routed length over direct distance (≥ 1 for non-trivial
    /// paths; 1 when the path is direct, 0 for empty/degenerate paths).
    pub fn stretch(&self) -> f64 {
        let direct = self.direct_km();
        if direct <= 0.0 {
            return if self.total_km() > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.total_km() / direct
    }

    /// Renders the path as a traceroute-style multi-line string using metro
    /// names from `atlas`.
    pub fn render(&self, atlas: &WorldAtlas) -> String {
        let mut out = String::new();
        let mut cumulative = 0.0;
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                cumulative += self.hops[i - 1].location.haversine_km(&hop.location);
            }
            let metro = atlas.metro(hop.metro);
            out.push_str(&format!(
                "{:>2}  {:<10} {:<18} {:>8.0} km\n",
                i + 1,
                hop.kind.label(),
                format!("{}, {}", metro.name, metro.country),
                cumulative,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_geo::WorldAtlas;

    fn hop(kind: HopKind, lat: f64, lon: f64) -> Hop {
        Hop {
            kind,
            metro: MetroId(0),
            location: GeoPoint::new(lat, lon),
        }
    }

    #[test]
    fn total_km_sums_segments() {
        let path = RoutePath::new(vec![
            hop(HopKind::ClientAccess, 0.0, 0.0),
            hop(HopKind::Peering, 0.0, 10.0),
            hop(HopKind::FrontEnd, 0.0, 20.0),
        ]);
        let direct = GeoPoint::new(0.0, 0.0).haversine_km(&GeoPoint::new(0.0, 20.0));
        assert!((path.total_km() - direct).abs() < 1.0); // along the equator
        assert!((path.stretch() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn detour_shows_in_stretch() {
        // Client and front-end in the same place, detour via 10°E.
        let path = RoutePath::new(vec![
            hop(HopKind::ClientAccess, 0.0, 0.0),
            hop(HopKind::Peering, 0.0, 10.0),
            hop(HopKind::FrontEnd, 0.0, 1.0),
        ]);
        assert!(path.stretch() > 15.0);
    }

    #[test]
    fn empty_and_single_hop_paths() {
        let empty = RoutePath::default();
        assert!(empty.is_empty());
        assert_eq!(empty.total_km(), 0.0);
        assert_eq!(empty.stretch(), 0.0);
        let single = RoutePath::new(vec![hop(HopKind::FrontEnd, 1.0, 1.0)]);
        assert_eq!(single.total_km(), 0.0);
        assert_eq!(single.direct_km(), 0.0);
    }

    #[test]
    fn degenerate_loop_has_infinite_stretch() {
        let path = RoutePath::new(vec![
            hop(HopKind::ClientAccess, 0.0, 0.0),
            hop(HopKind::Peering, 0.0, 5.0),
            hop(HopKind::FrontEnd, 0.0, 0.0),
        ]);
        assert!(path.stretch().is_infinite());
    }

    #[test]
    fn render_mentions_every_hop() {
        let atlas = WorldAtlas::new();
        let path = RoutePath::new(vec![
            Hop {
                kind: HopKind::ClientAccess,
                metro: MetroId(0),
                location: GeoPoint::new(40.7, -74.0),
            },
            Hop {
                kind: HopKind::FrontEnd,
                metro: MetroId(1),
                location: GeoPoint::new(34.0, -118.2),
            },
        ]);
        let text = path.render(&atlas);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("access"));
        assert!(text.contains("front-end"));
    }
}
