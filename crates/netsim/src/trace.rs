//! Atlas-style measurement probes and traceroutes.
//!
//! "To troubleshoot, we used the RIPE Atlas testbed, a network of over
//! 8000 probes predominantly hosted in home networks. We issued traceroutes
//! from Atlas probes hosted within the same ISP-metro area pairs where we
//! have observed clients with poor performance" (§5).
//!
//! [`ProbeFleet`] is that testbed: probes pinned to `(AS, metro)` pairs,
//! each able to run a [`Traceroute`] towards the anycast VIP or a unicast
//! front-end. A traceroute reports per-hop RTT estimates consistent with
//! the latency model (cumulative propagation to each hop plus the fixed
//! edge costs), so a rendered trace explains exactly the latency the
//! beacon measured — the property that made the paper's case-study
//! methodology work.

use anycast_geo::MetroId;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::ids::{AsId, SiteId};
use crate::internet::{ClientAttachment, Internet, RouteDecision};
use crate::latency::AccessTech;
use crate::path::Hop;
use crate::sim::Day;

/// One measurement probe: a vantage point inside an eyeball AS at a metro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// Probe id (index in the fleet).
    pub id: u32,
    /// The attachment the probe measures from.
    pub attachment: ClientAttachment,
}

/// A traceroute: the resolved route plus per-hop RTT estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Traceroute {
    /// What was targeted (`None` = the anycast VIP).
    pub target: Option<SiteId>,
    /// The resolved route.
    pub decision: RouteDecision,
    /// Estimated RTT *to each hop*, ms, same length as the path.
    pub hop_rtts_ms: Vec<f64>,
}

impl Traceroute {
    /// Renders hop lines with RTTs, traceroute style.
    pub fn render(&self, internet: &Internet) -> String {
        let atlas = &internet.topology().atlas;
        let mut out = String::new();
        for (i, (hop, rtt)) in self
            .decision
            .path
            .hops()
            .iter()
            .zip(&self.hop_rtts_ms)
            .enumerate()
        {
            let metro = atlas.metro(hop.metro);
            out.push_str(&format!(
                "{:>2}  {:<10} {:<20} {:>7.1} ms\n",
                i + 1,
                hop.kind.label(),
                format!("{}, {}", metro.name, metro.country),
                rtt,
            ));
        }
        out
    }
}

/// A fleet of probes over a topology.
#[derive(Debug, Clone)]
pub struct ProbeFleet {
    probes: Vec<Probe>,
}

impl ProbeFleet {
    /// Deploys `n` probes across eyeball-AS attachment points, one per
    /// `(AS, metro)` pair, breadth-first over ASes so coverage is broad.
    pub fn deploy(internet: &Internet, n: usize, rng: &mut impl Rng) -> ProbeFleet {
        let topo = internet.topology();
        let mut pairs: Vec<(AsId, MetroId)> = topo
            .eyeballs
            .iter()
            .flat_map(|e| e.pops.iter().map(move |&m| (e.id, m)))
            .collect();
        pairs.shuffle(rng);
        pairs.truncate(n);
        let probes = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (as_id, metro))| Probe {
                id: i as u32,
                attachment: ClientAttachment {
                    as_id,
                    metro,
                    // Probes are "predominantly hosted in home networks":
                    // place them a commuting distance from the metro center.
                    location: topo
                        .atlas
                        .metro(metro)
                        .location()
                        .destination(rng.gen_range(0.0..360.0), rng.gen_range(2.0..40.0)),
                    access: AccessTech::sample(rng.gen()),
                },
            })
            .collect();
        ProbeFleet { probes }
    }

    /// The probes.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// Probes inside the given `(AS, metro)` pair — the paper's selection
    /// criterion ("probes hosted within the same ISP-metro area pairs
    /// where we have observed clients with poor performance").
    pub fn probes_in(&self, as_id: AsId, metro: MetroId) -> Vec<&Probe> {
        self.probes
            .iter()
            .filter(|p| p.attachment.as_id == as_id && p.attachment.metro == metro)
            .collect()
    }

    /// Runs a traceroute from a probe towards the anycast VIP
    /// (`target = None`) or a unicast front-end.
    pub fn traceroute(
        &self,
        internet: &Internet,
        probe: &Probe,
        target: Option<SiteId>,
        day: Day,
    ) -> Traceroute {
        let decision = match target {
            None => internet.anycast_route(&probe.attachment, day),
            Some(site) => internet.unicast_route(&probe.attachment, site, day),
        };
        let hop_rtts_ms = hop_rtts(internet, &probe.attachment, &decision);
        Traceroute {
            target,
            decision,
            hop_rtts_ms,
        }
    }
}

/// Per-hop RTT estimates: cumulative two-way propagation to each hop plus
/// the fixed edge costs, scaled so the final hop equals the decision's
/// base RTT (keeping trace and measurement consistent).
fn hop_rtts(internet: &Internet, client: &ClientAttachment, decision: &RouteDecision) -> Vec<f64> {
    let hops: &[Hop] = decision.path.hops();
    if hops.is_empty() {
        return Vec::new();
    }
    let cfg = internet.config();
    let mut cumulative_km = 0.0;
    let mut raw: Vec<f64> = Vec::with_capacity(hops.len());
    for (i, hop) in hops.iter().enumerate() {
        if i > 0 {
            cumulative_km += hops[i - 1].location.haversine_km(&hop.location);
        }
        let prop = 2.0 * cumulative_km * cfg.fiber_path_stretch / cfg.fiber_km_per_ms;
        let last_mile = client.access.last_mile_ms() * cfg.last_mile_scale;
        raw.push(prop + last_mile);
    }
    // Scale so the final hop matches the measured base RTT (absorbing the
    // per-hop processing, detours and congestion terms proportionally).
    let last = *raw.last().expect("non-empty");
    if last > 0.0 && decision.base_rtt_ms > 0.0 {
        let scale = decision.base_rtt_ms / last;
        for r in &mut raw {
            *r *= scale;
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fleet() -> (Internet, ProbeFleet) {
        let internet = Internet::new(NetConfig::small(), 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let fleet = ProbeFleet::deploy(&internet, 50, &mut rng);
        (internet, fleet)
    }

    #[test]
    fn fleet_deploys_requested_probes() {
        let (_, fleet) = fleet();
        assert_eq!(fleet.probes().len(), 50);
        // Ids are dense.
        for (i, p) in fleet.probes().iter().enumerate() {
            assert_eq!(p.id as usize, i);
        }
    }

    #[test]
    fn probes_are_findable_by_pair() {
        let (_, fleet) = fleet();
        let p = &fleet.probes()[0];
        let found = fleet.probes_in(p.attachment.as_id, p.attachment.metro);
        assert!(found.iter().any(|q| q.id == p.id));
    }

    #[test]
    fn traceroute_hop_rtts_are_monotone_and_end_at_base_rtt() {
        let (internet, fleet) = fleet();
        for probe in fleet.probes().iter().take(10) {
            let trace = fleet.traceroute(&internet, probe, None, Day(0));
            assert_eq!(trace.hop_rtts_ms.len(), trace.decision.path.len());
            for w in trace.hop_rtts_ms.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "hop RTTs must not decrease");
            }
            let last = *trace.hop_rtts_ms.last().unwrap();
            assert!((last - trace.decision.base_rtt_ms).abs() < 1e-6);
        }
    }

    #[test]
    fn unicast_traceroute_targets_the_site() {
        let (internet, fleet) = fleet();
        let site = internet.topology().cdn.site_ids().next().unwrap();
        let probe = &fleet.probes()[3];
        let trace = fleet.traceroute(&internet, probe, Some(site), Day(0));
        assert_eq!(trace.decision.site, site);
        assert_eq!(trace.target, Some(site));
    }

    #[test]
    fn render_is_one_line_per_hop() {
        let (internet, fleet) = fleet();
        let probe = &fleet.probes()[0];
        let trace = fleet.traceroute(&internet, probe, None, Day(0));
        assert_eq!(
            trace.render(&internet).lines().count(),
            trace.decision.path.len()
        );
    }

    #[test]
    fn traceroute_agrees_with_routing() {
        let (internet, fleet) = fleet();
        let probe = &fleet.probes()[5];
        let trace = fleet.traceroute(&internet, probe, None, Day(2));
        let route = internet.anycast_route(&probe.attachment, Day(2));
        assert_eq!(trace.decision, route);
    }
}
