//! Simulation parameters.
//!
//! Every knob that shapes the synthetic Internet lives here, with defaults
//! calibrated so the default world reproduces the paper's headline shapes
//! (≈20% of clients with a better unicast front-end; ≈55% of clients routed
//! to their closest front-end; churn of a few percent per weekday). The
//! calibration rationale for each default is given on the field.

/// Parameters for topology generation, routing pathologies, churn and the
/// latency model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Number of CDN front-end sites. The paper's CDN has "dozens of front
    /// end locations" and is compared to Level3 (62) and MaxCDN; default 44.
    pub n_sites: usize,
    /// Number of additional CDN peering locations that host a border router
    /// but no front-end. These create the §5 case-study gap between where
    /// traffic ingresses and where front-ends are.
    pub n_extra_borders: usize,
    /// Number of transit (tier-1-like) providers with global footprints.
    pub n_transit: usize,
    /// Number of metros in each transit provider's backbone.
    pub transit_pops: usize,
    /// Number of eyeball (access) ASes hosting clients.
    pub n_eyeball: usize,
    /// Maximum number of metros in an eyeball AS's footprint.
    pub eyeball_max_pops: usize,
    /// Fraction of eyeball ASes that peer directly with the CDN somewhere.
    /// The rest reach the CDN only through transit. Default 0.78: large
    /// eyeballs overwhelmingly peer with major CDNs directly.
    pub p_direct_peering: f64,
    /// Among directly-peering ASes, the fraction whose *only* peering with
    /// the CDN is at a single (possibly distant) location — the paper's
    /// "ISP's internal policy chooses to hand off traffic at a distant
    /// peering point" pathology (Moscow→Stockholm).
    pub p_remote_peering_only: f64,
    /// Among directly-peering multi-egress ASes, the fraction whose egress
    /// policy pins all CDN traffic to one fixed regional egress instead of
    /// hot-potato (the Denver→Phoenix case).
    pub p_fixed_regional_egress: f64,
    /// Probability that a given (AS, ingress) peering adjacency is
    /// **chronically** congested: the penalty applies every day. This is
    /// the small population of prefixes Figure 6 shows poor for five or
    /// more (often consecutive) days.
    pub p_chronic_congestion: f64,
    /// Per-day probability that an otherwise healthy adjacency suffers a
    /// **transient** congestion episode. Episodes are drawn independently
    /// per day, so most last exactly one day — Figure 6's "around 60%
    /// appear for only one day over the month".
    pub p_episodic_congestion: f64,
    /// Median of the lognormal stable congestion penalty (ms, RTT).
    pub congestion_ms_median: f64,
    /// Sigma of the stable congestion penalty lognormal.
    pub congestion_ms_sigma: f64,
    /// Probability that a flappy attachment point flips its route tie-break
    /// on a given weekday. Calibrated against Figure 7 *end to end*: an
    /// attachment-level flip only becomes a visible front-end switch when
    /// the alternative egress maps to a different site and the client is
    /// observed on both routes, so the attachment-level rates here are
    /// roughly 2.5× the client-visible rates the paper reports (~7% of
    /// clients switching on day one, ~21% over the week).
    pub weekday_flip_prob: f64,
    /// Same, on weekend days. Figure 7 shows churn under 0.5% on weekends
    /// ("network operators not pushing out changes during the weekend").
    pub weekend_flip_prob: f64,
    /// Fraction of (AS, metro) attachment points that are flappy at all;
    /// the rest never change routes. Figure 7 plateaus near 21% over a full
    /// week: most clients are stable.
    pub flappy_fraction: f64,
    /// One-way propagation speed in fiber, km per millisecond (~2/3 c).
    pub fiber_km_per_ms: f64,
    /// Multiplier on great-circle distance to account for fiber paths not
    /// following geodesics. 1.25 matches common transit-path stretch
    /// estimates.
    pub fiber_path_stretch: f64,
    /// Additional stretch on the transit-carried leg of a route. Prefixes
    /// announced from a single location (the measurement /24s, §3.1) reach
    /// most of the Internet via transit, whose paths detour through provider
    /// hubs; direct peering avoids this. The asymmetry makes the *unicast*
    /// probe to a distant front-end genuinely slower than anycast for
    /// well-served clients — which is why the paper's daily "any
    /// improvement" classification fires rarely for most prefixes.
    pub transit_detour_stretch: f64,
    /// Per-hop processing/serialization delay, ms (RTT, both directions).
    pub per_hop_ms: f64,
    /// Median last-mile RTT in ms by access technology is built into
    /// [`crate::latency::AccessTech`]; this scales all of them (1.0 = as
    /// modeled).
    pub last_mile_scale: f64,
    /// Median of the per-measurement additive jitter lognormal (ms).
    pub jitter_ms_median: f64,
    /// Sigma of the per-measurement jitter lognormal.
    pub jitter_ms_sigma: f64,
    /// Probability a single measurement hits a transient congestion spike.
    pub spike_prob: f64,
    /// Maximum transient spike size (ms); spikes are uniform in
    /// `[spike_min_ms, spike_max_ms]`.
    pub spike_min_ms: f64,
    /// See `spike_min_ms`.
    pub spike_max_ms: f64,
    /// Server processing time added to every HTTP fetch (ms, median).
    pub server_ms_median: f64,
    /// Sigma of the server processing lognormal.
    pub server_ms_sigma: f64,
    /// Fraction of CDN border routers whose IGP cost towards some front-ends
    /// is inflated (non-geographic internal topology, §5 case study 1).
    pub p_igp_inflated: f64,
    /// Probability that a given (AS, unicast-announcement) pair carries a
    /// stable extra path penalty. The measurement /24s are announced from a
    /// single location and carry no production traffic, so ISPs neither
    /// traffic-engineer nor hot-fix their routes towards them; a sizable
    /// share of such single-prefix paths are measurably worse than the
    /// anycast path to the very same building. This is why, in the paper,
    /// only 19% of prefixes see *any* daily-median improvement even though
    /// 45% of clients are not on their geographically closest front-end.
    pub p_unicast_path_penalty: f64,
    /// Median of the stable unicast path penalty, ms.
    pub unicast_penalty_ms_median: f64,
    /// Lognormal sigma of the unicast path penalty.
    pub unicast_penalty_ms_sigma: f64,
    /// Per-day probability that a border router's ingress→front-end mapping
    /// is remapped to its runner-up site for that day (internal maintenance
    /// and load management — the FastRoute-style interventions the paper
    /// cites). These are the *anycast-only* one-day events behind Figure
    /// 6's short-lived poor paths: unicast probes, pinned to their own
    /// sites, are unaffected.
    pub p_igp_episode: f64,
    /// Multiplier applied to the IGP cost of an inflated (border, site)
    /// pair.
    pub igp_inflation_factor: f64,
    /// Per-day probability that a front-end site suffers an **unplanned
    /// outage** (crash): its anycast announcement is withdrawn reactively,
    /// so the old catchment blackholes until BGP reconverges, and its
    /// unicast prefix points at a dead machine for the whole window.
    /// Default 0 — failure worlds are opt-in and the default world is
    /// byte-identical to pre-failure builds.
    pub p_site_outage: f64,
    /// Per-day probability that a site is taken down for a **maintenance
    /// drain** (pre-announced withdrawal; anycast clients move losslessly
    /// before the site goes dark). Rolled only on days without an outage.
    pub p_site_drain: f64,
    /// Duration of an unplanned outage window, seconds (≤ one day; windows
    /// never span midnight).
    pub outage_duration_s: f64,
    /// Duration of a maintenance-drain window, seconds (≤ one day).
    pub drain_duration_s: f64,
    /// How long an *unplanned* anycast withdrawal takes to propagate:
    /// clients whose steady route lands on the crashed site lose requests
    /// for this many seconds after the window opens, then recover via the
    /// next-best catchment (the paper's §2 "one routing step").
    pub bgp_reconvergence_s: f64,
    /// Present: generate an Internet-scale policy-routed AS graph
    /// ([`crate::worldgen`]) instead of the default small world, and route
    /// by valley-free best-path selection instead of distance ranking.
    /// `None` (the default) keeps every existing world byte-identical.
    pub worldgen: Option<crate::worldgen::WorldGenConfig>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            n_sites: 44,
            n_extra_borders: 10,
            n_transit: 6,
            transit_pops: 50,
            n_eyeball: 160,
            eyeball_max_pops: 12,
            p_direct_peering: 0.80,
            p_remote_peering_only: 0.05,
            p_fixed_regional_egress: 0.045,
            p_chronic_congestion: 0.02,
            p_episodic_congestion: 0.07,
            congestion_ms_median: 26.0,
            congestion_ms_sigma: 1.1,
            weekday_flip_prob: 0.42,
            weekend_flip_prob: 0.02,
            flappy_fraction: 0.42,
            fiber_km_per_ms: 200.0,
            fiber_path_stretch: 1.25,
            transit_detour_stretch: 1.45,
            per_hop_ms: 0.35,
            last_mile_scale: 1.0,
            jitter_ms_median: 2.0,
            jitter_ms_sigma: 0.12,
            spike_prob: 0.12,
            spike_min_ms: 10.0,
            spike_max_ms: 200.0,
            server_ms_median: 4.0,
            server_ms_sigma: 0.05,
            p_igp_inflated: 0.08,
            p_unicast_path_penalty: 0.55,
            unicast_penalty_ms_median: 4.0,
            unicast_penalty_ms_sigma: 0.8,
            p_igp_episode: 0.02,
            igp_inflation_factor: 3.0,
            p_site_outage: 0.0,
            p_site_drain: 0.0,
            outage_duration_s: 7_200.0,
            drain_duration_s: 14_400.0,
            bgp_reconvergence_s: 30.0,
            worldgen: None,
        }
    }
}

impl NetConfig {
    /// A small world for fast unit tests: fewer sites and ASes, same
    /// mechanisms.
    pub fn small() -> Self {
        NetConfig {
            n_sites: 12,
            n_extra_borders: 4,
            n_transit: 3,
            transit_pops: 20,
            n_eyeball: 40,
            ..Default::default()
        }
    }

    /// A pathology-free world: no remote peering, no fixed egress, no
    /// congested adjacencies, no IGP inflation, no churn. Anycast should be
    /// near-optimal here; used by ablations and as a test oracle.
    pub fn idealized() -> Self {
        NetConfig {
            p_remote_peering_only: 0.0,
            p_fixed_regional_egress: 0.0,
            p_chronic_congestion: 0.0,
            p_episodic_congestion: 0.0,
            p_igp_inflated: 0.0,
            p_unicast_path_penalty: 0.0,
            unicast_penalty_ms_median: 4.0,
            unicast_penalty_ms_sigma: 0.8,
            p_igp_episode: 0.0,
            flappy_fraction: 0.0,
            weekday_flip_prob: 0.0,
            weekend_flip_prob: 0.0,
            ..Default::default()
        }
    }

    /// Validates parameter ranges, returning a description of the first
    /// violated constraint. Called by `Internet::new` so a bad sweep
    /// parameter fails loudly at construction time, not as a NaN ten
    /// minutes into an experiment.
    pub fn validate(&self) -> Result<(), String> {
        fn prob(name: &str, v: f64) -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be a probability, got {v}"))
            }
        }
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(format!("{name} must be positive and finite, got {v}"))
            }
        }
        if self.n_sites == 0 {
            return Err("n_sites must be at least 1".into());
        }
        if self.n_eyeball == 0 {
            return Err("n_eyeball must be at least 1".into());
        }
        if self.eyeball_max_pops == 0 {
            return Err("eyeball_max_pops must be at least 1".into());
        }
        prob("p_direct_peering", self.p_direct_peering)?;
        prob("p_remote_peering_only", self.p_remote_peering_only)?;
        prob("p_fixed_regional_egress", self.p_fixed_regional_egress)?;
        prob("p_chronic_congestion", self.p_chronic_congestion)?;
        prob("p_episodic_congestion", self.p_episodic_congestion)?;
        prob("weekday_flip_prob", self.weekday_flip_prob)?;
        prob("weekend_flip_prob", self.weekend_flip_prob)?;
        prob("flappy_fraction", self.flappy_fraction)?;
        prob("spike_prob", self.spike_prob)?;
        prob("p_igp_inflated", self.p_igp_inflated)?;
        prob("p_igp_episode", self.p_igp_episode)?;
        prob("p_site_outage", self.p_site_outage)?;
        prob("p_site_drain", self.p_site_drain)?;
        pos("outage_duration_s", self.outage_duration_s)?;
        pos("drain_duration_s", self.drain_duration_s)?;
        if self.outage_duration_s > 86_400.0 || self.drain_duration_s > 86_400.0 {
            return Err("outage/drain windows must fit within one day".into());
        }
        if self.bgp_reconvergence_s < 0.0 || !self.bgp_reconvergence_s.is_finite() {
            return Err(format!(
                "bgp_reconvergence_s must be non-negative and finite, got {}",
                self.bgp_reconvergence_s
            ));
        }
        prob("p_unicast_path_penalty", self.p_unicast_path_penalty)?;
        pos("unicast_penalty_ms_median", self.unicast_penalty_ms_median)?;
        pos("fiber_km_per_ms", self.fiber_km_per_ms)?;
        pos("fiber_path_stretch", self.fiber_path_stretch)?;
        if self.transit_detour_stretch < 1.0 || !self.transit_detour_stretch.is_finite() {
            return Err(format!(
                "transit_detour_stretch must be >= 1, got {}",
                self.transit_detour_stretch
            ));
        }
        pos("congestion_ms_median", self.congestion_ms_median)?;
        pos("jitter_ms_median", self.jitter_ms_median)?;
        pos("server_ms_median", self.server_ms_median)?;
        pos("igp_inflation_factor", self.igp_inflation_factor)?;
        if self.per_hop_ms < 0.0 || self.last_mile_scale < 0.0 {
            return Err("per_hop_ms and last_mile_scale must be non-negative".into());
        }
        if self.spike_min_ms < 0.0 || self.spike_max_ms < self.spike_min_ms {
            return Err("spike range must satisfy 0 <= min <= max".into());
        }
        if let Some(wg) = &self.worldgen {
            wg.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        NetConfig::default().validate().unwrap();
        NetConfig::small().validate().unwrap();
        NetConfig::idealized().validate().unwrap();
    }

    #[test]
    fn bad_probability_rejected() {
        let cfg = NetConfig {
            p_direct_peering: 1.5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_spike_range_rejected() {
        let cfg = NetConfig {
            spike_min_ms: 50.0,
            spike_max_ms: 10.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_sites_rejected() {
        let cfg = NetConfig {
            n_sites: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn negative_speed_rejected() {
        let cfg = NetConfig {
            fiber_km_per_ms: -1.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn failure_knobs_default_off_and_validate() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.p_site_outage, 0.0);
        assert_eq!(cfg.p_site_drain, 0.0);
        let bad = NetConfig {
            outage_duration_s: 200_000.0,
            ..NetConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NetConfig {
            bgp_reconvergence_s: -1.0,
            ..NetConfig::default()
        };
        assert!(bad.validate().is_err());
        let ok = NetConfig {
            p_site_outage: 0.3,
            p_site_drain: 0.1,
            ..NetConfig::small()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn idealized_has_no_pathologies() {
        let cfg = NetConfig::idealized();
        assert_eq!(cfg.p_remote_peering_only, 0.0);
        assert_eq!(cfg.p_chronic_congestion, 0.0);
        assert_eq!(cfg.p_episodic_congestion, 0.0);
        assert_eq!(cfg.flappy_fraction, 0.0);
    }
}
