//! The CDN's intradomain routing: ingress border → front-end selection.
//!
//! Once anycast traffic enters the CDN at a border router, "intradomain
//! policy then directs the client's request to the front-end nearest to the
//! peering point, not to the client" (§5). *Nearest* is in IGP cost, not
//! geography: the paper's first case study is a border router whose internal
//! route to the geographically nearest front-end is long, so a different
//! front-end wins.
//!
//! IGP cost here is geographic distance times a per-`(border, site)`
//! multiplier from the topology (1.0 normally; inflated for a configured
//! fraction of peering-only borders).

use crate::ids::{BorderId, SiteId};
use crate::topology::Topology;

/// IGP cost from a border router to a front-end site.
pub fn igp_cost(topo: &Topology, border: BorderId, site: SiteId) -> f64 {
    let b = topo.atlas.metro(topo.cdn.border_metro(border)).location();
    let s = topo.atlas.metro(topo.cdn.site_metro(site)).location();
    let mult = topo.cdn.igp_multiplier[border.0 as usize][site.0 as usize];
    b.haversine_km(&s) * mult
}

/// The front-end the CDN's IGP selects for traffic ingressing at `border`:
/// minimum IGP cost, ties broken by site id (deterministic).
pub fn select_site(topo: &Topology, border: BorderId) -> SiteId {
    select_site_ranked(topo, border, 0)
}

/// The `rank`-th best front-end by IGP cost from `border` (rank 0 = normal
/// selection; rank 1 = the runner-up a maintenance episode diverts to).
/// Rank is clamped to the site count.
pub fn select_site_ranked(topo: &Topology, border: BorderId, rank: usize) -> SiteId {
    // Colocated site always wins normal selection: zero distance.
    if rank == 0 {
        if let Some(site) = topo.cdn.borders[border.0 as usize].colocated_site {
            return site;
        }
    }
    let mut ranked: Vec<SiteId> = topo.cdn.site_ids().collect();
    ranked.sort_by(|a, b| {
        igp_cost(topo, border, *a)
            .total_cmp(&igp_cost(topo, border, *b))
            .then(a.cmp(b))
    });
    ranked[rank.min(ranked.len() - 1)]
}

/// The best live front-end by IGP cost from `border` when the sites in
/// `down` are out of service (crashed or drained, see
/// [`crate::outage::OutageModel`]): the CDN's IGP simply stops advertising
/// internal routes to a dead site, so the next-cheapest live site wins.
/// Returns `None` only when *every* site is down. With an empty `down` the
/// result equals [`select_site_ranked`].
pub fn select_site_avoiding(
    topo: &Topology,
    border: BorderId,
    rank: usize,
    down: &[SiteId],
) -> Option<SiteId> {
    if down.is_empty() {
        return Some(select_site_ranked(topo, border, rank));
    }
    if rank == 0 {
        if let Some(site) = topo.cdn.borders[border.0 as usize].colocated_site {
            if !down.contains(&site) {
                return Some(site);
            }
        }
    }
    let mut ranked: Vec<SiteId> = topo.cdn.site_ids().filter(|s| !down.contains(s)).collect();
    if ranked.is_empty() {
        return None;
    }
    ranked.sort_by(|a, b| {
        igp_cost(topo, border, *a)
            .total_cmp(&igp_cost(topo, border, *b))
            .then(a.cmp(b))
    });
    Some(ranked[rank.min(ranked.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;

    #[test]
    fn ranked_selection_is_ordered_and_distinct() {
        let topo = Topology::generate(&NetConfig::small(), 9);
        for b in topo.cdn.border_ids() {
            let first = select_site_ranked(&topo, b, 0);
            let second = select_site_ranked(&topo, b, 1);
            assert_ne!(first, second, "runner-up must differ");
            // Huge ranks clamp instead of panicking.
            let last = select_site_ranked(&topo, b, 10_000);
            assert!(topo.cdn.site_ids().any(|s| s == last));
        }
    }

    #[test]
    fn avoiding_skips_down_sites() {
        let topo = Topology::generate(&NetConfig::small(), 9);
        for b in topo.cdn.border_ids() {
            // No down sites: exact agreement with ranked selection.
            assert_eq!(
                select_site_avoiding(&topo, b, 0, &[]),
                Some(select_site_ranked(&topo, b, 0))
            );
            // The normally-selected site goes down: the runner-up wins.
            let normal = select_site(&topo, b);
            let moved = select_site_avoiding(&topo, b, 0, &[normal]).unwrap();
            assert_ne!(moved, normal);
            // Everything down: nothing to serve from.
            let all: Vec<SiteId> = topo.cdn.site_ids().collect();
            assert_eq!(select_site_avoiding(&topo, b, 0, &all), None);
        }
    }

    #[test]
    fn colocated_border_selects_its_site() {
        let topo = Topology::generate(&NetConfig::small(), 1);
        for (b_idx, border) in topo.cdn.borders.iter().enumerate() {
            if let Some(site) = border.colocated_site {
                assert_eq!(select_site(&topo, BorderId(b_idx as u16)), site);
            }
        }
    }

    #[test]
    fn selection_minimizes_igp_cost() {
        let topo = Topology::generate(&NetConfig::small(), 2);
        for b in topo.cdn.border_ids() {
            let chosen = select_site(&topo, b);
            let chosen_cost = igp_cost(&topo, b, chosen);
            for s in topo.cdn.site_ids() {
                assert!(chosen_cost <= igp_cost(&topo, b, s) + 1e-9);
            }
        }
    }

    #[test]
    fn inflation_can_divert_from_geo_nearest() {
        // Build a world with guaranteed inflation and check that at least
        // one peering-only border is diverted from its geographically
        // nearest site — the §5 case-study mechanism.
        let cfg = NetConfig {
            p_igp_inflated: 1.0,
            ..NetConfig::small()
        };
        let topo = Topology::generate(&cfg, 3);
        let mut diverted = 0;
        for (b_idx, border) in topo.cdn.borders.iter().enumerate() {
            if border.colocated_site.is_some() {
                continue;
            }
            let b = BorderId(b_idx as u16);
            let bloc = topo.atlas.metro(border.metro).location();
            let geo_nearest = topo
                .cdn
                .site_ids()
                .min_by(|x, y| {
                    let dx = topo
                        .atlas
                        .metro(topo.cdn.site_metro(*x))
                        .location()
                        .haversine_km(&bloc);
                    let dy = topo
                        .atlas
                        .metro(topo.cdn.site_metro(*y))
                        .location()
                        .haversine_km(&bloc);
                    dx.total_cmp(&dy)
                })
                .unwrap();
            if select_site(&topo, b) != geo_nearest {
                diverted += 1;
            }
        }
        assert!(diverted > 0, "inflation never diverted any border");
    }

    #[test]
    fn no_inflation_means_geo_nearest() {
        let cfg = NetConfig {
            p_igp_inflated: 0.0,
            ..NetConfig::small()
        };
        let topo = Topology::generate(&cfg, 4);
        for (b_idx, border) in topo.cdn.borders.iter().enumerate() {
            let b = BorderId(b_idx as u16);
            let bloc = topo.atlas.metro(border.metro).location();
            let geo_nearest = topo
                .cdn
                .site_ids()
                .min_by(|x, y| {
                    let dx = topo
                        .atlas
                        .metro(topo.cdn.site_metro(*x))
                        .location()
                        .haversine_km(&bloc);
                    let dy = topo
                        .atlas
                        .metro(topo.cdn.site_metro(*y))
                        .location()
                        .haversine_km(&bloc);
                    dx.total_cmp(&dy).then(x.cmp(y))
                })
                .unwrap();
            assert_eq!(select_site(&topo, b), geo_nearest, "border {b_idx}");
        }
    }
}
