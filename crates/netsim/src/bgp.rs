//! BGP-style route selection on the client side.
//!
//! The defining property of anycast (§2) is that the client→front-end
//! mapping is "at the mercy of Internet routing protocols". This module
//! implements that mercy: given a client's AS and attachment metro, it
//! decides where the client's traffic *enters the CDN* — without ever
//! consulting latency, exactly like real BGP.
//!
//! Selection order mirrors the standard decision process, reduced to the
//! mechanisms the paper implicates:
//!
//! 1. **Local preference**: a route learned over direct peering beats a
//!    route via transit (shorter AS path too, so both classic criteria
//!    agree).
//! 2. **Intradomain (hot-potato) tie-break**: among equally-preferred
//!    egresses, the ISP picks the one cheapest *for itself* — nearest to the
//!    client attachment — unless its [`EgressPolicy`] pins a fixed egress.
//! 3. **Churn**: the day's [`ChurnModel`] rank can demote the best candidate
//!    to the runner-up, modelling tie-break flips from config pushes.

use anycast_geo::MetroId;

use crate::ids::{AsId, BorderId};
use crate::topology::Topology;

/// How an eyeball AS chooses among multiple egress points towards the CDN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressPolicy {
    /// Hand traffic off at the egress nearest to the client attachment —
    /// the ISP-cost-minimizing default.
    HotPotato,
    /// All CDN traffic leaves at one fixed border regardless of where the
    /// client is — the paper's "ISP carrying traffic from a client in
    /// Denver to Phoenix" pathology.
    FixedEgress(BorderId),
}

/// Where the client's traffic enters the CDN, and how it got there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EgressDecision {
    /// CDN border router where traffic ingresses.
    pub ingress: BorderId,
    /// Transit provider carrying the traffic, if the route is not direct
    /// peering.
    pub via_transit: Option<AsId>,
    /// Metro where the client's ISP hands traffic to the transit provider
    /// (`None` for direct peering).
    pub handoff_metro: Option<MetroId>,
}

/// Selects the CDN ingress for the **anycast** prefix, which every border
/// router announces. `rank` is the churn-model selection rank in force
/// (0 = the ISP's preferred candidate, 1 = the runner-up after a tie-break
/// flip); callers obtain it from [`crate::churn::ChurnModel`].
pub fn select_anycast_ingress(
    topo: &Topology,
    rank: usize,
    as_id: AsId,
    client_metro: MetroId,
) -> EgressDecision {
    let eyeball = topo.eyeball(as_id);
    if !eyeball.peering_borders.is_empty() {
        // Direct peering wins on local-pref and AS-path length.
        match eyeball.egress_policy {
            EgressPolicy::FixedEgress(b) => EgressDecision {
                ingress: b,
                via_transit: None,
                handoff_metro: None,
            },
            EgressPolicy::HotPotato => {
                let ingress = rank_by_distance(topo, &eyeball.peering_borders, client_metro, rank);
                EgressDecision {
                    ingress,
                    via_transit: None,
                    handoff_metro: None,
                }
            }
        }
    } else {
        // Transit-only: churn may flip the provider choice.
        let provider_idx = rank % eyeball.transit.len();
        let provider = topo.transit(eyeball.transit[provider_idx]);
        let handoff = nearest_metro(topo, &provider.pops, client_metro);
        // The transit provider is itself hot-potato: it exits at its peering
        // point nearest the handoff.
        let ingress = rank_by_distance(topo, &provider.peering_borders, handoff, 0);
        EgressDecision {
            ingress,
            via_transit: Some(provider.id),
            handoff_metro: Some(handoff),
        }
    }
}

/// Like [`select_anycast_ingress`], but with the borders in `withdrawn` no
/// longer announcing the anycast prefix (their colocated front-ends are
/// down, see [`crate::outage::OutageModel`]). Every route learned through a
/// withdrawn border disappears from the candidate set and selection re-runs
/// over what remains — this is the BGP re-resolution that gives anycast its
/// automatic failover (§2). With an empty `withdrawn` the result is
/// identical to [`select_anycast_ingress`].
///
/// Corner cases follow BGP semantics: a [`EgressPolicy::FixedEgress`] AS
/// whose pinned border is withdrawn has no route over that session and
/// falls back to hot-potato over its remaining peerings (or transit); a
/// transit provider whose peerings are all withdrawn delivers at the
/// nearest still-announcing border.
pub fn select_anycast_ingress_avoiding(
    topo: &Topology,
    rank: usize,
    as_id: AsId,
    client_metro: MetroId,
    withdrawn: &[BorderId],
) -> EgressDecision {
    if withdrawn.is_empty() {
        return select_anycast_ingress(topo, rank, as_id, client_metro);
    }
    let live = |b: &BorderId| !withdrawn.contains(b);
    let eyeball = topo.eyeball(as_id);
    let peering: Vec<BorderId> = eyeball
        .peering_borders
        .iter()
        .copied()
        .filter(|b| live(b))
        .collect();
    if !peering.is_empty() {
        match eyeball.egress_policy {
            EgressPolicy::FixedEgress(b) if live(&b) => {
                return EgressDecision {
                    ingress: b,
                    via_transit: None,
                    handoff_metro: None,
                }
            }
            // Pinned egress lost its route (or the AS is hot-potato):
            // pick among the surviving direct peerings.
            _ => {
                let ingress = rank_by_distance(topo, &peering, client_metro, rank);
                return EgressDecision {
                    ingress,
                    via_transit: None,
                    handoff_metro: None,
                };
            }
        }
    }
    // No surviving direct peering: the route arrives via transit.
    let provider_idx = rank % eyeball.transit.len();
    let provider = topo.transit(eyeball.transit[provider_idx]);
    let handoff = nearest_metro(topo, &provider.pops, client_metro);
    let provider_live: Vec<BorderId> = provider
        .peering_borders
        .iter()
        .copied()
        .filter(|b| live(b))
        .collect();
    let candidates = if provider_live.is_empty() {
        // The provider hears the announcement from other ASes even where it
        // does not peer directly; deliver at the nearest live border of the
        // CDN overall. (Reachable only in worlds where almost every border
        // is withdrawn.)
        topo.cdn.border_ids().filter(|b| live(b)).collect()
    } else {
        provider_live
    };
    debug_assert!(
        !candidates.is_empty(),
        "all anycast announcements withdrawn"
    );
    let ingress = rank_by_distance(topo, &candidates, handoff, 0);
    EgressDecision {
        ingress,
        via_transit: Some(provider.id),
        handoff_metro: Some(handoff),
    }
}

/// Selects the CDN ingress for a **unicast** per-site prefix, which only the
/// border router colocated with the site announces (§3.1). The client's ISP
/// hears it over direct peering only if it peers at exactly that border;
/// otherwise the route arrives via transit. Either way traffic ingresses
/// near the front-end, which is the property the paper's measurement design
/// relies on.
pub fn select_unicast_ingress(
    topo: &Topology,
    rank: usize,
    as_id: AsId,
    client_metro: MetroId,
    announcement: BorderId,
) -> EgressDecision {
    let eyeball = topo.eyeball(as_id);
    if eyeball.peering_borders.contains(&announcement) {
        return EgressDecision {
            ingress: announcement,
            via_transit: None,
            handoff_metro: None,
        };
    }
    // Via transit. Provider choice matches the anycast rank so a churn flip
    // moves both routes coherently.
    let provider_idx = rank % eyeball.transit.len();
    let provider = topo.transit(eyeball.transit[provider_idx]);
    let handoff = nearest_metro(topo, &provider.pops, client_metro);
    // The transit provider delivers to the announcement border if it peers
    // there, else to its own peering point nearest the announcement.
    let ingress = if provider.peering_borders.contains(&announcement) {
        announcement
    } else {
        let target = topo.cdn.border_metro(announcement);
        rank_by_distance(topo, &provider.peering_borders, target, 0)
    };
    EgressDecision {
        ingress,
        via_transit: Some(provider.id),
        handoff_metro: Some(handoff),
    }
}

/// The candidate at `rank` when borders are sorted by distance from
/// `from_metro` (rank clamped to the candidate count). Deterministic
/// tie-break on border id.
fn rank_by_distance(
    topo: &Topology,
    candidates: &[BorderId],
    from_metro: MetroId,
    rank: usize,
) -> BorderId {
    debug_assert!(!candidates.is_empty());
    let from = topo.atlas.metro(from_metro).location();
    let mut ranked: Vec<(BorderId, f64)> = candidates
        .iter()
        .map(|&b| {
            let loc = topo.atlas.metro(topo.cdn.border_metro(b)).location();
            (b, loc.haversine_km(&from))
        })
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    ranked[rank.min(ranked.len() - 1)].0
}

/// The metro in `metros` nearest to `from_metro`.
fn nearest_metro(topo: &Topology, metros: &[MetroId], from_metro: MetroId) -> MetroId {
    debug_assert!(!metros.is_empty());
    let from = topo.atlas.metro(from_metro).location();
    *metros
        .iter()
        .min_by(|a, b| {
            topo.atlas
                .metro(**a)
                .location()
                .haversine_km(&from)
                .total_cmp(&topo.atlas.metro(**b).location().haversine_km(&from))
                .then(a.cmp(b))
        })
        .expect("non-empty metro list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;

    fn world() -> Topology {
        Topology::generate(&NetConfig::small(), 42)
    }

    fn some_peered_as(topo: &Topology) -> AsId {
        topo.eyeballs
            .iter()
            .find(|e| {
                e.peering_borders.len() > 1 && matches!(e.egress_policy, EgressPolicy::HotPotato)
            })
            .expect("a multi-homed hot-potato AS exists")
            .id
    }

    fn some_transit_only_as(topo: &Topology) -> AsId {
        topo.eyeballs
            .iter()
            .find(|e| e.is_transit_only())
            .expect("a transit-only AS exists")
            .id
    }

    #[test]
    fn direct_peering_avoids_transit() {
        let topo = world();
        let as_id = some_peered_as(&topo);
        let metro = topo.eyeball(as_id).home_metro;
        let d = select_anycast_ingress(&topo, 0, as_id, metro);
        assert!(d.via_transit.is_none());
        assert!(d.handoff_metro.is_none());
        assert!(topo.eyeball(as_id).peering_borders.contains(&d.ingress));
    }

    #[test]
    fn hot_potato_rank0_picks_nearest_egress() {
        let topo = world();
        let as_id = some_peered_as(&topo);
        let e = topo.eyeball(as_id);
        let metro = e.home_metro;
        let d = select_anycast_ingress(&topo, 0, as_id, metro);
        let from = topo.atlas.metro(metro).location();
        let chosen_d = topo
            .atlas
            .metro(topo.cdn.border_metro(d.ingress))
            .location()
            .haversine_km(&from);
        for &b in &e.peering_borders {
            let alt = topo
                .atlas
                .metro(topo.cdn.border_metro(b))
                .location()
                .haversine_km(&from);
            assert!(chosen_d <= alt + 1e-9);
        }
    }

    #[test]
    fn rank1_selects_runner_up() {
        let topo = world();
        let as_id = some_peered_as(&topo);
        let metro = topo.eyeball(as_id).home_metro;
        let best = select_anycast_ingress(&topo, 0, as_id, metro);
        let second = select_anycast_ingress(&topo, 1, as_id, metro);
        assert_ne!(best.ingress, second.ingress);
        // The runner-up is farther (or equal) by construction.
        let from = topo.atlas.metro(metro).location();
        let d0 = topo
            .atlas
            .metro(topo.cdn.border_metro(best.ingress))
            .location()
            .haversine_km(&from);
        let d1 = topo
            .atlas
            .metro(topo.cdn.border_metro(second.ingress))
            .location()
            .haversine_km(&from);
        assert!(d1 >= d0);
    }

    #[test]
    fn huge_rank_clamps_to_worst_candidate() {
        let topo = world();
        let as_id = some_peered_as(&topo);
        let metro = topo.eyeball(as_id).home_metro;
        let n = topo.eyeball(as_id).peering_borders.len();
        let clamped = select_anycast_ingress(&topo, 999, as_id, metro);
        let last = select_anycast_ingress(&topo, n - 1, as_id, metro);
        assert_eq!(clamped.ingress, last.ingress);
    }

    #[test]
    fn fixed_egress_ignores_client_location_and_rank() {
        let topo = world();
        let Some(e) = topo
            .eyeballs
            .iter()
            .find(|e| matches!(e.egress_policy, EgressPolicy::FixedEgress(_)))
        else {
            // Small worlds may not roll a fixed-egress AS; the default world
            // test in topology.rs guarantees they exist at scale.
            return;
        };
        let EgressPolicy::FixedEgress(pinned) = e.egress_policy else {
            unreachable!()
        };
        for &m in &e.pops {
            for rank in 0..2 {
                let d = select_anycast_ingress(&topo, rank, e.id, m);
                assert_eq!(d.ingress, pinned);
            }
        }
    }

    #[test]
    fn transit_only_goes_via_provider() {
        let topo = world();
        let as_id = some_transit_only_as(&topo);
        let metro = topo.eyeball(as_id).home_metro;
        let d = select_anycast_ingress(&topo, 0, as_id, metro);
        let provider = d.via_transit.expect("must use transit");
        assert!(topo.is_transit(provider));
        let handoff = d.handoff_metro.expect("handoff recorded");
        assert!(topo.transit(provider).pops.contains(&handoff));
        assert!(topo.transit(provider).peering_borders.contains(&d.ingress));
    }

    #[test]
    fn unicast_ingresses_at_announcement_when_peered_there() {
        let topo = world();
        // Find an AS that peers at some site-colocated border.
        for e in &topo.eyeballs {
            for &b in &e.peering_borders {
                if let Some(site) = topo.cdn.borders[b.0 as usize].colocated_site {
                    let ann = topo.cdn.unicast_announcement_border(site);
                    assert_eq!(ann, b);
                    let d = select_unicast_ingress(&topo, 0, e.id, e.home_metro, ann);
                    assert_eq!(d.ingress, ann);
                    assert!(d.via_transit.is_none());
                    return;
                }
            }
        }
        panic!("no AS peers at any site border in this world");
    }

    #[test]
    fn unicast_via_transit_targets_announcement() {
        let topo = world();
        let as_id = some_transit_only_as(&topo);
        let metro = topo.eyeball(as_id).home_metro;
        let site = topo.cdn.site_ids().next().unwrap();
        let ann = topo.cdn.unicast_announcement_border(site);
        let d = select_unicast_ingress(&topo, 0, as_id, metro, ann);
        let provider = d.via_transit.expect("transit-only must use transit");
        if topo.transit(provider).peering_borders.contains(&ann) {
            assert_eq!(d.ingress, ann);
        } else {
            assert!(topo.transit(provider).peering_borders.contains(&d.ingress));
        }
    }

    #[test]
    fn avoiding_nothing_matches_plain_selection() {
        let topo = world();
        for e in &topo.eyeballs {
            for rank in 0..2 {
                let plain = select_anycast_ingress(&topo, rank, e.id, e.home_metro);
                let avoid = select_anycast_ingress_avoiding(&topo, rank, e.id, e.home_metro, &[]);
                assert_eq!(plain, avoid);
            }
        }
    }

    #[test]
    fn withdrawn_border_is_never_selected() {
        let topo = world();
        for e in &topo.eyeballs {
            let plain = select_anycast_ingress(&topo, 0, e.id, e.home_metro);
            let withdrawn = [plain.ingress];
            let moved = select_anycast_ingress_avoiding(&topo, 0, e.id, e.home_metro, &withdrawn);
            assert_ne!(moved.ingress, plain.ingress, "AS {:?}", e.id);
        }
    }

    #[test]
    fn fixed_egress_falls_back_when_pinned_border_withdrawn() {
        let topo = world();
        let Some(e) = topo
            .eyeballs
            .iter()
            .find(|e| matches!(e.egress_policy, EgressPolicy::FixedEgress(_)))
        else {
            return;
        };
        let EgressPolicy::FixedEgress(pinned) = e.egress_policy else {
            unreachable!()
        };
        let d = select_anycast_ingress_avoiding(&topo, 0, e.id, e.home_metro, &[pinned]);
        assert_ne!(d.ingress, pinned);
    }

    #[test]
    fn selection_is_pure() {
        let topo = world();
        let as_id = some_peered_as(&topo);
        let metro = topo.eyeball(as_id).home_metro;
        for rank in 0..3 {
            let a = select_anycast_ingress(&topo, rank, as_id, metro);
            let b = select_anycast_ingress(&topo, rank, as_id, metro);
            assert_eq!(a, b);
        }
    }
}
