//! The AS-level policy graph: classified nodes, Gao-Rexford edges, and the
//! CDN's peering/transit sessions.
//!
//! Nodes are dense `u32` indexes (the same values as the bridged
//! [`crate::ids::AsId`]s), adjacency is CSR (one `offsets`/`targets` pair
//! per relationship kind), so a 75k-AS world with ~2 edges per AS costs a
//! few megabytes and BFS passes touch memory sequentially.

use anycast_geo::MetroId;

use crate::ids::BorderId;

/// The business class of an AS, following the standard
/// enterprise/transit/hypergiant classification used by AS-graph studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsClass {
    /// Enterprise customer / access ISP: hosts clients, buys transit,
    /// occasionally peers with the CDN directly.
    Ec,
    /// Small (regional) transit provider: sells transit to ECs, buys from
    /// large transit providers, peers regionally.
    Stp,
    /// Large (tier-1-like) transit provider: global backbone, provider-free,
    /// full peer mesh with the other LTPs.
    Ltp,
    /// Content/access hypergiant: massive peering footprint, no customers.
    Hypergiant,
}

impl AsClass {
    /// Stable one-byte code (used in compact tables and bench output).
    pub fn code(self) -> u8 {
        match self {
            AsClass::Ec => 0,
            AsClass::Stp => 1,
            AsClass::Ltp => 2,
            AsClass::Hypergiant => 3,
        }
    }
}

/// Compressed sparse row adjacency: `targets[offsets[v]..offsets[v+1]]` are
/// `v`'s neighbors under one relationship kind, sorted ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds the CSR from unsorted `(from, to)` pairs over `n` nodes.
    pub fn from_pairs(n: usize, mut edges: Vec<(u32, u32)>) -> Csr {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0u32; n + 1];
        for &(from, _) in &edges {
            offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = edges.into_iter().map(|(_, to)| to).collect();
        Csr { offsets, targets }
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Total number of stored edges.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the CSR stores no edges.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Bytes used by the adjacency arrays.
    pub fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.targets.len()) * std::mem::size_of::<u32>()
    }
}

/// How an AS interconnects with the CDN on one BGP session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdnRelation {
    /// The CDN buys transit from this AS: the AS learns the anycast prefix
    /// *from a customer*, so it re-exports it to everyone (providers, peers,
    /// customers) — these sessions are what makes the prefix globally
    /// reachable.
    Transit,
    /// Settlement-free peering: the AS learns the prefix *from a peer* and
    /// re-exports it only to its customers.
    Peer,
}

/// One AS↔CDN BGP session: where (which border routers) the AS can hand
/// traffic to the CDN, and under which business relationship.
#[derive(Debug, Clone, PartialEq)]
pub struct CdnSession {
    /// The adjacent AS (graph node index).
    pub node: u32,
    /// Business relationship of the session.
    pub relation: CdnRelation,
    /// Border routers where the session is established, sorted ascending.
    /// Hot-potato handoff picks among these per downstream neighbor.
    pub borders: Vec<BorderId>,
}

/// Sentinel for "no CDN session" in [`PolicyGraph::session_of`].
pub const NO_SESSION: u32 = u32::MAX;

/// The generated AS-level topology: classes, homes, Gao-Rexford adjacency
/// and CDN sessions. Routing over it lives in [`crate::worldgen::policy`].
#[derive(Debug, Clone)]
pub struct PolicyGraph {
    /// Node count.
    pub n: u32,
    /// Business class per node.
    pub class: Vec<AsClass>,
    /// Home metro per node (footprints and hot-potato distances anchor
    /// here).
    pub home_metro: Vec<MetroId>,
    /// `providers.neighbors(v)` = ASes `v` buys transit from.
    pub providers: Csr,
    /// `customers.neighbors(v)` = ASes that buy transit from `v` (the exact
    /// transpose of `providers`).
    pub customers: Csr,
    /// `peers.neighbors(v)` = settlement-free peers of `v` (symmetric).
    pub peers: Csr,
    /// CDN sessions, indexed by the values in `session_of`.
    pub sessions: Vec<CdnSession>,
    /// Per node: index into `sessions`, or [`NO_SESSION`].
    pub session_of: Vec<u32>,
}

impl PolicyGraph {
    /// The CDN session of `v`, if it has one.
    pub fn session(&self, v: u32) -> Option<&CdnSession> {
        match self.session_of[v as usize] {
            NO_SESSION => None,
            s => Some(&self.sessions[s as usize]),
        }
    }

    /// Total directed provider/customer edge count plus peer edge count
    /// (each undirected relationship counted once).
    pub fn edge_count(&self) -> usize {
        self.providers.len() + self.peers.len() / 2
    }

    /// Bytes used by the adjacency + attribute arrays.
    pub fn memory_bytes(&self) -> usize {
        self.providers.memory_bytes()
            + self.customers.memory_bytes()
            + self.peers.memory_bytes()
            + self.class.len()
            + self.home_metro.len() * std::mem::size_of::<MetroId>()
            + self.session_of.len() * 4
            + self
                .sessions
                .iter()
                .map(|s| std::mem::size_of::<CdnSession>() + s.borders.len() * 2)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip_sorted_dedup() {
        let csr = Csr::from_pairs(4, vec![(2, 1), (0, 3), (0, 1), (2, 1), (0, 3)]);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[1]);
        assert_eq!(csr.neighbors(3), &[] as &[u32]);
        assert_eq!(csr.len(), 3);
    }

    #[test]
    fn class_codes_are_stable() {
        assert_eq!(AsClass::Ec.code(), 0);
        assert_eq!(AsClass::Stp.code(), 1);
        assert_eq!(AsClass::Ltp.code(), 2);
        assert_eq!(AsClass::Hypergiant.code(), 3);
    }
}
