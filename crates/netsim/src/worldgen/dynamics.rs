//! Mid-day route dynamics over the policy graph.
//!
//! "Anycast Performance in Context" finds that route *dynamics* — path
//! flaps and egress changes, not load — dominate anycast instability. This
//! module schedules three deterministic event kinds per day:
//!
//! * **session flap** — one AS↔CDN BGP session drops for a window; every
//!   route through that session re-resolves (the dirty subtree of the
//!   catchment BFS recomputes);
//! * **border flap** — one CDN border router withdraws the anycast
//!   announcement for a window (maintenance on the router itself);
//! * **egress shift** — a multi-border session's hot-potato handoff moves
//!   to its runner-up border for a window (the adjacent AS re-balanced its
//!   internal costs), changing ingress without changing the AS path.
//!
//! Every event is a pure hash of `(seed, day, entity)`, so the schedule is
//! reproducible and independent of query order — the same determinism
//! contract as [`crate::outage::OutageModel`].

use crate::ids::BorderId;
use crate::sim::Day;

use super::graph::PolicyGraph;

/// One scheduled routing event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynEvent {
    /// Session `.0` (index into [`PolicyGraph::sessions`]) is down.
    SessionDown(u32),
    /// Border `.0` has withdrawn the anycast announcement.
    BorderDown(BorderId),
    /// Session `.0`'s hot-potato handoff is shifted to the runner-up border.
    EgressShift(u32),
}

/// An event with its active window (seconds within the day, `start < end`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventWindow {
    /// What happens.
    pub event: DynEvent,
    /// Window start, seconds from midnight.
    pub start_s: f64,
    /// Window end, seconds from midnight (≤ 86 400).
    pub end_s: f64,
}

impl EventWindow {
    /// Whether `time_s` falls inside the window.
    pub fn contains(&self, time_s: f64) -> bool {
        time_s >= self.start_s && time_s < self.end_s
    }
}

/// Deterministic per-day event scheduler. Probabilities come from
/// [`crate::worldgen::WorldGenConfig`]; all zero means no dynamics and the
/// steady catchment table serves every instant.
#[derive(Debug, Clone)]
pub struct RouteDynamics {
    seed: u64,
    p_session_flap: f64,
    p_border_flap: f64,
    p_egress_shift: f64,
    flap_min_s: f64,
    flap_max_s: f64,
}

impl RouteDynamics {
    /// Builds the scheduler. `seed` must be the world seed so the schedule
    /// is part of the world's identity.
    pub fn new(
        seed: u64,
        p_session_flap: f64,
        p_border_flap: f64,
        p_egress_shift: f64,
        flap_min_s: f64,
        flap_max_s: f64,
    ) -> RouteDynamics {
        RouteDynamics {
            seed: seed ^ 0x6479_6e61_6d69_6373,
            p_session_flap,
            p_border_flap,
            p_egress_shift,
            flap_min_s,
            flap_max_s,
        }
    }

    /// Whether any event can ever fire.
    pub fn enabled(&self) -> bool {
        self.p_session_flap > 0.0 || self.p_border_flap > 0.0 || self.p_egress_shift > 0.0
    }

    /// All events scheduled on `day`, sorted by (start, event identity).
    /// O(sessions + borders) hashing; callers cache per day.
    pub fn events_on(&self, graph: &PolicyGraph, n_borders: usize, day: Day) -> Vec<EventWindow> {
        let mut out = Vec::new();
        if !self.enabled() {
            return out;
        }
        for s in 0..graph.sessions.len() as u32 {
            if let Some(w) = self.roll(0xF1A9, u64::from(s), day, self.p_session_flap) {
                out.push(EventWindow {
                    event: DynEvent::SessionDown(s),
                    start_s: w.0,
                    end_s: w.1,
                });
            }
            if graph.sessions[s as usize].borders.len() > 1 {
                if let Some(w) = self.roll(0x5417, u64::from(s), day, self.p_egress_shift) {
                    out.push(EventWindow {
                        event: DynEvent::EgressShift(s),
                        start_s: w.0,
                        end_s: w.1,
                    });
                }
            }
        }
        for b in 0..n_borders as u64 {
            if let Some(w) = self.roll(0xB0D7, b, day, self.p_border_flap) {
                out.push(EventWindow {
                    event: DynEvent::BorderDown(BorderId(b as u16)),
                    start_s: w.0,
                    end_s: w.1,
                });
            }
        }
        // Stable sort: ties keep the deterministic generation order
        // (sessions ascending, then borders ascending).
        out.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        out
    }

    /// Rolls one `(salt, entity, day)` event; returns its window if it
    /// fires. Start is uniform in the first 70% of the day, duration
    /// uniform in `[flap_min_s, flap_max_s]`, clamped to midnight.
    fn roll(&self, salt: u64, entity: u64, day: Day, p: f64) -> Option<(f64, f64)> {
        if p <= 0.0 {
            return None;
        }
        let fire = unit(mix64(self.seed, (entity << 20) | u64::from(day.0), salt));
        if fire >= p {
            return None;
        }
        let start = unit(mix64(
            self.seed,
            (entity << 20) | u64::from(day.0),
            salt ^ 0x57A2,
        )) * 60_480.0;
        let span = self.flap_min_s
            + unit(mix64(
                self.seed,
                (entity << 20) | u64::from(day.0),
                salt ^ 0xD0A2,
            )) * (self.flap_max_s - self.flap_min_s).max(0.0);
        Some((start, (start + span).min(86_400.0)))
    }
}

/// SplitMix64-style (seed, key, salt) mixer — the same construction the
/// churn/outage/latency models use.
fn mix64(seed: u64, key: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_dynamics_schedule_nothing() {
        let d = RouteDynamics::new(7, 0.0, 0.0, 0.0, 600.0, 1200.0);
        assert!(!d.enabled());
    }

    #[test]
    fn windows_are_within_the_day() {
        let d = RouteDynamics::new(7, 0.5, 0.5, 0.5, 1800.0, 14_400.0);
        for entity in 0..50u64 {
            for day in 0..5 {
                if let Some((s, e)) = d.roll(0xF1A9, entity, Day(day), 0.5) {
                    assert!(s >= 0.0 && e <= 86_400.0 && s < e);
                }
            }
        }
    }

    #[test]
    fn rolls_are_deterministic() {
        let a = RouteDynamics::new(9, 0.3, 0.3, 0.3, 600.0, 1200.0);
        let b = RouteDynamics::new(9, 0.3, 0.3, 0.3, 600.0, 1200.0);
        for entity in 0..100 {
            assert_eq!(
                a.roll(0xF1A9, entity, Day(3), 0.3),
                b.roll(0xF1A9, entity, Day(3), 0.3)
            );
        }
    }
}
