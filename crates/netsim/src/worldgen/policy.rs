//! Valley-free route selection and catchment computation at scale.
//!
//! Instead of the per-client distance ranking of [`crate::bgp`], generated
//! worlds route by Gao-Rexford policy: every AS prefers routes learned from
//! a **customer** over a **peer** over a **provider** (local preference),
//! then shortest AS path, then a deterministic lowest-next-hop tie-break —
//! latency is never consulted, exactly like real BGP. Export rules make
//! the selected forest valley-free: customer-learned routes go to
//! everyone, peer/provider-learned routes go only to customers.
//!
//! One **catchment table** answers "where does every AS's traffic enter
//! the CDN" for one announcement configuration. It is computed by a
//! three-phase multi-source BFS over the policy graph — O(V+E) per
//! announcement set, independent of the client count:
//!
//! 1. customer routes climb provider edges from the CDN's transit sessions;
//! 2. peer routes take one lateral step from customer-routed ASes (plus
//!    the CDN's own peering sessions);
//! 3. provider routes descend customer edges from every routed AS.
//!
//! The table is compact: one 8-byte [`RouteEntry`] per AS. Full AS paths
//! are not materialized — they are shared structurally through the
//! `next_hop` forest and reconstructed on demand by [`CatchmentTable::path`].
//!
//! [`PolicyWorld`] memoizes tables by announcement-set key across days
//! (steady and per-unicast-border tables are shared by *every* day that
//! shares the announcement set — the cross-day extension of the PR-3
//! `RouteSnapshot` memoization), and event tables are derived from the
//! steady table by re-running only the dirty subtree.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use anycast_geo::{MetroId, WorldAtlas};
use anycast_obs::counter;

use crate::ids::BorderId;
use crate::sim::Day;
use crate::topology::CdnNetwork;

use super::dynamics::{DynEvent, EventWindow, RouteDynamics};
use super::graph::{CdnRelation, PolicyGraph, NO_SESSION};

/// Route class codes, ordered by BGP local preference (lower = preferred).
pub mod route_class {
    /// Learned from a customer (exported to everyone).
    pub const CUSTOMER: u8 = 0;
    /// Learned from a peer (exported only to customers).
    pub const PEER: u8 = 1;
    /// Learned from a provider (exported only to customers).
    pub const PROVIDER: u8 = 2;
    /// No route.
    pub const NONE: u8 = u8::MAX;
}

/// `next_hop` sentinel: the route hands directly to the CDN.
pub const CDN_NEXT: u32 = u32::MAX;

/// One AS's selected route towards the anycast (or a unicast) prefix:
/// 8 bytes, so a 75k-AS table is ~600 kB and fits in L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Next AS on the path, or [`CDN_NEXT`] when this AS hands off to the
    /// CDN itself.
    pub next_hop: u32,
    /// CDN border router where the traffic ultimately ingresses (raw
    /// [`BorderId`]), `u16::MAX` when unrouted.
    pub ingress: u16,
    /// Route class ([`route_class`]).
    pub class: u8,
    /// AS-path length (hops to the CDN; 1 = directly adjacent).
    pub path_len: u8,
}

impl RouteEntry {
    const NONE: RouteEntry = RouteEntry {
        next_hop: CDN_NEXT,
        ingress: u16::MAX,
        class: route_class::NONE,
        path_len: u8::MAX,
    };

    /// Whether a route exists.
    pub fn is_routed(&self) -> bool {
        self.class != route_class::NONE
    }
}

/// The routing environment a table is computed under: which announcements
/// and sessions are live. The empty environment is the steady state.
#[derive(Debug, Clone, Default)]
pub struct RouteEnv {
    /// Borders that have withdrawn the announcement (site outages and
    /// border flaps), sorted ascending.
    pub withdrawn: Vec<BorderId>,
    /// Session indexes that are down (session flaps), sorted ascending.
    pub dead_sessions: Vec<u32>,
    /// Session indexes whose hot-potato handoff is shifted to the
    /// runner-up border, sorted ascending.
    pub shifted: Vec<u32>,
    /// Restrict the announcement to exactly one border: the unicast
    /// per-site prefix, announced only at the site's colocated border.
    pub only_border: Option<BorderId>,
}

impl RouteEnv {
    /// Whether this is the steady anycast environment.
    pub fn is_steady(&self) -> bool {
        self.withdrawn.is_empty()
            && self.dead_sessions.is_empty()
            && self.shifted.is_empty()
            && self.only_border.is_none()
    }

    /// Stable cache key: equal environments hash equal. The steady
    /// environment is key 0; pure unicast environments set bit 63 (they
    /// are pinned in the cache alongside steady); event environments are
    /// odd hashes with bit 63 clear (evictable).
    pub fn key(&self) -> u64 {
        if self.is_steady() {
            return 0;
        }
        if let Some(b) = self.only_border {
            if self.withdrawn.is_empty() && self.dead_sessions.is_empty() && self.shifted.is_empty()
            {
                return (1u64 << 63) | u64::from(b.0);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset
        let mut eat = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        eat(0xA1);
        for b in &self.withdrawn {
            eat(u64::from(b.0) + 1);
        }
        eat(0xA2);
        for s in &self.dead_sessions {
            eat(u64::from(*s) + 1);
        }
        eat(0xA3);
        for s in &self.shifted {
            eat(u64::from(*s) + 1);
        }
        if let Some(b) = self.only_border {
            eat(0xA4);
            eat(u64::from(b.0) + 1);
        }
        (h & !(1u64 << 63)) | 1 // odd, bit 63 clear: evictable event key
    }

    fn session_dead(&self, s: u32) -> bool {
        self.dead_sessions.binary_search(&s).is_ok()
    }

    fn session_shifted(&self, s: u32) -> bool {
        self.shifted.binary_search(&s).is_ok()
    }

    fn border_live(&self, b: BorderId) -> bool {
        if let Some(only) = self.only_border {
            if b != only {
                return false;
            }
        }
        self.withdrawn.binary_search(&b).is_err()
    }
}

/// One computed catchment table: the selected route per AS.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchmentTable {
    entries: Vec<RouteEntry>,
}

impl CatchmentTable {
    /// The route entry of `node`, if routed.
    pub fn entry(&self, node: u32) -> Option<RouteEntry> {
        let e = self.entries[node as usize];
        e.is_routed().then_some(e)
    }

    /// The ingress border of `node`'s selected route.
    pub fn ingress(&self, node: u32) -> Option<BorderId> {
        self.entry(node).map(|e| BorderId(e.ingress))
    }

    /// Reconstructs the AS path of `node` (itself first, CDN-adjacent AS
    /// last) by chasing shared next-hop links.
    pub fn path(&self, node: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = node;
        while self.entries[cur as usize].is_routed() {
            out.push(cur);
            match self.entries[cur as usize].next_hop {
                CDN_NEXT => break,
                next => cur = next,
            }
        }
        out
    }

    /// Number of routed ASes.
    pub fn routed_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_routed()).count()
    }

    /// Bytes held by the table.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<RouteEntry>()
    }

    /// Entry slice (tests/benches).
    pub fn entries(&self) -> &[RouteEntry] {
        &self.entries
    }
}

/// The policy-routed world: graph + dynamics + memoized catchment tables.
///
/// Shared read-only (behind `Arc`) by every clone of the owning
/// [`crate::Internet`]; the table cache is a mutex because computing a
/// table is rare and serving one is an `Arc` clone.
#[derive(Debug)]
pub struct PolicyWorld {
    /// The AS graph.
    pub graph: PolicyGraph,
    dynamics: RouteDynamics,
    /// km from every metro to every border: `metro_major[m * n_borders + b]`.
    metro_border_km: Vec<f64>,
    n_borders: usize,
    tables: Mutex<HashMap<u64, Arc<CatchmentTable>>>,
    day_events: Mutex<HashMap<u32, Arc<Vec<EventWindow>>>>,
}

/// Cap on memoized tables; beyond it, event tables are evicted (steady and
/// unicast tables are always retained). Purely a memory bound — eviction
/// can never change an output.
const TABLE_CACHE_CAP: usize = 192;

impl PolicyWorld {
    /// Builds the world: precomputes the metro↔border distance matrix.
    pub fn new(
        graph: PolicyGraph,
        dynamics: RouteDynamics,
        atlas: &WorldAtlas,
        cdn: &CdnNetwork,
    ) -> PolicyWorld {
        let n_borders = cdn.borders.len();
        let mut metro_border_km = vec![0.0; atlas.len() * n_borders];
        for (mid, metro) in atlas.iter() {
            let mloc = metro.location();
            for b in 0..n_borders {
                let bloc = atlas.metro(cdn.borders[b].metro).location();
                metro_border_km[mid.0 as usize * n_borders + b] = mloc.haversine_km(&bloc);
            }
        }
        PolicyWorld {
            graph,
            dynamics,
            metro_border_km,
            n_borders,
            tables: Mutex::new(HashMap::new()),
            day_events: Mutex::new(HashMap::new()),
        }
    }

    /// km from `metro` to `border`.
    fn km(&self, metro: MetroId, border: BorderId) -> f64 {
        self.metro_border_km[metro.0 as usize * self.n_borders + border.0 as usize]
    }

    /// The hot-potato ingress of session `s` as seen from `for_metro`:
    /// nearest live border (ties by id), or the runner-up when the session
    /// is shifted. `None` when no border of the session is live.
    fn session_ingress(&self, s: u32, for_metro: MetroId, env: &RouteEnv) -> Option<BorderId> {
        let sess = &self.graph.sessions[s as usize];
        let mut best: Option<BorderId> = None;
        let mut second: Option<BorderId> = None;
        for &b in &sess.borders {
            if !env.border_live(b) {
                continue;
            }
            match best {
                None => best = Some(b),
                Some(cur) => {
                    let closer = self
                        .km(for_metro, b)
                        .total_cmp(&self.km(for_metro, cur))
                        .then(b.0.cmp(&cur.0))
                        .is_lt();
                    if closer {
                        second = best;
                        best = Some(b);
                    } else {
                        let better_second = match second {
                            None => true,
                            Some(sec) => self
                                .km(for_metro, b)
                                .total_cmp(&self.km(for_metro, sec))
                                .then(b.0.cmp(&sec.0))
                                .is_lt(),
                        };
                        if better_second {
                            second = Some(b);
                        }
                    }
                }
            }
        }
        if env.session_shifted(s) {
            second.or(best)
        } else {
            best
        }
    }

    /// Whether session `s` can carry the prefix under `env`.
    fn session_live(&self, s: u32, env: &RouteEnv) -> bool {
        if env.session_dead(s) {
            return false;
        }
        self.graph.sessions[s as usize]
            .borders
            .iter()
            .any(|&b| env.border_live(b))
    }

    /// The steady anycast catchment table (announcement set = every
    /// border, all sessions up). Computed once, shared by every day —
    /// the cache-hit counter proves the cross-day reuse.
    pub fn steady_table(&self) -> Arc<CatchmentTable> {
        self.table_for(&RouteEnv::default())
    }

    /// The catchment table of the unicast prefix announced only at
    /// `border` (§3.1: only the routers closest to the front-end announce
    /// it). Shared by every day.
    pub fn unicast_table(&self, border: BorderId) -> Arc<CatchmentTable> {
        self.table_for(&RouteEnv {
            only_border: Some(border),
            ..RouteEnv::default()
        })
    }

    /// The table for an arbitrary environment, memoized by
    /// [`RouteEnv::key`]. Event environments are computed incrementally
    /// from the steady table (dirty subtree only).
    pub fn table_for(&self, env: &RouteEnv) -> Arc<CatchmentTable> {
        let key = env.key();
        {
            let tables = self.tables.lock().expect("table cache poisoned");
            if let Some(t) = tables.get(&key) {
                counter!("netsim_catchment_cache_hits_total").inc();
                return Arc::clone(t);
            }
        }
        counter!("netsim_catchment_cache_misses_total").inc();
        // Compute outside the lock: scratch for steady/unicast bases,
        // dirty-subtree incremental for event perturbations of steady.
        let table = if env.is_steady() || env.only_border.is_some() {
            Arc::new(self.compute_scratch(env))
        } else {
            let base = self.steady_table();
            counter!("netsim_catchment_incremental_recomputes_total").inc();
            Arc::new(self.recompute_incremental(&base, env))
        };
        let mut tables = self.tables.lock().expect("table cache poisoned");
        if tables.len() >= TABLE_CACHE_CAP {
            // Drop event tables; steady (0) and unicast (bit 63) stay.
            tables.retain(|k, _| *k == 0 || k >> 63 == 1);
        }
        let entry = tables.entry(key).or_insert_with(|| Arc::clone(&table));
        Arc::clone(entry)
    }

    /// Computes a table from scratch: the three valley-free phases over
    /// the whole graph.
    pub fn compute_scratch(&self, env: &RouteEnv) -> CatchmentTable {
        let n = self.graph.n as usize;
        let mut entries = vec![RouteEntry::NONE; n];
        let dirty = vec![true; n];
        self.run_phases(&mut entries, &dirty, env);
        CatchmentTable { entries }
    }

    /// Recomputes only the subtree invalidated by `env` relative to the
    /// steady `base` table. Every node whose steady route crosses an
    /// affected session/border (plus the affected session owners
    /// themselves) is re-relaxed; everyone else keeps their entry, which
    /// remains optimal because withdrawing announcements only removes
    /// candidates.
    pub fn recompute_incremental(&self, base: &CatchmentTable, env: &RouteEnv) -> CatchmentTable {
        let n = self.graph.n as usize;
        // Directly affected: owners of dead/withdrawn/shifted sessions.
        let mut dirty = vec![false; n];
        let mut queue: Vec<u32> = Vec::new();
        for (s, sess) in self.graph.sessions.iter().enumerate() {
            let s = s as u32;
            let affected = env.session_dead(s)
                || env.session_shifted(s)
                || sess.borders.iter().any(|&b| !env.border_live(b));
            if affected && !dirty[sess.node as usize] {
                dirty[sess.node as usize] = true;
                queue.push(sess.node);
            }
        }
        // Close over routing-tree descendants: children via base next_hop.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, e) in base.entries.iter().enumerate() {
            if e.is_routed() && e.next_hop != CDN_NEXT {
                children[e.next_hop as usize].push(v as u32);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &c in &children[u as usize] {
                if !dirty[c as usize] {
                    dirty[c as usize] = true;
                    queue.push(c);
                }
            }
        }
        let mut entries = base.entries.clone();
        for (v, d) in dirty.iter().enumerate() {
            if *d {
                entries[v] = RouteEntry::NONE;
            }
        }
        self.run_phases(&mut entries, &dirty, env);
        CatchmentTable { entries }
    }

    /// The three-phase valley-free relaxation, restricted to `dirty`
    /// nodes; clean nodes act as fixed boundary conditions. Each phase is
    /// a lexicographic-minimum fixpoint over `(path_len, next_hop)`, which
    /// on the provider DAG equals the level-synchronous BFS result — and
    /// running scratch and incremental through this one routine keeps them
    /// exactly equivalent.
    fn run_phases(&self, entries: &mut [RouteEntry], dirty: &[bool], env: &RouteEnv) {
        let g = &self.graph;
        let n = g.n as usize;

        // Phase 1 — customer routes (learned from a customer, traffic
        // flows strictly downhill). Seeds: live transit sessions, where
        // the CDN itself is the customer.
        for v in 0..n {
            if !dirty[v] {
                continue;
            }
            let s = g.session_of[v];
            if s != NO_SESSION
                && g.sessions[s as usize].relation == CdnRelation::Transit
                && self.session_live(s, env)
            {
                entries[v] = RouteEntry {
                    next_hop: CDN_NEXT,
                    ingress: u16::MAX, // resolved in the ingress pass
                    class: route_class::CUSTOMER,
                    path_len: 1,
                };
            }
        }
        // Relax customer routes up provider edges to fixpoint.
        loop {
            let mut changed = false;
            for v in 0..n {
                if !dirty[v] {
                    continue;
                }
                let mut best = entries[v];
                for &c in g.customers.neighbors(v as u32) {
                    let ce = entries[c as usize];
                    if ce.class != route_class::CUSTOMER {
                        continue;
                    }
                    let cand_len = ce.path_len.saturating_add(1);
                    let better = best.class != route_class::CUSTOMER
                        || (cand_len, c) < (best.path_len, best.next_hop);
                    // Own transit session (len 1) always wins; never
                    // displace it.
                    if better && !(best.class == route_class::CUSTOMER && best.next_hop == CDN_NEXT)
                    {
                        best = RouteEntry {
                            next_hop: c,
                            ingress: u16::MAX,
                            class: route_class::CUSTOMER,
                            path_len: cand_len,
                        };
                    }
                }
                if best != entries[v] {
                    entries[v] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 2 — peer routes: one lateral step. Candidates: the node's
        // own peering session, or a peer holding a customer route. Single
        // pass (peer routes are never re-exported to peers).
        for v in 0..n {
            if !dirty[v] || entries[v].class == route_class::CUSTOMER {
                continue;
            }
            let mut best = RouteEntry::NONE;
            let s = g.session_of[v];
            if s != NO_SESSION
                && g.sessions[s as usize].relation == CdnRelation::Peer
                && self.session_live(s, env)
            {
                best = RouteEntry {
                    next_hop: CDN_NEXT,
                    ingress: u16::MAX,
                    class: route_class::PEER,
                    path_len: 1,
                };
            }
            for &w in g.peers.neighbors(v as u32) {
                let we = entries[w as usize];
                if we.class != route_class::CUSTOMER {
                    continue;
                }
                let cand_len = we.path_len.saturating_add(1);
                if best.class != route_class::PEER || (cand_len, w) < (best.path_len, best.next_hop)
                {
                    best = RouteEntry {
                        next_hop: w,
                        ingress: u16::MAX,
                        class: route_class::PEER,
                        path_len: cand_len,
                    };
                }
            }
            if best.is_routed() {
                entries[v] = best;
            }
        }

        // Phase 3 — provider routes: any routed provider exports to its
        // customers; relax down customer edges to fixpoint. Only fills
        // nodes with no customer/peer route (lowest preference).
        loop {
            let mut changed = false;
            for v in 0..n {
                if !dirty[v] || entries[v].class != route_class::NONE {
                    continue;
                }
                let mut best = RouteEntry::NONE;
                for &p in g.providers.neighbors(v as u32) {
                    let pe = entries[p as usize];
                    if !pe.is_routed() {
                        continue;
                    }
                    let cand_len = pe.path_len.saturating_add(1);
                    if best.class != route_class::PROVIDER
                        || (cand_len, p) < (best.path_len, best.next_hop)
                    {
                        best = RouteEntry {
                            next_hop: p,
                            ingress: u16::MAX,
                            class: route_class::PROVIDER,
                            path_len: cand_len,
                        };
                    }
                }
                if best.is_routed() {
                    entries[v] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Provider-route lengths can shorten as the fixpoint spreads;
        // re-relax until stable (the loop above already iterates, but a
        // filled node is skipped — run an improvement sweep).
        loop {
            let mut changed = false;
            for v in 0..n {
                if !dirty[v] || entries[v].class != route_class::PROVIDER {
                    continue;
                }
                let mut best = entries[v];
                for &p in g.providers.neighbors(v as u32) {
                    let pe = entries[p as usize];
                    if !pe.is_routed() {
                        continue;
                    }
                    let cand_len = pe.path_len.saturating_add(1);
                    if (cand_len, p) < (best.path_len, best.next_hop) {
                        best = RouteEntry {
                            next_hop: p,
                            ingress: u16::MAX,
                            class: route_class::PROVIDER,
                            path_len: cand_len,
                        };
                    }
                }
                if best != entries[v] {
                    entries[v] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Ingress resolution, ascending path length (a parent's length is
        // always exactly one less than its children's, so parents resolve
        // first). Hot-potato: the CDN-adjacent AS hands off at its
        // session's nearest live border — chosen per *downstream neighbor*
        // metro for its direct children (traffic from different customers
        // enters the adjacent AS at different points), inherited further
        // down.
        let mut order: Vec<u32> = (0..g.n).filter(|&v| dirty[v as usize]).collect();
        order.sort_by_key(|&v| (entries[v as usize].path_len, v));
        for v in order {
            let e = entries[v as usize];
            if !e.is_routed() {
                continue;
            }
            let ingress = match e.next_hop {
                CDN_NEXT => {
                    self.session_ingress(g.session_of[v as usize], g.home_metro[v as usize], env)
                }
                next => {
                    let ne = entries[next as usize];
                    if ne.next_hop == CDN_NEXT {
                        self.session_ingress(
                            g.session_of[next as usize],
                            g.home_metro[v as usize],
                            env,
                        )
                    } else {
                        (ne.ingress != u16::MAX).then_some(BorderId(ne.ingress))
                    }
                }
            };
            match ingress {
                Some(b) => entries[v as usize].ingress = b.0,
                None => entries[v as usize] = RouteEntry::NONE,
            }
        }
    }

    /// All event windows scheduled on `day`, memoized.
    pub fn events_on(&self, day: Day) -> Arc<Vec<EventWindow>> {
        {
            let cache = self.day_events.lock().expect("event cache poisoned");
            if let Some(e) = cache.get(&day.0) {
                return Arc::clone(e);
            }
        }
        let events = Arc::new(self.dynamics.events_on(&self.graph, self.n_borders, day));
        let mut cache = self.day_events.lock().expect("event cache poisoned");
        if cache.len() > 4096 {
            cache.clear();
        }
        Arc::clone(cache.entry(day.0).or_insert(events))
    }

    /// The environment in force at `(day, time_s)`: scheduled dynamics
    /// active at that instant plus externally-withdrawn borders (site
    /// outages).
    pub fn env_at(&self, day: Day, time_s: f64, outage_withdrawn: &[BorderId]) -> RouteEnv {
        let mut env = RouteEnv {
            withdrawn: outage_withdrawn.to_vec(),
            ..RouteEnv::default()
        };
        for w in self.events_on(day).iter() {
            if !w.contains(time_s) {
                continue;
            }
            match w.event {
                DynEvent::SessionDown(s) => env.dead_sessions.push(s),
                DynEvent::BorderDown(b) => env.withdrawn.push(b),
                DynEvent::EgressShift(s) => env.shifted.push(s),
            }
        }
        env.withdrawn.sort_unstable();
        env.withdrawn.dedup();
        env.dead_sessions.sort_unstable();
        env.shifted.sort_unstable();
        env
    }

    /// Time windows on `day` during which the anycast catchment may differ
    /// from steady state (the snapshot fast-path guard).
    pub fn disturbance_windows(&self, day: Day) -> Vec<(f64, f64)> {
        self.events_on(day)
            .iter()
            .map(|w| (w.start_s, w.end_s))
            .collect()
    }

    /// Whether any dynamics are configured.
    pub fn dynamics_enabled(&self) -> bool {
        self.dynamics.enabled()
    }

    /// Bytes held by graph + distance matrix + all memoized tables.
    pub fn memory_bytes(&self) -> usize {
        let tables = self.tables.lock().expect("table cache poisoned");
        self.graph.memory_bytes()
            + self.metro_border_km.len() * 8
            + tables.values().map(|t| t.memory_bytes()).sum::<usize>()
    }

    /// Number of memoized tables (tests/benches).
    pub fn cached_tables(&self) -> usize {
        self.tables.lock().expect("table cache poisoned").len()
    }
}
