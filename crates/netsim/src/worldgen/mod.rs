//! Internet-scale worlds: a policy-routed AS-graph generator.
//!
//! The default topology models a few hundred eyeball ISPs with explicit
//! per-client route ranking. That is faithful at small scale but cannot say
//! anything about how catchments behave when the anycast prefix crosses a
//! *routing system* — tens of thousands of ASes choosing paths by business
//! policy, not latency. This module generates such worlds:
//!
//! * a classified AS mix — enterprise customers ([`AsClass::Ec`]), small and
//!   large transit providers ([`AsClass::Stp`]/[`AsClass::Ltp`]) and
//!   content/access hypergiants ([`AsClass::Hypergiant`]) — with
//!   customer/provider/peer edges obeying Gao-Rexford (customers buy up the
//!   hierarchy, peers connect laterally, no cycles in the provider DAG);
//! * preferential attachment when enterprises pick providers, so transit
//!   customer-degrees follow the heavy-tailed distribution measured in real
//!   AS graphs: a few regional providers carry most stub networks;
//! * the CDN attached exactly as in the paper: transit from a handful of
//!   tier-1s at every border, settlement-free peering with hypergiants and
//!   many access networks — including a configurable share of
//!   **remote-only peers** reproducing the §5 pathology;
//! * deterministic mid-day route dynamics ([`dynamics`]) and a catchment
//!   engine ([`policy`]) that replaces distance ranking with valley-free
//!   best-path selection.
//!
//! Generation is a pure function of `(NetConfig, seed)`: the same inputs
//! produce bit-identical graphs, catchments and (downstream) study output,
//! regardless of worker count.

pub mod dynamics;
pub mod graph;
pub mod policy;

use std::collections::HashMap;

use anycast_geo::{MetroId, WorldAtlas};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::bgp::EgressPolicy;
use crate::config::NetConfig;
use crate::ids::{AsId, BorderId};
use crate::topology::{self, CdnNetwork, EyeballAs, Topology};

pub use dynamics::{DynEvent, EventWindow, RouteDynamics};
pub use graph::{AsClass, CdnRelation, CdnSession, Csr, PolicyGraph, NO_SESSION};
pub use policy::{route_class, CatchmentTable, PolicyWorld, RouteEntry, RouteEnv, CDN_NEXT};

/// Knobs of the AS-graph generator. Present (`NetConfig::worldgen =
/// Some(..)`) switches the whole stack to policy routing; absent keeps the
/// default small world byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldGenConfig {
    /// Total AS count (enterprise + transit + hypergiant). The paper-scale
    /// world uses 75 000; CI smoke uses 10 000.
    pub n_ases: usize,
    /// Tier-1s the CDN buys transit from (sessions at *every* border, so
    /// the prefix is globally reachable). Paper §3: "a few transit
    /// providers".
    pub n_cdn_transits: usize,
    /// Probability a hypergiant peers with the CDN (they interconnect with
    /// everyone).
    pub p_cdn_peer_hypergiant: f64,
    /// Probability a small transit provider peers with the CDN (2–4
    /// borders near its home).
    pub p_cdn_peer_stp: f64,
    /// Probability an enterprise/access AS peers with the CDN at its 1–2
    /// nearest borders.
    pub p_cdn_peer_ec: f64,
    /// Probability an enterprise/access AS instead peers at a *single
    /// distant* border — the §5 remote-peering pathology.
    pub p_remote_peer_ec: f64,
    /// Per-session-day probability of a BGP session flap.
    pub p_session_flap: f64,
    /// Per-border-day probability of an announcement withdrawal window.
    pub p_border_flap: f64,
    /// Per-session-day probability of a hot-potato egress shift (multi-
    /// border sessions only).
    pub p_egress_shift: f64,
    /// Shortest event window, seconds.
    pub flap_min_s: f64,
    /// Longest event window, seconds.
    pub flap_max_s: f64,
}

impl Default for WorldGenConfig {
    fn default() -> Self {
        WorldGenConfig {
            n_ases: 10_000,
            n_cdn_transits: 3,
            p_cdn_peer_hypergiant: 0.9,
            p_cdn_peer_stp: 0.5,
            p_cdn_peer_ec: 0.3,
            p_remote_peer_ec: 0.08,
            p_session_flap: 0.0008,
            p_border_flap: 0.0004,
            p_egress_shift: 0.0015,
            flap_min_s: 1_800.0,
            flap_max_s: 14_400.0,
        }
    }
}

impl WorldGenConfig {
    /// The default mix at a given scale.
    pub fn with_ases(n_ases: usize) -> Self {
        WorldGenConfig {
            n_ases,
            ..Default::default()
        }
    }

    /// Paper-scale world: 75k ASes.
    pub fn paper() -> Self {
        Self::with_ases(75_000)
    }

    /// Validates the knobs; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_ases < 64 {
            return Err(format!(
                "worldgen.n_ases must be >= 64, got {}",
                self.n_ases
            ));
        }
        if self.n_ases > 2_000_000 {
            return Err(format!(
                "worldgen.n_ases must be <= 2_000_000, got {}",
                self.n_ases
            ));
        }
        if self.n_cdn_transits == 0 {
            return Err("worldgen.n_cdn_transits must be >= 1".into());
        }
        for (name, p) in [
            ("p_cdn_peer_hypergiant", self.p_cdn_peer_hypergiant),
            ("p_cdn_peer_stp", self.p_cdn_peer_stp),
            ("p_cdn_peer_ec", self.p_cdn_peer_ec),
            ("p_remote_peer_ec", self.p_remote_peer_ec),
            ("p_session_flap", self.p_session_flap),
            ("p_border_flap", self.p_border_flap),
            ("p_egress_shift", self.p_egress_shift),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("worldgen.{name} must be in [0, 1], got {p}"));
            }
        }
        if self.p_cdn_peer_ec + self.p_remote_peer_ec > 1.0 {
            return Err("worldgen.p_cdn_peer_ec + p_remote_peer_ec must be <= 1".into());
        }
        if !(self.flap_min_s > 0.0 && self.flap_max_s >= self.flap_min_s) {
            return Err("worldgen flap window must satisfy 0 < min <= max".into());
        }
        Ok(())
    }

    /// Class counts at this scale: LTPs and hypergiants grow slowly (the
    /// real Internet has ~a dozen tier-1s regardless of size), STPs are
    /// ~10% of ASes, everything else is an enterprise/access network.
    pub fn class_counts(&self) -> (usize, usize, usize, usize) {
        let n = self.n_ases;
        let n_ltp = (n / 5_000 + 6).clamp(6, 18);
        let n_hyper = (n / 15_000 + 3).clamp(3, 8);
        let n_stp = (n / 10)
            .max(2 * n_ltp)
            .min(n.saturating_sub(n_ltp + n_hyper + 1));
        let n_ec = n - n_ltp - n_hyper - n_stp;
        (n_ltp, n_hyper, n_stp, n_ec)
    }
}

/// Builds a policy-routed world: the bridged [`Topology`] (all graph nodes
/// appear as eyeball ASes so the workload/geo layers work unmodified) plus
/// the [`PolicyWorld`] routing engine.
pub fn build(cfg: &NetConfig, seed: u64) -> (Topology, PolicyWorld) {
    let wg = cfg
        .worldgen
        .as_ref()
        .expect("worldgen::build requires NetConfig.worldgen");
    let atlas = WorldAtlas::new();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x776f_726c_6467_656e);

    let cdn = topology::generate_cdn(&atlas, cfg, &mut rng);
    let graph = generate_graph(&atlas, &cdn, wg, &mut rng);
    let eyeballs = bridge_eyeballs(&atlas, &graph, cfg, &mut rng);

    let dynamics = RouteDynamics::new(
        seed,
        wg.p_session_flap,
        wg.p_border_flap,
        wg.p_egress_shift,
        wg.flap_min_s,
        wg.flap_max_s,
    );
    let world = PolicyWorld::new(graph, dynamics, &atlas, &cdn);
    let topo = Topology::from_parts(atlas, cdn, Vec::new(), eyeballs);
    (topo, world)
}

/// Per-metro border ranking (nearest first, ties by id) — shared by session
/// placement; 222 metros × ~54 borders, precomputed once.
fn border_rankings(atlas: &WorldAtlas, cdn: &CdnNetwork) -> Vec<Vec<BorderId>> {
    let borders: Vec<(BorderId, anycast_geo::GeoPoint)> = cdn
        .border_ids()
        .map(|b| (b, atlas.metro(cdn.border_metro(b)).location()))
        .collect();
    (0..atlas.len())
        .map(|m| {
            let loc = atlas.metro(MetroId(m as u32)).location();
            let mut ranked: Vec<(BorderId, f64)> = borders
                .iter()
                .map(|&(b, bloc)| (b, loc.haversine_km(&bloc)))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            ranked.into_iter().map(|(b, _)| b).collect()
        })
        .collect()
}

fn generate_graph(
    atlas: &WorldAtlas,
    cdn: &CdnNetwork,
    wg: &WorldGenConfig,
    rng: &mut impl Rng,
) -> PolicyGraph {
    let (n_ltp, n_hyper, n_stp, n_ec) = wg.class_counts();
    let n = wg.n_ases;

    // Node layout: [LTP | hypergiant | STP | EC], ascending indexes.
    let ltp0 = 0u32;
    let hyper0 = n_ltp as u32;
    let stp0 = hyper0 + n_hyper as u32;
    let ec0 = stp0 + n_stp as u32;

    let mut class = Vec::with_capacity(n);
    let mut home_metro = Vec::with_capacity(n);
    class.extend(std::iter::repeat_n(AsClass::Ltp, n_ltp));
    class.extend(std::iter::repeat_n(AsClass::Hypergiant, n_hyper));
    class.extend(std::iter::repeat_n(AsClass::Stp, n_stp));
    class.extend(std::iter::repeat_n(AsClass::Ec, n_ec));

    // Homes: backbone networks headquarter in the largest metros; STPs and
    // ECs are sampled by population, so the AS density tracks where people
    // live.
    let top = atlas.top_by_population(n_ltp + n_hyper, None);
    for i in 0..n_ltp {
        home_metro.push(top[i % top.len()]);
    }
    for i in 0..n_hyper {
        home_metro.push(top[(n_ltp + i) % top.len()]);
    }
    for _ in 0..(n_stp + n_ec) {
        home_metro.push(atlas.sample_by_population(rng.gen()));
    }

    // provider_edges: (customer, provider). peer_edges stored once, expanded
    // symmetrically at CSR build.
    let mut provider_edges: Vec<(u32, u32)> = Vec::with_capacity(n * 2);
    let mut peer_edges: Vec<(u32, u32)> = Vec::new();

    // LTPs: provider-free full peer clique (the tier-1 default-free zone).
    for a in 0..n_ltp as u32 {
        for b in (a + 1)..n_ltp as u32 {
            peer_edges.push((ltp0 + a, ltp0 + b));
        }
    }

    // Hypergiants: peer mesh among themselves, plus 2 LTP transits (even
    // giants keep some transit for the long tail of routes).
    for a in 0..n_hyper as u32 {
        for b in (a + 1)..n_hyper as u32 {
            peer_edges.push((hyper0 + a, hyper0 + b));
        }
    }
    for h in 0..n_hyper as u32 {
        let mut ltps: Vec<u32> = (0..n_ltp as u32).collect();
        ltps.shuffle(rng);
        for &l in ltps.iter().take(2) {
            provider_edges.push((hyper0 + h, ltp0 + l));
        }
    }

    // STPs: 1–2 LTP providers; lateral peering with 1–2 earlier same-region
    // STPs (regional exchanges).
    let mut stp_by_region: HashMap<anycast_geo::Region, Vec<u32>> = HashMap::new();
    for s in 0..n_stp as u32 {
        let v = stp0 + s;
        let region = atlas.metro(home_metro[v as usize]).region;
        let mut ltps: Vec<u32> = (0..n_ltp as u32).collect();
        ltps.shuffle(rng);
        for &l in ltps.iter().take(rng.gen_range(1..=2)) {
            provider_edges.push((v, ltp0 + l));
        }
        if let Some(prior) = stp_by_region.get(&region) {
            if !prior.is_empty() {
                for _ in 0..rng.gen_range(1..=2usize) {
                    if let Some(&p) = prior.choose(rng) {
                        if p != v {
                            peer_edges.push((p, v));
                        }
                    }
                }
            }
        }
        stp_by_region.entry(region).or_default().push(v);
    }

    // ECs: 1–3 providers (60/30/10), preferential attachment within the
    // home region's STP pool — every pick re-enters the urn, so provider
    // customer-degrees follow a heavy-tailed (rich-get-richer)
    // distribution like the measured AS graph.
    let mut urn_by_region: HashMap<anycast_geo::Region, Vec<u32>> = HashMap::new();
    for (region, stps) in &stp_by_region {
        urn_by_region.insert(*region, stps.clone());
    }
    let all_stps: Vec<u32> = (stp0..ec0).collect();
    let mut global_urn: Vec<u32> = all_stps.clone();
    for e in 0..n_ec as u32 {
        let v = ec0 + e;
        let region = atlas.metro(home_metro[v as usize]).region;
        let r = rng.gen::<f64>();
        let n_prov = if r < 0.60 {
            1
        } else if r < 0.90 {
            2
        } else {
            3
        };
        let mut chosen: Vec<u32> = Vec::with_capacity(n_prov);
        let mut guard = 0;
        while chosen.len() < n_prov && guard < 32 {
            guard += 1;
            let pick = rng.gen::<f64>();
            let cand = if pick < 0.85 {
                urn_by_region
                    .get(&region)
                    .and_then(|u| u.choose(rng).copied())
                    .or_else(|| global_urn.choose(rng).copied())
            } else if pick < 0.95 {
                global_urn.choose(rng).copied()
            } else {
                Some(ltp0 + rng.gen_range(0..n_ltp as u32))
            };
            let Some(c) = cand else { break };
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        if chosen.is_empty() {
            // Degenerate region pools: fall back to a deterministic LTP.
            chosen.push(ltp0 + (v % n_ltp as u32));
        }
        for &c in &chosen {
            provider_edges.push((v, c));
            // Rich-get-richer: the chosen STP re-enters both urns.
            if class[c as usize] == AsClass::Stp {
                let creg = atlas.metro(home_metro[c as usize]).region;
                urn_by_region.entry(creg).or_default().push(c);
                global_urn.push(c);
            }
        }
    }

    // CDN sessions. Transit: the CDN is a customer of `n_cdn_transits`
    // LTPs, with the session present at EVERY border — this is what makes
    // every announcement (incl. single-border unicast prefixes) globally
    // reachable. Peer sessions follow class-specific footprints.
    let rankings = border_rankings(atlas, cdn);
    let all_borders: Vec<BorderId> = cdn.border_ids().collect();
    let mut sessions: Vec<CdnSession> = Vec::new();
    let mut session_of = vec![NO_SESSION; n];

    let mut transit_ltps: Vec<u32> = (0..n_ltp as u32).collect();
    transit_ltps.shuffle(rng);
    transit_ltps.truncate(wg.n_cdn_transits.min(n_ltp));
    transit_ltps.sort_unstable();
    for &l in &transit_ltps {
        session_of[l as usize] = sessions.len() as u32;
        sessions.push(CdnSession {
            node: l,
            relation: CdnRelation::Transit,
            borders: all_borders.clone(),
        });
    }

    for v in 0..n as u32 {
        if session_of[v as usize] != NO_SESSION {
            continue;
        }
        let ranked = &rankings[home_metro[v as usize].0 as usize];
        let borders: Option<Vec<BorderId>> = match class[v as usize] {
            AsClass::Ltp => None, // non-transit LTPs reach the CDN via peers
            AsClass::Hypergiant => {
                (rng.gen::<f64>() < wg.p_cdn_peer_hypergiant).then(|| all_borders.clone())
            }
            AsClass::Stp => (rng.gen::<f64>() < wg.p_cdn_peer_stp).then(|| {
                let k = rng.gen_range(2..=4usize).min(ranked.len());
                let mut b = ranked[..k].to_vec();
                b.sort_unstable();
                b
            }),
            AsClass::Ec => {
                let r = rng.gen::<f64>();
                if r < wg.p_remote_peer_ec && ranked.len() >= 3 {
                    // Remote-only peering: one session at a mid-ranked
                    // (distant but not antipodal) exchange.
                    let lo = (ranked.len() / 8).max(1);
                    let hi = (ranked.len() / 3).max(lo + 1).min(ranked.len());
                    Some(vec![ranked[rng.gen_range(lo..hi)]])
                } else if r < wg.p_remote_peer_ec + wg.p_cdn_peer_ec {
                    let k = rng.gen_range(1..=2usize).min(ranked.len());
                    let mut b = ranked[..k].to_vec();
                    b.sort_unstable();
                    Some(b)
                } else {
                    None
                }
            }
        };
        if let Some(borders) = borders {
            if !borders.is_empty() {
                session_of[v as usize] = sessions.len() as u32;
                sessions.push(CdnSession {
                    node: v,
                    relation: CdnRelation::Peer,
                    borders,
                });
            }
        }
    }

    // CSR build: providers (v → its providers), customers (exact
    // transpose), peers (symmetric).
    let providers = Csr::from_pairs(n, provider_edges.clone());
    let customers = Csr::from_pairs(n, provider_edges.iter().map(|&(c, p)| (p, c)).collect());
    let mut sym = Vec::with_capacity(peer_edges.len() * 2);
    for &(a, b) in &peer_edges {
        sym.push((a, b));
        sym.push((b, a));
    }
    let peers = Csr::from_pairs(n, sym);

    PolicyGraph {
        n: n as u32,
        class,
        home_metro,
        providers,
        customers,
        peers,
        sessions,
        session_of,
    }
}

/// Bridges every graph node into an [`EyeballAs`] (AsId i = node i) so the
/// geo/workload/DNS layers run unmodified. Only enterprise/access nodes get
/// client footprints; transit-class nodes exist as ASes but never attract
/// clients. A final coverage pass guarantees every metro hosts at least one
/// *enterprise* AS (never a transit — clients must not attach to backbones).
fn bridge_eyeballs(
    atlas: &WorldAtlas,
    graph: &PolicyGraph,
    cfg: &NetConfig,
    rng: &mut impl Rng,
) -> Vec<EyeballAs> {
    let mut eyeballs: Vec<EyeballAs> = Vec::with_capacity(graph.n as usize);
    for v in 0..graph.n {
        let home = graph.home_metro[v as usize];
        let home_metro = atlas.metro(home);
        let pops = if graph.class[v as usize] == AsClass::Ec {
            let home_loc = home_metro.location();
            let mut candidates: Vec<(MetroId, f64)> = atlas
                .iter()
                .filter(|(_, m)| m.country == home_metro.country)
                .map(|(mid, m)| (mid, m.location().haversine_km(&home_loc)))
                .collect();
            candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
            let size = rng
                .gen_range(1..=cfg.eyeball_max_pops)
                .min(candidates.len());
            candidates[..size].iter().map(|&(m, _)| m).collect()
        } else {
            Vec::new()
        };
        let peering_borders = graph
            .session(v)
            .map(|s| s.borders.clone())
            .unwrap_or_default();
        eyeballs.push(EyeballAs {
            id: AsId(v),
            home_metro: home,
            country: home_metro.country,
            pops,
            peering_borders,
            transit: Vec::new(),
            egress_policy: EgressPolicy::HotPotato,
        });
    }

    // EC-only metro coverage: orphan metros join the footprint of the
    // enterprise AS with the nearest home (same region strongly preferred).
    let covered: std::collections::HashSet<MetroId> = eyeballs
        .iter()
        .flat_map(|e| e.pops.iter().copied())
        .collect();
    let ec_indexes: Vec<usize> = (0..graph.n as usize)
        .filter(|&v| graph.class[v] == AsClass::Ec)
        .collect();
    for (mid, metro) in atlas.iter() {
        if covered.contains(&mid) {
            continue;
        }
        let loc = metro.location();
        let best = ec_indexes
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let pa = penalty(atlas, eyeballs[a].home_metro, metro.region)
                    + atlas
                        .metro(eyeballs[a].home_metro)
                        .location()
                        .haversine_km(&loc);
                let pb = penalty(atlas, eyeballs[b].home_metro, metro.region)
                    + atlas
                        .metro(eyeballs[b].home_metro)
                        .location()
                        .haversine_km(&loc);
                pa.total_cmp(&pb)
            })
            .expect("worlds always contain enterprise ASes");
        eyeballs[best].pops.push(mid);
    }
    eyeballs
}

fn penalty(atlas: &WorldAtlas, home: MetroId, target: anycast_geo::Region) -> f64 {
    if atlas.metro(home).region == target {
        0.0
    } else {
        20_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_cfg(n: usize) -> NetConfig {
        NetConfig {
            worldgen: Some(WorldGenConfig::with_ases(n)),
            ..NetConfig::small()
        }
    }

    #[test]
    fn class_counts_sum_to_n() {
        for n in [64, 1_000, 10_000, 75_000] {
            let wg = WorldGenConfig::with_ases(n);
            let (l, h, s, e) = wg.class_counts();
            assert_eq!(l + h + s + e, n);
            assert!(l >= 6 && h >= 3);
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(WorldGenConfig::with_ases(10).validate().is_err());
        assert!(WorldGenConfig {
            p_cdn_peer_ec: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(WorldGenConfig {
            flap_min_s: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(WorldGenConfig::default().validate().is_ok());
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = policy_cfg(500);
        let (t1, w1) = build(&cfg, 42);
        let (t2, w2) = build(&cfg, 42);
        assert_eq!(w1.graph.class, w2.graph.class);
        assert_eq!(w1.graph.home_metro, w2.graph.home_metro);
        assert_eq!(w1.graph.sessions, w2.graph.sessions);
        assert_eq!(w1.graph.providers, w2.graph.providers);
        assert_eq!(w1.graph.peers, w2.graph.peers);
        assert_eq!(t1.eyeballs.len(), t2.eyeballs.len());
        for (a, b) in t1.eyeballs.iter().zip(&t2.eyeballs) {
            assert_eq!(a.pops, b.pops);
            assert_eq!(a.home_metro, b.home_metro);
        }
    }

    #[test]
    fn provider_dag_is_acyclic_by_construction() {
        // Edges only point from a later class block to an earlier one
        // (EC→STP/LTP, STP→LTP, hypergiant→LTP), so customer < provider
        // can only fail within... it cannot: verify no provider edge stays
        // within the same class except none exist.
        let (_, w) = build(&policy_cfg(800), 7);
        let g = &w.graph;
        for v in 0..g.n {
            for &p in g.providers.neighbors(v) {
                assert!(
                    g.class[p as usize] > g.class[v as usize]
                        || (g.class[v as usize] == AsClass::Hypergiant
                            && g.class[p as usize] == AsClass::Ltp),
                    "provider edge {v}→{p} does not climb the hierarchy"
                );
            }
        }
    }

    #[test]
    fn every_node_is_routed_in_steady_state() {
        let (_, w) = build(&policy_cfg(1_000), 3);
        let t = w.steady_table();
        assert_eq!(t.routed_count(), w.graph.n as usize);
    }

    #[test]
    fn transit_sessions_cover_every_border() {
        let (topo, w) = build(&policy_cfg(500), 9);
        let n_borders = topo.cdn.borders.len();
        for s in &w.graph.sessions {
            if s.relation == CdnRelation::Transit {
                assert_eq!(s.borders.len(), n_borders);
            }
        }
        assert!(
            w.graph
                .sessions
                .iter()
                .filter(|s| s.relation == CdnRelation::Transit)
                .count()
                >= 1
        );
    }

    #[test]
    fn remote_peering_pathology_exists() {
        let (_, w) = build(&policy_cfg(4_000), 11);
        let singles = w
            .graph
            .sessions
            .iter()
            .filter(|s| {
                s.relation == CdnRelation::Peer
                    && s.borders.len() == 1
                    && w.graph.class[s.node as usize] == AsClass::Ec
            })
            .count();
        assert!(singles > 0, "no remote-only peers generated");
    }

    #[test]
    fn only_enterprises_host_clients() {
        let (topo, w) = build(&policy_cfg(500), 13);
        for e in &topo.eyeballs {
            if w.graph.class[e.id.0 as usize] != AsClass::Ec {
                assert!(e.pops.is_empty(), "transit AS {} has client pops", e.id.0);
            }
        }
        for (mid, m) in topo.atlas.iter() {
            assert!(
                !topo.eyeballs_at_metro(mid).is_empty(),
                "metro {} uncovered",
                m.name
            );
        }
    }

    #[test]
    fn provider_degrees_are_heavy_tailed() {
        let (_, w) = build(&policy_cfg(8_000), 17);
        let g = &w.graph;
        let mut degrees: Vec<usize> = (0..g.n)
            .filter(|&v| g.class[v as usize] == AsClass::Stp)
            .map(|v| g.customers.neighbors(v).len())
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top_decile: usize = degrees.iter().take(degrees.len() / 10).sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "top-10% providers carry {top_decile}/{total} customers — not heavy-tailed"
        );
    }
}
