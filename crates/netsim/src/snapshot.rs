//! Per-day route memoization: a read-only snapshot of routing decisions.
//!
//! Routing is deterministic per `(client, site, day)` — the stochastic part
//! of a measurement is only the RTT noise added by
//! [`Internet::sample_rtt`]. The campaign engine nevertheless used to
//! recompute BGP/IGP selection and path construction for every beacon
//! fetch, several times per beacon. A [`RouteSnapshot`] hoists that work to
//! once per `(client, site)` per day: build it when the day starts, share
//! it read-only across worker threads, and route each request with an
//! array lookup.
//!
//! The snapshot is **transparent**: for every `(client, site, time)` it
//! returns exactly what [`Internet::anycast_route_at`] /
//! [`Internet::unicast_route_at`] would. The steady-state fast path is a
//! borrow of the precomputed decision; only instants that fall inside a
//! scheduled down-window fall back to the full failover computation (which
//! depends on the set of currently-down sites and is too time-varying to
//! precompute). Worlds without failure injection never take the fallback.

use std::borrow::Cow;

use anycast_obs::counter;

use crate::ids::SiteId;
use crate::internet::{ClientAttachment, Internet, RouteDecision};
use crate::outage::OutageWindow;
use crate::sim::Day;

/// One day's routing table for a fixed client population: steady anycast
/// and per-site unicast decisions, plus the day's outage windows.
#[derive(Debug, Clone)]
pub struct RouteSnapshot {
    day: Day,
    n_sites: usize,
    attachments: Vec<ClientAttachment>,
    /// Steady anycast decision per client.
    anycast: Vec<RouteDecision>,
    /// Unicast decision per `(client, site)`, client-major.
    unicast: Vec<RouteDecision>,
    /// This day's down-window per site (almost always all `None`).
    windows: Vec<Option<OutageWindow>>,
    /// Windows during which *route dynamics* (worldgen session/border
    /// flaps, egress shifts) may move the anycast catchment off steady
    /// state. Always empty outside worldgen worlds.
    dynamics_windows: Vec<(f64, f64)>,
    has_windows: bool,
}

impl RouteSnapshot {
    /// Builds the snapshot sequentially. Equivalent to
    /// [`RouteSnapshot::build_parallel`] with one worker.
    pub fn build(internet: &Internet, clients: &[ClientAttachment], day: Day) -> RouteSnapshot {
        Self::build_parallel(internet, clients, day, 1)
    }

    /// Builds the snapshot with up to `workers` threads. Per-client rows
    /// are pure functions of `(internet, client, day)`, so the result is
    /// identical for any worker count.
    pub fn build_parallel(
        internet: &Internet,
        clients: &[ClientAttachment],
        day: Day,
        workers: usize,
    ) -> RouteSnapshot {
        let sites: Vec<SiteId> = internet.topology().cdn.site_ids().collect();
        let n_sites = sites.len();
        let windows: Vec<Option<OutageWindow>> = sites
            .iter()
            .map(|&s| internet.outages().window_on(s, day))
            .collect();
        let dynamics_windows = internet.anycast_disturbance_windows(day);
        let has_windows = windows.iter().any(Option::is_some) || !dynamics_windows.is_empty();
        for w in windows.iter().flatten() {
            let kind = match w.kind {
                crate::outage::OutageKind::Unplanned => "unplanned",
                crate::outage::OutageKind::Maintenance => "maintenance",
            };
            anycast_obs::global()
                .counter_with("netsim_outage_windows_total", &[("kind", kind)])
                .inc();
        }

        let row = |c: &ClientAttachment| -> (RouteDecision, Vec<RouteDecision>) {
            let any = internet.anycast_route(c, day);
            let uni = sites
                .iter()
                .map(|&s| internet.unicast_route(c, s, day))
                .collect();
            (any, uni)
        };

        let workers = workers.max(1).min(clients.len().max(1));
        let rows: Vec<(RouteDecision, Vec<RouteDecision>)> = if workers <= 1 {
            clients.iter().map(row).collect()
        } else {
            // Contiguous chunks, stitched back in order: worker counts can
            // never reorder (or change) the pure per-client rows.
            let chunk = clients.len().div_ceil(workers);
            let mut parts: Vec<Vec<(RouteDecision, Vec<RouteDecision>)>> =
                Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = clients
                    .chunks(chunk)
                    .map(|part| scope.spawn(|| part.iter().map(row).collect::<Vec<_>>()))
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("snapshot worker panicked"));
                }
            });
            parts.into_iter().flatten().collect()
        };

        let mut anycast = Vec::with_capacity(clients.len());
        let mut unicast = Vec::with_capacity(clients.len() * n_sites);
        for (any, uni) in rows {
            anycast.push(any);
            unicast.extend(uni);
        }
        RouteSnapshot {
            day,
            n_sites,
            attachments: clients.to_vec(),
            anycast,
            unicast,
            windows,
            dynamics_windows,
            has_windows,
        }
    }

    /// The day this snapshot is valid for.
    pub fn day(&self) -> Day {
        self.day
    }

    /// Number of clients covered.
    pub fn len(&self) -> usize {
        self.anycast.len()
    }

    /// Whether the snapshot covers no clients.
    pub fn is_empty(&self) -> bool {
        self.anycast.is_empty()
    }

    /// The attachment snapshot row `client` was built from.
    pub fn attachment(&self, client: usize) -> &ClientAttachment {
        &self.attachments[client]
    }

    /// Steady anycast decision for `client` (ignores outages).
    pub fn steady_anycast(&self, client: usize) -> &RouteDecision {
        &self.anycast[client]
    }

    /// Steady unicast decision for `(client, site)` (ignores outages).
    pub fn steady_unicast(&self, client: usize, site: SiteId) -> &RouteDecision {
        &self.unicast[client * self.n_sites + site.0 as usize]
    }

    /// Whether routing at `time_s` may differ from steady state: some site
    /// is inside a down-window, or a route-dynamics window is active.
    fn any_down(&self, time_s: f64) -> bool {
        self.has_windows
            && (self
                .windows
                .iter()
                .any(|w| w.is_some_and(|w| w.contains(time_s)))
                || self
                    .dynamics_windows
                    .iter()
                    .any(|&(s, e)| time_s >= s && time_s < e))
    }

    /// Memoized [`Internet::anycast_route_at`]: a borrowed steady decision
    /// on the (overwhelmingly common) fast path, the full failover
    /// computation only while some site is actually down.
    pub fn anycast_at(
        &self,
        internet: &Internet,
        client: usize,
        time_s: f64,
    ) -> Option<Cow<'_, RouteDecision>> {
        if !self.any_down(time_s) {
            counter!("netsim_route_memo_hits_total").inc();
            return Some(Cow::Borrowed(self.steady_anycast(client)));
        }
        counter!("netsim_route_memo_misses_total").inc();
        internet
            .anycast_route_at(&self.attachments[client], self.day, time_s)
            .map(Cow::Owned)
    }

    /// Memoized [`Internet::unicast_route_at`]: `None` while `site`'s
    /// window contains `time_s`, the precomputed decision otherwise.
    pub fn unicast_at(&self, client: usize, site: SiteId, time_s: f64) -> Option<&RouteDecision> {
        let down = self.windows[site.0 as usize].is_some_and(|w| w.contains(time_s));
        if down {
            counter!("netsim_route_memo_misses_total").inc();
            None
        } else {
            counter!("netsim_route_memo_hits_total").inc();
            Some(self.steady_unicast(client, site))
        }
    }

    /// A per-client view, for callers that handle one client at a time.
    pub fn client(&self, idx: usize) -> ClientRoutes<'_> {
        ClientRoutes { snap: self, idx }
    }
}

/// A single client's slice of a [`RouteSnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct ClientRoutes<'a> {
    snap: &'a RouteSnapshot,
    idx: usize,
}

impl<'a> ClientRoutes<'a> {
    /// The snapshot's day.
    pub fn day(&self) -> Day {
        self.snap.day
    }

    /// Steady anycast decision (ignores outages).
    pub fn steady_anycast(&self) -> &'a RouteDecision {
        self.snap.steady_anycast(self.idx)
    }

    /// Memoized [`Internet::anycast_route_at`] for this client.
    pub fn anycast_at(&self, internet: &Internet, time_s: f64) -> Option<Cow<'a, RouteDecision>> {
        self.snap.anycast_at(internet, self.idx, time_s)
    }

    /// Memoized [`Internet::unicast_route_at`] for this client.
    pub fn unicast_at(&self, site: SiteId, time_s: f64) -> Option<&'a RouteDecision> {
        self.snap.unicast_at(self.idx, site, time_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::latency::AccessTech;

    fn clients(net: &Internet, n: usize) -> Vec<ClientAttachment> {
        (0..n)
            .map(|i| {
                let e = &net.topology().eyeballs[i % net.topology().eyeballs.len()];
                ClientAttachment {
                    as_id: e.id,
                    metro: e.home_metro,
                    location: net
                        .topology()
                        .atlas
                        .metro(e.home_metro)
                        .location()
                        .destination((i as f64 * 31.0) % 360.0, 15.0),
                    access: AccessTech::sample((i as f64 * 0.21) % 1.0),
                }
            })
            .collect()
    }

    #[test]
    fn snapshot_matches_direct_routing_without_failures() {
        let net = Internet::new(NetConfig::small(), 9).unwrap();
        let cs = clients(&net, 12);
        let snap = RouteSnapshot::build(&net, &cs, Day(2));
        for (i, c) in cs.iter().enumerate() {
            assert_eq!(*snap.steady_anycast(i), net.anycast_route(c, Day(2)));
            for s in net.topology().cdn.site_ids() {
                assert_eq!(*snap.steady_unicast(i, s), net.unicast_route(c, s, Day(2)));
            }
            for t in [0.0, 40_000.0, 80_000.0] {
                assert_eq!(
                    snap.anycast_at(&net, i, t).map(Cow::into_owned),
                    net.anycast_route_at(c, Day(2), t)
                );
            }
        }
    }

    #[test]
    fn snapshot_matches_direct_routing_under_failures() {
        let cfg = NetConfig {
            p_site_outage: 0.3,
            p_site_drain: 0.15,
            ..NetConfig::small()
        };
        let net = Internet::new(cfg, 11).unwrap();
        let cs = clients(&net, 8);
        for day in Day(0).span(6) {
            let snap = RouteSnapshot::build(&net, &cs, day);
            for (i, c) in cs.iter().enumerate() {
                for t in [0.0, 15_000.0, 43_200.0, 70_000.0, 86_000.0] {
                    assert_eq!(
                        snap.anycast_at(&net, i, t).map(Cow::into_owned),
                        net.anycast_route_at(c, day, t),
                        "anycast divergence day {day:?} t {t}"
                    );
                    for s in net.topology().cdn.site_ids() {
                        assert_eq!(
                            snap.unicast_at(i, s, t).cloned(),
                            net.unicast_route_at(c, s, day, t),
                            "unicast divergence day {day:?} t {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let net = Internet::new(NetConfig::small(), 5).unwrap();
        let cs = clients(&net, 23);
        let seq = RouteSnapshot::build(&net, &cs, Day(1));
        for workers in [2, 3, 8] {
            let par = RouteSnapshot::build_parallel(&net, &cs, Day(1), workers);
            assert_eq!(seq.anycast, par.anycast);
            assert_eq!(seq.unicast, par.unicast);
            assert_eq!(seq.windows, par.windows);
        }
    }
}
