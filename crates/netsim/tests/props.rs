//! Property tests for the Internet substrate: routing invariants that must
//! hold over *any* generated world.

use anycast_netsim::worldgen::{route_class, CdnRelation, RouteEnv, CDN_NEXT};
use anycast_netsim::{
    AccessTech, BorderId, CatchmentTable, ClientAttachment, Day, HopKind, Internet, NetConfig,
    OutageKind, OutageModel, PolicyWorld, Prefix24, PrefixAllocator, RouteSnapshot, SiteId,
    WorldGenConfig,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn world(seed: u64) -> Internet {
    Internet::new(NetConfig::small(), seed).unwrap()
}

fn policy_world(n_ases: usize, seed: u64) -> Internet {
    let cfg = NetConfig {
        worldgen: Some(WorldGenConfig::with_ases(n_ases)),
        ..NetConfig::small()
    };
    Internet::new(cfg, seed).unwrap()
}

/// A client attached to some enterprise AS of a policy world (transit-class
/// nodes host no clients).
fn policy_client(net: &Internet, idx: usize) -> ClientAttachment {
    let hosts: Vec<&anycast_netsim::EyeballAs> = net
        .topology()
        .eyeballs
        .iter()
        .filter(|e| !e.pops.is_empty())
        .collect();
    let e = hosts[idx % hosts.len()];
    let metro = e.pops[idx % e.pops.len()];
    ClientAttachment {
        as_id: e.id,
        metro,
        location: net
            .topology()
            .atlas
            .metro(metro)
            .location()
            .destination((idx as f64 * 41.0) % 360.0, 20.0),
        access: AccessTech::sample((idx as f64 * 0.173) % 1.0),
    }
}

/// Verifies every selected route obeys the Gao-Rexford export rules, edge
/// by edge: customer-learned routes flow down customer edges, peer routes
/// take exactly one lateral step into a customer-routed AS, provider routes
/// climb provider edges — so every forwarding path is `Provider* Peer?
/// Customer*` and no AS ever carries traffic between two of its providers
/// or peers (the valley-free property).
fn assert_valley_free(pw: &PolicyWorld, table: &CatchmentTable) -> Result<(), TestCaseError> {
    let g = &pw.graph;
    for v in 0..g.n {
        let Some(e) = table.entry(v) else { continue };
        match e.class {
            route_class::CUSTOMER => {
                if e.next_hop == CDN_NEXT {
                    let s = g.session(v).expect("direct route requires a session");
                    prop_assert_eq!(s.relation, CdnRelation::Transit);
                    prop_assert_eq!(e.path_len, 1);
                } else {
                    prop_assert!(
                        g.customers.neighbors(v).contains(&e.next_hop),
                        "customer-class next hop {} is not a customer of {v}",
                        e.next_hop
                    );
                    let ne = table.entry(e.next_hop).unwrap();
                    prop_assert_eq!(ne.class, route_class::CUSTOMER);
                    prop_assert_eq!(ne.path_len + 1, e.path_len);
                }
            }
            route_class::PEER => {
                if e.next_hop == CDN_NEXT {
                    let s = g.session(v).expect("direct route requires a session");
                    prop_assert_eq!(s.relation, CdnRelation::Peer);
                    prop_assert_eq!(e.path_len, 1);
                } else {
                    prop_assert!(
                        g.peers.neighbors(v).contains(&e.next_hop),
                        "peer-class next hop {} is not a peer of {v}",
                        e.next_hop
                    );
                    // The lateral step must land on a customer route: peer
                    // routes are never re-exported to peers.
                    let ne = table.entry(e.next_hop).unwrap();
                    prop_assert_eq!(ne.class, route_class::CUSTOMER);
                }
            }
            route_class::PROVIDER => {
                prop_assert!(
                    g.providers.neighbors(v).contains(&e.next_hop),
                    "provider-class next hop {} is not a provider of {v}",
                    e.next_hop
                );
                prop_assert!(table.entry(e.next_hop).is_some());
            }
            other => prop_assert!(false, "invalid route class {other}"),
        }
        // The reconstructed AS path terminates at a CDN session whose
        // borders include the selected ingress, and its length matches.
        let path = table.path(v);
        prop_assert_eq!(path.len(), e.path_len as usize);
        let last = *path.last().unwrap();
        let sess = g.session(last).expect("terminal AS holds the CDN session");
        prop_assert!(
            sess.borders.contains(&BorderId(e.ingress)),
            "ingress {} not on the terminal session of {v}",
            e.ingress
        );
    }
    Ok(())
}

/// A deterministic pseudo-random disturbance environment for the
/// incremental-vs-scratch oracle.
fn arbitrary_env(pw: &PolicyWorld, env_seed: u64) -> RouteEnv {
    let mix = |k: u64| {
        let mut z = env_seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    let n_sessions = pw.graph.sessions.len() as u64;
    let mut env = RouteEnv::default();
    for i in 0..(mix(1) % 4) {
        env.dead_sessions.push((mix(100 + i) % n_sessions) as u32);
    }
    for i in 0..(mix(2) % 3) {
        let s = (mix(200 + i) % n_sessions) as u32;
        if pw.graph.sessions[s as usize].borders.len() > 1 {
            env.shifted.push(s);
        }
    }
    if mix(3) % 4 == 0 {
        let sess = &pw.graph.sessions[(mix(300) % n_sessions) as usize];
        env.withdrawn
            .push(sess.borders[(mix(301) as usize) % sess.borders.len()]);
    }
    env.dead_sessions.sort_unstable();
    env.dead_sessions.dedup();
    env.shifted.sort_unstable();
    env.shifted.dedup();
    env.withdrawn.sort_unstable();
    env.withdrawn.dedup();
    env
}

fn client_of(net: &Internet, idx: usize, offset_km: f64) -> ClientAttachment {
    let eyeballs = &net.topology().eyeballs;
    let e = &eyeballs[idx % eyeballs.len()];
    let metro = e.pops[idx % e.pops.len()];
    ClientAttachment {
        as_id: e.id,
        metro,
        location: net
            .topology()
            .atlas
            .metro(metro)
            .location()
            .destination((idx as f64 * 37.0) % 360.0, offset_km),
        access: AccessTech::sample((idx as f64 * 0.137) % 1.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn anycast_routes_are_well_formed(seed in 0u64..20, idx in 0usize..200, day in 0u32..14) {
        let net = world(seed);
        let c = client_of(&net, idx, 25.0);
        let d = net.anycast_route(&c, Day(day));
        // Site is a real site; ingress a real border.
        prop_assert!((d.site.0 as usize) < net.topology().cdn.sites.len());
        prop_assert!((d.ingress.0 as usize) < net.topology().cdn.borders.len());
        // Path shape: starts at the client, ends at the chosen site.
        let hops = d.path.hops();
        prop_assert!(hops.len() >= 3);
        prop_assert_eq!(hops[0].kind, HopKind::ClientAccess);
        prop_assert_eq!(hops.last().unwrap().kind, HopKind::FrontEnd);
        prop_assert_eq!(hops.last().unwrap().metro, net.topology().cdn.site_metro(d.site));
        // Latency is at least two-way stretched propagation over the path.
        let floor = 2.0 * d.path.total_km() * net.config().fiber_path_stretch
            / net.config().fiber_km_per_ms;
        prop_assert!(d.base_rtt_ms >= floor - 1e-9);
        prop_assert!(d.base_rtt_ms.is_finite());
    }

    #[test]
    fn unicast_routes_serve_the_requested_site(seed in 0u64..10, idx in 0usize..100, site_pick in 0usize..12) {
        let net = world(seed);
        let c = client_of(&net, idx, 30.0);
        let sites: Vec<_> = net.topology().cdn.site_ids().collect();
        let site = sites[site_pick % sites.len()];
        let d = net.unicast_route(&c, site, Day(0));
        prop_assert_eq!(d.site, site);
        prop_assert_eq!(
            d.path.hops().last().unwrap().metro,
            net.topology().cdn.site_metro(site)
        );
    }

    #[test]
    fn routing_day_determinism(seed in 0u64..10, idx in 0usize..100, day in 0u32..28) {
        let net = world(seed);
        let c = client_of(&net, idx, 10.0);
        prop_assert_eq!(net.anycast_route(&c, Day(day)), net.anycast_route(&c, Day(day)));
    }

    #[test]
    fn day_start_route_differs_only_on_flip_days(seed in 0u64..8, idx in 0usize..80, day in 1u32..14) {
        let net = world(seed);
        let c = client_of(&net, idx, 10.0);
        let start = net.anycast_route_at_day_start(&c, Day(day));
        let end = net.anycast_route(&c, Day(day));
        if !net.churn().flips_on(c.as_id, c.metro, Day(day)) {
            prop_assert_eq!(start.ingress, end.ingress);
        }
    }

    #[test]
    fn idealized_world_is_pathology_free(seed in 0u64..6, idx in 0usize..60) {
        let cfg = NetConfig { n_sites: 12, n_extra_borders: 4, n_transit: 3,
            transit_pops: 20, n_eyeball: 40, ..NetConfig::idealized() };
        let net = Internet::new(cfg, seed).unwrap();
        let c = client_of(&net, idx, 10.0);
        // No churn: every day routes identically.
        let d0 = net.anycast_route(&c, Day(0));
        for day in 1..10 {
            prop_assert_eq!(net.anycast_route(&c, Day(day)).site, d0.site);
        }
    }

    #[test]
    fn sampled_rtts_always_exceed_base(seed in 0u64..6, idx in 0usize..60, noise_seed in any::<u64>()) {
        use rand::SeedableRng;
        let net = world(seed);
        let c = client_of(&net, idx, 10.0);
        let d = net.anycast_route(&c, Day(0));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(noise_seed);
        for _ in 0..20 {
            let rtt = net.sample_rtt(&d, &mut rng);
            prop_assert!(rtt > d.base_rtt_ms);
            prop_assert!(rtt.is_finite());
        }
    }

    #[test]
    fn prefix_allocator_never_repeats(n in 1usize..2000) {
        let mut alloc = PrefixAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let p: Prefix24 = alloc.alloc();
            prop_assert!(seen.insert(p));
        }
    }

    #[test]
    fn outage_schedule_is_deterministic_and_well_formed(
        seed in any::<u64>(),
        rate in 0.0f64..0.5,
        site in 0u16..64,
        day in 0u32..365,
    ) {
        let cfg = NetConfig {
            p_site_outage: rate,
            p_site_drain: rate * 0.5,
            ..NetConfig::small()
        };
        let a = OutageModel::new(&cfg, seed);
        let b = OutageModel::new(&cfg, seed);
        let win = a.window_on(SiteId(site), Day(day));
        // Pure function of (seed, site, day): replays agree bit-for-bit.
        prop_assert_eq!(win, b.window_on(SiteId(site), Day(day)));
        if let Some(w) = win {
            // Windows sit inside the day and never span midnight.
            prop_assert!(w.start_s >= 0.0);
            prop_assert!(w.start_s < w.end_s);
            prop_assert!(w.end_s <= 86_400.0);
            // is_down agrees with the window over the whole day.
            for probe in [w.start_s, w.end_s - 1e-6, (w.start_s + w.end_s) / 2.0] {
                prop_assert!(a.is_down(SiteId(site), Day(day), probe));
            }
            prop_assert!(!a.is_down(SiteId(site), Day(day), w.end_s));
        } else {
            prop_assert!(!a.is_down(SiteId(site), Day(day), 43_200.0));
        }
    }

    #[test]
    fn outage_fraction_tracks_the_configured_rate(
        seed in any::<u64>(),
        rate in 0.05f64..0.45,
    ) {
        let cfg = NetConfig { p_site_outage: rate, ..NetConfig::small() };
        let m = OutageModel::new(&cfg, seed);
        let (n_sites, n_days) = (16u16, 200u32);
        let mut outages = 0u32;
        for s in 0..n_sites {
            for d in 0..n_days {
                if matches!(
                    m.window_on(SiteId(s), Day(d)),
                    Some(w) if w.kind == OutageKind::Unplanned
                ) {
                    outages += 1;
                }
            }
        }
        let frac = f64::from(outages) / f64::from(u32::from(n_sites) * n_days);
        // 3 200 draws: the observed fraction must sit well within
        // binomial noise of the configured probability (±5σ ≈ 0.045).
        prop_assert!((frac - rate).abs() < 0.05, "fraction {frac} vs rate {rate}");
    }

    #[test]
    fn catchments_never_point_at_down_sites(
        seed in 0u64..6,
        idx in 0usize..60,
        day in 0u32..10,
        slot in 0u32..24,
    ) {
        let cfg = NetConfig {
            p_site_outage: 0.3,
            p_site_drain: 0.2,
            ..NetConfig::small()
        };
        let net = Internet::new(cfg, seed).unwrap();
        let c = client_of(&net, idx, 20.0);
        let t = (f64::from(slot) + 0.5) * 3_600.0;
        // Anycast only ever resolves to a live site — failover is routing's
        // job, so a Some(..) answer must be servable.
        if let Some(d) = net.anycast_route_at(&c, Day(day), t) {
            prop_assert!(!net.outages().is_down(d.site, Day(day), t));
        }
        // Unicast has no such escape hatch: a down site is unreachable for
        // the whole window.
        for site in net.topology().cdn.site_ids() {
            if net.outages().is_down(site, Day(day), t) {
                prop_assert!(net.unicast_route_at(&c, site, Day(day), t).is_none());
            }
        }
    }

    #[test]
    fn config_validation_rejects_out_of_range(p in 1.01f64..100.0) {
        for field in 0..3 {
            let mut cfg = NetConfig::default();
            match field {
                0 => cfg.p_direct_peering = p,
                1 => cfg.flappy_fraction = p,
                _ => cfg.spike_prob = p,
            }
            prop_assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn valley_free_invariant_holds_at_every_scale(
        seed in 0u64..6,
        scale_pick in 0usize..3,
    ) {
        // The tentpole invariant: every selected route in a generated
        // world, at every scale, is valley-free — verified edge by edge
        // against the Gao-Rexford export rules.
        let n_ases = [500, 2_000, 5_000][scale_pick];
        let net = policy_world(n_ases, seed);
        let pw = net.policy_world().expect("worldgen world has a policy engine");
        let table = pw.steady_table();
        // Steady state routes the whole graph.
        prop_assert_eq!(table.routed_count(), pw.graph.n as usize);
        assert_valley_free(pw, &table)?;
        // Unicast announcements (single border) stay valley-free too, and
        // every route ingresses at the announcement border.
        let border = net.topology().cdn.border_ids().next().unwrap();
        let uni = pw.unicast_table(border);
        prop_assert_eq!(uni.routed_count(), pw.graph.n as usize);
        assert_valley_free(pw, &uni)?;
        for v in 0..pw.graph.n {
            prop_assert_eq!(uni.entry(v).unwrap().ingress, border.0);
        }
    }

    #[test]
    fn incremental_recompute_matches_scratch_oracle(
        seed in 0u64..8,
        env_seed in any::<u64>(),
    ) {
        // Dirty-subtree recomputation must be bit-identical to a full
        // from-scratch pass under the same environment — the same routine
        // runs both, restricted to different dirty sets.
        let net = policy_world(1_500, seed);
        let pw = net.policy_world().unwrap();
        let env = arbitrary_env(pw, env_seed);
        prop_assume!(!env.is_steady());
        let base = pw.steady_table();
        let incremental = pw.recompute_incremental(&base, &env);
        let scratch = pw.compute_scratch(&env);
        prop_assert_eq!(incremental.entries(), scratch.entries());
        assert_valley_free(pw, &scratch)?;
    }

    #[test]
    fn policy_worlds_route_deterministically(
        seed in 0u64..5,
        idx in 0usize..60,
        day in 0u32..6,
    ) {
        // Two independently built worlds from the same seed agree on every
        // route — and the steady table is one shared allocation across
        // days (the cross-day memoization the cache counters track).
        let a = policy_world(800, seed);
        let b = policy_world(800, seed);
        let ca = policy_client(&a, idx);
        let cb = policy_client(&b, idx);
        prop_assert_eq!(a.anycast_route(&ca, Day(day)), b.anycast_route(&cb, Day(day)));
        let pa = a.policy_world().unwrap();
        let before = pa.steady_table();
        for d in 0..4 {
            let _ = a.anycast_route(&ca, Day(d));
        }
        prop_assert!(std::sync::Arc::ptr_eq(&before, &pa.steady_table()));
    }

    #[test]
    fn policy_route_memo_is_transparent(
        seed in 0u64..5,
        idx in 0usize..40,
        day in 0u32..6,
        slot in 0u32..48,
    ) {
        // RouteSnapshot must stay a pure cache in worldgen worlds, where
        // mid-day route dynamics (not just outages) can move catchments.
        let cfg = NetConfig {
            worldgen: Some(WorldGenConfig {
                n_ases: 600,
                p_session_flap: 0.25,
                p_border_flap: 0.1,
                p_egress_shift: 0.3,
                ..WorldGenConfig::default()
            }),
            p_site_outage: 0.2,
            p_site_drain: 0.1,
            ..NetConfig::small()
        };
        let net = Internet::new(cfg, seed).unwrap();
        let c = policy_client(&net, idx);
        let snap = RouteSnapshot::build(&net, &[c], Day(day));
        let t = f64::from(slot) * 1_800.0 + 900.0;
        let memo = snap.anycast_at(&net, 0, t).map(|d| d.into_owned());
        let direct = net.anycast_route_at(&c, Day(day), t);
        prop_assert_eq!(memo, direct, "anycast memo diverges at t={}", t);
        for site in net.topology().cdn.site_ids() {
            let memo = snap.unicast_at(0, site, t).cloned();
            let direct = net.unicast_route_at(&c, site, Day(day), t);
            prop_assert_eq!(memo, direct, "unicast memo diverges at site {:?}", site);
        }
    }

    #[test]
    fn route_memo_is_transparent(
        seed in 0u64..6,
        idx in 0usize..60,
        day in 0u32..10,
        slot in 0u32..48,
    ) {
        // A per-day RouteSnapshot must be a pure cache: every route it
        // answers — steady fast path or outage-window fallback — is the
        // route the Internet would have computed directly, in a world
        // where outages and drains actually fire.
        let cfg = NetConfig {
            p_site_outage: 0.25,
            p_site_drain: 0.15,
            ..NetConfig::small()
        };
        let net = Internet::new(cfg, seed).unwrap();
        let c = client_of(&net, idx, 15.0);
        let snap = RouteSnapshot::build(&net, &[c], Day(day));
        let t = f64::from(slot) * 1_800.0 + 900.0;
        let memo = snap.anycast_at(&net, 0, t).map(|d| d.into_owned());
        let direct = net.anycast_route_at(&c, Day(day), t);
        prop_assert_eq!(memo, direct, "anycast memo diverges at t={}", t);
        for site in net.topology().cdn.site_ids() {
            let memo = snap.unicast_at(0, site, t).cloned();
            let direct = net.unicast_route_at(&c, site, Day(day), t);
            prop_assert_eq!(memo, direct, "unicast memo diverges at site {:?}", site);
        }
    }
}

/// Satellite invariant for the catchment memo (the PR-3 `RouteSnapshot`
/// memoization, extended): days that share an announcement set share one
/// computed table, and the obs cache-hit counter records the reuse.
#[test]
fn catchment_tables_are_reused_across_days() {
    let net = policy_world(1_000, 21);
    let pw = net
        .policy_world()
        .expect("worldgen world has a policy plane");
    let c = policy_client(&net, 7);

    let hits = |snap: &anycast_obs::Snapshot| snap.counter("netsim_catchment_cache_hits_total");
    let before = hits(&anycast_obs::global().snapshot());
    let first = pw.steady_table();
    for day in 0..12 {
        net.anycast_route(&c, Day(day));
    }
    // Every day resolved against the very table computed up front…
    assert!(std::sync::Arc::ptr_eq(&first, &pw.steady_table()));
    // …and the counter proves each resolution was a cache hit, not a
    // recompute (other tests in this binary only ever add hits).
    let after = hits(&anycast_obs::global().snapshot());
    assert!(
        after >= before + 12,
        "expected >=12 cache hits across days, saw {before} -> {after}"
    );
}
