//! Property tests for the Internet substrate: routing invariants that must
//! hold over *any* generated world.

use anycast_netsim::{
    AccessTech, ClientAttachment, Day, HopKind, Internet, NetConfig, OutageKind, OutageModel,
    Prefix24, PrefixAllocator, RouteSnapshot, SiteId,
};
use proptest::prelude::*;

fn world(seed: u64) -> Internet {
    Internet::new(NetConfig::small(), seed).unwrap()
}

fn client_of(net: &Internet, idx: usize, offset_km: f64) -> ClientAttachment {
    let eyeballs = &net.topology().eyeballs;
    let e = &eyeballs[idx % eyeballs.len()];
    let metro = e.pops[idx % e.pops.len()];
    ClientAttachment {
        as_id: e.id,
        metro,
        location: net
            .topology()
            .atlas
            .metro(metro)
            .location()
            .destination((idx as f64 * 37.0) % 360.0, offset_km),
        access: AccessTech::sample((idx as f64 * 0.137) % 1.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn anycast_routes_are_well_formed(seed in 0u64..20, idx in 0usize..200, day in 0u32..14) {
        let net = world(seed);
        let c = client_of(&net, idx, 25.0);
        let d = net.anycast_route(&c, Day(day));
        // Site is a real site; ingress a real border.
        prop_assert!((d.site.0 as usize) < net.topology().cdn.sites.len());
        prop_assert!((d.ingress.0 as usize) < net.topology().cdn.borders.len());
        // Path shape: starts at the client, ends at the chosen site.
        let hops = d.path.hops();
        prop_assert!(hops.len() >= 3);
        prop_assert_eq!(hops[0].kind, HopKind::ClientAccess);
        prop_assert_eq!(hops.last().unwrap().kind, HopKind::FrontEnd);
        prop_assert_eq!(hops.last().unwrap().metro, net.topology().cdn.site_metro(d.site));
        // Latency is at least two-way stretched propagation over the path.
        let floor = 2.0 * d.path.total_km() * net.config().fiber_path_stretch
            / net.config().fiber_km_per_ms;
        prop_assert!(d.base_rtt_ms >= floor - 1e-9);
        prop_assert!(d.base_rtt_ms.is_finite());
    }

    #[test]
    fn unicast_routes_serve_the_requested_site(seed in 0u64..10, idx in 0usize..100, site_pick in 0usize..12) {
        let net = world(seed);
        let c = client_of(&net, idx, 30.0);
        let sites: Vec<_> = net.topology().cdn.site_ids().collect();
        let site = sites[site_pick % sites.len()];
        let d = net.unicast_route(&c, site, Day(0));
        prop_assert_eq!(d.site, site);
        prop_assert_eq!(
            d.path.hops().last().unwrap().metro,
            net.topology().cdn.site_metro(site)
        );
    }

    #[test]
    fn routing_day_determinism(seed in 0u64..10, idx in 0usize..100, day in 0u32..28) {
        let net = world(seed);
        let c = client_of(&net, idx, 10.0);
        prop_assert_eq!(net.anycast_route(&c, Day(day)), net.anycast_route(&c, Day(day)));
    }

    #[test]
    fn day_start_route_differs_only_on_flip_days(seed in 0u64..8, idx in 0usize..80, day in 1u32..14) {
        let net = world(seed);
        let c = client_of(&net, idx, 10.0);
        let start = net.anycast_route_at_day_start(&c, Day(day));
        let end = net.anycast_route(&c, Day(day));
        if !net.churn().flips_on(c.as_id, c.metro, Day(day)) {
            prop_assert_eq!(start.ingress, end.ingress);
        }
    }

    #[test]
    fn idealized_world_is_pathology_free(seed in 0u64..6, idx in 0usize..60) {
        let cfg = NetConfig { n_sites: 12, n_extra_borders: 4, n_transit: 3,
            transit_pops: 20, n_eyeball: 40, ..NetConfig::idealized() };
        let net = Internet::new(cfg, seed).unwrap();
        let c = client_of(&net, idx, 10.0);
        // No churn: every day routes identically.
        let d0 = net.anycast_route(&c, Day(0));
        for day in 1..10 {
            prop_assert_eq!(net.anycast_route(&c, Day(day)).site, d0.site);
        }
    }

    #[test]
    fn sampled_rtts_always_exceed_base(seed in 0u64..6, idx in 0usize..60, noise_seed in any::<u64>()) {
        use rand::SeedableRng;
        let net = world(seed);
        let c = client_of(&net, idx, 10.0);
        let d = net.anycast_route(&c, Day(0));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(noise_seed);
        for _ in 0..20 {
            let rtt = net.sample_rtt(&d, &mut rng);
            prop_assert!(rtt > d.base_rtt_ms);
            prop_assert!(rtt.is_finite());
        }
    }

    #[test]
    fn prefix_allocator_never_repeats(n in 1usize..2000) {
        let mut alloc = PrefixAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let p: Prefix24 = alloc.alloc();
            prop_assert!(seen.insert(p));
        }
    }

    #[test]
    fn outage_schedule_is_deterministic_and_well_formed(
        seed in any::<u64>(),
        rate in 0.0f64..0.5,
        site in 0u16..64,
        day in 0u32..365,
    ) {
        let cfg = NetConfig {
            p_site_outage: rate,
            p_site_drain: rate * 0.5,
            ..NetConfig::small()
        };
        let a = OutageModel::new(&cfg, seed);
        let b = OutageModel::new(&cfg, seed);
        let win = a.window_on(SiteId(site), Day(day));
        // Pure function of (seed, site, day): replays agree bit-for-bit.
        prop_assert_eq!(win, b.window_on(SiteId(site), Day(day)));
        if let Some(w) = win {
            // Windows sit inside the day and never span midnight.
            prop_assert!(w.start_s >= 0.0);
            prop_assert!(w.start_s < w.end_s);
            prop_assert!(w.end_s <= 86_400.0);
            // is_down agrees with the window over the whole day.
            for probe in [w.start_s, w.end_s - 1e-6, (w.start_s + w.end_s) / 2.0] {
                prop_assert!(a.is_down(SiteId(site), Day(day), probe));
            }
            prop_assert!(!a.is_down(SiteId(site), Day(day), w.end_s));
        } else {
            prop_assert!(!a.is_down(SiteId(site), Day(day), 43_200.0));
        }
    }

    #[test]
    fn outage_fraction_tracks_the_configured_rate(
        seed in any::<u64>(),
        rate in 0.05f64..0.45,
    ) {
        let cfg = NetConfig { p_site_outage: rate, ..NetConfig::small() };
        let m = OutageModel::new(&cfg, seed);
        let (n_sites, n_days) = (16u16, 200u32);
        let mut outages = 0u32;
        for s in 0..n_sites {
            for d in 0..n_days {
                if matches!(
                    m.window_on(SiteId(s), Day(d)),
                    Some(w) if w.kind == OutageKind::Unplanned
                ) {
                    outages += 1;
                }
            }
        }
        let frac = f64::from(outages) / f64::from(u32::from(n_sites) * n_days);
        // 3 200 draws: the observed fraction must sit well within
        // binomial noise of the configured probability (±5σ ≈ 0.045).
        prop_assert!((frac - rate).abs() < 0.05, "fraction {frac} vs rate {rate}");
    }

    #[test]
    fn catchments_never_point_at_down_sites(
        seed in 0u64..6,
        idx in 0usize..60,
        day in 0u32..10,
        slot in 0u32..24,
    ) {
        let cfg = NetConfig {
            p_site_outage: 0.3,
            p_site_drain: 0.2,
            ..NetConfig::small()
        };
        let net = Internet::new(cfg, seed).unwrap();
        let c = client_of(&net, idx, 20.0);
        let t = (f64::from(slot) + 0.5) * 3_600.0;
        // Anycast only ever resolves to a live site — failover is routing's
        // job, so a Some(..) answer must be servable.
        if let Some(d) = net.anycast_route_at(&c, Day(day), t) {
            prop_assert!(!net.outages().is_down(d.site, Day(day), t));
        }
        // Unicast has no such escape hatch: a down site is unreachable for
        // the whole window.
        for site in net.topology().cdn.site_ids() {
            if net.outages().is_down(site, Day(day), t) {
                prop_assert!(net.unicast_route_at(&c, site, Day(day), t).is_none());
            }
        }
    }

    #[test]
    fn config_validation_rejects_out_of_range(p in 1.01f64..100.0) {
        for field in 0..3 {
            let mut cfg = NetConfig::default();
            match field {
                0 => cfg.p_direct_peering = p,
                1 => cfg.flappy_fraction = p,
                _ => cfg.spike_prob = p,
            }
            prop_assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn route_memo_is_transparent(
        seed in 0u64..6,
        idx in 0usize..60,
        day in 0u32..10,
        slot in 0u32..48,
    ) {
        // A per-day RouteSnapshot must be a pure cache: every route it
        // answers — steady fast path or outage-window fallback — is the
        // route the Internet would have computed directly, in a world
        // where outages and drains actually fire.
        let cfg = NetConfig {
            p_site_outage: 0.25,
            p_site_drain: 0.15,
            ..NetConfig::small()
        };
        let net = Internet::new(cfg, seed).unwrap();
        let c = client_of(&net, idx, 15.0);
        let snap = RouteSnapshot::build(&net, &[c], Day(day));
        let t = f64::from(slot) * 1_800.0 + 900.0;
        let memo = snap.anycast_at(&net, 0, t).map(|d| d.into_owned());
        let direct = net.anycast_route_at(&c, Day(day), t);
        prop_assert_eq!(memo, direct, "anycast memo diverges at t={}", t);
        for site in net.topology().cdn.site_ids() {
            let memo = snap.unicast_at(0, site, t).cloned();
            let direct = net.unicast_route_at(&c, site, Day(day), t);
            prop_assert_eq!(memo, direct, "unicast memo diverges at site {:?}", site);
        }
    }
}
