//! RFC 1035 wire primitives: bounds-checked reads, header bits, and name
//! encode/decode with compression.
//!
//! The decode side is written for hostile input — every read is
//! bounds-checked, compression pointers must point strictly backwards (the
//! classic anti-loop rule), the number of pointer jumps is capped, and the
//! reassembled name is revalidated through [`DnsName`]'s RFC 1035 shape
//! rules before anything downstream sees it. The encode side performs
//! target-style name compression: every label suffix written at a
//! pointer-reachable offset is remembered, and later names reuse the
//! longest recorded suffix.

use std::collections::HashMap;

use anycast_dns::DnsName;

/// Fixed DNS header length in octets.
pub const HEADER_LEN: usize = 12;
/// `A` record type.
pub const TYPE_A: u16 = 1;
/// `TXT` record type (RFC 1035 §3.3.14) — carries the in-band metrics
/// scrape payload.
pub const TYPE_TXT: u16 = 16;
/// `OPT` pseudo-record type (EDNS0, RFC 6891).
pub const TYPE_OPT: u16 = 41;
/// `IN` class.
pub const CLASS_IN: u16 = 1;
/// `CH` (CHAOS) class — the classic side channel for server self-report
/// queries (`version.bind`, `metrics.bind` here).
pub const CLASS_CHAOS: u16 = 3;
/// EDNS option code for client subnet (RFC 7871).
pub const OPTION_ECS: u16 = 8;
/// Maximum UDP payload for plain (non-EDNS) DNS, per RFC 1035.
pub const CLASSIC_UDP_LIMIT: usize = 512;
/// Maximum wire length of an encoded name (RFC 1035 §3.1).
pub const MAX_NAME_WIRE_LEN: usize = 255;
/// Maximum label length.
pub const MAX_LABEL_LEN: usize = 63;
/// Cap on compression-pointer jumps while decoding one name. Pointers
/// must also strictly decrease, so this is belt *and* suspenders.
pub const MAX_POINTER_JUMPS: usize = 32;

/// Why a packet failed to decode. Every variant is a controlled error —
/// arbitrary input can produce any of these but never a panic (pinned by
/// the `decode_arbitrary_bytes_never_panics` proptest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// A read ran past the end of the buffer.
    Truncated,
    /// A label length octet used the reserved 0x40/0x80 prefixes.
    BadLabelType,
    /// A compression pointer did not point strictly backwards.
    ForwardPointer,
    /// More than [`MAX_POINTER_JUMPS`] pointer hops in one name.
    PointerLoop,
    /// The reassembled name exceeded [`MAX_NAME_WIRE_LEN`] octets.
    NameTooLong,
    /// The reassembled name failed [`DnsName`] validation.
    BadName,
    /// The message did not carry exactly one question.
    BadQuestionCount,
    /// The message direction bit did not match what the caller expected.
    WrongDirection,
    /// A structurally malformed OPT record or ECS option payload.
    BadOpt,
    /// A resource record's RDLENGTH disagreed with its payload.
    BadRdata,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "message truncated",
            WireError::BadLabelType => "reserved label type",
            WireError::ForwardPointer => "compression pointer does not point backwards",
            WireError::PointerLoop => "too many compression pointer jumps",
            WireError::NameTooLong => "name exceeds 255 octets",
            WireError::BadName => "name fails RFC 1035 validation",
            WireError::BadQuestionCount => "message must carry exactly one question",
            WireError::WrongDirection => "QR bit does not match expected direction",
            WireError::BadOpt => "malformed EDNS OPT / ECS option",
            WireError::BadRdata => "RDLENGTH disagrees with record payload",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked read cursor over a received packet.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Reads one octet.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    /// Reads `n` raw octets.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Skips `n` octets.
    pub fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    /// Decodes a (possibly compressed) domain name starting at the current
    /// position, leaving the cursor just past the name's in-stream bytes.
    ///
    /// Safety rules enforced on the wire form:
    /// * label length octets `0x40..=0xBF` are rejected (reserved types);
    /// * every compression pointer must target an offset **strictly below**
    ///   the offset of the earliest pointer followed so far — loops and
    ///   forward references are structurally impossible;
    /// * at most [`MAX_POINTER_JUMPS`] hops;
    /// * the reassembled name is capped at [`MAX_NAME_WIRE_LEN`] octets and
    ///   must pass [`DnsName`] validation (so downstream code only ever
    ///   sees well-formed, lowercase names).
    pub fn name(&mut self) -> Result<DnsName, WireError> {
        let mut text = String::new();
        let mut wire_len = 0usize; // reassembled wire octets (labels + len octets)
        let mut jumps = 0usize;
        // Highest offset the next pointer is allowed to target; tightened
        // on every jump so pointer chains strictly descend.
        let mut pointer_bound = self.pos;
        let mut read = *self; // local cursor; may jump around the buffer
        let mut after: Option<usize> = None; // resume position in the stream

        loop {
            let len = read.u8()?;
            match len {
                0 => break,
                l if l & 0xC0 == 0xC0 => {
                    let lo = read.u8()?;
                    if after.is_none() {
                        after = Some(read.pos);
                    }
                    let target = usize::from(u16::from_be_bytes([l & 0x3F, lo]));
                    // Strictly-descending rule: the first pointer must land
                    // before the start of this name, and every later pointer
                    // before the previous target.
                    if target >= pointer_bound {
                        return Err(WireError::ForwardPointer);
                    }
                    jumps += 1;
                    if jumps > MAX_POINTER_JUMPS {
                        return Err(WireError::PointerLoop);
                    }
                    pointer_bound = target;
                    read = Cursor {
                        buf: self.buf,
                        pos: target,
                    };
                }
                l if l & 0xC0 != 0 => return Err(WireError::BadLabelType),
                l => {
                    let l = usize::from(l);
                    wire_len += 1 + l;
                    if wire_len + 1 > MAX_NAME_WIRE_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    let bytes = read.take(l)?;
                    if !text.is_empty() {
                        text.push('.');
                    }
                    for &b in bytes {
                        if !b.is_ascii() {
                            return Err(WireError::BadName);
                        }
                        text.push(char::from(b));
                    }
                }
            }
        }
        self.pos = after.unwrap_or(read.pos);
        DnsName::new(&text).map_err(|_| WireError::BadName)
    }
}

/// Parsed header flags (the second 16-bit word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// QR: false = query, true = response.
    pub qr: bool,
    /// Opcode (0 = standard query).
    pub opcode: u8,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: u8,
}

impl Flags {
    /// Packs into the wire word. The Z bits are always zero.
    pub fn encode(&self) -> u16 {
        (u16::from(self.qr) << 15)
            | (u16::from(self.opcode & 0x0F) << 11)
            | (u16::from(self.aa) << 10)
            | (u16::from(self.tc) << 9)
            | (u16::from(self.rd) << 8)
            | (u16::from(self.ra) << 7)
            | u16::from(self.rcode & 0x0F)
    }

    /// Unpacks from the wire word, ignoring the Z bits.
    pub fn decode(w: u16) -> Flags {
        Flags {
            qr: w & 0x8000 != 0,
            opcode: ((w >> 11) & 0x0F) as u8,
            aa: w & 0x0400 != 0,
            tc: w & 0x0200 != 0,
            rd: w & 0x0100 != 0,
            ra: w & 0x0080 != 0,
            rcode: (w & 0x000F) as u8,
        }
    }
}

/// The fixed 12-octet message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Query id, echoed in the response.
    pub id: u16,
    /// Flag bits.
    pub flags: Flags,
    /// Question count.
    pub qdcount: u16,
    /// Answer count.
    pub ancount: u16,
    /// Authority count.
    pub nscount: u16,
    /// Additional count.
    pub arcount: u16,
}

impl Header {
    /// Appends the 12 header octets.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags.encode().to_be_bytes());
        out.extend_from_slice(&self.qdcount.to_be_bytes());
        out.extend_from_slice(&self.ancount.to_be_bytes());
        out.extend_from_slice(&self.nscount.to_be_bytes());
        out.extend_from_slice(&self.arcount.to_be_bytes());
    }

    /// Reads the header from a cursor.
    pub fn decode(c: &mut Cursor<'_>) -> Result<Header, WireError> {
        Ok(Header {
            id: c.u16()?,
            flags: Flags::decode(c.u16()?),
            qdcount: c.u16()?,
            ancount: c.u16()?,
            nscount: c.u16()?,
            arcount: c.u16()?,
        })
    }
}

/// Name writer with target-style compression: remembers the offset of
/// every label suffix it writes and emits a pointer for the longest suffix
/// already on the wire.
#[derive(Debug, Default)]
pub struct NameWriter {
    offsets: HashMap<String, u16>,
}

impl NameWriter {
    /// A fresh writer (no remembered suffixes).
    pub fn new() -> NameWriter {
        NameWriter::default()
    }

    /// Appends `name` to `out`, compressing against previously written
    /// names. Offsets beyond the 14-bit pointer range are written in full
    /// and not remembered.
    pub fn write(&mut self, out: &mut Vec<u8>, name: &DnsName) {
        let mut rest = name.as_str();
        loop {
            if let Some(&off) = self.offsets.get(rest) {
                out.extend_from_slice(&(0xC000u16 | off).to_be_bytes());
                return;
            }
            let here = out.len();
            if here < 0x4000 {
                self.offsets.insert(rest.to_string(), here as u16);
            }
            match rest.split_once('.') {
                Some((label, tail)) => {
                    debug_assert!(label.len() <= MAX_LABEL_LEN);
                    out.push(label.len() as u8);
                    out.extend_from_slice(label.as_bytes());
                    rest = tail;
                }
                None => {
                    out.push(rest.len() as u8);
                    out.extend_from_slice(rest.as_bytes());
                    out.push(0);
                    return;
                }
            }
        }
    }
}

/// Appends a name without compression (used for query encoding, where
/// there is nothing earlier to point at).
pub fn write_name_uncompressed(out: &mut Vec<u8>, name: &DnsName) {
    for label in name.labels() {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = Header {
            id: 0xBEEF,
            flags: Flags {
                qr: true,
                opcode: 0,
                aa: true,
                tc: false,
                rd: true,
                ra: false,
                rcode: 3,
            },
            qdcount: 1,
            ancount: 1,
            nscount: 0,
            arcount: 1,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let d = Header::decode(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(d, h);
    }

    #[test]
    fn name_round_trips_uncompressed() {
        let n = DnsName::new("www.cdn.example").unwrap();
        let mut buf = Vec::new();
        write_name_uncompressed(&mut buf, &n);
        assert_eq!(buf[0], 3); // "www"
        let mut c = Cursor::new(&buf);
        assert_eq!(c.name().unwrap(), n);
        assert_eq!(c.pos(), buf.len());
    }

    #[test]
    fn compression_reuses_suffixes() {
        let mut w = NameWriter::new();
        let mut buf = vec![0u8; HEADER_LEN]; // simulate a header prefix
        let a = DnsName::new("www.cdn.example").unwrap();
        let b = DnsName::new("img.cdn.example").unwrap();
        w.write(&mut buf, &a);
        let before = buf.len();
        w.write(&mut buf, &b);
        // "img" label (4 octets) + 2-octet pointer to "cdn.example".
        assert_eq!(buf.len() - before, 4 + 2);
        let mut c = Cursor::new(&buf);
        c.skip(HEADER_LEN).unwrap();
        assert_eq!(c.name().unwrap(), a);
        assert_eq!(c.name().unwrap(), b);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn exact_repeat_is_a_single_pointer() {
        let mut w = NameWriter::new();
        let mut buf = vec![0u8; HEADER_LEN];
        let a = DnsName::new("www.cdn.example").unwrap();
        w.write(&mut buf, &a);
        let before = buf.len();
        w.write(&mut buf, &a);
        assert_eq!(buf.len() - before, 2);
        let mut c = Cursor::new(&buf);
        c.skip(HEADER_LEN).unwrap();
        assert_eq!(c.name().unwrap(), a);
        assert_eq!(c.name().unwrap(), a);
    }

    #[test]
    fn self_pointer_is_rejected() {
        // A pointer at offset 0 pointing at itself.
        let buf = [0xC0, 0x00];
        assert_eq!(Cursor::new(&buf).name(), Err(WireError::ForwardPointer));
    }

    #[test]
    fn two_step_pointer_loop_is_rejected() {
        // offset 0: pointer -> 2; offset 2: pointer -> 0. The second hop
        // violates the strictly-descending rule.
        let buf = [0xC0, 0x02, 0xC0, 0x00];
        let mut c = Cursor::new(&buf);
        assert!(c.name().is_err());
    }

    #[test]
    fn forward_pointer_is_rejected() {
        // Pointer at offset 0 pointing forward to offset 2.
        let buf = [0xC0, 0x02, 0x01, b'a', 0x00];
        assert_eq!(Cursor::new(&buf).name(), Err(WireError::ForwardPointer));
    }

    #[test]
    fn reserved_label_types_are_rejected() {
        for len in [0x40u8, 0x80] {
            let buf = [len, 0x00];
            assert_eq!(Cursor::new(&buf).name(), Err(WireError::BadLabelType));
        }
    }

    #[test]
    fn truncated_label_is_an_error() {
        let buf = [5u8, b'a', b'b'];
        assert_eq!(Cursor::new(&buf).name(), Err(WireError::Truncated));
    }

    #[test]
    fn overlong_reassembled_name_is_rejected() {
        // 30 labels of 9 octets = 300 wire octets > 255.
        let mut buf = Vec::new();
        for _ in 0..30 {
            buf.push(9);
            buf.extend_from_slice(b"aaaaaaaaa");
        }
        buf.push(0);
        assert_eq!(Cursor::new(&buf).name(), Err(WireError::NameTooLong));
    }

    #[test]
    fn invalid_label_bytes_are_rejected() {
        let buf = [3u8, b'a', b' ', b'b', 0x00];
        assert_eq!(Cursor::new(&buf).name(), Err(WireError::BadName));
        let buf = [2u8, 0xFF, b'b', 0x00];
        assert_eq!(Cursor::new(&buf).name(), Err(WireError::BadName));
    }

    #[test]
    fn decode_normalizes_case() {
        let buf = [3u8, b'W', b'W', b'W', 3, b'C', b'D', b'N', 0x00];
        assert_eq!(
            Cursor::new(&buf).name().unwrap(),
            DnsName::new("www.cdn").unwrap()
        );
    }
}
