//! A loopback wire client: sends real packets, follows TC to TCP, and
//! reduces responses to a [`ServedAnswer`] comparable against the
//! in-process [`anycast_dns::DnsAnswer`].

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream, UdpSocket};
use std::time::Duration;

use anycast_dns::ecs::EcsOption;
use anycast_dns::DnsName;

use crate::message::{decode_response, encode_query, Edns, WireEcs, WireQuery};
use crate::wire::{WireError, CLASS_IN, TYPE_A};

/// What the server actually put on the wire for one query, reduced to the
/// fields the simulator's [`anycast_dns::DnsAnswer`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedAnswer {
    /// Answer address.
    pub addr: Ipv4Addr,
    /// Answer TTL.
    pub ttl_s: u32,
    /// Scope prefix length from the echoed ECS option (0 when the
    /// response carried none).
    pub ecs_scope: u8,
    /// Response code.
    pub rcode: u8,
    /// Whether the answer was fetched over the TCP fallback path.
    pub over_tcp: bool,
}

/// Errors a client query can hit.
#[derive(Debug)]
pub enum QueryError {
    /// Socket-level failure or timeout.
    Io(std::io::Error),
    /// The response failed to decode.
    Wire(WireError),
    /// The response id did not match the query (after retries).
    IdMismatch,
    /// The response carried no A answer and a zero rcode was expected.
    Empty,
}

impl From<std::io::Error> for QueryError {
    fn from(e: std::io::Error) -> QueryError {
        QueryError::Io(e)
    }
}

impl From<WireError> for QueryError {
    fn from(e: WireError) -> QueryError {
        QueryError::Wire(e)
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Io(e) => write!(f, "io: {e}"),
            QueryError::Wire(e) => write!(f, "wire: {e}"),
            QueryError::IdMismatch => f.write_str("response id mismatch"),
            QueryError::Empty => f.write_str("response carried no answer"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A resolver-in-miniature bound to one loopback source address.
///
/// The source address is how the server identifies the LDNS (see
/// [`crate::server::LdnsDirectory`]), so one client per simulated
/// resolver.
#[derive(Debug)]
pub struct WireClient {
    sock: UdpSocket,
    server: SocketAddr,
    src: Ipv4Addr,
    next_id: u16,
    /// UDP payload advertised in queries; `None` sends plain (non-EDNS)
    /// queries when no ECS is attached.
    pub udp_payload: u16,
    /// Always attach an OPT record, even without ECS.
    pub force_edns: bool,
}

impl WireClient {
    /// Binds an ephemeral UDP port on `src` (a 127/8 address) and aims at
    /// `server`.
    pub fn bind(src: Ipv4Addr, server: SocketAddr) -> std::io::Result<WireClient> {
        let sock = UdpSocket::bind((src, 0))?;
        sock.set_read_timeout(Some(Duration::from_millis(2000)))?;
        Ok(WireClient {
            sock,
            server,
            src,
            next_id: 1,
            udp_payload: 1232,
            force_edns: true,
        })
    }

    /// The loopback source address this client queries from.
    pub fn source(&self) -> Ipv4Addr {
        self.src
    }

    /// Builds the wire query for `qname` with optional ECS.
    fn build(&mut self, qname: &DnsName, ecs: Option<&EcsOption>) -> WireQuery {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let edns = if ecs.is_some() || self.force_edns {
            Some(Edns {
                udp_payload: self.udp_payload,
                ecs: ecs.map(WireEcs::from_option),
            })
        } else {
            None
        };
        WireQuery {
            id,
            rd: false,
            qname: qname.clone(),
            qtype: TYPE_A,
            qclass: CLASS_IN,
            edns,
        }
    }

    /// Sends one A query and returns the served answer, retrying over TCP
    /// if the UDP response came back truncated.
    pub fn query(
        &mut self,
        qname: &DnsName,
        ecs: Option<&EcsOption>,
    ) -> Result<ServedAnswer, QueryError> {
        let q = self.build(qname, ecs);
        let wire = encode_query(&q);
        self.sock.send_to(&wire, self.server)?;
        let mut buf = [0u8; 4096];
        // Only a datagram from the server we queried, carrying our txid,
        // is the answer. Anything else — a rogue sender spoofing into our
        // ephemeral port, a late response to a prior id — is discarded
        // and the read retried, so an off-path datagram can neither
        // poison the answer nor error the query.
        for _ in 0..8 {
            let (n, from) = self.sock.recv_from(&mut buf)?;
            if from != self.server {
                continue;
            }
            let r = decode_response(&buf[..n])?;
            if r.id != q.id {
                continue;
            }
            if r.tc {
                return self.query_tcp(&wire, q.id);
            }
            return reduce(&r, false);
        }
        Err(QueryError::IdMismatch)
    }

    /// Scrapes the server's in-band metrics endpoint: a CHAOS-class
    /// `TXT metrics.bind` query over the ordinary wire path. Snapshots
    /// rarely fit a UDP payload, so the usual flow is UDP → TC=1 → TCP
    /// fallback, returning the full Prometheus text.
    pub fn scrape_metrics(&mut self) -> Result<String, QueryError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let q = crate::message::WireQuery {
            id,
            rd: false,
            qname: DnsName::new(crate::message::CHAOS_METRICS_QNAME).expect("static qname"),
            qtype: crate::wire::TYPE_TXT,
            qclass: crate::wire::CLASS_CHAOS,
            edns: Some(crate::message::Edns::plain(self.udp_payload)),
        };
        let wire = encode_query(&q);
        self.sock.send_to(&wire, self.server)?;
        let mut buf = [0u8; 4096];
        for _ in 0..8 {
            let (n, from) = self.sock.recv_from(&mut buf)?;
            if from != self.server {
                continue;
            }
            let r = crate::message::decode_chaos_txt(&buf[..n])?;
            if r.id != q.id {
                continue;
            }
            if r.tc {
                let frame = self.exchange_tcp(&wire)?;
                let r = crate::message::decode_chaos_txt(&frame)?;
                if r.id != q.id {
                    return Err(QueryError::IdMismatch);
                }
                return Ok(r.text);
            }
            return Ok(r.text);
        }
        Err(QueryError::IdMismatch)
    }

    /// One length-prefixed TCP round trip of `wire`, returning the raw
    /// response frame.
    fn exchange_tcp(&self, wire: &[u8]) -> Result<Vec<u8>, QueryError> {
        let mut stream = TcpStream::connect(self.server)?;
        stream.set_read_timeout(Some(Duration::from_millis(2000)))?;
        stream.write_all(&(wire.len() as u16).to_be_bytes())?;
        stream.write_all(wire)?;
        let mut len_buf = [0u8; 2];
        stream.read_exact(&mut len_buf)?;
        let len = usize::from(u16::from_be_bytes(len_buf));
        let mut data = vec![0u8; len];
        stream.read_exact(&mut data)?;
        Ok(data)
    }

    /// The RFC 1035 fallback: resend the same query over TCP.
    fn query_tcp(&self, wire: &[u8], id: u16) -> Result<ServedAnswer, QueryError> {
        let mut stream = TcpStream::connect(self.server)?;
        stream.set_read_timeout(Some(Duration::from_millis(2000)))?;
        stream.write_all(&(wire.len() as u16).to_be_bytes())?;
        stream.write_all(wire)?;
        let mut len_buf = [0u8; 2];
        stream.read_exact(&mut len_buf)?;
        let len = usize::from(u16::from_be_bytes(len_buf));
        let mut data = vec![0u8; len];
        stream.read_exact(&mut data)?;
        let r = decode_response(&data)?;
        if r.id != id {
            return Err(QueryError::IdMismatch);
        }
        reduce(&r, true)
    }
}

fn reduce(r: &crate::message::WireResponse, over_tcp: bool) -> Result<ServedAnswer, QueryError> {
    let (addr, ttl_s) = match r.answer {
        Some(a) => a,
        None if r.rcode == 0 => return Err(QueryError::Empty),
        None => (Ipv4Addr::UNSPECIFIED, 0),
    };
    Ok(ServedAnswer {
        addr,
        ttl_s,
        ecs_scope: r.ecs.map(|e| e.scope_prefix_len).unwrap_or(0),
        rcode: r.rcode,
        over_tcp,
    })
}
