//! Zero-alloc templated answers: patch a pre-encoded A response into a
//! caller-provided buffer instead of running the full encoder.
//!
//! The steady-state query mix at an authoritative CDN front end is almost
//! entirely well-formed `A`/`IN` questions with at most one OPT record.
//! For exactly that shape, the full [`crate::message::encode_response`]
//! pipeline (decode → `DnsName` → `NameWriter` compression → `Vec` pushes)
//! is deterministic boilerplate: the question echoes the query's raw
//! bytes, the answer RR is a fixed 16-byte pattern per `(addr, ttl)` pair
//! baked at table-compile time ([`AnswerRr`]), and the OPT/ECS scaffolding
//! depends only on fields a cheap scan extracts. So the hot path:
//!
//! 1. [`QueryView::parse`] scans the packet without allocating. It
//!    succeeds only when the raw question bytes are *provably identical*
//!    to what the encoder would re-emit (pointer-free, canonical
//!    lowercase labels) — otherwise it returns `None` and the caller
//!    falls back to the full decode/encode path, which remains the
//!    behavioral reference for FORMERR, REFUSED, truncation, etc.
//! 2. [`write_response`] patches txid, flags, question echo, the baked
//!    answer RR, and the ECS scope straight into the caller's send slot.
//!
//! Byte-for-byte equivalence with the full encoder is pinned by the unit
//! tests here, a proptest across ECS source lengths and txids, and the
//! CI golden-drift guard.

use std::net::Ipv4Addr;

use crate::message::{mask_addr, parse_opt_rdata, Edns};
use crate::server::SERVER_UDP_PAYLOAD;
use crate::wire::{CLASS_IN, HEADER_LEN, OPTION_ECS, TYPE_A, TYPE_OPT};

/// Maximum text length of a DNS name (dot-joined), per RFC 1035.
const MAX_NAME_TEXT: usize = 253;

/// A pre-encoded A-record answer: owner pointer to the question, TYPE_A,
/// CLASS_IN, TTL, RDLENGTH 4, and the address — 16 bytes patched into the
/// response verbatim. Baked once per distinct `(addr, ttl)` at
/// table-compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnswerRr {
    addr: Ipv4Addr,
    bytes: [u8; 16],
}

impl AnswerRr {
    /// Bakes the wire form of `addr` with `ttl_s`. The owner name is a
    /// compression pointer to the question at offset 12, exactly what
    /// [`crate::wire::NameWriter`] emits for the repeated QNAME.
    pub fn new(addr: Ipv4Addr, ttl_s: u32) -> AnswerRr {
        let mut bytes = [0u8; 16];
        bytes[0] = 0xC0;
        bytes[1] = HEADER_LEN as u8; // pointer target: the question name
        bytes[2..4].copy_from_slice(&TYPE_A.to_be_bytes());
        bytes[4..6].copy_from_slice(&CLASS_IN.to_be_bytes());
        bytes[6..10].copy_from_slice(&ttl_s.to_be_bytes());
        bytes[10..12].copy_from_slice(&4u16.to_be_bytes());
        bytes[12..16].copy_from_slice(&addr.octets());
        AnswerRr { addr, bytes }
    }

    /// The answer address (for per-address tallies).
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The 16 baked wire octets.
    pub fn bytes(&self) -> &[u8; 16] {
        &self.bytes
    }
}

/// A borrowed, validated view of a templatable query. Produced only by
/// [`QueryView::parse`]; existence of a view is the proof that the
/// template patch reproduces the full encoder's bytes.
#[derive(Debug, Clone, Copy)]
pub struct QueryView<'a> {
    /// Transaction id to echo.
    pub id: u16,
    /// Recursion-desired bit to echo.
    pub rd: bool,
    /// Raw QNAME wire bytes (labels + terminal zero), echoed verbatim.
    pub qname_wire: &'a [u8],
    /// EDNS parameters, when the query carried a well-formed OPT.
    pub edns: Option<Edns>,
}

impl<'a> QueryView<'a> {
    /// Scans `buf` for the templatable-query shape, allocating nothing.
    ///
    /// Returns `Some` only when every byte of the response is determined
    /// by this view plus an [`AnswerRr`] and scope — i.e. the full
    /// encoder, fed the decoded form of `buf`, would emit exactly what
    /// [`write_response`] patches. Gate, in order:
    ///
    /// * header: QR=0, QDCOUNT=1, ANCOUNT=0, NSCOUNT=0, ARCOUNT≤1;
    /// * QNAME: pointer-free and already in canonical `DnsName` form —
    ///   labels 1..=63 of `[a-z0-9-]` with no leading/trailing hyphen,
    ///   dot-joined text ≤ 253 — so the raw bytes equal the encoder's
    ///   re-encoding (uppercase or odd bytes → `None` → slow path);
    /// * QTYPE=A, QCLASS=IN (anything else takes the REFUSED/empty
    ///   branches of the slow path);
    /// * the single additional record, when present, is a root-owned OPT
    ///   whose RDATA parses cleanly (a malformed OPT must reach the slow
    ///   path to produce its FORMERR).
    ///
    /// Trailing bytes beyond the counted records are ignored, matching
    /// the full decoder.
    pub fn parse(buf: &'a [u8]) -> Option<QueryView<'a>> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags = u16::from_be_bytes([buf[2], buf[3]]);
        if flags & 0x8000 != 0 {
            return None; // QR=1: not a query
        }
        let rd = flags & 0x0100 != 0;
        let qd = u16::from_be_bytes([buf[4], buf[5]]);
        let an = u16::from_be_bytes([buf[6], buf[7]]);
        let ns = u16::from_be_bytes([buf[8], buf[9]]);
        let ar = u16::from_be_bytes([buf[10], buf[11]]);
        if qd != 1 || an != 0 || ns != 0 || ar > 1 {
            return None;
        }

        // QNAME: raw labels, already canonical.
        let mut pos = HEADER_LEN;
        let mut text_len = 0usize;
        let mut labels = 0usize;
        loop {
            let len = usize::from(*buf.get(pos)?);
            pos += 1;
            if len == 0 {
                break;
            }
            if len > 63 {
                return None; // compression pointer or reserved label type
            }
            let label = buf.get(pos..pos + len)?;
            if label[0] == b'-' || label[len - 1] == b'-' {
                return None;
            }
            if !label
                .iter()
                .all(|&b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            {
                return None;
            }
            text_len += len + usize::from(labels > 0);
            if text_len > MAX_NAME_TEXT {
                return None;
            }
            labels += 1;
            pos += len;
        }
        if labels == 0 {
            return None; // root QNAME fails DnsName validation → FORMERR
        }
        let qname_wire = &buf[HEADER_LEN..pos];

        let fixed = buf.get(pos..pos + 4)?;
        if fixed[..2] != TYPE_A.to_be_bytes() || fixed[2..] != CLASS_IN.to_be_bytes() {
            return None;
        }
        pos += 4;

        let mut edns = None;
        if ar == 1 {
            // Root-owned OPT record, nothing else.
            if *buf.get(pos)? != 0 {
                return None;
            }
            pos += 1;
            let rr = buf.get(pos..pos + 10)?;
            if rr[..2] != TYPE_OPT.to_be_bytes() {
                return None;
            }
            let udp_payload = u16::from_be_bytes([rr[2], rr[3]]);
            // rr[4..8] is ext-rcode/version/flags — ignored by the full
            // decoder, so ignored here.
            let rdlen = usize::from(u16::from_be_bytes([rr[8], rr[9]]));
            pos += 10;
            let rdata = buf.get(pos..pos + rdlen)?;
            let ecs = parse_opt_rdata(rdata).ok()?;
            edns = Some(Edns { udp_payload, ecs });
        }

        Some(QueryView {
            id,
            rd,
            qname_wire,
            edns,
        })
    }

    /// The client's effective payload advertisement (CLASS of the OPT),
    /// `None` without EDNS.
    pub fn udp_payload(&self) -> Option<u16> {
        self.edns.map(|e| e.udp_payload)
    }
}

/// Exact wire length [`write_response`] will produce for `view`.
pub fn response_len(view: &QueryView<'_>) -> usize {
    let opt = match &view.edns {
        None => 0,
        Some(edns) => {
            // root(1) + type(2) + class(2) + ttl(4) + rdlen(2) = 11, plus
            // the ECS option: code(2) + len(2) + family(2) + spl(1) +
            // scope(1) + masked address bytes.
            11 + edns
                .ecs
                .map(|e| 8 + usize::from(e.source_prefix_len.div_ceil(8)))
                .unwrap_or(0)
        }
    };
    HEADER_LEN + view.qname_wire.len() + 4 + 16 + opt
}

/// Patches the complete response for `view` into `out`: header, question
/// echo, the baked answer RR, and the OPT/ECS echo with `scope` as the
/// SCOPE PREFIX-LENGTH. Returns the response length. `out` must hold at
/// least [`response_len`] bytes; no allocation, no encoder.
pub fn write_response(out: &mut [u8], view: &QueryView<'_>, rr: &AnswerRr, scope: u8) -> usize {
    out[0..2].copy_from_slice(&view.id.to_be_bytes());
    out[2] = 0x84 | u8::from(view.rd); // QR | AA | RD, opcode 0
    out[3] = 0; // RA=0, Z=0, RCODE=0
    out[4..6].copy_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    out[6..8].copy_from_slice(&1u16.to_be_bytes()); // ANCOUNT
    out[8..10].copy_from_slice(&0u16.to_be_bytes()); // NSCOUNT
    out[10..12].copy_from_slice(&u16::from(view.edns.is_some()).to_be_bytes());
    let mut p = HEADER_LEN;
    out[p..p + view.qname_wire.len()].copy_from_slice(view.qname_wire);
    p += view.qname_wire.len();
    out[p..p + 2].copy_from_slice(&TYPE_A.to_be_bytes());
    out[p + 2..p + 4].copy_from_slice(&CLASS_IN.to_be_bytes());
    p += 4;
    out[p..p + 16].copy_from_slice(rr.bytes());
    p += 16;
    if let Some(edns) = &view.edns {
        out[p] = 0; // root owner
        out[p + 1..p + 3].copy_from_slice(&TYPE_OPT.to_be_bytes());
        out[p + 3..p + 5].copy_from_slice(&SERVER_UDP_PAYLOAD.to_be_bytes());
        out[p + 5..p + 9].copy_from_slice(&0u32.to_be_bytes());
        p += 9;
        match edns.ecs {
            None => {
                out[p..p + 2].copy_from_slice(&0u16.to_be_bytes());
                p += 2;
            }
            Some(ecs) => {
                let addr_len = usize::from(ecs.source_prefix_len.div_ceil(8));
                out[p..p + 2].copy_from_slice(&((8 + addr_len) as u16).to_be_bytes());
                out[p + 2..p + 4].copy_from_slice(&OPTION_ECS.to_be_bytes());
                out[p + 4..p + 6].copy_from_slice(&((4 + addr_len) as u16).to_be_bytes());
                out[p + 6..p + 8].copy_from_slice(&1u16.to_be_bytes()); // FAMILY
                out[p + 8] = ecs.source_prefix_len;
                out[p + 9] = scope;
                let octets = mask_addr(ecs.addr, ecs.source_prefix_len).octets();
                out[p + 10..p + 10 + addr_len].copy_from_slice(&octets[..addr_len]);
                p += 10 + addr_len;
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{decode_query, encode_query, encode_response, WireEcs, WireQuery};
    use anycast_dns::{DnsAnswer, DnsName};

    fn query(id: u16, rd: bool, name: &str, edns: Option<Edns>) -> WireQuery {
        WireQuery {
            id,
            rd,
            qname: DnsName::new(name).unwrap(),
            qtype: TYPE_A,
            qclass: CLASS_IN,
            edns,
        }
    }

    fn assert_template_matches_encoder(q: &WireQuery, addr: Ipv4Addr, ttl: u32, scope: u8) {
        let wire = encode_query(q);
        let view = QueryView::parse(&wire).expect("templatable query");
        assert_eq!(view.id, q.id);
        assert_eq!(view.rd, q.rd);
        let rr = AnswerRr::new(addr, ttl);
        let mut out = vec![0u8; 4096];
        let n = write_response(&mut out, &view, &rr, scope);
        assert_eq!(n, response_len(&view), "advertised length is exact");
        let decoded = decode_query(&wire).unwrap();
        let want = encode_response(
            &decoded,
            Some(&DnsAnswer::scoped(addr, ttl, scope)),
            0,
            4096,
        );
        assert_eq!(&out[..n], &want[..], "template == full encoder");
    }

    #[test]
    fn plain_query_without_edns_matches_encoder() {
        let q = query(0x0001, true, "www.cdn.example", None);
        assert_template_matches_encoder(&q, Ipv4Addr::new(192, 0, 2, 9), 60, 0);
    }

    #[test]
    fn edns_without_ecs_matches_encoder() {
        let q = query(0xBEEF, false, "a.b.c.d", Some(Edns::plain(4096)));
        assert_template_matches_encoder(&q, Ipv4Addr::new(203, 0, 113, 1), 300, 0);
    }

    #[test]
    fn ecs_matches_encoder_at_every_source_len() {
        let client = Ipv4Addr::new(198, 51, 100, 129);
        for spl in [0u8, 8, 16, 20, 24, 32] {
            for scope in [0u8, spl.min(24)] {
                let q = query(
                    u16::from(spl) << 8 | 7,
                    true,
                    "img.cdn.example",
                    Some(Edns {
                        udp_payload: 1232,
                        ecs: Some(WireEcs {
                            addr: mask_addr(client, spl),
                            source_prefix_len: spl,
                            scope_prefix_len: 0,
                        }),
                    }),
                );
                assert_template_matches_encoder(&q, Ipv4Addr::new(192, 0, 2, 44), 120, scope);
            }
        }
    }

    #[test]
    fn single_label_and_max_depth_names_match_encoder() {
        for name in ["x", "a1.b2-c.d3.e4"] {
            let q = query(7, true, name, Some(Edns::plain(512)));
            assert_template_matches_encoder(&q, Ipv4Addr::new(10, 0, 0, 1), 1, 0);
        }
    }

    #[test]
    fn non_templatable_shapes_fall_back() {
        let base = encode_query(&query(9, true, "www.cdn.example", Some(Edns::plain(1232))));
        assert!(QueryView::parse(&base).is_some(), "baseline is templatable");

        // QR set: a response, not a query.
        let mut b = base.clone();
        b[2] |= 0x80;
        assert!(QueryView::parse(&b).is_none());

        // Uppercase label byte: raw bytes ≠ canonical re-encoding.
        let mut b = base.clone();
        b[HEADER_LEN + 1] = b'W';
        assert!(QueryView::parse(&b).is_none());

        // Hyphen at a label edge fails DnsName validation.
        let mut b = base.clone();
        b[HEADER_LEN + 1] = b'-';
        assert!(QueryView::parse(&b).is_none());

        // Compression pointer in the QNAME.
        let mut b = base.clone();
        b[HEADER_LEN] = 0xC0;
        assert!(QueryView::parse(&b).is_none());

        // Wrong QTYPE (AAAA).
        let mut b = base.clone();
        let name_end = HEADER_LEN + 1 + 3 + 1 + 3 + 1 + 7 + 1; // www cdn example + zero
        b[name_end + 1] = 28;
        assert!(QueryView::parse(&b).is_none());

        // Two additional records.
        let mut b = base.clone();
        b[11] = 2;
        assert!(QueryView::parse(&b).is_none());

        // ANCOUNT nonzero.
        let mut b = base.clone();
        b[7] = 1;
        assert!(QueryView::parse(&b).is_none());

        // Truncated mid-name.
        let b = &base[..HEADER_LEN + 2];
        assert!(QueryView::parse(b).is_none());

        // Root QNAME.
        let mut b = base.clone();
        b[HEADER_LEN] = 0;
        assert!(QueryView::parse(&b).is_none());
    }

    #[test]
    fn malformed_opt_falls_back_for_formerr() {
        // Duplicate ECS options inside one OPT must reach the slow path,
        // which turns them into FORMERR.
        let q = query(
            3,
            true,
            "www.cdn.example",
            Some(Edns {
                udp_payload: 1232,
                ecs: Some(WireEcs {
                    addr: Ipv4Addr::new(198, 51, 100, 0),
                    source_prefix_len: 24,
                    scope_prefix_len: 0,
                }),
            }),
        );
        let mut wire = encode_query(&q);
        // Append a second copy of the ECS option bytes to the OPT RDATA
        // and fix up RDLEN.
        let ecs_bytes = [
            0u8, 8, 0, 7, 0, 1, 24, 0, 198, 51, 100, // code, len, family, spl, scope, addr
        ];
        wire.extend_from_slice(&ecs_bytes);
        let rdlen_at = wire.len() - ecs_bytes.len() - ecs_bytes.len() - 2;
        let old = u16::from_be_bytes([wire[rdlen_at], wire[rdlen_at + 1]]);
        let new = (old + ecs_bytes.len() as u16).to_be_bytes();
        wire[rdlen_at..rdlen_at + 2].copy_from_slice(&new);
        assert!(QueryView::parse(&wire).is_none());
        assert!(decode_query(&wire).is_err(), "slow path sees FORMERR");
    }

    #[test]
    fn trailing_bytes_are_tolerated_like_the_full_decoder() {
        let mut wire = encode_query(&query(5, false, "cdn", None));
        wire.extend_from_slice(&[0xAA; 7]);
        let view = QueryView::parse(&wire).expect("trailing bytes ignored");
        assert!(decode_query(&wire).is_ok());
        assert_eq!(view.qname_wire, &[3, b'c', b'd', b'n', 0]);
    }

    #[test]
    fn answer_rr_bakes_the_wire_pattern() {
        let rr = AnswerRr::new(Ipv4Addr::new(192, 0, 2, 7), 0x01020304);
        assert_eq!(rr.addr(), Ipv4Addr::new(192, 0, 2, 7));
        assert_eq!(
            rr.bytes(),
            &[0xC0, 0x0C, 0, 1, 0, 1, 1, 2, 3, 4, 0, 4, 192, 0, 2, 7]
        );
    }
}
