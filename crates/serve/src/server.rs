//! The sharded authoritative server.
//!
//! Layout per worker: a **receiver** thread blocks on a cloned handle of
//! the shared UDP socket (the std-only stand-in for an SO_REUSEPORT
//! socket set — the kernel delivers each datagram to exactly one blocked
//! receiver) and pushes raw packets into that worker's bounded queue; a
//! **processor** thread drains the queue, decodes, consults the policy,
//! and sends the response from its own socket clone. A single **TCP
//! acceptor** thread serves the RFC 1035 fallback path for clients that
//! saw TC=1.
//!
//! Two safety valves, both observable and both answer-only (they never
//! drop state):
//!
//! * a **bounded queue** per worker — packets arriving into a full queue
//!   are dropped (the client retries), bounding memory under attack;
//! * an **overload valve** — when a worker's queue depth at dequeue time
//!   is at or above the watermark, the policy lookup is skipped and the
//!   query is answered with the anycast VIP at a short TTL. Degrading to
//!   anycast is always safe (the paper's central observation) and sheds
//!   the table-lookup cost exactly when the shard is drowning.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use anycast_dns::{LdnsId, QueryContext, RedirectionPolicy};
use anycast_geo::GeoPoint;
use anycast_netsim::Day;
use anycast_obs::counter;

use crate::message::{decode_query, encode_response};
use crate::wire::{Flags, Header, CLASSIC_UDP_LIMIT, CLASS_IN, TYPE_A};

/// UDP payload size the server advertises in its OPT records.
pub const SERVER_UDP_PAYLOAD: u16 = 1232;

/// RCODE: format error.
pub const RCODE_FORMERR: u8 = 1;
/// RCODE: refused.
pub const RCODE_REFUSED: u8 = 5;

/// Maximum TCP message size (16-bit length prefix).
const TCP_MAX_MESSAGE: usize = 65535;
/// Receive buffer per datagram; larger than any advertised payload.
const RECV_BUF: usize = 4096;
/// How often blocked receivers re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of worker shards (receiver + processor thread pairs).
    pub workers: usize,
    /// Bounded queue capacity per worker.
    pub queue_cap: usize,
    /// Queue depth at dequeue time at or above which the overload valve
    /// answers the anycast VIP without consulting the policy.
    pub overload_watermark: usize,
    /// TTL of valve (degraded) answers — short, so clients re-ask once
    /// the shard recovers.
    pub valve_ttl_s: u32,
    /// Simulation day stamped into [`QueryContext`]s.
    pub day: Day,
    /// The anycast VIP used by the valve and for unknown-resolver queries.
    pub anycast_vip: Ipv4Addr,
    /// Server-side cap on UDP response size regardless of what the client
    /// advertises (BIND's `max-udp-size`; operators clamp it to dodge
    /// fragmentation). Oversized answers come back truncated and the
    /// client retries over TCP. `None` honors the client's advertisement.
    pub udp_response_cap: Option<usize>,
}

impl ServeConfig {
    /// Sensible defaults for loopback serving: 2 workers, 1024-deep
    /// queues, valve at 256, 30 s degraded TTL.
    pub fn new(anycast_vip: Ipv4Addr) -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 1024,
            overload_watermark: 256,
            valve_ttl_s: 30,
            day: Day(0),
            anycast_vip,
            udp_response_cap: None,
        }
    }
}

/// Maps a query's source address to the LDNS identity the simulator knows
/// it as. The serving-plane analogue of the CDN knowing "which LDNS
/// forwarded the request" (§2).
#[derive(Debug, Clone, Default)]
pub struct LdnsDirectory {
    by_ip: HashMap<Ipv4Addr, (LdnsId, GeoPoint)>,
}

impl LdnsDirectory {
    /// An empty directory (every query becomes an unknown-resolver VIP
    /// answer).
    pub fn new() -> LdnsDirectory {
        LdnsDirectory::default()
    }

    /// Registers a resolver's source address and believed location.
    pub fn insert(&mut self, addr: Ipv4Addr, ldns: LdnsId, location: GeoPoint) {
        self.by_ip.insert(addr, (ldns, location));
    }

    /// Looks up a source address.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(LdnsId, GeoPoint)> {
        self.by_ip.get(&addr).copied()
    }

    /// Number of registered resolvers.
    pub fn len(&self) -> usize {
        self.by_ip.len()
    }

    /// Whether no resolvers are registered.
    pub fn is_empty(&self) -> bool {
        self.by_ip.is_empty()
    }
}

/// Monotonic serving counters, shared across workers.
///
/// Plain atomics (readable in tests without obs plumbing); each increment
/// is mirrored to the obs registry under `serve_*` counter names.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Queries received over UDP.
    pub udp_queries: AtomicU64,
    /// Queries received over TCP (truncation fallback).
    pub tcp_queries: AtomicU64,
    /// Packets that failed to decode.
    pub decode_errors: AtomicU64,
    /// Queries answered by the overload valve.
    pub degraded: AtomicU64,
    /// Packets dropped because a worker queue was full.
    pub dropped: AtomicU64,
    /// Responses truncated to fit the client's UDP payload limit.
    pub truncated: AtomicU64,
    /// Queries from source addresses not in the [`LdnsDirectory`].
    pub unknown_ldns: AtomicU64,
    /// Per answered-address tallies — how many A answers named each
    /// front-end address (the anycast VIP included). This is the control
    /// plane's live offered-load feed: the plain map is authoritative
    /// (deterministic, independent of whether obs recording is enabled),
    /// and each increment is mirrored to the labeled obs counter
    /// `serve_answers_total{addr=...}`. Counts depend only on which
    /// queries were answered, so they are worker-count invariant.
    answered: Mutex<HashMap<Ipv4Addr, (u64, Arc<anycast_obs::Counter>)>>,
}

impl ServeStats {
    fn bump(field: &AtomicU64, name: &'static str) {
        field.fetch_add(1, Ordering::Relaxed);
        match name {
            "serve_udp_queries_total" => counter!("serve_udp_queries_total").inc(),
            "serve_tcp_queries_total" => counter!("serve_tcp_queries_total").inc(),
            "serve_decode_errors_total" => counter!("serve_decode_errors_total").inc(),
            "serve_degraded_answers_total" => counter!("serve_degraded_answers_total").inc(),
            "serve_queue_dropped_total" => counter!("serve_queue_dropped_total").inc(),
            "serve_truncated_responses_total" => counter!("serve_truncated_responses_total").inc(),
            "serve_unknown_ldns_total" => counter!("serve_unknown_ldns_total").inc(),
            _ => unreachable!("unknown serve counter {name}"),
        }
    }

    fn note_answered(&self, addr: Ipv4Addr) {
        let mut map = self.answered.lock().unwrap_or_else(|p| p.into_inner());
        let (count, obs) = map.entry(addr).or_insert_with(|| {
            let label = addr.to_string();
            (
                0,
                anycast_obs::global().counter_with("serve_answers_total", &[("addr", &label)]),
            )
        });
        *count += 1;
        obs.inc();
    }

    /// Snapshot of the per-address answered-query tallies, sorted by
    /// address (deterministic iteration for feeds and tests).
    pub fn answered_by_addr(&self) -> Vec<(Ipv4Addr, u64)> {
        let map = self.answered.lock().unwrap_or_else(|p| p.into_inner());
        let mut out: Vec<(Ipv4Addr, u64)> = map.iter().map(|(a, (c, _))| (*a, *c)).collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }
}

type Packet = (Vec<u8>, SocketAddr);
type Queue = Arc<(Mutex<VecDeque<Packet>>, Condvar)>;

/// A running server; dropping it stops all threads.
pub struct DnsServer {
    addr: SocketAddr,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    queues: Vec<Queue>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DnsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DnsServer")
            .field("addr", &self.addr)
            .field("workers", &self.queues.len())
            .finish()
    }
}

impl DnsServer {
    /// Binds UDP + TCP on an ephemeral loopback port and spawns the
    /// worker set. The policy is consulted once per decodable query.
    pub fn spawn<P>(
        cfg: ServeConfig,
        policy: P,
        directory: LdnsDirectory,
    ) -> std::io::Result<DnsServer>
    where
        P: RedirectionPolicy + Send + Sync + 'static,
    {
        let (udp, tcp) = bind_pair()?;
        let addr = udp.local_addr()?;
        udp.set_read_timeout(Some(POLL_INTERVAL))?;
        tcp.set_nonblocking(true)?;

        let policy = Arc::new(policy);
        let directory = Arc::new(directory);
        let stats = Arc::new(ServeStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut queues = Vec::new();
        let mut handles = Vec::new();

        let workers = cfg.workers.max(1);
        let mut sharded = true;
        let mut clones = Vec::with_capacity(workers * 2);
        for _ in 0..workers * 2 {
            match udp.try_clone() {
                Ok(c) => clones.push(c),
                Err(_) => {
                    sharded = false;
                    break;
                }
            }
        }

        if sharded {
            for worker in 0..workers {
                let queue: Queue = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
                queues.push(queue.clone());
                let rx_sock = clones.remove(0);
                let tx_sock = clones.remove(0);
                handles.push(spawn_receiver(
                    rx_sock,
                    queue.clone(),
                    cfg.queue_cap,
                    stats.clone(),
                    stop.clone(),
                    format!("serve-rx-{worker}"),
                ));
                handles.push(spawn_processor(
                    tx_sock,
                    queue,
                    cfg,
                    policy.clone(),
                    directory.clone(),
                    stats.clone(),
                    stop.clone(),
                    format!("serve-wk-{worker}"),
                ));
            }
        } else {
            // Single-listener fallback: one thread does recv + handle +
            // send inline on the primary socket.
            counter!("serve_single_listener_fallbacks_total").inc();
            handles.push(spawn_inline(
                udp,
                cfg,
                policy.clone(),
                directory.clone(),
                stats.clone(),
                stop.clone(),
            ));
        }

        handles.push(spawn_tcp_acceptor(
            tcp,
            cfg,
            policy,
            directory,
            stats.clone(),
            stop.clone(),
        ));

        Ok(DnsServer {
            addr,
            stats,
            stop,
            queues,
            handles,
        })
    }

    /// The bound loopback address (UDP and TCP share the port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Stops all threads and waits for them to exit. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for q in &self.queues {
            q.1.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DnsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds a UDP socket and a TCP listener on the *same* ephemeral loopback
/// port, retrying with fresh ports if the TCP side of a chosen port is
/// already taken.
fn bind_pair() -> std::io::Result<(UdpSocket, TcpListener)> {
    let mut last_err = None;
    for _ in 0..16 {
        let udp = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        let port = udp.local_addr()?.port();
        match TcpListener::bind((Ipv4Addr::LOCALHOST, port)) {
            Ok(tcp) => return Ok((udp, tcp)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("could not pair UDP/TCP ports")))
}

fn spawn_receiver(
    sock: UdpSocket,
    queue: Queue,
    cap: usize,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    name: String,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let mut buf = [0u8; RECV_BUF];
            while !stop.load(Ordering::Relaxed) {
                match sock.recv_from(&mut buf) {
                    Ok((n, src)) => {
                        let (lock, cvar) = &*queue;
                        let mut q = lock.lock().expect("queue lock poisoned");
                        if q.len() >= cap {
                            drop(q);
                            ServeStats::bump(&stats.dropped, "serve_queue_dropped_total");
                        } else {
                            q.push_back((buf[..n].to_vec(), src));
                            drop(q);
                            cvar.notify_one();
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        })
        .expect("spawn receiver thread")
}

#[allow(clippy::too_many_arguments)]
fn spawn_processor<P>(
    sock: UdpSocket,
    queue: Queue,
    cfg: ServeConfig,
    policy: Arc<P>,
    directory: Arc<LdnsDirectory>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    name: String,
) -> std::thread::JoinHandle<()>
where
    P: RedirectionPolicy + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name(name)
        .spawn(move || loop {
            let (packet, depth) = {
                let (lock, cvar) = &*queue;
                let mut q = lock.lock().expect("queue lock poisoned");
                loop {
                    if let Some(p) = q.pop_front() {
                        break (Some(p), q.len());
                    }
                    if stop.load(Ordering::Relaxed) {
                        break (None, 0);
                    }
                    let (guard, _) = cvar
                        .wait_timeout(q, POLL_INTERVAL)
                        .expect("queue lock poisoned");
                    q = guard;
                }
            };
            let Some((data, src)) = packet else { return };
            let overloaded = depth >= cfg.overload_watermark;
            if let Some(resp) =
                handle_datagram(&cfg, &*policy, &directory, &stats, &data, src, overloaded)
            {
                let _ = sock.send_to(&resp, src);
            }
        })
        .expect("spawn processor thread")
}

fn spawn_inline<P>(
    sock: UdpSocket,
    cfg: ServeConfig,
    policy: Arc<P>,
    directory: Arc<LdnsDirectory>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()>
where
    P: RedirectionPolicy + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name("serve-inline".to_string())
        .spawn(move || {
            let mut buf = [0u8; RECV_BUF];
            while !stop.load(Ordering::Relaxed) {
                match sock.recv_from(&mut buf) {
                    Ok((n, src)) => {
                        if let Some(resp) = handle_datagram(
                            &cfg,
                            &*policy,
                            &directory,
                            &stats,
                            &buf[..n],
                            src,
                            false,
                        ) {
                            let _ = sock.send_to(&resp, src);
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        })
        .expect("spawn inline worker thread")
}

fn spawn_tcp_acceptor<P>(
    listener: TcpListener,
    cfg: ServeConfig,
    policy: Arc<P>,
    directory: Arc<LdnsDirectory>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()>
where
    P: RedirectionPolicy + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name("serve-tcp".to_string())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, src)) => {
                        let _ = serve_tcp_conn(stream, src, &cfg, &*policy, &directory, &stats);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })
        .expect("spawn tcp acceptor thread")
}

/// Serves queries on one TCP connection (RFC 1035 §4.2.2 framing) until
/// the peer closes or times out.
fn serve_tcp_conn<P>(
    mut stream: TcpStream,
    src: SocketAddr,
    cfg: &ServeConfig,
    policy: &P,
    directory: &LdnsDirectory,
    stats: &ServeStats,
) -> std::io::Result<()>
where
    P: RedirectionPolicy + ?Sized,
{
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    loop {
        let mut len_buf = [0u8; 2];
        if stream.read_exact(&mut len_buf).is_err() {
            return Ok(()); // peer closed or timed out
        }
        let len = usize::from(u16::from_be_bytes(len_buf));
        let mut data = vec![0u8; len];
        stream.read_exact(&mut data)?;
        ServeStats::bump(&stats.tcp_queries, "serve_tcp_queries_total");
        let resp = respond(cfg, policy, directory, stats, &data, src, Transport::Tcp);
        if let Some(resp) = resp {
            debug_assert!(resp.len() <= TCP_MAX_MESSAGE);
            stream.write_all(&(resp.len() as u16).to_be_bytes())?;
            stream.write_all(&resp)?;
        }
    }
}

/// UDP entry point: counts the query and dispatches.
fn handle_datagram<P>(
    cfg: &ServeConfig,
    policy: &P,
    directory: &LdnsDirectory,
    stats: &ServeStats,
    data: &[u8],
    src: SocketAddr,
    overloaded: bool,
) -> Option<Vec<u8>>
where
    P: RedirectionPolicy + ?Sized,
{
    ServeStats::bump(&stats.udp_queries, "serve_udp_queries_total");
    respond(
        cfg,
        policy,
        directory,
        stats,
        data,
        src,
        Transport::Udp { overloaded },
    )
}

/// How a query arrived — decides the response-size rule and whether the
/// overload valve can apply.
#[derive(Debug, Clone, Copy)]
enum Transport {
    /// UDP: payload limited by the EDNS advertisement (and
    /// `udp_response_cap`); the valve engages when the queue is deep.
    Udp {
        /// Queue depth was at or past the watermark at dequeue time.
        overloaded: bool,
    },
    /// TCP: up to the 16-bit frame limit; never valved (the connection
    /// already survived the queue).
    Tcp,
}

/// Decodes one query and produces the response bytes, if any.
fn respond<P>(
    cfg: &ServeConfig,
    policy: &P,
    directory: &LdnsDirectory,
    stats: &ServeStats,
    data: &[u8],
    src: SocketAddr,
    transport: Transport,
) -> Option<Vec<u8>>
where
    P: RedirectionPolicy + ?Sized,
{
    let q = match decode_query(data) {
        Ok(q) => q,
        Err(_) => {
            ServeStats::bump(&stats.decode_errors, "serve_decode_errors_total");
            return formerr_response(data);
        }
    };
    let overloaded = matches!(transport, Transport::Udp { overloaded: true });
    let max_payload = match transport {
        Transport::Tcp => TCP_MAX_MESSAGE,
        Transport::Udp { .. } => {
            let advertised = q
                .edns
                .map(|e| usize::from(e.udp_payload).max(CLASSIC_UDP_LIMIT))
                .unwrap_or(CLASSIC_UDP_LIMIT);
            match cfg.udp_response_cap {
                Some(cap) => advertised.min(cap),
                None => advertised,
            }
        }
    };
    if q.qclass != CLASS_IN {
        return Some(encode_response(&q, None, RCODE_REFUSED, max_payload));
    }
    if q.qtype != TYPE_A {
        return Some(encode_response(&q, None, 0, max_payload));
    }
    let source_ip = match src.ip() {
        std::net::IpAddr::V4(v4) => v4,
        std::net::IpAddr::V6(_) => Ipv4Addr::UNSPECIFIED,
    };
    let answer = if overloaded {
        ServeStats::bump(&stats.degraded, "serve_degraded_answers_total");
        anycast_dns::DnsAnswer::global(cfg.anycast_vip, cfg.valve_ttl_s)
    } else {
        match directory.lookup(source_ip) {
            Some((ldns, ldns_location)) => {
                let ecs = q.edns.and_then(|e| e.ecs).and_then(|e| e.to_option());
                let ctx = QueryContext {
                    qname: &q.qname,
                    ldns,
                    ldns_location,
                    ecs,
                    day: cfg.day,
                    time_s: 0.0,
                };
                policy.answer(&ctx)
            }
            None => {
                ServeStats::bump(&stats.unknown_ldns, "serve_unknown_ldns_total");
                anycast_dns::DnsAnswer::global(cfg.anycast_vip, cfg.valve_ttl_s)
            }
        }
    };
    stats.note_answered(answer.addr);
    let resp = encode_response(&q, Some(&answer), 0, max_payload);
    if resp.len() >= crate::wire::HEADER_LEN && resp[2] & 0x02 != 0 {
        // TC bit set in the encoded header.
        ServeStats::bump(&stats.truncated, "serve_truncated_responses_total");
    }
    Some(resp)
}

/// A question-less FORMERR response, if the packet at least carries an id.
fn formerr_response(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 2 {
        return None;
    }
    let header = Header {
        id: u16::from_be_bytes([data[0], data[1]]),
        flags: Flags {
            qr: true,
            rcode: RCODE_FORMERR,
            ..Flags::default()
        },
        ..Header::default()
    };
    let mut out = Vec::with_capacity(crate::wire::HEADER_LEN);
    header.encode(&mut out);
    Some(out)
}
