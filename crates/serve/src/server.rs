//! The batched sharded authoritative server.
//!
//! Layout per worker shard: one thread owns a cloned handle of the shared
//! UDP socket (the std-only stand-in for an SO_REUSEPORT socket set — the
//! kernel delivers each datagram to exactly one blocked receiver), a
//! [`PacketArena`] of receive/send slots allocated once at spawn, and a
//! [`BatchIo`] implementation: `recvmmsg`/`sendmmsg` on supported Linux
//! targets, a one-packet portable fallback elsewhere (or when
//! `batch = 1`). The loop is: receive up to `batch` datagrams in one
//! syscall, load the compiled table pointer once, answer every packet in
//! place — the templated fast path patches pre-encoded bytes straight
//! into the send slot; anything unusual falls back to the full
//! decode/encode path — flush the batch's counters, and send every
//! response in one syscall. Steady state performs **no allocation and no
//! lock acquisition per packet**. A single **TCP acceptor** thread serves
//! the RFC 1035 fallback path for clients that saw TC=1.
//!
//! Backpressure is the kernel's: there is no userspace ingress queue, so
//! overload manifests as socket-buffer drops (the client retries), which
//! bounds memory without copying packets around. The **overload valve**
//! watches for sustained full batches — `batch` consecutive datagrams per
//! recv call means the socket never drains — and, past the watermark,
//! answers with the anycast VIP at a short TTL without consulting the
//! policy. Degrading to anycast is always safe (the paper's central
//! observation) and sheds the table-lookup cost exactly when the shard
//! is drowning.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use anycast_dns::{LdnsId, QueryContext, RedirectionPolicy};
use anycast_geo::GeoPoint;
use anycast_netsim::Day;
use anycast_obs::live::{
    BatchEvent, FlightRecorder, RecorderConfig, ShardRecorder, TraceRecord, TRACE_OVERLOAD,
    TRACE_TEMPLATE_HIT, TRACE_UNKNOWN_LDNS, TRACE_VALVE,
};
use anycast_obs::{counter, histogram};

use crate::message::{decode_query, encode_chaos_txt, encode_response, CHAOS_METRICS_QNAME};
use crate::mmsg::{batch_io, PacketArena, MAX_BATCH};
use crate::store::TableStore;
use crate::template::{response_len, write_response, AnswerRr, QueryView};
use crate::wire::{Flags, Header, CLASSIC_UDP_LIMIT, CLASS_CHAOS, CLASS_IN, TYPE_A, TYPE_TXT};

/// UDP payload size the server advertises in its OPT records.
pub const SERVER_UDP_PAYLOAD: u16 = 1232;

/// RCODE: format error.
pub const RCODE_FORMERR: u8 = 1;
/// RCODE: refused.
pub const RCODE_REFUSED: u8 = 5;

/// Maximum TCP message size (16-bit length prefix).
const TCP_MAX_MESSAGE: usize = 65535;
/// Receive buffer per datagram; larger than any advertised payload.
const RECV_BUF: usize = 4096;
/// How often blocked receivers re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of worker shards (one thread + arena + socket clone each).
    pub workers: usize,
    /// Datagrams moved per `recvmmsg`/`sendmmsg` syscall (1 selects the
    /// portable one-packet path; clamped to [`MAX_BATCH`]).
    pub batch: usize,
    /// Sustained-backlog threshold, in packets, at or above which the
    /// overload valve answers the anycast VIP without consulting the
    /// policy. A shard estimates its backlog as `batch` × the number of
    /// consecutive completely-full batches it has received; 0 valves
    /// every query (useful in tests).
    pub overload_watermark: usize,
    /// TTL of valve (degraded) answers — short, so clients re-ask once
    /// the shard recovers.
    pub valve_ttl_s: u32,
    /// Simulation day stamped into [`QueryContext`]s.
    pub day: Day,
    /// The anycast VIP used by the valve and for unknown-resolver queries.
    pub anycast_vip: Ipv4Addr,
    /// Server-side cap on UDP response size regardless of what the client
    /// advertises (BIND's `max-udp-size`; operators clamp it to dodge
    /// fragmentation). Oversized answers come back truncated and the
    /// client retries over TCP. `None` honors the client's advertisement.
    pub udp_response_cap: Option<usize>,
    /// Whether the flight recorder samples query traces on the hot path.
    /// Disabling reduces every recorder hook to one predictable branch;
    /// answers are byte-identical either way (the recorder only observes).
    pub recorder: bool,
}

impl ServeConfig {
    /// Sensible defaults for loopback serving: 2 workers, batches of 32,
    /// valve at 256, 30 s degraded TTL.
    pub fn new(anycast_vip: Ipv4Addr) -> ServeConfig {
        ServeConfig {
            workers: 2,
            batch: 32,
            overload_watermark: 256,
            valve_ttl_s: 30,
            day: Day(0),
            anycast_vip,
            udp_response_cap: None,
            recorder: true,
        }
    }
}

/// Maps a query's source address to the LDNS identity the simulator knows
/// it as. The serving-plane analogue of the CDN knowing "which LDNS
/// forwarded the request" (§2).
#[derive(Debug, Clone, Default)]
pub struct LdnsDirectory {
    by_ip: HashMap<Ipv4Addr, (LdnsId, GeoPoint)>,
}

impl LdnsDirectory {
    /// An empty directory (every query becomes an unknown-resolver VIP
    /// answer).
    pub fn new() -> LdnsDirectory {
        LdnsDirectory::default()
    }

    /// Registers a resolver's source address and believed location.
    pub fn insert(&mut self, addr: Ipv4Addr, ldns: LdnsId, location: GeoPoint) {
        self.by_ip.insert(addr, (ldns, location));
    }

    /// Looks up a source address.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(LdnsId, GeoPoint)> {
        self.by_ip.get(&addr).copied()
    }

    /// Number of registered resolvers.
    pub fn len(&self) -> usize {
        self.by_ip.len()
    }

    /// Whether no resolvers are registered.
    pub fn is_empty(&self) -> bool {
        self.by_ip.is_empty()
    }
}

/// Monotonic serving counters, shared across workers.
///
/// Plain atomics (readable in tests without obs plumbing); increments are
/// mirrored to the obs registry under `serve_*` counter names. The hot
/// path accumulates into a per-batch [`BatchCounts`] and flushes once per
/// batch, so per-packet cost is a couple of local integer bumps.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Queries received over UDP.
    pub udp_queries: AtomicU64,
    /// Queries received over TCP (truncation fallback).
    pub tcp_queries: AtomicU64,
    /// TCP fallback connections accepted.
    pub tcp_fallbacks: AtomicU64,
    /// Packets that failed to decode.
    pub decode_errors: AtomicU64,
    /// Queries answered by the overload valve.
    pub degraded: AtomicU64,
    /// Responses truncated to fit the client's UDP payload limit.
    pub truncated: AtomicU64,
    /// Queries from source addresses not in the [`LdnsDirectory`].
    pub unknown_ldns: AtomicU64,
    /// UDP answers produced by the zero-alloc templated fast path.
    pub template_hits: AtomicU64,
    /// Decodable UDP queries that needed the full encoder.
    pub template_misses: AtomicU64,
    /// Per answered-address tallies — how many A answers named each
    /// front-end address (the anycast VIP included). This is the control
    /// plane's live offered-load feed: the plain map is authoritative
    /// (deterministic, independent of whether obs recording is enabled),
    /// and each increment is mirrored to the labeled obs counter
    /// `serve_answers_total{addr=...}`. Counts depend only on which
    /// queries were answered, so they are worker-count invariant.
    answered: Mutex<HashMap<Ipv4Addr, (u64, Arc<anycast_obs::Counter>)>>,
}

impl ServeStats {
    /// Merges a batch of per-address tallies under one lock acquisition.
    fn note_answered_bulk(&self, tallies: &[(Ipv4Addr, u64)]) {
        if tallies.is_empty() {
            return;
        }
        let mut map = self.answered.lock().unwrap_or_else(|p| p.into_inner());
        for &(addr, n) in tallies {
            let (count, obs) = map.entry(addr).or_insert_with(|| {
                let label = addr.to_string();
                (
                    0,
                    anycast_obs::global().counter_with("serve_answers_total", &[("addr", &label)]),
                )
            });
            *count += n;
            obs.add(n);
        }
    }

    /// Snapshot of the per-address answered-query tallies, sorted by
    /// address (deterministic iteration for feeds and tests).
    pub fn answered_by_addr(&self) -> Vec<(Ipv4Addr, u64)> {
        let map = self.answered.lock().unwrap_or_else(|p| p.into_inner());
        let mut out: Vec<(Ipv4Addr, u64)> = map.iter().map(|(a, (c, _))| (*a, *c)).collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }
}

/// Counter deltas for one batch (or one TCP query), accumulated locally
/// and flushed to [`ServeStats`] + obs in one step. Flushing *before* the
/// batch's responses are sent keeps the invariant that a client observing
/// its answer also observes the matching tallies.
#[derive(Debug, Default)]
struct BatchCounts {
    udp: u64,
    tcp: u64,
    decode_errors: u64,
    degraded: u64,
    truncated: u64,
    unknown_ldns: u64,
    template_hits: u64,
    template_misses: u64,
    /// Per-address answer tallies; batches touch a handful of addresses,
    /// so a linear-scanned vec beats a map.
    answered: Vec<(Ipv4Addr, u64)>,
}

impl BatchCounts {
    fn tally(&mut self, addr: Ipv4Addr) {
        for (a, n) in self.answered.iter_mut() {
            if *a == addr {
                *n += 1;
                return;
            }
        }
        self.answered.push((addr, 1));
    }

    fn flush(&mut self, stats: &ServeStats) {
        if self.udp > 0 {
            stats.udp_queries.fetch_add(self.udp, Ordering::Relaxed);
            counter!("serve_udp_queries_total").add(self.udp);
        }
        if self.tcp > 0 {
            stats.tcp_queries.fetch_add(self.tcp, Ordering::Relaxed);
            counter!("serve_tcp_queries_total").add(self.tcp);
        }
        if self.decode_errors > 0 {
            stats
                .decode_errors
                .fetch_add(self.decode_errors, Ordering::Relaxed);
            counter!("serve_decode_errors_total").add(self.decode_errors);
        }
        if self.degraded > 0 {
            stats.degraded.fetch_add(self.degraded, Ordering::Relaxed);
            counter!("serve_degraded_answers_total").add(self.degraded);
        }
        if self.truncated > 0 {
            stats.truncated.fetch_add(self.truncated, Ordering::Relaxed);
            counter!("serve_truncated_responses_total").add(self.truncated);
        }
        if self.unknown_ldns > 0 {
            stats
                .unknown_ldns
                .fetch_add(self.unknown_ldns, Ordering::Relaxed);
            counter!("serve_unknown_ldns_total").add(self.unknown_ldns);
        }
        if self.template_hits > 0 {
            stats
                .template_hits
                .fetch_add(self.template_hits, Ordering::Relaxed);
            counter!("serve_template_hit").add(self.template_hits);
        }
        if self.template_misses > 0 {
            stats
                .template_misses
                .fetch_add(self.template_misses, Ordering::Relaxed);
            counter!("serve_template_miss").add(self.template_misses);
        }
        stats.note_answered_bulk(&self.answered);
        self.answered.clear();
        self.udp = 0;
        self.tcp = 0;
        self.decode_errors = 0;
        self.degraded = 0;
        self.truncated = 0;
        self.unknown_ldns = 0;
        self.template_hits = 0;
        self.template_misses = 0;
    }
}

/// A running server; dropping it stops all threads.
pub struct DnsServer {
    addr: SocketAddr,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    recorder: Arc<FlightRecorder>,
}

impl std::fmt::Debug for DnsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DnsServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .finish()
    }
}

impl DnsServer {
    /// Binds UDP + TCP on an ephemeral loopback port and spawns the
    /// worker set around an arbitrary policy. Every decodable query runs
    /// the full decode → policy → encode path (no templates: a generic
    /// policy's answers cannot be pre-encoded).
    pub fn spawn<P>(
        cfg: ServeConfig,
        policy: P,
        directory: LdnsDirectory,
    ) -> std::io::Result<DnsServer>
    where
        P: RedirectionPolicy + Send + Sync + 'static,
    {
        DnsServer::spawn_inner(cfg, Arc::new(policy), None, directory)
    }

    /// Binds and spawns around a [`TableStore`], enabling the zero-alloc
    /// templated fast path: each batch loads the current
    /// [`crate::store::CompiledTable`] once and patches its pre-encoded
    /// answers straight into the send slots. Non-templatable queries
    /// still take the full path against the same table, so the wire
    /// bytes are identical either way.
    pub fn spawn_tables(
        cfg: ServeConfig,
        store: Arc<TableStore>,
        directory: LdnsDirectory,
    ) -> std::io::Result<DnsServer> {
        DnsServer::spawn_inner(cfg, store.clone(), Some(store), directory)
    }

    fn spawn_inner<P>(
        cfg: ServeConfig,
        policy: Arc<P>,
        tables: Option<Arc<TableStore>>,
        directory: LdnsDirectory,
    ) -> std::io::Result<DnsServer>
    where
        P: RedirectionPolicy + Send + Sync + 'static,
    {
        let (udp, tcp) = bind_pair()?;
        let addr = udp.local_addr()?;
        udp.set_read_timeout(Some(POLL_INTERVAL))?;
        tcp.set_nonblocking(true)?;

        let directory = Arc::new(directory);
        let stats = Arc::new(ServeStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();

        // One socket clone per worker; a clone failure degrades to a
        // single listener on the primary socket (observable, never fatal).
        let workers = cfg.workers.max(1);
        let mut socks = vec![udp];
        for _ in 1..workers {
            match socks[0].try_clone() {
                Ok(c) => socks.push(c),
                Err(_) => {
                    socks.truncate(1);
                    counter!("serve_single_listener_fallbacks_total").inc();
                    break;
                }
            }
        }
        let spawned = socks.len();
        let recorder = Arc::new(FlightRecorder::new(
            spawned,
            RecorderConfig {
                enabled: cfg.recorder,
                ..RecorderConfig::default()
            },
        ));
        for (worker, sock) in socks.into_iter().enumerate() {
            handles.push(spawn_worker(
                sock,
                cfg,
                policy.clone(),
                tables.clone(),
                directory.clone(),
                stats.clone(),
                stop.clone(),
                recorder.shard(worker),
                format!("serve-wk-{worker}"),
            ));
        }

        handles.push(spawn_tcp_acceptor(
            tcp,
            cfg,
            policy,
            directory,
            stats.clone(),
            stop.clone(),
        ));

        // The drain side of the flight recorder: folds ring contents into
        // registry metrics off the hot path, at the poll cadence. The
        // final fold happens in `stop()` after every worker has exited,
        // so post-stop totals include the last batches.
        if recorder.enabled() {
            let rec = recorder.clone();
            let stop_flag = stop.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("serve-obs".to_string())
                    .spawn(move || {
                        while !stop_flag.load(Ordering::Relaxed) {
                            rec.drain();
                            std::thread::sleep(POLL_INTERVAL);
                        }
                    })
                    .expect("spawn recorder drain thread"),
            );
        }

        Ok(DnsServer {
            addr,
            stats,
            stop,
            workers: spawned,
            handles,
            recorder,
        })
    }

    /// The bound loopback address (UDP and TCP share the port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The hot-path flight recorder (disabled when
    /// [`ServeConfig::recorder`] is false).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Stops all threads and waits for them to exit. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Workers are gone: fold whatever the periodic drain missed.
        self.recorder.drain();
    }
}

impl Drop for DnsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds a UDP socket and a TCP listener on the *same* ephemeral loopback
/// port, retrying with fresh ports if the TCP side of a chosen port is
/// already taken.
fn bind_pair() -> std::io::Result<(UdpSocket, TcpListener)> {
    let mut last_err = None;
    for _ in 0..16 {
        let udp = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        let port = udp.local_addr()?.port();
        match TcpListener::bind((Ipv4Addr::LOCALHOST, port)) {
            Ok(tcp) => return Ok((udp, tcp)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("could not pair UDP/TCP ports")))
}

/// One worker shard: arena + batch I/O + the per-batch answer loop.
#[allow(clippy::too_many_arguments)]
fn spawn_worker<P>(
    sock: UdpSocket,
    cfg: ServeConfig,
    policy: Arc<P>,
    tables: Option<Arc<TableStore>>,
    directory: Arc<LdnsDirectory>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    rec: Arc<ShardRecorder>,
    name: String,
) -> std::thread::JoinHandle<()>
where
    P: RedirectionPolicy + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let batch = cfg.batch.clamp(1, MAX_BATCH);
            let mut io = batch_io(batch);
            let mut arena = PacketArena::new(batch, RECV_BUF);
            let valve = AnswerRr::new(cfg.anycast_vip, cfg.valve_ttl_s);
            let mut counts = BatchCounts::default();
            // Consecutive completely-full batches: the overload signal.
            // A full batch means the socket had more queued than one
            // syscall drained; a streak of them means the shard is not
            // keeping up. `batch == 1` carries no backlog information
            // (every busy recv is "full"), so the streak stays 0 there
            // and only `overload_watermark == 0` valves.
            let mut full_streak: usize = 0;
            while !stop.load(Ordering::Relaxed) {
                let n = match io.recv_batch(&sock, &mut arena) {
                    Ok(n) => n,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock
                                | std::io::ErrorKind::TimedOut
                                | std::io::ErrorKind::Interrupted
                        ) =>
                    {
                        full_streak = 0;
                        continue;
                    }
                    Err(_) => break,
                };
                histogram!("serve_batch_size").observe(n as f64);
                if batch > 1 && n == batch {
                    full_streak += 1;
                } else {
                    full_streak = 0;
                }
                let overloaded = full_streak.saturating_mul(batch) >= cfg.overload_watermark;
                rec.record_batch(BatchEvent {
                    fill: n as u16,
                    overloaded,
                });
                // One atomic load of the hot-swapped table per batch.
                let table = tables.as_ref().map(|t| t.load());
                for i in 0..n {
                    if arena.packet(i).is_empty() {
                        arena.set_response_len(i, 0);
                        continue;
                    }
                    let src = arena.peer(i);
                    let len = serve_packet(
                        &cfg,
                        &*policy,
                        table.as_deref(),
                        &directory,
                        &valve,
                        &mut counts,
                        i,
                        &mut arena,
                        src,
                        overloaded,
                        &rec,
                    );
                    arena.set_response_len(i, len);
                }
                // Flush tallies before the responses hit the wire, so a
                // client that sees its answer also sees the counts.
                counts.flush(&stats);
                let _ = io.send_batch(&sock, &mut arena, n);
            }
        })
        .expect("spawn worker thread")
}

/// Answers the packet in arena slot `i`, returning the response length
/// written into the matching send slot (0 = no response).
#[allow(clippy::too_many_arguments)]
fn serve_packet<P>(
    cfg: &ServeConfig,
    policy: &P,
    table: Option<&crate::store::CompiledTable>,
    directory: &LdnsDirectory,
    valve: &AnswerRr,
    counts: &mut BatchCounts,
    i: usize,
    arena: &mut PacketArena,
    src: SocketAddr,
    overloaded: bool,
    rec: &ShardRecorder,
) -> usize
where
    P: RedirectionPolicy + ?Sized,
{
    counts.udp += 1;
    let (data, out, _) = arena.io_slot(i);
    // Arrival: the deterministic sampling decision (a txid-independent
    // hash over the packet bytes — the same packet is sampled under any
    // worker count). One branch when the recorder is off.
    let sampled = rec.sample(data);
    let txid = if data.len() >= 2 {
        u16::from_be_bytes([data[0], data[1]])
    } else {
        0
    };
    // The zero-alloc fast path: a templatable query against a compiled
    // table whose response provably fits. Any gate failing falls through
    // to the full decode/encode path, the behavioral reference.
    if let Some(table) = table {
        if let Some(view) = QueryView::parse(data) {
            let advertised = view
                .udp_payload()
                .map(|p| usize::from(p).max(CLASSIC_UDP_LIMIT))
                .unwrap_or(CLASSIC_UDP_LIMIT);
            let max_payload = match cfg.udp_response_cap {
                Some(cap) => advertised.min(cap),
                None => advertised,
            };
            let len = response_len(&view);
            // All gates checked before any count mutation, so the slow
            // path never double-counts a query the fast path rejected.
            if len <= max_payload && len <= out.len() {
                let mut flags = TRACE_TEMPLATE_HIT;
                if overloaded {
                    flags |= TRACE_OVERLOAD;
                }
                let (rr, scope) = if overloaded {
                    counts.degraded += 1;
                    flags |= TRACE_VALVE;
                    (valve, 0)
                } else {
                    match directory.lookup(source_ip(src)) {
                        Some((ldns, _)) => {
                            let ecs = view.edns.and_then(|e| e.ecs).and_then(|e| e.to_option());
                            table.answer_rr(ldns, ecs.as_ref())
                        }
                        None => {
                            counts.unknown_ldns += 1;
                            flags |= TRACE_VALVE | TRACE_UNKNOWN_LDNS;
                            (valve, 0)
                        }
                    }
                };
                counts.template_hits += 1;
                counts.tally(rr.addr());
                let written = write_response(out, &view, rr, scope);
                if sampled {
                    // Send: the completed trace — lookup depth is the
                    // matched ECS prefix length the answer advertises.
                    rec.record(TraceRecord {
                        txid,
                        depth: scope,
                        flags,
                        resp_len: written as u16,
                    });
                }
                return written;
            }
        }
    }
    let resp = respond(
        cfg,
        policy,
        directory,
        counts,
        data,
        src,
        Transport::Udp { overloaded },
    );
    // Re-borrow the slot: `respond` needed `data` immutably while the
    // response Vec was built.
    let (_, out, _) = arena.io_slot(i);
    let written = match resp {
        Some(resp) if resp.len() <= out.len() => {
            out[..resp.len()].copy_from_slice(&resp);
            resp.len()
        }
        _ => 0,
    };
    if sampled {
        rec.record(TraceRecord {
            txid,
            depth: 0,
            flags: if overloaded { TRACE_OVERLOAD } else { 0 },
            resp_len: written as u16,
        });
    }
    written
}

fn source_ip(src: SocketAddr) -> Ipv4Addr {
    match src.ip() {
        std::net::IpAddr::V4(v4) => v4,
        std::net::IpAddr::V6(_) => Ipv4Addr::UNSPECIFIED,
    }
}

fn spawn_tcp_acceptor<P>(
    listener: TcpListener,
    cfg: ServeConfig,
    policy: Arc<P>,
    directory: Arc<LdnsDirectory>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()>
where
    P: RedirectionPolicy + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name("serve-tcp".to_string())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, src)) => {
                        stats.tcp_fallbacks.fetch_add(1, Ordering::Relaxed);
                        counter!("tcp_fallback_total").inc();
                        let _ = serve_tcp_conn(stream, src, &cfg, &*policy, &directory, &stats);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })
        .expect("spawn tcp acceptor thread")
}

/// Serves queries on one TCP connection (RFC 1035 §4.2.2 framing) until
/// the peer closes or times out. The query scratch and the length-prefixed
/// response frame are per-connection buffers reused across messages.
fn serve_tcp_conn<P>(
    mut stream: TcpStream,
    src: SocketAddr,
    cfg: &ServeConfig,
    policy: &P,
    directory: &LdnsDirectory,
    stats: &ServeStats,
) -> std::io::Result<()>
where
    P: RedirectionPolicy + ?Sized,
{
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut data: Vec<u8> = Vec::new();
    let mut frame: Vec<u8> = Vec::new();
    let mut counts = BatchCounts::default();
    loop {
        let mut len_buf = [0u8; 2];
        if stream.read_exact(&mut len_buf).is_err() {
            return Ok(()); // peer closed or timed out
        }
        let len = usize::from(u16::from_be_bytes(len_buf));
        data.resize(len, 0);
        stream.read_exact(&mut data)?;
        counts.tcp += 1;
        let resp = respond(
            cfg,
            policy,
            directory,
            &mut counts,
            &data,
            src,
            Transport::Tcp,
        );
        counts.flush(stats);
        if let Some(resp) = resp {
            debug_assert!(resp.len() <= TCP_MAX_MESSAGE);
            // One write_all of [len | message]: a single segment on the
            // wire instead of two, and no fresh buffer per message.
            frame.clear();
            frame.extend_from_slice(&(resp.len() as u16).to_be_bytes());
            frame.extend_from_slice(&resp);
            stream.write_all(&frame)?;
        }
    }
}

/// How a query arrived — decides the response-size rule and whether the
/// overload valve can apply.
#[derive(Debug, Clone, Copy)]
enum Transport {
    /// UDP: payload limited by the EDNS advertisement (and
    /// `udp_response_cap`); the valve engages when the shard is drowning.
    Udp {
        /// The worker observed a sustained backlog past the watermark.
        overloaded: bool,
    },
    /// TCP: up to the 16-bit frame limit; never valved (the connection
    /// already survived the socket).
    Tcp,
}

/// Decodes one query and produces the response bytes, if any. The full
/// (allocating) path: behavioral reference for FORMERR, REFUSED,
/// truncation, and every non-templatable shape.
fn respond<P>(
    cfg: &ServeConfig,
    policy: &P,
    directory: &LdnsDirectory,
    counts: &mut BatchCounts,
    data: &[u8],
    src: SocketAddr,
    transport: Transport,
) -> Option<Vec<u8>>
where
    P: RedirectionPolicy + ?Sized,
{
    let q = match decode_query(data) {
        Ok(q) => q,
        Err(_) => {
            counts.decode_errors += 1;
            return formerr_response(data);
        }
    };
    if matches!(transport, Transport::Udp { .. }) {
        counts.template_misses += 1;
    }
    let overloaded = matches!(transport, Transport::Udp { overloaded: true });
    let max_payload = match transport {
        Transport::Tcp => TCP_MAX_MESSAGE,
        Transport::Udp { .. } => {
            let advertised = q
                .edns
                .map(|e| usize::from(e.udp_payload).max(CLASSIC_UDP_LIMIT))
                .unwrap_or(CLASSIC_UDP_LIMIT);
            match cfg.udp_response_cap {
                Some(cap) => advertised.min(cap),
                None => advertised,
            }
        }
    };
    if q.qclass == CLASS_CHAOS {
        // The in-band scrape endpoint: `TXT metrics.bind CH` answers a
        // Prometheus-text snapshot of the metrics registry over the same
        // wire path queries take — no side listener. Oversized snapshots
        // come back TC=1 over UDP, steering the scraper onto the TCP
        // fallback; any other CHAOS question is refused like any other
        // class we don't serve.
        if q.qtype == TYPE_TXT && q.qname.as_str() == CHAOS_METRICS_QNAME {
            counter!("serve_chaos_scrapes_total").inc();
            let text = anycast_obs::global().snapshot().to_prometheus();
            return Some(encode_chaos_txt(
                &q,
                &text,
                max_payload,
                matches!(transport, Transport::Tcp),
            ));
        }
        return Some(encode_response(&q, None, RCODE_REFUSED, max_payload));
    }
    if q.qclass != CLASS_IN {
        return Some(encode_response(&q, None, RCODE_REFUSED, max_payload));
    }
    if q.qtype != TYPE_A {
        return Some(encode_response(&q, None, 0, max_payload));
    }
    let answer = if overloaded {
        counts.degraded += 1;
        anycast_dns::DnsAnswer::global(cfg.anycast_vip, cfg.valve_ttl_s)
    } else {
        match directory.lookup(source_ip(src)) {
            Some((ldns, ldns_location)) => {
                let ecs = q.edns.and_then(|e| e.ecs).and_then(|e| e.to_option());
                let ctx = QueryContext {
                    qname: &q.qname,
                    ldns,
                    ldns_location,
                    ecs,
                    day: cfg.day,
                    time_s: 0.0,
                };
                policy.answer(&ctx)
            }
            None => {
                counts.unknown_ldns += 1;
                anycast_dns::DnsAnswer::global(cfg.anycast_vip, cfg.valve_ttl_s)
            }
        }
    };
    counts.tally(answer.addr);
    let resp = encode_response(&q, Some(&answer), 0, max_payload);
    if resp.len() >= crate::wire::HEADER_LEN && resp[2] & 0x02 != 0 {
        // TC bit set in the encoded header.
        counts.truncated += 1;
    }
    Some(resp)
}

/// A question-less FORMERR response, if the packet at least carries an id.
fn formerr_response(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 2 {
        return None;
    }
    let header = Header {
        id: u16::from_be_bytes([data[0], data[1]]),
        flags: Flags {
            qr: true,
            rcode: RCODE_FORMERR,
            ..Flags::default()
        },
        ..Header::default()
    };
    let mut out = Vec::with_capacity(crate::wire::HEADER_LEN);
    header.encode(&mut out);
    Some(out)
}
