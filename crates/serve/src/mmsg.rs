//! Batched UDP I/O: `recvmmsg`/`sendmmsg` without libc.
//!
//! One `recv_from` syscall per packet caps a DNS front end at the syscall
//! rate, not the hardware; Linux's `recvmmsg`/`sendmmsg` move a whole
//! batch of datagrams per kernel crossing. The workspace is std-only, so
//! this module issues the two syscalls directly through `core::arch::asm!`
//! shims (x86-64 and aarch64) with hand-laid `#[repr(C)]` mirrors of the
//! kernel's `iovec`/`msghdr`/`mmsghdr` ABI — no `libc` crate, no FFI
//! declarations.
//!
//! Everything above the syscall speaks the safe [`BatchIo`] trait:
//!
//! * [`batch_io`] returns the mmsg-backed implementation on supported
//!   Linux targets when `batch > 1`, and a portable one-packet fallback
//!   (plain `recv_from`/`send_to`) everywhere else — same trait, same
//!   arena, so the serving loop is written once;
//! * [`PacketArena`] owns every buffer a worker shard touches: `batch`
//!   receive slots, `batch` send slots, lengths, and peer addresses, all
//!   allocated once at spawn. The per-packet loop borrows slots in place
//!   and never allocates.
//!
//! The blocking contract: `recv_batch` waits for the first datagram (the
//! socket's read timeout bounds the wait so callers can poll a stop flag)
//! and then drains up to `batch` without waiting again (`MSG_WAITFORONE`).
//! `send_batch` writes every non-empty send slot, retrying partial sends.

use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};

/// Upper bound on a batch — keeps arena sizing sane (64 KiB slots × 1024
/// would be 64 MiB per worker; nobody needs more than this per syscall).
pub const MAX_BATCH: usize = 1024;

/// Whether this build carries the raw-syscall batched path.
pub const MMSG_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Preallocated per-shard packet storage: receive slots, send slots,
/// lengths, and peer addresses for one batch.
///
/// The same arena serves both directions: a server receives into the recv
/// slots, writes each response into the matching send slot (the peer
/// recorded at receive time becomes the send destination), and a client
/// fills send slots + peers itself via [`PacketArena::set_outgoing`].
#[derive(Debug)]
pub struct PacketArena {
    batch: usize,
    slot: usize,
    recv_bufs: Box<[u8]>,
    recv_lens: Box<[usize]>,
    send_bufs: Box<[u8]>,
    send_lens: Box<[usize]>,
    peers: Box<[SocketAddr]>,
}

impl PacketArena {
    /// Allocates an arena of `batch` slots of `slot` bytes each (both
    /// clamped to sane bounds). This is the only allocation the steady
    /// state UDP path performs.
    pub fn new(batch: usize, slot: usize) -> PacketArena {
        let batch = batch.clamp(1, MAX_BATCH);
        let slot = slot.max(512);
        let dummy = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0));
        PacketArena {
            batch,
            slot,
            recv_bufs: vec![0u8; batch * slot].into_boxed_slice(),
            recv_lens: vec![0usize; batch].into_boxed_slice(),
            send_bufs: vec![0u8; batch * slot].into_boxed_slice(),
            send_lens: vec![0usize; batch].into_boxed_slice(),
            peers: vec![dummy; batch].into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Bytes per slot.
    pub fn slot_len(&self) -> usize {
        self.slot
    }

    /// The received datagram in slot `i`.
    pub fn packet(&self, i: usize) -> &[u8] {
        &self.recv_bufs[i * self.slot..i * self.slot + self.recv_lens[i]]
    }

    /// The peer address recorded for slot `i` (source on receive,
    /// destination on send).
    pub fn peer(&self, i: usize) -> SocketAddr {
        self.peers[i]
    }

    /// Borrows slot `i` for processing: the received packet, the whole
    /// writable send slot, and the peer — in one call so the per-packet
    /// loop needs no copies.
    pub fn io_slot(&mut self, i: usize) -> (&[u8], &mut [u8], SocketAddr) {
        let recv = &self.recv_bufs[i * self.slot..i * self.slot + self.recv_lens[i]];
        let send = &mut self.send_bufs[i * self.slot..(i + 1) * self.slot];
        (recv, send, self.peers[i])
    }

    /// Records how many bytes of send slot `i` are a valid response; 0
    /// means "no response" and [`BatchIo::send_batch`] skips the slot.
    pub fn set_response_len(&mut self, i: usize, len: usize) {
        debug_assert!(len <= self.slot);
        self.send_lens[i] = len.min(self.slot);
    }

    /// Client-side fill: copies `payload` into send slot `i` aimed at
    /// `dst`. Panics if the payload exceeds the slot size.
    pub fn set_outgoing(&mut self, i: usize, payload: &[u8], dst: SocketAddr) {
        assert!(payload.len() <= self.slot, "payload exceeds arena slot");
        self.send_bufs[i * self.slot..i * self.slot + payload.len()].copy_from_slice(payload);
        self.send_lens[i] = payload.len();
        self.peers[i] = dst;
    }

    /// Bytes queued for sending in slot `i` (0 = empty / skipped). The
    /// client side of a windowed exchange uses this to tell answered
    /// slots (zeroed via [`PacketArena::set_response_len`]) from ones
    /// still pending a re-send.
    pub fn send_len(&self, i: usize) -> usize {
        self.send_lens[i]
    }

    fn recv_slot_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.recv_bufs[i * self.slot..(i + 1) * self.slot]
    }

    fn send_slot(&self, i: usize) -> &[u8] {
        &self.send_bufs[i * self.slot..i * self.slot + self.send_lens[i]]
    }
}

/// Batched datagram I/O over one UDP socket and one [`PacketArena`].
///
/// Implementations: the raw `recvmmsg`/`sendmmsg` path (Linux
/// x86-64/aarch64, `batch > 1`) and the portable one-packet fallback.
/// Both obey the same contract, so the serving loop and the load
/// generator are written once against this trait.
pub trait BatchIo: Send {
    /// Receives up to `arena.batch()` datagrams: blocks (bounded by the
    /// socket's read timeout) for the first, then takes whatever else is
    /// already queued without blocking again. Fills packet lengths and
    /// peers for slots `0..n` and returns `n ≥ 1`, or the socket error
    /// (`WouldBlock`/`TimedOut` on a quiet socket).
    fn recv_batch(&mut self, sock: &UdpSocket, arena: &mut PacketArena) -> io::Result<usize>;

    /// Sends the non-empty send slots among `0..n` to their recorded
    /// peers, retrying partial batches until all are handed to the kernel.
    fn send_batch(&mut self, sock: &UdpSocket, arena: &mut PacketArena, n: usize)
        -> io::Result<()>;
}

/// Picks the best [`BatchIo`] for `batch` on this platform: the raw
/// mmsg syscalls when supported and `batch > 1`, otherwise the portable
/// one-packet fallback (also selectable explicitly by passing `batch = 1`,
/// which is what the `ANYCAST_SERVE_BATCH=1` smoke path does).
pub fn batch_io(batch: usize) -> Box<dyn BatchIo> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    if batch > 1 {
        return Box::new(linux::MmsgIo::new(batch.min(MAX_BATCH)));
    }
    let _ = batch;
    Box::new(OnePacketIo)
}

/// Portable fallback: one `recv_from`/`send_to` per datagram through the
/// same arena. `recv_batch` returns at most one packet per call.
#[derive(Debug, Default)]
pub struct OnePacketIo;

impl BatchIo for OnePacketIo {
    fn recv_batch(&mut self, sock: &UdpSocket, arena: &mut PacketArena) -> io::Result<usize> {
        let (n, src) = sock.recv_from(arena.recv_slot_mut(0))?;
        arena.recv_lens[0] = n;
        arena.peers[0] = src;
        Ok(1)
    }

    fn send_batch(
        &mut self,
        sock: &UdpSocket,
        arena: &mut PacketArena,
        n: usize,
    ) -> io::Result<()> {
        for i in 0..n.min(arena.batch) {
            if arena.send_lens[i] == 0 {
                continue;
            }
            sock.send_to(arena.send_slot(i), arena.peers[i])?;
        }
        Ok(())
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod linux {
    //! The raw-syscall path. All `unsafe` in the crate lives here: two
    //! inline-asm syscall shims plus the `#[repr(C)]` ABI mirrors they
    //! point into. Invariants keeping it sound:
    //!
    //! * every pointer written into an `iovec`/`msghdr` targets memory
    //!   owned by `self` or the borrowed arena, alive across the syscall
    //!   (pointers are rebuilt immediately before each syscall, so moves
    //!   of the `MmsgIo` box between calls are harmless);
    //! * `msg_len` returned by the kernel is clamped to the slot size
    //!   before use;
    //! * a negative return is `-errno`, surfaced as `io::Error` (never
    //!   touching `errno` TLS, which the shim bypasses).

    use super::{BatchIo, PacketArena};
    use std::io;
    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
    use std::os::fd::AsRawFd;

    /// `recvmmsg` flag: block for the first message only.
    const MSG_WAITFORONE: u32 = 0x10000;
    const AF_INET: u16 = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_RECVMMSG: usize = 299;
    #[cfg(target_arch = "x86_64")]
    const SYS_SENDMMSG: usize = 307;
    #[cfg(target_arch = "aarch64")]
    const SYS_RECVMMSG: usize = 243;
    #[cfg(target_arch = "aarch64")]
    const SYS_SENDMMSG: usize = 269;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x8") nr,
            options(nostack),
        );
        ret
    }

    /// Kernel `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// Kernel `struct sockaddr_in` (16 bytes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        family: u16,
        port_be: [u8; 2],
        addr_be: [u8; 4],
        zero: [u8; 8],
    }

    impl SockAddrIn {
        const ZERO: SockAddrIn = SockAddrIn {
            family: 0,
            port_be: [0; 2],
            addr_be: [0; 4],
            zero: [0; 8],
        };

        fn from_peer(peer: SocketAddr) -> SockAddrIn {
            let v4 = match peer {
                SocketAddr::V4(v4) => v4,
                // The serving sockets are IPv4-bound; an IPv6 peer cannot
                // occur. Encode the unspecified address defensively.
                SocketAddr::V6(_) => SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0),
            };
            SockAddrIn {
                family: AF_INET,
                port_be: v4.port().to_be_bytes(),
                addr_be: v4.ip().octets(),
                zero: [0; 8],
            }
        }

        fn to_peer(self) -> SocketAddr {
            SocketAddr::V4(SocketAddrV4::new(
                Ipv4Addr::from(self.addr_be),
                u16::from_be_bytes(self.port_be),
            ))
        }
    }

    /// Kernel `struct msghdr` (x86-64/aarch64 layout; `repr(C)` inserts
    /// the same padding after `namelen` and `flags` as the C definition).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut SockAddrIn,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    /// Kernel `struct mmsghdr`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MmsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    const EINTR: i32 = 4;

    /// The `recvmmsg`/`sendmmsg`-backed [`BatchIo`]. The header, iovec,
    /// and address arrays are allocated once and re-pointed before every
    /// syscall.
    pub(super) struct MmsgIo {
        batch: usize,
        iovecs: Vec<IoVec>,
        addrs: Vec<SockAddrIn>,
        hdrs: Vec<MmsgHdr>,
    }

    // SAFETY: the raw pointers inside are dangling between calls (they are
    // rebuilt from `self` and the arena before every syscall) and never
    // shared; moving the struct across threads is sound.
    #[allow(unsafe_code)]
    unsafe impl Send for MmsgIo {}

    impl MmsgIo {
        pub(super) fn new(batch: usize) -> MmsgIo {
            let null_hdr = MmsgHdr {
                hdr: MsgHdr {
                    name: std::ptr::null_mut(),
                    namelen: 0,
                    iov: std::ptr::null_mut(),
                    iovlen: 0,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            };
            MmsgIo {
                batch,
                iovecs: vec![
                    IoVec {
                        base: std::ptr::null_mut(),
                        len: 0
                    };
                    batch
                ],
                addrs: vec![SockAddrIn::ZERO; batch],
                hdrs: vec![null_hdr; batch],
            }
        }
    }

    impl BatchIo for MmsgIo {
        fn recv_batch(&mut self, sock: &UdpSocket, arena: &mut PacketArena) -> io::Result<usize> {
            let n = self.batch.min(arena.batch);
            let slot = arena.slot;
            for i in 0..n {
                self.iovecs[i] = IoVec {
                    base: arena.recv_bufs[i * slot..].as_mut_ptr(),
                    len: slot,
                };
                self.addrs[i] = SockAddrIn::ZERO;
                self.hdrs[i] = MmsgHdr {
                    hdr: MsgHdr {
                        name: &mut self.addrs[i],
                        namelen: std::mem::size_of::<SockAddrIn>() as u32,
                        iov: &mut self.iovecs[i],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                };
            }
            // SAFETY: hdrs/iovecs/addrs and the arena slots all outlive
            // the call; counts match the arrays just written.
            let r = unsafe {
                syscall5(
                    SYS_RECVMMSG,
                    sock.as_raw_fd() as usize,
                    self.hdrs.as_mut_ptr() as usize,
                    n,
                    MSG_WAITFORONE as usize,
                    0, // no timeout struct; SO_RCVTIMEO bounds the first wait
                )
            };
            if r < 0 {
                return Err(io::Error::from_raw_os_error(-r as i32));
            }
            let got = (r as usize).min(n);
            for i in 0..got {
                arena.recv_lens[i] = (self.hdrs[i].len as usize).min(slot);
                arena.peers[i] = if self.addrs[i].family == AF_INET {
                    self.addrs[i].to_peer()
                } else {
                    // Not addressable for a reply: drop by zeroing.
                    arena.recv_lens[i] = 0;
                    SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0))
                };
            }
            Ok(got)
        }

        fn send_batch(
            &mut self,
            sock: &UdpSocket,
            arena: &mut PacketArena,
            n: usize,
        ) -> io::Result<()> {
            let slot = arena.slot;
            let mut count = 0usize;
            for i in 0..n.min(self.batch).min(arena.batch) {
                let len = arena.send_lens[i];
                if len == 0 {
                    continue;
                }
                self.iovecs[count] = IoVec {
                    base: arena.send_bufs[i * slot..].as_mut_ptr(),
                    len,
                };
                self.addrs[count] = SockAddrIn::from_peer(arena.peers[i]);
                self.hdrs[count] = MmsgHdr {
                    hdr: MsgHdr {
                        name: &mut self.addrs[count],
                        namelen: std::mem::size_of::<SockAddrIn>() as u32,
                        iov: &mut self.iovecs[count],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                };
                count += 1;
            }
            let mut sent = 0usize;
            while sent < count {
                // SAFETY: same lifetimes as recv_batch; `sent` stays in
                // bounds because the kernel returns at most `count - sent`.
                let r = unsafe {
                    syscall5(
                        SYS_SENDMMSG,
                        sock.as_raw_fd() as usize,
                        self.hdrs.as_mut_ptr().wrapping_add(sent) as usize,
                        count - sent,
                        0,
                        0,
                    )
                };
                if r < 0 {
                    if -r as i32 == EINTR {
                        continue;
                    }
                    return Err(io::Error::from_raw_os_error(-r as i32));
                }
                if r == 0 {
                    break;
                }
                sent += (r as usize).min(count - sent);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr, SocketAddr) {
        let a = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let b = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        a.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        b.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let aa = a.local_addr().unwrap();
        let ba = b.local_addr().unwrap();
        (a, b, aa, ba)
    }

    fn roundtrip_with(mut io: Box<dyn BatchIo>, batch: usize) {
        let (a, b, aa, ba) = pair();
        let mut arena = PacketArena::new(batch, 2048);

        // a → b: five distinct datagrams via plain send_to.
        let msgs: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 10 + usize::from(i)]).collect();
        for m in &msgs {
            a.send_to(m, ba).unwrap();
        }
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < msgs.len() {
            let n = io.recv_batch(&b, &mut arena).expect("datagrams arrive");
            assert!(n >= 1 && n <= arena.batch());
            for i in 0..n {
                assert_eq!(arena.peer(i), aa, "source address is recorded");
                got.push(arena.packet(i).to_vec());
                // Echo straight back through the send side of the arena.
                let (recv, send, _) = arena.io_slot(i);
                let len = recv.len();
                send[..len].copy_from_slice(recv);
                arena.set_response_len(i, len);
            }
            io.send_batch(&b, &mut arena, n).unwrap();
        }
        got.sort();
        let mut want = msgs.clone();
        want.sort();
        assert_eq!(got, want, "batched receive sees every datagram intact");

        // The echoes all come back to a.
        let mut buf = [0u8; 2048];
        let mut echoed: Vec<Vec<u8>> = Vec::new();
        for _ in 0..msgs.len() {
            let (n, from) = a.recv_from(&mut buf).expect("echo arrives");
            assert_eq!(from, ba);
            echoed.push(buf[..n].to_vec());
        }
        echoed.sort();
        assert_eq!(echoed, want);

        // A quiet socket surfaces the read timeout, not a hang.
        let err = io.recv_batch(&b, &mut arena).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "quiet socket: {err:?}"
        );
    }

    #[test]
    fn one_packet_fallback_round_trips() {
        roundtrip_with(Box::new(OnePacketIo), 4);
    }

    #[test]
    fn default_io_round_trips_batched() {
        roundtrip_with(batch_io(8), 8);
    }

    #[test]
    fn batch_of_one_selects_the_fallback() {
        // batch_io(1) must never pick the mmsg path (that is the portable
        // and ANYCAST_SERVE_BATCH=1 contract); behaviorally they agree.
        roundtrip_with(batch_io(1), 1);
    }

    #[test]
    fn empty_send_slots_are_skipped() {
        let (a, b, _aa, ba) = pair();
        let mut io = batch_io(4);
        let mut arena = PacketArena::new(4, 1024);
        arena.set_outgoing(0, b"first", ba);
        arena.set_response_len(1, 0); // hole in the middle
        arena.set_outgoing(2, b"third", ba);
        arena.peers[1] = ba;
        io.send_batch(&a, &mut arena, 3).unwrap();
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        for _ in 0..2 {
            let (n, _) = b.recv_from(&mut buf).unwrap();
            got.push(buf[..n].to_vec());
        }
        got.sort();
        assert_eq!(got, vec![b"first".to_vec(), b"third".to_vec()]);
        assert!(b.recv_from(&mut buf).is_err(), "the hole was not sent");
    }

    #[test]
    fn arena_outgoing_and_slots() {
        let mut arena = PacketArena::new(2, 600);
        assert_eq!(arena.batch(), 2);
        assert!(arena.slot_len() >= 600);
        let dst = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 5353));
        arena.set_outgoing(1, &[9u8; 600], dst);
        assert_eq!(arena.send_lens[1], 600);
        assert_eq!(arena.peer(1), dst);
    }
}
