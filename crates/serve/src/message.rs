//! Whole-message codec: queries and authoritative responses, including
//! EDNS0 OPT records and the RFC 7871 client-subnet option.
//!
//! The types here bridge the simulator's in-process vocabulary
//! ([`DnsAnswer`], [`EcsOption`]) and real RFC 1035 packets. A
//! [`WireQuery`] keeps the *raw* ECS address from the wire (not just the
//! derived /24) because RFC 7871 §7.1.4 requires the response to echo the
//! source address and prefix length bit-for-bit.

use std::net::Ipv4Addr;

use anycast_dns::ecs::EcsOption;
use anycast_dns::{DnsAnswer, DnsName};
use anycast_netsim::Prefix;

use crate::wire::{
    Cursor, Flags, Header, NameWriter, WireError, CLASS_CHAOS, CLASS_IN, HEADER_LEN, OPTION_ECS,
    TYPE_A, TYPE_OPT, TYPE_TXT,
};

/// ECS option as carried on the wire (RFC 7871 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEcs {
    /// Raw source address from the option (bits beyond
    /// `source_prefix_len` zeroed, as the RFC requires).
    pub addr: Ipv4Addr,
    /// SOURCE PREFIX-LENGTH.
    pub source_prefix_len: u8,
    /// SCOPE PREFIX-LENGTH (0 in queries; the answer's scope in responses).
    pub scope_prefix_len: u8,
}

impl WireEcs {
    /// Builds the query-side option for a simulator [`EcsOption`].
    pub fn from_option(opt: &EcsOption) -> WireEcs {
        WireEcs {
            addr: opt.prefix.network(),
            source_prefix_len: opt.prefix.len(),
            scope_prefix_len: 0,
        }
    }

    /// Maps to the simulator's option, at the *true* source prefix length.
    /// The old mapping forced every wire subnet to its covering /24 — a
    /// /16 query would be answered (and scoped!) as if the resolver had
    /// disclosed a /24, claiming 8 bits the query never carried. A zero
    /// source prefix ("give me the generic answer", RFC 7871 §7.1.2) maps
    /// to `None`.
    pub fn to_option(self) -> Option<EcsOption> {
        if self.source_prefix_len == 0 {
            return None;
        }
        Some(EcsOption {
            prefix: Prefix::new(self.addr, self.source_prefix_len),
        })
    }
}

/// EDNS0 parameters extracted from (or destined for) an OPT record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edns {
    /// Requestor's advertised UDP payload size (the OPT CLASS field).
    pub udp_payload: u16,
    /// Client-subnet option, if present.
    pub ecs: Option<WireEcs>,
}

impl Edns {
    /// EDNS with a payload advertisement and no options.
    pub fn plain(udp_payload: u16) -> Edns {
        Edns {
            udp_payload,
            ecs: None,
        }
    }
}

/// A decoded query: exactly one question plus optional EDNS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQuery {
    /// Transaction id.
    pub id: u16,
    /// Recursion-desired bit (echoed in the response).
    pub rd: bool,
    /// Queried name.
    pub qname: DnsName,
    /// Query type.
    pub qtype: u16,
    /// Query class.
    pub qclass: u16,
    /// EDNS parameters, if the query carried an OPT record.
    pub edns: Option<Edns>,
}

/// A decoded response, as seen by the load-generator client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Transaction id (must match the query).
    pub id: u16,
    /// Response code.
    pub rcode: u8,
    /// Truncation bit — the client should retry over TCP.
    pub tc: bool,
    /// Authoritative-answer bit.
    pub aa: bool,
    /// Question echoed from the query.
    pub qname: DnsName,
    /// Question type echoed from the query.
    pub qtype: u16,
    /// First A record, if any: `(address, ttl)`.
    pub answer: Option<(Ipv4Addr, u32)>,
    /// Echoed ECS option, if any.
    pub ecs: Option<WireEcs>,
}

fn write_ecs_option(out: &mut Vec<u8>, ecs: &WireEcs) {
    let addr_len = usize::from(ecs.source_prefix_len.div_ceil(8));
    out.extend_from_slice(&OPTION_ECS.to_be_bytes());
    out.extend_from_slice(&((4 + addr_len) as u16).to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // FAMILY = IPv4
    out.push(ecs.source_prefix_len);
    out.push(ecs.scope_prefix_len);
    let octets = mask_addr(ecs.addr, ecs.source_prefix_len).octets();
    out.extend_from_slice(&octets[..addr_len]);
}

/// Zeroes address bits beyond `prefix_len`, per RFC 7871 §6.
pub(crate) fn mask_addr(addr: Ipv4Addr, prefix_len: u8) -> Ipv4Addr {
    if prefix_len >= 32 {
        return addr;
    }
    let mask = if prefix_len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(prefix_len))
    };
    Ipv4Addr::from(u32::from(addr) & mask)
}

fn write_opt_record(out: &mut Vec<u8>, edns: &Edns) {
    out.push(0); // root name
    out.extend_from_slice(&TYPE_OPT.to_be_bytes());
    out.extend_from_slice(&edns.udp_payload.to_be_bytes());
    out.extend_from_slice(&0u32.to_be_bytes()); // ext-rcode, version, flags
    let rdlen_at = out.len();
    out.extend_from_slice(&0u16.to_be_bytes());
    if let Some(ecs) = &edns.ecs {
        write_ecs_option(out, ecs);
    }
    let rdlen = (out.len() - rdlen_at - 2) as u16;
    out[rdlen_at..rdlen_at + 2].copy_from_slice(&rdlen.to_be_bytes());
}

/// Parses the RDATA of an OPT record into its ECS option (if present).
pub(crate) fn parse_opt_rdata(rdata: &[u8]) -> Result<Option<WireEcs>, WireError> {
    let mut c = Cursor::new(rdata);
    let mut ecs = None;
    while c.remaining() > 0 {
        let code = c.u16()?;
        let len = usize::from(c.u16()?);
        let body = c.take(len)?;
        if code != OPTION_ECS {
            continue; // unknown options are skipped, per RFC 6891
        }
        let mut o = Cursor::new(body);
        let family = o.u16()?;
        let source_prefix_len = o.u8()?;
        let scope_prefix_len = o.u8()?;
        if family != 1 {
            // Non-IPv4 families are out of scope for the simulator; treat
            // the option as absent rather than rejecting the query.
            continue;
        }
        if source_prefix_len > 32 || scope_prefix_len > 32 {
            return Err(WireError::BadOpt);
        }
        let addr_len = usize::from(source_prefix_len.div_ceil(8));
        if o.remaining() != addr_len {
            return Err(WireError::BadOpt);
        }
        let mut octets = [0u8; 4];
        octets[..addr_len].copy_from_slice(o.take(addr_len)?);
        if ecs.is_some() {
            return Err(WireError::BadOpt); // duplicate ECS options
        }
        ecs = Some(WireEcs {
            addr: mask_addr(Ipv4Addr::from(octets), source_prefix_len),
            source_prefix_len,
            scope_prefix_len,
        });
    }
    Ok(ecs)
}

/// Encodes a query packet.
pub fn encode_query(q: &WireQuery) -> Vec<u8> {
    let header = Header {
        id: q.id,
        flags: Flags {
            rd: q.rd,
            ..Flags::default()
        },
        qdcount: 1,
        arcount: u16::from(q.edns.is_some()),
        ..Header::default()
    };
    let mut out = Vec::with_capacity(64);
    header.encode(&mut out);
    crate::wire::write_name_uncompressed(&mut out, &q.qname);
    out.extend_from_slice(&q.qtype.to_be_bytes());
    out.extend_from_slice(&q.qclass.to_be_bytes());
    if let Some(edns) = &q.edns {
        write_opt_record(&mut out, edns);
    }
    out
}

/// Skips a resource record's fixed fields and RDATA, returning
/// `(type, class, ttl, rdata)`. The record's owner name must already have
/// been consumed.
fn record_body<'a>(c: &mut Cursor<'a>) -> Result<(u16, u16, u32, &'a [u8]), WireError> {
    let rtype = c.u16()?;
    let rclass = c.u16()?;
    let ttl = c.u32()?;
    let rdlen = usize::from(c.u16()?);
    let rdata = c.take(rdlen)?;
    Ok((rtype, rclass, ttl, rdata))
}

/// Decodes a query packet (QR must be 0; exactly one question).
pub fn decode_query(buf: &[u8]) -> Result<WireQuery, WireError> {
    let mut c = Cursor::new(buf);
    let h = Header::decode(&mut c)?;
    if h.flags.qr {
        return Err(WireError::WrongDirection);
    }
    if h.qdcount != 1 {
        return Err(WireError::BadQuestionCount);
    }
    let qname = c.name()?;
    let qtype = c.u16()?;
    let qclass = c.u16()?;
    // Answer/authority records in a query are tolerated but skipped.
    for _ in 0..u32::from(h.ancount) + u32::from(h.nscount) {
        c.name()?;
        record_body(&mut c)?;
    }
    let mut edns = None;
    for _ in 0..h.arcount {
        // OPT records are owned by the root name — a bare 0 octet, which
        // `DnsName` cannot represent — so detect it before decoding.
        if c.remaining() > 0 && buf[c.pos()] == 0 {
            c.skip(1)?;
        } else {
            c.name()?;
        }
        let (rtype, rclass, _ttl, rdata) = record_body(&mut c)?;
        if rtype == TYPE_OPT {
            if edns.is_some() {
                return Err(WireError::BadOpt); // duplicate OPT is FORMERR
            }
            edns = Some(Edns {
                udp_payload: rclass,
                ecs: parse_opt_rdata(rdata)?,
            });
        }
    }
    Ok(WireQuery {
        id: h.id,
        rd: h.flags.rd,
        qname,
        qtype,
        qclass,
        edns,
    })
}

/// Encodes an authoritative response to `q`.
///
/// * `answer` — `Some` for a normal A answer; `None` for an empty
///   NOERROR/NXDOMAIN-style response (the `rcode` decides which).
/// * `max_payload` — the client's effective payload limit. If the full
///   response does not fit, a truncated (TC=1) header + question (+ OPT)
///   is returned instead, telling the client to retry over TCP.
/// * If the query carried ECS, the response echoes the option with the
///   answer's scope prefix length (RFC 7871 §7.1.4).
pub fn encode_response(
    q: &WireQuery,
    answer: Option<&DnsAnswer>,
    rcode: u8,
    max_payload: usize,
) -> Vec<u8> {
    let edns = q.edns.as_ref().map(|query_edns| Edns {
        udp_payload: crate::server::SERVER_UDP_PAYLOAD,
        ecs: query_edns.ecs.map(|e| WireEcs {
            scope_prefix_len: answer.map(|a| a.ecs_scope).unwrap_or(0),
            ..e
        }),
    });
    let header = Header {
        id: q.id,
        flags: Flags {
            qr: true,
            aa: true,
            rd: q.rd,
            rcode,
            ..Flags::default()
        },
        qdcount: 1,
        ancount: u16::from(answer.is_some()),
        arcount: u16::from(edns.is_some()),
        ..Header::default()
    };
    let mut out = Vec::with_capacity(128);
    header.encode(&mut out);
    let mut names = NameWriter::new();
    names.write(&mut out, &q.qname);
    out.extend_from_slice(&q.qtype.to_be_bytes());
    out.extend_from_slice(&q.qclass.to_be_bytes());
    if let Some(a) = answer {
        names.write(&mut out, &q.qname);
        out.extend_from_slice(&TYPE_A.to_be_bytes());
        out.extend_from_slice(&CLASS_IN.to_be_bytes());
        out.extend_from_slice(&a.ttl_s.to_be_bytes());
        out.extend_from_slice(&4u16.to_be_bytes());
        out.extend_from_slice(&a.addr.octets());
    }
    if let Some(edns) = &edns {
        write_opt_record(&mut out, edns);
    }
    if out.len() > max_payload {
        return encode_truncated(q, &edns, rcode, max_payload);
    }
    out
}

/// Header + question (+ OPT when it fits) with TC=1.
fn encode_truncated(q: &WireQuery, edns: &Option<Edns>, rcode: u8, max_payload: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    let mut header = Header {
        id: q.id,
        flags: Flags {
            qr: true,
            aa: true,
            tc: true,
            rd: q.rd,
            rcode,
            ..Flags::default()
        },
        qdcount: 1,
        ..Header::default()
    };
    header.encode(&mut out);
    crate::wire::write_name_uncompressed(&mut out, &q.qname);
    out.extend_from_slice(&q.qtype.to_be_bytes());
    out.extend_from_slice(&q.qclass.to_be_bytes());
    if let Some(edns) = edns {
        let with_opt = out.len();
        write_opt_record(&mut out, edns);
        if out.len() > max_payload {
            out.truncate(with_opt);
        } else {
            header.arcount = 1;
            let mut fixed = Vec::with_capacity(HEADER_LEN);
            header.encode(&mut fixed);
            out[..HEADER_LEN].copy_from_slice(&fixed);
        }
    }
    out
}

/// Owner name of the in-band metrics endpoint: `TXT metrics.bind CH`,
/// in the tradition of `version.bind`.
pub const CHAOS_METRICS_QNAME: &str = "metrics.bind";

/// A decoded CHAOS-class TXT response (the in-band metrics scrape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosText {
    /// Transaction id echoed from the query.
    pub id: u16,
    /// Truncation bit: the payload did not fit, retry over TCP.
    pub tc: bool,
    /// Response code (0 = the scrape succeeded).
    pub rcode: u8,
    /// The concatenated TXT character-strings — Prometheus text.
    pub text: String,
}

/// Wire size of a TXT RDATA carrying `len` payload bytes: one length
/// octet per ≤255-byte character-string chunk.
fn txt_rdata_len(len: usize) -> usize {
    len + len.div_ceil(255).max(1)
}

/// Encodes the CHAOS TXT metrics response. The payload is chunked into
/// ≤255-byte character-strings inside one TXT record (TTL 0 — a scrape
/// is never cacheable).
///
/// When the full message exceeds `max_payload`: over UDP (`tcp` false)
/// the reply is a TC=1 header + question, steering the scraper onto the
/// TCP fallback path; over TCP the text itself is trimmed to the last
/// complete metric line that fits, so the response is always valid
/// exposition text.
pub fn encode_chaos_txt(q: &WireQuery, text: &str, max_payload: usize, tcp: bool) -> Vec<u8> {
    // Header + uncompressed question + (owner pointer, type, class, ttl,
    // rdlength) — everything except the RDATA itself.
    let qname_wire = q.qname.as_str().len() + 2;
    let overhead = HEADER_LEN + qname_wire + 4 + 12;
    let mut payload = text.as_bytes();
    if overhead + txt_rdata_len(payload.len()) > max_payload {
        if !tcp {
            return encode_truncated(q, &None, 0, max_payload);
        }
        // Largest byte budget whose chunked form fits, then back off to a
        // line boundary so the scrape output stays parseable.
        let budget = max_payload.saturating_sub(overhead);
        let mut keep = budget.saturating_sub(budget / 255 + 1);
        while keep > 0
            && (overhead + txt_rdata_len(keep) > max_payload || payload[keep - 1] != b'\n')
        {
            keep -= 1;
        }
        payload = &payload[..keep];
    }
    let header = Header {
        id: q.id,
        flags: Flags {
            qr: true,
            aa: true,
            rd: q.rd,
            ..Flags::default()
        },
        qdcount: 1,
        ancount: 1,
        ..Header::default()
    };
    let mut out = Vec::with_capacity(overhead + txt_rdata_len(payload.len()));
    header.encode(&mut out);
    let mut names = NameWriter::new();
    names.write(&mut out, &q.qname);
    out.extend_from_slice(&q.qtype.to_be_bytes());
    out.extend_from_slice(&q.qclass.to_be_bytes());
    names.write(&mut out, &q.qname);
    out.extend_from_slice(&TYPE_TXT.to_be_bytes());
    out.extend_from_slice(&CLASS_CHAOS.to_be_bytes());
    out.extend_from_slice(&0u32.to_be_bytes());
    out.extend_from_slice(&(txt_rdata_len(payload.len()) as u16).to_be_bytes());
    if payload.is_empty() {
        out.push(0);
    }
    for chunk in payload.chunks(255) {
        out.push(chunk.len() as u8);
        out.extend_from_slice(chunk);
    }
    debug_assert!(out.len() <= max_payload);
    out
}

/// Decodes a CHAOS TXT response, concatenating every character-string in
/// every TXT answer record back into the scrape text.
pub fn decode_chaos_txt(buf: &[u8]) -> Result<ChaosText, WireError> {
    let mut c = Cursor::new(buf);
    let h = Header::decode(&mut c)?;
    if !h.flags.qr {
        return Err(WireError::WrongDirection);
    }
    if h.qdcount != 1 {
        return Err(WireError::BadQuestionCount);
    }
    c.name()?;
    c.skip(4)?;
    let mut text = Vec::new();
    for _ in 0..h.ancount {
        c.name()?;
        let (rtype, rclass, _ttl, rdata) = record_body(&mut c)?;
        if rtype != TYPE_TXT || rclass != CLASS_CHAOS {
            continue;
        }
        let mut r = Cursor::new(rdata);
        while r.remaining() > 0 {
            let len = r.u8()? as usize;
            text.extend_from_slice(r.take(len)?);
        }
    }
    Ok(ChaosText {
        id: h.id,
        tc: h.flags.tc,
        rcode: h.flags.rcode,
        text: String::from_utf8_lossy(&text).into_owned(),
    })
}

/// Decodes a response packet (QR must be 1).
pub fn decode_response(buf: &[u8]) -> Result<WireResponse, WireError> {
    let mut c = Cursor::new(buf);
    let h = Header::decode(&mut c)?;
    if !h.flags.qr {
        return Err(WireError::WrongDirection);
    }
    if h.qdcount != 1 {
        return Err(WireError::BadQuestionCount);
    }
    let qname = c.name()?;
    let qtype = c.u16()?;
    let _qclass = c.u16()?;
    let mut answer = None;
    for _ in 0..h.ancount {
        c.name()?;
        let (rtype, rclass, ttl, rdata) = record_body(&mut c)?;
        if rtype == TYPE_A && rclass == CLASS_IN && answer.is_none() {
            if rdata.len() != 4 {
                return Err(WireError::BadRdata);
            }
            let octets: [u8; 4] = rdata.try_into().unwrap();
            answer = Some((Ipv4Addr::from(octets), ttl));
        }
    }
    for _ in 0..h.nscount {
        c.name()?;
        record_body(&mut c)?;
    }
    let mut ecs = None;
    for _ in 0..h.arcount {
        let owner_root = c.remaining() > 0 && buf[c.pos()] == 0;
        if owner_root {
            c.skip(1)?;
        } else {
            c.name()?;
        }
        let (rtype, _rclass, _ttl, rdata) = record_body(&mut c)?;
        if rtype == TYPE_OPT {
            ecs = parse_opt_rdata(rdata)?;
        }
    }
    Ok(WireResponse {
        id: h.id,
        rcode: h.flags.rcode,
        tc: h.flags.tc,
        aa: h.flags.aa,
        qname,
        qtype,
        answer,
        ecs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query(ecs: Option<WireEcs>) -> WireQuery {
        WireQuery {
            id: 0x1234,
            rd: true,
            qname: DnsName::new("www.cdn.example").unwrap(),
            qtype: TYPE_A,
            qclass: CLASS_IN,
            edns: Some(Edns {
                udp_payload: 1232,
                ecs,
            }),
        }
    }

    #[test]
    fn query_round_trips_without_edns() {
        let q = WireQuery {
            edns: None,
            ..sample_query(None)
        };
        assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
    }

    #[test]
    fn query_round_trips_with_ecs() {
        let q = sample_query(Some(WireEcs {
            addr: Ipv4Addr::new(198, 51, 100, 0),
            source_prefix_len: 24,
            scope_prefix_len: 0,
        }));
        assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
    }

    #[test]
    fn ecs_address_bits_beyond_prefix_are_masked() {
        let q = sample_query(Some(WireEcs {
            addr: Ipv4Addr::new(198, 51, 100, 0),
            source_prefix_len: 16,
            scope_prefix_len: 0,
        }));
        let got = decode_query(&encode_query(&q)).unwrap();
        let ecs = got.edns.unwrap().ecs.unwrap();
        assert_eq!(ecs.addr, Ipv4Addr::new(198, 51, 0, 0));
        assert_eq!(ecs.source_prefix_len, 16);
    }

    #[test]
    fn ecs_round_trips_at_every_source_prefix_len() {
        let client = Ipv4Addr::new(198, 51, 100, 129);
        for spl in [0u8, 8, 16, 20, 24, 32] {
            let q = sample_query(Some(WireEcs {
                addr: mask_addr(client, spl),
                source_prefix_len: spl,
                scope_prefix_len: 0,
            }));
            let got = decode_query(&encode_query(&q)).unwrap();
            assert_eq!(got, q, "spl {spl}");
            // The simulator option must preserve the disclosed length
            // bit-for-bit (0 means "no subnet").
            let opt = got.edns.unwrap().ecs.unwrap().to_option();
            if spl == 0 {
                assert!(opt.is_none());
                continue;
            }
            let opt = opt.unwrap();
            assert_eq!(opt.prefix.len(), spl, "length survives decode");
            assert_eq!(opt.prefix.network(), mask_addr(client, spl));
            let back = WireEcs::from_option(&opt);
            assert_eq!(
                (back.addr, back.source_prefix_len),
                (mask_addr(client, spl), spl)
            );
        }
    }

    #[test]
    fn zero_source_prefix_maps_to_no_option() {
        let e = WireEcs {
            addr: Ipv4Addr::UNSPECIFIED,
            source_prefix_len: 0,
            scope_prefix_len: 0,
        };
        assert_eq!(e.to_option(), None);
    }

    #[test]
    fn response_carries_answer_and_scoped_ecs() {
        let q = sample_query(Some(WireEcs {
            addr: Ipv4Addr::new(198, 51, 100, 0),
            source_prefix_len: 24,
            scope_prefix_len: 0,
        }));
        let a = DnsAnswer::scoped(Ipv4Addr::new(192, 0, 2, 7), 300, 24);
        let wire = encode_response(&q, Some(&a), 0, 1232);
        let r = decode_response(&wire).unwrap();
        assert_eq!(r.id, q.id);
        assert!(r.aa && !r.tc);
        assert_eq!(r.rcode, 0);
        assert_eq!(r.answer, Some((a.addr, a.ttl_s)));
        let ecs = r.ecs.unwrap();
        assert_eq!(ecs.addr, Ipv4Addr::new(198, 51, 100, 0));
        assert_eq!(ecs.source_prefix_len, 24);
        assert_eq!(ecs.scope_prefix_len, 24);
    }

    #[test]
    fn response_without_query_ecs_carries_no_ecs() {
        let q = sample_query(None);
        let a = DnsAnswer::global(Ipv4Addr::new(192, 0, 2, 7), 300);
        let r = decode_response(&encode_response(&q, Some(&a), 0, 1232)).unwrap();
        assert_eq!(r.answer, Some((a.addr, a.ttl_s)));
        assert_eq!(r.ecs, None);
    }

    #[test]
    fn oversized_response_is_truncated_with_tc() {
        let q = sample_query(Some(WireEcs {
            addr: Ipv4Addr::new(198, 51, 100, 0),
            source_prefix_len: 24,
            scope_prefix_len: 0,
        }));
        let a = DnsAnswer::global(Ipv4Addr::new(192, 0, 2, 7), 300);
        // Far too small for the answer, but big enough for question + OPT.
        let wire = encode_response(&q, Some(&a), 0, 60);
        assert!(wire.len() <= 60);
        let r = decode_response(&wire).unwrap();
        assert!(r.tc);
        assert_eq!(r.answer, None);
        assert!(
            r.ecs.is_some(),
            "OPT should survive truncation when it fits"
        );
    }

    #[test]
    fn empty_answer_response_round_trips() {
        let q = sample_query(None);
        let r = decode_response(&encode_response(&q, None, 3, 1232)).unwrap();
        assert_eq!(r.rcode, 3);
        assert_eq!(r.answer, None);
    }

    #[test]
    fn duplicate_opt_records_are_rejected() {
        let q = sample_query(None);
        let mut wire = encode_query(&q);
        // Append a second OPT record and bump ARCOUNT to 2.
        write_opt_record(&mut wire, &Edns::plain(512));
        wire[11] = 2;
        assert_eq!(decode_query(&wire), Err(WireError::BadOpt));
    }

    #[test]
    fn unknown_edns_options_are_skipped() {
        let q = sample_query(None);
        let mut wire = encode_query(&q);
        // Rewrite the OPT RDATA to carry an unknown option (code 0xFFFE).
        let rdlen_at = wire.len() - 2;
        wire[rdlen_at..].copy_from_slice(&8u16.to_be_bytes());
        wire.extend_from_slice(&0xFFFEu16.to_be_bytes());
        wire.extend_from_slice(&4u16.to_be_bytes());
        wire.extend_from_slice(&[1, 2, 3, 4]);
        let got = decode_query(&wire).unwrap();
        assert_eq!(got.edns.unwrap().ecs, None);
    }

    fn chaos_query() -> WireQuery {
        WireQuery {
            id: 0x77AA,
            rd: false,
            qname: DnsName::new(CHAOS_METRICS_QNAME).unwrap(),
            qtype: TYPE_TXT,
            qclass: CLASS_CHAOS,
            edns: None,
        }
    }

    #[test]
    fn chaos_txt_round_trips_multi_chunk_payload() {
        // Over 255 bytes forces multiple character-string chunks.
        let text: String = (0..40).map(|i| format!("metric_{i}_total {i}\n")).collect();
        assert!(text.len() > 255);
        let q = chaos_query();
        let wire = encode_chaos_txt(&q, &text, 65535, true);
        let got = decode_chaos_txt(&wire).unwrap();
        assert_eq!(got.id, q.id);
        assert!(!got.tc);
        assert_eq!(got.rcode, 0);
        assert_eq!(got.text, text);
    }

    #[test]
    fn chaos_txt_over_udp_truncates_instead_of_trimming() {
        let text = "a_total 1\n".repeat(200);
        let wire = encode_chaos_txt(&chaos_query(), &text, 512, false);
        assert!(wire.len() <= 512);
        let got = decode_chaos_txt(&wire).unwrap();
        assert!(got.tc, "oversize UDP scrape must set TC");
        assert_eq!(got.text, "");
    }

    #[test]
    fn chaos_txt_over_tcp_trims_at_a_line_boundary() {
        let text = "some_metric_total 123\n".repeat(5000);
        let cap = 4096;
        let wire = encode_chaos_txt(&chaos_query(), &text, cap, true);
        assert!(wire.len() <= cap);
        let got = decode_chaos_txt(&wire).unwrap();
        assert!(!got.tc);
        assert!(!got.text.is_empty());
        assert!(got.text.ends_with('\n'), "trim must land on a line end");
        assert!(text.starts_with(&got.text));
    }

    #[test]
    fn chaos_txt_empty_payload_is_one_empty_string() {
        let wire = encode_chaos_txt(&chaos_query(), "", 512, false);
        let got = decode_chaos_txt(&wire).unwrap();
        assert!(!got.tc);
        assert_eq!(got.text, "");
    }
}
