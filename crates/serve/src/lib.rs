//! Wire-speed serving plane for the §6 prediction-based redirection
//! system: a real authoritative DNS front door for the simulator's
//! policies.
//!
//! The paper's CDN answers billions of real DNS queries; everything else
//! in this workspace exercises redirection policies through in-process
//! calls. This crate closes that gap with zero external dependencies:
//!
//! * [`wire`] / [`message`] — an in-house RFC 1035 codec (header, question,
//!   answer, name compression) plus EDNS0/RFC 7871 client-subnet options,
//!   bridging [`anycast_dns::DnsAnswer`] and [`anycast_dns::QueryContext`]
//!   onto real packets;
//! * [`store`] — trained prediction tables compiled into immutable lookup
//!   structures (a longest-prefix-match trie for ECS groups, sorted
//!   arrays for LDNS groups), hot-swapped atomically while the server
//!   runs;
//! * [`mmsg`] / [`template`] — the million-QPS hot path: batched UDP I/O
//!   via raw `recvmmsg`/`sendmmsg` syscalls (libc-free, with a portable
//!   one-packet fallback behind the same trait), preallocated per-shard
//!   packet arenas, and zero-alloc templated answers patched straight
//!   into send buffers;
//! * [`server`] — a sharded UDP listener (thread-per-worker over cloned
//!   sockets, emulating an SO_REUSEPORT worker set) with a TCP fallback
//!   path for truncated responses and an overload valve that degrades to
//!   the anycast VIP under sustained full batches — the serving-plane
//!   analogue of the paper's "anycast is the safe default" conclusion;
//! * [`client`] / [`replay`] — a loopback wire client and a deterministic
//!   day-of-queries generator used by the equivalence tests and the
//!   `figures serve-bench` load generator.
//!
//! Observability follows the workspace obs-neutrality contract: counters
//! and histograms record what happened, and never influence an answer.

// `deny`, not `forbid`: the raw `recvmmsg`/`sendmmsg` syscall shims in
// [`mmsg`] opt back in with an explicit scoped `allow` — the only unsafe
// in the workspace, confined to one audited module.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod message;
pub mod mmsg;
pub mod replay;
pub mod server;
pub mod store;
pub mod template;
pub mod wire;

pub use client::{ServedAnswer, WireClient};
pub use message::{
    decode_chaos_txt, decode_query, decode_response, encode_chaos_txt, encode_query,
    encode_response,
};
pub use message::{ChaosText, Edns, WireEcs, WireQuery, WireResponse, CHAOS_METRICS_QNAME};
pub use mmsg::{batch_io, BatchIo, PacketArena};
pub use replay::{day_queries, day_query_plan, ldns_directory, ldns_source_addr, QuerySpec};
pub use server::{DnsServer, LdnsDirectory, ServeConfig, ServeStats};
pub use store::{CompiledTable, PrefixTrie, TableStore};
pub use template::{AnswerRr, QueryView};
pub use wire::WireError;
