//! Deterministic day-of-queries generation for the wire path.
//!
//! The loopback tests and `figures serve-bench` need a realistic query
//! stream: which resolver asks, how often, and whether it attaches ECS.
//! Everything here is derived arithmetically from the [`Scenario`] — no
//! RNG — so the same scenario always produces the same query list, and
//! the wire-equivalence test can compare byte-for-byte against the
//! in-process path.

use std::net::Ipv4Addr;

use anycast_dns::ecs::EcsOption;
use anycast_dns::{DnsName, LdnsId};
use anycast_netsim::Day;
use anycast_workload::ldns_assign::believed_ldns_location;
use anycast_workload::temporal::day_volume_factor;
use anycast_workload::Scenario;

use crate::server::LdnsDirectory;

/// Queries per /24 per day that actually reach the authoritative server.
/// LDNS caches absorb the rest (§2: the authoritative sees one query per
/// TTL per resolver, not one per client request).
const AUTH_QUERY_DIVISOR: f64 = 64.0;

/// One query to put on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Name to ask for.
    pub qname: DnsName,
    /// Resolver forwarding the query (decides the source address).
    pub ldns: LdnsId,
    /// Client subnet, when the resolver supports ECS.
    pub ecs: Option<EcsOption>,
}

/// The zone's service name, shared by all generated queries.
pub fn service_qname() -> DnsName {
    DnsName::new("www.cdn.example").expect("static name is valid")
}

/// Deterministic loopback source address for a resolver: `127.x.y.z`
/// carved from the id, never colliding with `127.0.0.1`.
///
/// # Panics
/// Panics if the id does not fit the `127.1.0.0`–`127.255.255.255` space
/// (16.7M resolvers — far beyond any scenario).
pub fn ldns_source_addr(ldns: LdnsId) -> Ipv4Addr {
    let id = ldns.0;
    let second = 1 + (id >> 16);
    assert!(second <= 255, "LDNS id {id} exceeds the loopback space");
    Ipv4Addr::new(127, second as u8, (id >> 8) as u8, id as u8)
}

/// Builds the server's source-address directory for a scenario: every
/// resolver keyed by its [`ldns_source_addr`], located where the CDN's
/// geolocation database *believes* it is — the same location the
/// in-process path hands to policies.
pub fn ldns_directory(scenario: &Scenario) -> LdnsDirectory {
    let mut dir = LdnsDirectory::new();
    for r in &scenario.ldns.resolvers {
        dir.insert(
            ldns_source_addr(r.id),
            r.id,
            believed_ldns_location(r, &scenario.geodb),
        );
    }
    dir
}

/// Generates up to `cap` authoritative queries for one simulated day.
///
/// Per-client demand is `volume × day factor ÷ `[`AUTH_QUERY_DIVISOR`],
/// at least 1. Queries are emitted in round-robin passes over the client
/// population (pass `p` includes every client with demand `> p`), so load
/// interleaves across resolvers the way arrivals do, instead of draining
/// one client at a time. ECS rides along exactly when the client's
/// resolver supports it.
pub fn day_queries(scenario: &Scenario, day: Day, cap: usize) -> Vec<QuerySpec> {
    day_query_plan(scenario, day, cap)
        .into_iter()
        .map(|(_, q)| q)
        .collect()
}

/// Like [`day_queries`], but each query carries the index into
/// `scenario.clients` of the client whose demand produced it. The control
/// plane uses the indices to attribute each query's load to a client
/// group (and to the client's anycast catchment) without re-deriving the
/// round-robin schedule.
pub fn day_query_plan(scenario: &Scenario, day: Day, cap: usize) -> Vec<(usize, QuerySpec)> {
    let qname = service_qname();
    let factor = day_volume_factor(day);
    let demand: Vec<u64> = scenario
        .clients
        .iter()
        .map(|c| ((c.volume as f64 * factor / AUTH_QUERY_DIVISOR).round() as u64).max(1))
        .collect();
    let max_demand = demand.iter().copied().max().unwrap_or(0);
    let mut out = Vec::with_capacity(cap.min(demand.iter().sum::<u64>() as usize));
    'passes: for pass in 0..max_demand {
        for (ci, (client, &n)) in scenario.clients.iter().zip(&demand).enumerate() {
            if pass >= n {
                continue;
            }
            if out.len() >= cap {
                break 'passes;
            }
            let ldns = scenario.ldns.resolver_of(client.prefix);
            let resolver = scenario.ldns.resolver(ldns);
            // ECS rides along at the resolver's own disclosure length — a
            // privacy-truncating resolver sends a coarser subnet than /24.
            let ecs = resolver.supports_ecs.then(|| {
                EcsOption::for_subnet(
                    anycast_netsim::Prefix::from(client.prefix).truncate(resolver.ecs_prefix_len),
                )
            });
            out.push((
                ci,
                QuerySpec {
                    qname: qname.clone(),
                    ldns,
                    ecs,
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_workload::Scenario;

    fn small_scenario() -> Scenario {
        Scenario::small(11)
    }

    #[test]
    fn source_addresses_are_unique_and_safe() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..5000u32 {
            let a = ldns_source_addr(LdnsId(id));
            assert!(a.octets()[0] == 127 && a.octets()[1] >= 1);
            assert_ne!(a, Ipv4Addr::new(127, 0, 0, 1));
            assert!(seen.insert(a), "collision at id {id}");
        }
    }

    #[test]
    fn day_queries_are_deterministic_and_capped() {
        let s = small_scenario();
        let a = day_queries(&s, Day(0), 500);
        let b = day_queries(&s, Day(0), 500);
        assert_eq!(a, b, "same scenario + day must replay identically");
        assert_eq!(a.len(), 500);
        // ECS flags agree with the resolver capability.
        for q in &a {
            assert_eq!(q.ecs.is_some(), s.ldns.resolver(q.ldns).supports_ecs);
        }
    }

    #[test]
    fn weekend_days_generate_less_demand() {
        let s = small_scenario();
        // Uncapped totals: find a weekday/weekend pair.
        let weekday: usize = day_queries(&s, Day(0), usize::MAX).len();
        let weekend = (0..7)
            .map(Day)
            .find(|d| d.weekday().is_weekend())
            .expect("a week has a weekend");
        let weekend_n = day_queries(&s, weekend, usize::MAX).len();
        assert!(weekend_n <= weekday, "{weekend_n} > {weekday}");
    }

    #[test]
    fn directory_covers_every_resolver() {
        let s = small_scenario();
        let dir = ldns_directory(&s);
        assert_eq!(dir.len(), s.ldns.resolvers.len());
        for r in &s.ldns.resolvers {
            let (id, _) = dir.lookup(ldns_source_addr(r.id)).expect("registered");
            assert_eq!(id, r.id);
        }
    }
}
