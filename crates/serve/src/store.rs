//! Hot-reloadable prediction-table store.
//!
//! The §6 predictor retrains once per prediction interval (a day in the
//! paper); the serving plane must pick the new table up without dropping
//! queries. [`CompiledTable`] freezes one trained
//! [`PredictionTable`] into an immutable, cache-friendly lookup structure
//! (sorted arrays + binary search — no hashing, no locking on the read
//! path), and [`TableStore`] swaps whole tables atomically under a brief
//! write lock. Workers clone an `Arc` per query, so a swap never blocks a
//! lookup in flight and an old table stays alive until its last in-flight
//! query completes.
//!
//! [`CompiledTable::answer`] is contractually byte-identical to
//! [`anycast_core::redirection::PredictionPolicy`] — the loopback
//! equivalence test pins `(addr, ttl_s, ecs_scope)` for a full simulated
//! day of queries.

use std::net::Ipv4Addr;
use std::sync::{Arc, RwLock};

use anycast_beacon::Target;
use anycast_core::prediction::{GroupKey, Grouping, PredictionTable};
use anycast_dns::ecs::EcsOption;
use anycast_dns::{DnsAnswer, LdnsId, QueryContext, RedirectionPolicy};
use anycast_netsim::CdnAddressing;
use anycast_obs::counter;

/// One trained table compiled for serving: immutable, binary-searchable.
#[derive(Debug, Clone)]
pub struct CompiledTable {
    grouping: Grouping,
    /// ECS groups: `(raw /24 prefix, answer address)`, sorted by prefix.
    by_prefix: Vec<(u32, Ipv4Addr)>,
    /// LDNS groups: `(resolver id, answer address)`, sorted by id.
    by_ldns: Vec<(u32, Ipv4Addr)>,
    addressing: CdnAddressing,
    ttl_s: u32,
    generation: u64,
}

impl CompiledTable {
    /// Compiles a trained table. `generation` is an operator-chosen
    /// monotonic tag (e.g. the training day) surfaced for observability.
    pub fn compile(
        table: &PredictionTable,
        grouping: Grouping,
        addressing: CdnAddressing,
        ttl_s: u32,
        generation: u64,
    ) -> CompiledTable {
        CompiledTable::compile_with_overrides(
            table,
            &std::collections::BTreeMap::new(),
            grouping,
            addressing,
            ttl_s,
            generation,
        )
    }

    /// Compiles a trained table with per-group assignment overrides — the
    /// control plane's rewrite path. Groups present in `overrides` serve
    /// the overridden target instead of the table's own choice; all other
    /// groups compile exactly as [`CompiledTable::compile`] would.
    /// Overrides for groups the table does not know are ignored (a group
    /// without training evidence is never steered).
    pub fn compile_with_overrides(
        table: &PredictionTable,
        overrides: &std::collections::BTreeMap<GroupKey, Target>,
        grouping: Grouping,
        addressing: CdnAddressing,
        ttl_s: u32,
        generation: u64,
    ) -> CompiledTable {
        let mut by_prefix = Vec::new();
        let mut by_ldns = Vec::new();
        for (key, choice) in table.iter() {
            let target = overrides.get(&key).copied().unwrap_or(choice.target);
            let addr = match target {
                Target::Anycast => addressing.anycast_ip(),
                Target::Unicast(site) => addressing.site_ip(site),
            };
            match key {
                GroupKey::Ecs(p) => by_prefix.push((p.raw(), addr)),
                GroupKey::Ldns(l) => by_ldns.push((l.0, addr)),
            }
        }
        by_prefix.sort_unstable_by_key(|&(k, _)| k);
        by_ldns.sort_unstable_by_key(|&(k, _)| k);
        CompiledTable {
            grouping,
            by_prefix,
            by_ldns,
            addressing,
            ttl_s,
            generation,
        }
    }

    /// An empty table that answers the anycast VIP for everyone — the
    /// cold-start state before the first training run lands.
    pub fn empty(grouping: Grouping, addressing: CdnAddressing, ttl_s: u32) -> CompiledTable {
        CompiledTable {
            grouping,
            by_prefix: Vec::new(),
            by_ldns: Vec::new(),
            addressing,
            ttl_s,
            generation: 0,
        }
    }

    /// This table's generation tag.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of redirectable groups.
    pub fn len(&self) -> usize {
        self.by_prefix.len() + self.by_ldns.len()
    }

    /// Whether the table holds no groups at all.
    pub fn is_empty(&self) -> bool {
        self.by_prefix.is_empty() && self.by_ldns.is_empty()
    }

    /// The answer TTL this table serves.
    pub fn ttl_s(&self) -> u32 {
        self.ttl_s
    }

    /// The addressing plan (for the degraded-path VIP).
    pub fn addressing(&self) -> &CdnAddressing {
        &self.addressing
    }

    /// Decides the answer for a query from `ldns` carrying `ecs`.
    ///
    /// Mirrors `PredictionPolicy::answer` exactly: group by the table's
    /// own granularity, fall back to the anycast VIP on a miss, and derive
    /// the ECS scope from the key granularity ([`Grouping::answer_scope`]).
    pub fn answer(&self, ldns: LdnsId, ecs: Option<&EcsOption>) -> DnsAnswer {
        let hit = match self.grouping {
            Grouping::Ecs => ecs.and_then(|e| {
                let raw = e.prefix.raw();
                self.by_prefix
                    .binary_search_by_key(&raw, |&(k, _)| k)
                    .ok()
                    .map(|i| self.by_prefix[i].1)
            }),
            Grouping::Ldns => self
                .by_ldns
                .binary_search_by_key(&ldns.0, |&(k, _)| k)
                .ok()
                .map(|i| self.by_ldns[i].1),
        };
        let addr = hit.unwrap_or_else(|| self.addressing.anycast_ip());
        DnsAnswer::scoped(addr, self.ttl_s, self.grouping.answer_scope(ecs.is_some()))
    }
}

impl RedirectionPolicy for CompiledTable {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        CompiledTable::answer(self, query.ldns, query.ecs.as_ref())
    }
}

/// Atomically swappable holder of the live [`CompiledTable`].
///
/// Readers take the read lock just long enough to clone an `Arc`;
/// [`TableStore::swap`] installs a new table under the write lock. Install
/// it on a server as `Arc<TableStore>` (which implements
/// [`RedirectionPolicy`] through the blanket `Arc` impl) and keep a second
/// `Arc` handle to swap tables while the server runs.
#[derive(Debug)]
pub struct TableStore {
    current: RwLock<Arc<CompiledTable>>,
}

impl TableStore {
    /// Creates the store with an initial table.
    pub fn new(initial: CompiledTable) -> TableStore {
        TableStore {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The live table (cheap `Arc` clone).
    pub fn load(&self) -> Arc<CompiledTable> {
        self.current.read().expect("table lock poisoned").clone()
    }

    /// Atomically replaces the live table, returning the old one.
    pub fn swap(&self, next: CompiledTable) -> Arc<CompiledTable> {
        counter!("serve_table_swaps_total").inc();
        let next = Arc::new(next);
        let mut slot = self.current.write().expect("table lock poisoned");
        std::mem::replace(&mut *slot, next)
    }
}

impl RedirectionPolicy for TableStore {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        CompiledTable::answer(&self.load(), query.ldns, query.ecs.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dns::DnsName;
    use anycast_geo::GeoPoint;
    use anycast_netsim::{Day, Prefix24, SiteId};

    fn plan() -> CdnAddressing {
        CdnAddressing::standard(8)
    }

    fn ecs(n: u8) -> EcsOption {
        EcsOption::for_prefix(Prefix24::containing(Ipv4Addr::new(10, 0, n, 1)))
    }

    #[test]
    fn empty_table_answers_anycast() {
        let t = CompiledTable::empty(Grouping::Ecs, plan(), 60);
        assert!(t.is_empty());
        let a = t.answer(LdnsId(0), Some(&ecs(1)));
        assert!(plan().is_anycast(a.addr));
        assert_eq!((a.ttl_s, a.ecs_scope), (60, 24));
        let b = t.answer(LdnsId(0), None);
        assert_eq!(b.ecs_scope, 0);
    }

    #[test]
    fn overrides_rewrite_known_groups_and_ignore_unknown_ones() {
        use anycast_beacon::{BeaconDataset, BeaconMeasurement, Slot, Target};
        use anycast_core::prediction::{Predictor, PredictorConfig};

        // Train a tiny LDNS-keyed table where resolvers 0 and 1 both
        // prefer unicast site 0 over anycast.
        let mut ds = BeaconDataset::new();
        let mut exec = 0u64;
        for ldns in [LdnsId(0), LdnsId(1)] {
            for (target, rtt) in [(Target::Anycast, 90.0), (Target::Unicast(SiteId(0)), 40.0)] {
                for _ in 0..25 {
                    ds.extend([BeaconMeasurement {
                        measurement_id: match target {
                            Target::Anycast => Slot::Anycast.id_for(exec),
                            Target::Unicast(_) => Slot::GeoClosest.id_for(exec),
                        },
                        slot: Slot::Anycast,
                        prefix: Prefix24::containing(Ipv4Addr::new(10, 0, ldns.0 as u8, 1)),
                        ldns,
                        ecs: None,
                        target,
                        served_site: SiteId(0),
                        rtt_ms: rtt,
                        failed: false,
                        day: Day(0),
                        time_s: 0.0,
                    }]);
                    exec += 1;
                }
            }
        }
        let cfg = PredictorConfig {
            grouping: Grouping::Ldns,
            ..PredictorConfig::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));

        let mut overrides = std::collections::BTreeMap::new();
        // Steer resolver 0 somewhere else; resolver 99 has no training
        // evidence, so its override must be dropped on the floor.
        overrides.insert(GroupKey::Ldns(LdnsId(0)), Target::Unicast(SiteId(3)));
        overrides.insert(GroupKey::Ldns(LdnsId(99)), Target::Unicast(SiteId(5)));
        let rewritten = CompiledTable::compile_with_overrides(
            &table,
            &overrides,
            Grouping::Ldns,
            plan(),
            60,
            2,
        );
        let baseline = CompiledTable::compile(&table, Grouping::Ldns, plan(), 60, 2);

        assert_eq!(
            rewritten.len(),
            baseline.len(),
            "overrides never add groups"
        );
        let site_of =
            |t: &CompiledTable, id: u32| plan().site_for_ip(t.answer(LdnsId(id), None).addr);
        assert_eq!(site_of(&rewritten, 0), Some(SiteId(3)), "override applied");
        assert_eq!(
            site_of(&rewritten, 1),
            site_of(&baseline, 1),
            "untouched group unchanged"
        );
        // Unknown group: both tables miss and fall back to the VIP.
        assert!(plan().is_anycast(rewritten.answer(LdnsId(99), None).addr));
        // An empty override map is the identity.
        let id = CompiledTable::compile_with_overrides(
            &table,
            &std::collections::BTreeMap::new(),
            Grouping::Ldns,
            plan(),
            60,
            2,
        );
        for ldns in [0u32, 1, 99] {
            assert_eq!(
                id.answer(LdnsId(ldns), None).addr,
                baseline.answer(LdnsId(ldns), None).addr
            );
        }
    }

    #[test]
    fn swap_changes_answers_without_restart() {
        let store = TableStore::new(CompiledTable::empty(Grouping::Ldns, plan(), 60));
        let qname = DnsName::new("www.cdn.example").unwrap();
        let q = QueryContext {
            qname: &qname,
            ldns: LdnsId(7),
            ldns_location: GeoPoint::new(0.0, 0.0),
            ecs: None,
            day: Day(0),
            time_s: 0.0,
        };
        assert!(plan().is_anycast(RedirectionPolicy::answer(&store, &q).addr));
        // Hand-build a one-entry LDNS table by compiling through the
        // public surface: an empty PredictionTable has no entries, so
        // patch via the sorted-array representation directly.
        let mut t = CompiledTable::empty(Grouping::Ldns, plan(), 60);
        t.by_ldns.push((7, plan().site_ip(SiteId(3))));
        t.generation = 1;
        let old = store.swap(t);
        assert_eq!(old.generation(), 0);
        let a = RedirectionPolicy::answer(&store, &q);
        assert_eq!(plan().site_for_ip(a.addr), Some(SiteId(3)));
        assert_eq!(store.load().generation(), 1);
    }
}
