//! Hot-reloadable prediction-table store.
//!
//! The §6 predictor retrains once per prediction interval (a day in the
//! paper); the serving plane must pick the new table up without dropping
//! queries. [`CompiledTable`] freezes one trained
//! [`PredictionTable`] into an immutable, cache-friendly lookup structure
//! (a binary longest-prefix-match trie for ECS groups, a sorted array for
//! LDNS groups — no hashing, no locking on the read path), and
//! [`TableStore`] swaps whole tables atomically under a brief write lock.
//! Workers clone an `Arc` per query, so a swap never blocks a lookup in
//! flight and an old table stays alive until its last in-flight query
//! completes.
//!
//! [`CompiledTable::answer`] is contractually byte-identical to
//! [`anycast_core::redirection::PredictionPolicy`] — the loopback
//! equivalence test pins `(addr, ttl_s, ecs_scope)` for a full simulated
//! day of queries.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, RwLock};

use anycast_beacon::Target;
use anycast_core::prediction::{GroupKey, Grouping, PredictionTable};
use anycast_dns::ecs::EcsOption;
use anycast_dns::{DnsAnswer, LdnsId, QueryContext, RedirectionPolicy};
use anycast_netsim::{CdnAddressing, Prefix};
use anycast_obs::counter;

use crate::template::AnswerRr;

/// A compiled binary longest-prefix-match trie over IPv4 prefixes: one
/// node per bit of depth, values at the depths where entries live.
///
/// This is the serving-plane shape of a routing-aware ECS table: a query
/// subnet matches the most specific entry covering it, and the matched
/// depth *is* the RFC 7871 scope the answer advertises. Lookup cost is
/// bounded by the query's own SOURCE PREFIX-LENGTH — entries deeper than
/// what the query disclosed are never matched.
///
/// Generic over the stored value (`Copy`): the serving table stores
/// template indices, tests and tools store addresses directly.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V = Ipv4Addr> {
    nodes: Vec<TrieNode<V>>,
    entries: usize,
}

#[derive(Debug, Clone, Copy)]
struct TrieNode<V> {
    /// Child node indexes for bit 0 / bit 1; 0 means "no child" (the root
    /// is never anyone's child).
    children: [u32; 2],
    value: Option<V>,
}

impl<V: Copy> TrieNode<V> {
    const EMPTY: TrieNode<V> = TrieNode {
        children: [0, 0],
        value: None,
    };
}

impl<V: Copy> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> PrefixTrie<V> {
        PrefixTrie {
            nodes: vec![TrieNode::EMPTY],
            entries: 0,
        }
    }

    /// Number of entries (prefixes with a value).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts `prefix → value`, replacing any existing value at exactly
    /// that prefix.
    pub fn insert(&mut self, prefix: Prefix, value: V) {
        let bits = prefix.raw();
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = usize::from((bits >> (31 - depth)) & 1 == 1);
            let child = self.nodes[node].children[bit];
            node = if child == 0 {
                self.nodes.push(TrieNode::EMPTY);
                let idx = self.nodes.len() - 1;
                self.nodes[node].children[bit] = idx as u32;
                idx
            } else {
                child as usize
            };
        }
        if self.nodes[node].value.is_none() {
            self.entries += 1;
        }
        self.nodes[node].value = Some(value);
    }

    /// Longest-prefix match for `addr`, considering only entries no more
    /// specific than `max_len` bits (the query's SOURCE PREFIX-LENGTH).
    /// Returns the value and the matched entry's prefix length.
    pub fn lookup(&self, addr: Ipv4Addr, max_len: u8) -> Option<(V, u8)> {
        let bits = u32::from(addr);
        let max_len = max_len.min(32);
        let mut node = 0usize;
        let mut best = None;
        let mut depth = 0u8;
        loop {
            if let Some(v) = self.nodes[node].value {
                best = Some((v, depth));
            }
            if depth >= max_len {
                return best;
            }
            let bit = usize::from((bits >> (31 - depth)) & 1 == 1);
            let child = self.nodes[node].children[bit];
            if child == 0 {
                return best;
            }
            node = child as usize;
            depth += 1;
        }
    }
}

impl<V: Copy> Default for PrefixTrie<V> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

/// One trained table compiled for serving: immutable, cache-friendly.
///
/// Answers are interned as pre-encoded [`AnswerRr`] templates at compile
/// time — one 16-byte baked record per distinct answer address, with
/// index 0 reserved for the anycast-VIP miss/valve answer — so the UDP
/// fast path patches table bytes straight into its send buffer without
/// constructing a [`DnsAnswer`] or running the encoder.
#[derive(Debug, Clone)]
pub struct CompiledTable {
    grouping: Grouping,
    /// ECS groups, longest-prefix-matchable (variable-length prefixes:
    /// aggregation defaults plus their exceptions). Values index
    /// `templates`.
    by_prefix: PrefixTrie<u32>,
    /// LDNS groups: `(resolver id, template index)`, sorted by id.
    by_ldns: Vec<(u32, u32)>,
    /// Interned pre-encoded answers; `templates[0]` is the anycast VIP.
    templates: Vec<AnswerRr>,
    addressing: CdnAddressing,
    ttl_s: u32,
    generation: u64,
}

impl CompiledTable {
    /// Compiles a trained table. `generation` is an operator-chosen
    /// monotonic tag (e.g. the training day) surfaced for observability.
    pub fn compile(
        table: &PredictionTable,
        grouping: Grouping,
        addressing: CdnAddressing,
        ttl_s: u32,
        generation: u64,
    ) -> CompiledTable {
        CompiledTable::compile_with_overrides(
            table,
            &std::collections::BTreeMap::new(),
            grouping,
            addressing,
            ttl_s,
            generation,
        )
    }

    /// Compiles a trained table with per-group assignment overrides — the
    /// control plane's rewrite path. Groups present in `overrides` serve
    /// the overridden target instead of the table's own choice; all other
    /// groups compile exactly as [`CompiledTable::compile`] would.
    /// Overrides for groups the table does not know are ignored (a group
    /// without training evidence is never steered).
    pub fn compile_with_overrides(
        table: &PredictionTable,
        overrides: &std::collections::BTreeMap<GroupKey, Target>,
        grouping: Grouping,
        addressing: CdnAddressing,
        ttl_s: u32,
        generation: u64,
    ) -> CompiledTable {
        // Intern one baked template per distinct answer address; index 0
        // is always the anycast VIP so misses and the overload valve can
        // share it.
        let mut templates = vec![AnswerRr::new(addressing.anycast_ip(), ttl_s)];
        let mut interned: HashMap<Ipv4Addr, u32> = HashMap::new();
        interned.insert(addressing.anycast_ip(), 0);
        let mut ecs_entries: Vec<(Prefix, u32)> = Vec::new();
        let mut by_ldns = Vec::new();
        for (key, choice) in table.iter() {
            let target = overrides.get(&key).copied().unwrap_or(choice.target);
            let addr = match target {
                Target::Anycast => addressing.anycast_ip(),
                Target::Unicast(site) => addressing.site_ip(site),
            };
            let idx = *interned.entry(addr).or_insert_with(|| {
                templates.push(AnswerRr::new(addr, ttl_s));
                (templates.len() - 1) as u32
            });
            match key {
                GroupKey::Ecs(p) => ecs_entries.push((p, idx)),
                GroupKey::Ldns(l) => by_ldns.push((l.0, idx)),
            }
        }
        ecs_entries.sort_unstable_by_key(|&(p, _)| p.key());
        let mut by_prefix = PrefixTrie::new();
        for (p, idx) in ecs_entries {
            by_prefix.insert(p, idx);
        }
        by_ldns.sort_unstable_by_key(|&(k, _)| k);
        CompiledTable {
            grouping,
            by_prefix,
            by_ldns,
            templates,
            addressing,
            ttl_s,
            generation,
        }
    }

    /// An empty table that answers the anycast VIP for everyone — the
    /// cold-start state before the first training run lands.
    pub fn empty(grouping: Grouping, addressing: CdnAddressing, ttl_s: u32) -> CompiledTable {
        CompiledTable {
            grouping,
            by_prefix: PrefixTrie::new(),
            by_ldns: Vec::new(),
            templates: vec![AnswerRr::new(addressing.anycast_ip(), ttl_s)],
            addressing,
            ttl_s,
            generation: 0,
        }
    }

    /// This table's generation tag.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of redirectable groups (trie entries plus LDNS entries).
    pub fn len(&self) -> usize {
        self.by_prefix.entries() + self.by_ldns.len()
    }

    /// Whether the table holds no groups at all.
    pub fn is_empty(&self) -> bool {
        self.by_prefix.is_empty() && self.by_ldns.is_empty()
    }

    /// The answer TTL this table serves.
    pub fn ttl_s(&self) -> u32 {
        self.ttl_s
    }

    /// The addressing plan (for the degraded-path VIP).
    pub fn addressing(&self) -> &CdnAddressing {
        &self.addressing
    }

    /// The fast-path lookup: the baked answer template for a query from
    /// `ldns` carrying `ecs`, plus the ECS scope to advertise. Misses
    /// resolve to `templates[0]`, the anycast VIP. No allocation.
    pub fn answer_rr(&self, ldns: LdnsId, ecs: Option<&EcsOption>) -> (&AnswerRr, u8) {
        let (idx, matched_len) = match self.grouping {
            Grouping::Ecs => {
                match ecs.and_then(|e| self.by_prefix.lookup(e.prefix.network(), e.prefix.len())) {
                    Some((idx, len)) => (idx, Some(len)),
                    None => (0, None),
                }
            }
            Grouping::Ldns => (
                self.by_ldns
                    .binary_search_by_key(&ldns.0, |&(k, _)| k)
                    .ok()
                    .map(|i| self.by_ldns[i].1)
                    .unwrap_or(0),
                None,
            ),
        };
        (
            &self.templates[idx as usize],
            self.grouping.answer_scope(matched_len),
        )
    }

    /// The baked valve answer: the anycast VIP at this table's TTL.
    pub fn valve_rr(&self) -> &AnswerRr {
        &self.templates[0]
    }

    /// Decides the answer for a query from `ldns` carrying `ecs`.
    ///
    /// Mirrors `PredictionPolicy::answer` exactly: longest-prefix match for
    /// ECS tables (bounded by the query's disclosed prefix length), exact
    /// match for LDNS tables, anycast VIP on a miss. The ECS scope is the
    /// matched entry's prefix length — and 0 on a miss: the VIP fallback
    /// was derived from no subnet, so advertising the query's /24 there
    /// (the old behavior) fragmented resolver caches into per-/24 entries
    /// that all held the same generic answer.
    pub fn answer(&self, ldns: LdnsId, ecs: Option<&EcsOption>) -> DnsAnswer {
        let (rr, scope) = self.answer_rr(ldns, ecs);
        DnsAnswer::scoped(rr.addr(), self.ttl_s, scope)
    }
}

impl RedirectionPolicy for CompiledTable {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        CompiledTable::answer(self, query.ldns, query.ecs.as_ref())
    }
}

/// Atomically swappable holder of the live [`CompiledTable`].
///
/// Readers take the read lock just long enough to clone an `Arc`;
/// [`TableStore::swap`] installs a new table under the write lock. Install
/// it on a server as `Arc<TableStore>` (which implements
/// [`RedirectionPolicy`] through the blanket `Arc` impl) and keep a second
/// `Arc` handle to swap tables while the server runs.
#[derive(Debug)]
pub struct TableStore {
    current: RwLock<Arc<CompiledTable>>,
}

impl TableStore {
    /// Creates the store with an initial table.
    pub fn new(initial: CompiledTable) -> TableStore {
        TableStore {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The live table (cheap `Arc` clone).
    pub fn load(&self) -> Arc<CompiledTable> {
        self.current.read().expect("table lock poisoned").clone()
    }

    /// Atomically replaces the live table, returning the old one.
    pub fn swap(&self, next: CompiledTable) -> Arc<CompiledTable> {
        counter!("serve_table_swaps_total").inc();
        let next = Arc::new(next);
        let mut slot = self.current.write().expect("table lock poisoned");
        std::mem::replace(&mut *slot, next)
    }
}

impl RedirectionPolicy for TableStore {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        CompiledTable::answer(&self.load(), query.ldns, query.ecs.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dns::DnsName;
    use anycast_geo::GeoPoint;
    use anycast_netsim::{Day, Prefix24, SiteId};

    fn plan() -> CdnAddressing {
        CdnAddressing::standard(8)
    }

    fn ecs(n: u8) -> EcsOption {
        EcsOption::for_prefix(Prefix24::containing(Ipv4Addr::new(10, 0, n, 1)))
    }

    #[test]
    fn empty_table_answers_anycast() {
        let t = CompiledTable::empty(Grouping::Ecs, plan(), 60);
        assert!(t.is_empty());
        // A miss is derived from no subnet: scope 0, never the query's 24.
        let a = t.answer(LdnsId(0), Some(&ecs(1)));
        assert!(plan().is_anycast(a.addr));
        assert_eq!((a.ttl_s, a.ecs_scope), (60, 0));
        let b = t.answer(LdnsId(0), None);
        assert_eq!(b.ecs_scope, 0);
    }

    #[test]
    fn trie_longest_match_and_source_len_bound() {
        let mut trie = PrefixTrie::new();
        let a8 = Ipv4Addr::new(192, 0, 2, 8);
        let a16 = Ipv4Addr::new(192, 0, 2, 16);
        let a24 = Ipv4Addr::new(192, 0, 2, 24);
        trie.insert(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8), a8);
        trie.insert(Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16), a16);
        trie.insert(Prefix::new(Ipv4Addr::new(10, 1, 2, 0), 24), a24);
        assert_eq!(trie.entries(), 3);
        // Longest match wins at full depth.
        let q = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(trie.lookup(q, 32), Some((a24, 24)));
        // Bounding by the query's source prefix length hides deeper
        // entries: a /16 query can only see the /8 and /16.
        assert_eq!(trie.lookup(q, 16), Some((a16, 16)));
        assert_eq!(trie.lookup(q, 12), Some((a8, 8)));
        assert_eq!(trie.lookup(q, 0), None);
        // Siblings don't leak.
        assert_eq!(trie.lookup(Ipv4Addr::new(10, 9, 0, 1), 32), Some((a8, 8)));
        assert_eq!(trie.lookup(Ipv4Addr::new(11, 0, 0, 1), 32), None);
        // Re-inserting replaces, not duplicates.
        trie.insert(Prefix::new(Ipv4Addr::new(10, 1, 2, 0), 24), a8);
        assert_eq!(trie.entries(), 3);
        assert_eq!(trie.lookup(q, 24), Some((a8, 24)));
    }

    #[test]
    fn compiled_ecs_table_scopes_answers_by_matched_prefix() {
        use anycast_beacon::{BeaconDataset, BeaconMeasurement, Slot, Target};
        use anycast_core::prediction::{AggregationConfig, Predictor, PredictorConfig};

        // Two adjacent /24s agreeing on site 2: aggregation compiles them
        // into one short default entry.
        let mut ds = BeaconDataset::new();
        let mut exec = 0u64;
        for n in [1u8, 2] {
            for (target, rtt) in [(Target::Anycast, 90.0), (Target::Unicast(SiteId(2)), 40.0)] {
                for _ in 0..25 {
                    ds.extend([BeaconMeasurement {
                        measurement_id: match target {
                            Target::Anycast => Slot::Anycast.id_for(exec),
                            Target::Unicast(_) => Slot::GeoClosest.id_for(exec),
                        },
                        slot: Slot::Anycast,
                        prefix: Prefix24::containing(Ipv4Addr::new(10, 0, n, 1)),
                        ldns: LdnsId(0),
                        ecs: None,
                        target,
                        served_site: SiteId(2),
                        rtt_ms: rtt,
                        failed: false,
                        day: Day(0),
                        time_s: 0.0,
                    }]);
                    exec += 1;
                }
            }
        }
        let table = Predictor::new(PredictorConfig::default()).train_aggregated(
            &ds,
            Day(0),
            &AggregationConfig::default(),
        );
        let compiled = CompiledTable::compile(&table, Grouping::Ecs, plan(), 60, 1);
        assert_eq!(compiled.len(), 1, "two agreeing /24s share one entry");
        // A /24 query under the aggregate: redirected, scoped to the
        // aggregate's length (not 24).
        let a = compiled.answer(LdnsId(0), Some(&ecs(1)));
        assert_eq!(plan().site_for_ip(a.addr), Some(SiteId(2)));
        assert!(a.ecs_scope < 24 && a.ecs_scope >= 8);
        // A coarser query still covered by the aggregate gets the same
        // answer — the whole point of routing-aware scopes.
        let coarse = EcsOption::for_subnet(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 16));
        let b = compiled.answer(LdnsId(0), Some(&coarse));
        assert_eq!(plan().site_for_ip(b.addr), Some(SiteId(2)));
        assert_eq!(b.ecs_scope, a.ecs_scope);
        // Outside the aggregate: miss, scope 0.
        let far = EcsOption::for_subnet(Prefix::new(Ipv4Addr::new(99, 0, 0, 0), 24));
        let c = compiled.answer(LdnsId(0), Some(&far));
        assert!(plan().is_anycast(c.addr));
        assert_eq!(c.ecs_scope, 0);
    }

    #[test]
    fn overrides_rewrite_known_groups_and_ignore_unknown_ones() {
        use anycast_beacon::{BeaconDataset, BeaconMeasurement, Slot, Target};
        use anycast_core::prediction::{Predictor, PredictorConfig};

        // Train a tiny LDNS-keyed table where resolvers 0 and 1 both
        // prefer unicast site 0 over anycast.
        let mut ds = BeaconDataset::new();
        let mut exec = 0u64;
        for ldns in [LdnsId(0), LdnsId(1)] {
            for (target, rtt) in [(Target::Anycast, 90.0), (Target::Unicast(SiteId(0)), 40.0)] {
                for _ in 0..25 {
                    ds.extend([BeaconMeasurement {
                        measurement_id: match target {
                            Target::Anycast => Slot::Anycast.id_for(exec),
                            Target::Unicast(_) => Slot::GeoClosest.id_for(exec),
                        },
                        slot: Slot::Anycast,
                        prefix: Prefix24::containing(Ipv4Addr::new(10, 0, ldns.0 as u8, 1)),
                        ldns,
                        ecs: None,
                        target,
                        served_site: SiteId(0),
                        rtt_ms: rtt,
                        failed: false,
                        day: Day(0),
                        time_s: 0.0,
                    }]);
                    exec += 1;
                }
            }
        }
        let cfg = PredictorConfig {
            grouping: Grouping::Ldns,
            ..PredictorConfig::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));

        let mut overrides = std::collections::BTreeMap::new();
        // Steer resolver 0 somewhere else; resolver 99 has no training
        // evidence, so its override must be dropped on the floor.
        overrides.insert(GroupKey::Ldns(LdnsId(0)), Target::Unicast(SiteId(3)));
        overrides.insert(GroupKey::Ldns(LdnsId(99)), Target::Unicast(SiteId(5)));
        let rewritten = CompiledTable::compile_with_overrides(
            &table,
            &overrides,
            Grouping::Ldns,
            plan(),
            60,
            2,
        );
        let baseline = CompiledTable::compile(&table, Grouping::Ldns, plan(), 60, 2);

        assert_eq!(
            rewritten.len(),
            baseline.len(),
            "overrides never add groups"
        );
        let site_of =
            |t: &CompiledTable, id: u32| plan().site_for_ip(t.answer(LdnsId(id), None).addr);
        assert_eq!(site_of(&rewritten, 0), Some(SiteId(3)), "override applied");
        assert_eq!(
            site_of(&rewritten, 1),
            site_of(&baseline, 1),
            "untouched group unchanged"
        );
        // Unknown group: both tables miss and fall back to the VIP.
        assert!(plan().is_anycast(rewritten.answer(LdnsId(99), None).addr));
        // An empty override map is the identity.
        let id = CompiledTable::compile_with_overrides(
            &table,
            &std::collections::BTreeMap::new(),
            Grouping::Ldns,
            plan(),
            60,
            2,
        );
        for ldns in [0u32, 1, 99] {
            assert_eq!(
                id.answer(LdnsId(ldns), None).addr,
                baseline.answer(LdnsId(ldns), None).addr
            );
        }
    }

    #[test]
    fn swap_changes_answers_without_restart() {
        let store = TableStore::new(CompiledTable::empty(Grouping::Ldns, plan(), 60));
        let qname = DnsName::new("www.cdn.example").unwrap();
        let q = QueryContext {
            qname: &qname,
            ldns: LdnsId(7),
            ldns_location: GeoPoint::new(0.0, 0.0),
            ecs: None,
            day: Day(0),
            time_s: 0.0,
        };
        assert!(plan().is_anycast(RedirectionPolicy::answer(&store, &q).addr));
        // Hand-build a one-entry LDNS table by compiling through the
        // public surface: an empty PredictionTable has no entries, so
        // patch via the sorted-array representation directly.
        let mut t = CompiledTable::empty(Grouping::Ldns, plan(), 60);
        t.templates
            .push(AnswerRr::new(plan().site_ip(SiteId(3)), 60));
        t.by_ldns.push((7, 1));
        t.generation = 1;
        let old = store.swap(t);
        assert_eq!(old.generation(), 0);
        let a = RedirectionPolicy::answer(&store, &q);
        assert_eq!(plan().site_for_ip(a.addr), Some(SiteId(3)));
        assert_eq!(store.load().generation(), 1);
    }
}
