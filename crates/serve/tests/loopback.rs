//! End-to-end loopback tests: real UDP/TCP packets against the in-process
//! authoritative path.
//!
//! The ISSUE acceptance bar: for a full simulated day of queries, the
//! wire-served `(addr, ttl, ecs_scope)` triple must be byte-identical to
//! what [`AuthoritativeServer`] + the same policy produce in-process — at
//! 1 worker and at 4 workers.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use anycast_core::prediction::{Grouping, Predictor, PredictorConfig};
use anycast_core::{PredictionPolicy, Study, StudyConfig};
use anycast_dns::cache::DnsCache;
use anycast_dns::{AuthoritativeServer, DnsAnswer, LdnsId};
use anycast_netsim::Day;
use anycast_serve::client::WireClient;
use anycast_serve::replay::{day_queries, ldns_directory, ldns_source_addr, service_qname};
use anycast_serve::server::{DnsServer, ServeConfig};
use anycast_serve::store::{CompiledTable, TableStore};
use anycast_workload::Scenario;

const TTL_S: u32 = 60;

/// Runs one real beacon day at small scale and trains a prediction policy
/// from it. Returns the study (which owns the scenario) alongside.
fn trained(seed: u64, grouping: Grouping) -> (Study, PredictionPolicy) {
    let mut study = Study::new(Scenario::small(seed), StudyConfig::default());
    study.run_day(Day(0));
    let cfg = PredictorConfig {
        grouping,
        ..PredictorConfig::default()
    };
    let table = Predictor::new(cfg).train(study.dataset(), Day(0));
    let policy = PredictionPolicy::new(table, grouping, study.scenario().addressing, TTL_S);
    (study, policy)
}

/// One client per LDNS source address, created on demand.
struct ClientPool {
    server: std::net::SocketAddr,
    clients: HashMap<LdnsId, WireClient>,
}

impl ClientPool {
    fn new(server: std::net::SocketAddr) -> ClientPool {
        ClientPool {
            server,
            clients: HashMap::new(),
        }
    }

    fn get(&mut self, ldns: LdnsId) -> &mut WireClient {
        let server = self.server;
        self.clients
            .entry(ldns)
            .or_insert_with(|| WireClient::bind(ldns_source_addr(ldns), server).expect("bind"))
    }
}

fn equivalence_for_workers(workers: usize) {
    let (study, policy) = trained(42, Grouping::Ecs);
    let scenario = study.scenario();
    let queries = day_queries(scenario, Day(1), usize::MAX);
    assert!(
        queries.len() > 100,
        "a simulated day must produce a real workload, got {}",
        queries.len()
    );

    // The in-process reference: the same policy behind the simulator's
    // authoritative front end (ECS honored).
    let mut reference = AuthoritativeServer::new(policy.clone(), true);

    let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
    cfg.workers = workers;
    cfg.day = Day(1);
    let directory = ldns_directory(scenario);
    let believed: HashMap<LdnsId, anycast_geo::GeoPoint> = scenario
        .ldns
        .resolvers
        .iter()
        .map(|r| (r.id, directory.lookup(ldns_source_addr(r.id)).unwrap().1))
        .collect();
    let server = DnsServer::spawn(cfg, policy, directory).expect("server spawns");

    let qname = service_qname();
    let mut pool = ClientPool::new(server.local_addr());
    let mut mismatches = 0usize;
    for q in &queries {
        let served = pool
            .get(q.ldns)
            .query(&qname, q.ecs.as_ref())
            .expect("wire query");
        let (_, expected) =
            reference.resolve(&qname, q.ldns, believed[&q.ldns], q.ecs, Day(1), 0.0);
        if (served.addr, served.ttl_s, served.ecs_scope)
            != (expected.addr, expected.ttl_s, expected.ecs_scope)
        {
            mismatches += 1;
            if mismatches <= 5 {
                eprintln!(
                    "mismatch for {:?}: wire {served:?} vs in-process {expected:?}",
                    q
                );
            }
        }
    }
    assert_eq!(
        mismatches,
        0,
        "wire answers must be byte-identical to the in-process path \
         ({} of {} differed at {workers} workers)",
        mismatches,
        queries.len()
    );
    let stats = server.stats();
    assert_eq!(
        stats
            .decode_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    assert!(stats.udp_queries.load(std::sync::atomic::Ordering::Relaxed) >= queries.len() as u64);
}

#[test]
fn wire_answers_match_in_process_path_one_worker() {
    equivalence_for_workers(1);
}

#[test]
fn wire_answers_match_in_process_path_four_workers() {
    equivalence_for_workers(4);
}

/// The batched tentpole path against the in-process reference: a
/// trie-compiled table behind `spawn_tables` (recvmmsg/sendmmsg workers,
/// templated answers) must serve a full simulated day identically to the
/// same table exercised in-process — and actually take the fast path.
fn batched_equivalence_for_workers(workers: usize, batch: usize) {
    let mut study = Study::new(Scenario::small(52), StudyConfig::default());
    study.run_day(Day(0));
    let pcfg = PredictorConfig {
        grouping: Grouping::Ecs,
        ..PredictorConfig::default()
    };
    let table = Predictor::new(pcfg).train(study.dataset(), Day(0));
    let scenario = study.scenario();
    let policy = PredictionPolicy::new(table.clone(), Grouping::Ecs, scenario.addressing, TTL_S);
    let compiled = CompiledTable::compile(&table, Grouping::Ecs, scenario.addressing, TTL_S, 1);

    let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
    cfg.workers = workers;
    cfg.batch = batch;
    cfg.day = Day(1);
    let directory = ldns_directory(scenario);
    let believed: HashMap<LdnsId, anycast_geo::GeoPoint> = scenario
        .ldns
        .resolvers
        .iter()
        .map(|r| (r.id, directory.lookup(ldns_source_addr(r.id)).unwrap().1))
        .collect();
    let server = DnsServer::spawn_tables(cfg, Arc::new(TableStore::new(compiled)), directory)
        .expect("server spawns");

    let mut reference = AuthoritativeServer::new(policy, true);
    let qname = service_qname();
    let mut pool = ClientPool::new(server.local_addr());
    let queries = day_queries(scenario, Day(1), usize::MAX);
    assert!(queries.len() > 100);
    for q in &queries {
        let served = pool
            .get(q.ldns)
            .query(&qname, q.ecs.as_ref())
            .expect("wire query");
        let (_, expected) =
            reference.resolve(&qname, q.ldns, believed[&q.ldns], q.ecs, Day(1), 0.0);
        assert_eq!(
            (served.addr, served.ttl_s, served.ecs_scope),
            (expected.addr, expected.ttl_s, expected.ecs_scope),
            "batched wire answer must match the in-process path for {q:?} \
             ({workers} workers, batch {batch})"
        );
    }
    use std::sync::atomic::Ordering::Relaxed;
    let stats = server.stats();
    assert_eq!(stats.decode_errors.load(Relaxed), 0);
    assert!(
        stats.template_hits.load(Relaxed) > 0,
        "canonical client queries must engage the templated fast path"
    );
}

#[test]
fn batched_tables_match_in_process_path_one_worker() {
    batched_equivalence_for_workers(1, 32);
}

#[test]
fn batched_tables_match_in_process_path_four_workers() {
    batched_equivalence_for_workers(4, 32);
}

#[test]
fn batched_and_fallback_servers_are_byte_identical_on_the_wire() {
    // Golden-drift guard at the raw-datagram level: the same table served
    // through the batched syscall path (batch 32, templated answers) and
    // through the portable one-packet fallback (batch 1) must produce
    // bit-for-bit identical response packets — templated or not, the wire
    // format is pinned to the reference encoder.
    use anycast_serve::message::{encode_query, Edns, WireEcs, WireQuery};
    use anycast_serve::wire::{CLASS_IN, TYPE_A};

    let mut study = Study::new(Scenario::small(53), StudyConfig::default());
    study.run_day(Day(0));
    let pcfg = PredictorConfig {
        grouping: Grouping::Ecs,
        ..PredictorConfig::default()
    };
    let table = Predictor::new(pcfg).train(study.dataset(), Day(0));
    let scenario = study.scenario();
    let compiled = CompiledTable::compile(&table, Grouping::Ecs, scenario.addressing, TTL_S, 1);

    let spawn_with_batch = |batch: usize| {
        let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
        cfg.workers = 1;
        cfg.batch = batch;
        cfg.day = Day(1);
        DnsServer::spawn_tables(
            cfg,
            Arc::new(TableStore::new(compiled.clone())),
            ldns_directory(scenario),
        )
        .expect("server spawns")
    };
    let batched = spawn_with_batch(32);
    let fallback = spawn_with_batch(1);

    // Real day-of-queries shapes plus crafted slow-path shapes (an AAAA
    // query and an ECS-bearing one at several source lengths).
    let mut wires: Vec<(LdnsId, Vec<u8>)> = Vec::new();
    let queries = day_queries(scenario, Day(1), 200);
    for (i, q) in queries.iter().enumerate() {
        wires.push((
            q.ldns,
            encode_query(&WireQuery {
                id: i as u16,
                rd: i % 2 == 0,
                qname: q.qname.clone(),
                qtype: TYPE_A,
                qclass: CLASS_IN,
                edns: Some(Edns {
                    udp_payload: 1232,
                    ecs: q.ecs.as_ref().map(WireEcs::from_option),
                }),
            }),
        ));
    }
    let some_ldns = queries[0].ldns;
    wires.push((
        some_ldns,
        encode_query(&WireQuery {
            id: 0xAAAA,
            rd: true,
            qname: service_qname(),
            qtype: 28, // AAAA: non-templatable, exercises the slow path
            qclass: CLASS_IN,
            edns: Some(Edns::plain(1232)),
        }),
    ));

    let ask = |server: &DnsServer, ldns: LdnsId, wire: &[u8]| -> Vec<u8> {
        let sock = std::net::UdpSocket::bind((ldns_source_addr(ldns), 0)).expect("bind");
        sock.set_read_timeout(Some(std::time::Duration::from_millis(2000)))
            .unwrap();
        sock.send_to(wire, server.local_addr()).expect("send");
        let mut buf = [0u8; 4096];
        let (n, _) = sock.recv_from(&mut buf).expect("reply");
        buf[..n].to_vec()
    };
    for (ldns, wire) in &wires {
        assert_eq!(
            ask(&batched, *ldns, wire),
            ask(&fallback, *ldns, wire),
            "batched and one-packet servers must not drift on the wire"
        );
    }
    use std::sync::atomic::Ordering::Relaxed;
    assert!(
        batched.stats().template_hits.load(Relaxed) > 0,
        "the batched server took the templated path"
    );
    assert!(
        batched.stats().template_misses.load(Relaxed) > 0,
        "the crafted AAAA query exercised the slow path"
    );
}

#[test]
fn client_discards_rogue_datagrams_and_stale_ids() {
    // Satellite bugfix: a datagram from the wrong source address — even
    // one carrying the right txid — or a right-source datagram with a
    // stale id must be skipped, not returned and not turned into an
    // error. Only the genuine answer lands.
    use anycast_serve::message::{decode_query, encode_response};

    let fake_server = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind server");
    let rogue = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind rogue");
    let server_addr = fake_server.local_addr().unwrap();

    let genuine = Ipv4Addr::new(198, 18, 0, 1);
    let poisoned = Ipv4Addr::new(203, 0, 113, 66);
    let feeder = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        let (n, client_addr) = fake_server.recv_from(&mut buf).expect("query arrives");
        let q = decode_query(&buf[..n]).expect("client query decodes");
        // 1) Off-path spoof: right txid, wrong source socket.
        let spoof = encode_response(&q, Some(&DnsAnswer::global(poisoned, 60)), 0, 4096);
        rogue.send_to(&spoof, client_addr).expect("spoof sends");
        // 2) Right source, stale txid.
        let mut stale_q = q.clone();
        stale_q.id = q.id.wrapping_add(1);
        let stale = encode_response(&stale_q, Some(&DnsAnswer::global(poisoned, 60)), 0, 4096);
        fake_server
            .send_to(&stale, client_addr)
            .expect("stale sends");
        // 3) The genuine answer.
        let real = encode_response(&q, Some(&DnsAnswer::global(genuine, 60)), 0, 4096);
        fake_server.send_to(&real, client_addr).expect("real sends");
    });

    let mut client =
        WireClient::bind(Ipv4Addr::new(127, 0, 0, 1), server_addr).expect("client binds");
    let answer = client
        .query(&service_qname(), None)
        .expect("rogue traffic must not error the query");
    feeder.join().expect("feeder thread");
    assert_eq!(
        answer.addr, genuine,
        "the spoofed and stale datagrams must not poison the answer"
    );
}

#[test]
fn answered_tallies_mirror_answers_and_never_influence_them() {
    // Satellite: the per-front-end answered tally is the control plane's
    // live load feed. It must be (a) a pure function of the served
    // answers — identical across reruns and worker counts — and (b)
    // obs-neutral: the answers themselves are byte-identical whether or
    // not anyone reads the tallies.
    let (study, policy) = trained(49, Grouping::Ecs);
    let scenario = study.scenario();
    let queries = day_queries(scenario, Day(1), 400);
    let run = |workers: usize| {
        let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
        cfg.workers = workers;
        cfg.day = Day(1);
        let directory = ldns_directory(scenario);
        let server = DnsServer::spawn(cfg, policy.clone(), directory).expect("server spawns");
        let qname = service_qname();
        let mut pool = ClientPool::new(server.local_addr());
        let mut answers = Vec::new();
        for q in &queries {
            let a = pool
                .get(q.ldns)
                .query(&qname, q.ecs.as_ref())
                .expect("query");
            answers.push((a.addr, a.ttl_s, a.ecs_scope));
        }
        let tallies = server.stats().answered_by_addr();
        (answers, tallies)
    };
    let (a1, t1) = run(1);
    let (a2, t2) = run(2);
    assert_eq!(a1, a2, "answers do not depend on worker count");
    assert_eq!(t1, t2, "tallies are a pure function of the served answers");
    assert_eq!(
        t1.iter().map(|&(_, n)| n).sum::<u64>(),
        queries.len() as u64,
        "every answered query is attributed to exactly one front end"
    );
    // The tally agrees with the answers the clients actually saw.
    let mut expect: HashMap<Ipv4Addr, u64> = HashMap::new();
    for &(addr, _, _) in &a1 {
        *expect.entry(addr).or_default() += 1;
    }
    assert_eq!(expect.len(), t1.len());
    for (addr, n) in &t1 {
        assert_eq!(expect.get(addr), Some(n), "tally for {addr} disagrees");
    }
}

#[test]
fn aggregated_tables_serve_identically_compiled_or_in_process() {
    // The routing-aware table behind a real socket: the trie-compiled
    // table must serve the same (addr, ttl, scope) triple as the
    // in-process LPM policy for a full day, never advertise a scope wider
    // than the query disclosed, and answer misses at scope 0.
    use anycast_core::prediction::AggregationConfig;
    use anycast_dns::ecs::EcsOption;
    use anycast_netsim::Prefix;

    let mut study = Study::new(Scenario::small(50), StudyConfig::default());
    study.run_day(Day(0));
    let cfg = PredictorConfig {
        grouping: Grouping::Ecs,
        ..PredictorConfig::default()
    };
    let table = Predictor::new(cfg).train_aggregated(
        study.dataset(),
        Day(0),
        &AggregationConfig::default(),
    );
    let scenario = study.scenario();
    let policy = PredictionPolicy::new(table.clone(), Grouping::Ecs, scenario.addressing, TTL_S);
    let compiled = CompiledTable::compile(&table, Grouping::Ecs, scenario.addressing, TTL_S, 1);

    let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
    cfg.day = Day(1);
    let directory = ldns_directory(scenario);
    let believed: HashMap<LdnsId, anycast_geo::GeoPoint> = scenario
        .ldns
        .resolvers
        .iter()
        .map(|r| (r.id, directory.lookup(ldns_source_addr(r.id)).unwrap().1))
        .collect();
    let server = DnsServer::spawn_tables(cfg, Arc::new(TableStore::new(compiled)), directory)
        .expect("server spawns");

    let mut reference = AuthoritativeServer::new(policy, true);
    let qname = service_qname();
    let mut pool = ClientPool::new(server.local_addr());
    let queries = day_queries(scenario, Day(1), 2_000);
    for q in &queries {
        let served = pool
            .get(q.ldns)
            .query(&qname, q.ecs.as_ref())
            .expect("wire query");
        let (_, expected) =
            reference.resolve(&qname, q.ldns, believed[&q.ldns], q.ecs, Day(1), 0.0);
        assert_eq!(
            (served.addr, served.ttl_s, served.ecs_scope),
            (expected.addr, expected.ttl_s, expected.ecs_scope),
            "trie-compiled and in-process LPM answers must agree for {q:?}"
        );
        if let Some(e) = &q.ecs {
            assert!(
                served.ecs_scope <= e.source_prefix_len(),
                "scope {} wider than disclosed /{}",
                served.ecs_scope,
                e.source_prefix_len()
            );
        }
    }
    // An untrained subnet: the fallback VIP answer is derived from no
    // subnet, so the wire must carry scope 0 — the §6 bugfix this PR pins.
    let ecs_ldns = queries
        .iter()
        .find(|q| q.ecs.is_some())
        .expect("small world has public resolvers")
        .ldns;
    let unknown = EcsOption::for_subnet(Prefix::new(Ipv4Addr::new(203, 0, 113, 0), 24));
    let miss = pool
        .get(ecs_ldns)
        .query(&qname, Some(&unknown))
        .expect("wire query");
    assert_eq!(miss.addr, scenario.addressing.anycast_ip());
    assert_eq!(miss.ecs_scope, 0, "table miss must be scope 0 on the wire");
}

#[test]
fn disabled_aggregation_compiles_to_byte_identical_answers() {
    // Golden-drift guard: with aggregation disabled the trie-compiled
    // table must answer every query of a simulated day byte-identically
    // to the plain per-/24 training path.
    use anycast_core::prediction::AggregationConfig;

    let mut study = Study::new(Scenario::small(51), StudyConfig::default());
    study.run_day(Day(0));
    let cfg = PredictorConfig {
        grouping: Grouping::Ecs,
        ..PredictorConfig::default()
    };
    let predictor = Predictor::new(cfg);
    let plain = predictor.train(study.dataset(), Day(0));
    let disabled =
        predictor.train_aggregated(study.dataset(), Day(0), &AggregationConfig::disabled());
    let scenario = study.scenario();
    let a = CompiledTable::compile(&plain, Grouping::Ecs, scenario.addressing, TTL_S, 1);
    let b = CompiledTable::compile(&disabled, Grouping::Ecs, scenario.addressing, TTL_S, 1);
    assert_eq!(a.len(), b.len(), "same group count");
    let queries = day_queries(scenario, Day(1), usize::MAX);
    assert!(queries.len() > 100);
    for q in &queries {
        let (x, y) = (
            a.answer(q.ldns, q.ecs.as_ref()),
            b.answer(q.ldns, q.ecs.as_ref()),
        );
        assert_eq!(
            (x.addr, x.ttl_s, x.ecs_scope),
            (y.addr, y.ttl_s, y.ecs_scope),
            "disabled aggregation must not drift from plain training for {q:?}"
        );
    }
}

#[test]
fn ldns_keyed_tables_serve_scope_zero_on_the_wire() {
    let (study, policy) = trained(43, Grouping::Ldns);
    let scenario = study.scenario();
    let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
    cfg.day = Day(1);
    let directory = ldns_directory(scenario);
    let server = DnsServer::spawn(cfg, policy.clone(), directory).expect("server spawns");

    let qname = service_qname();
    let mut pool = ClientPool::new(server.local_addr());
    // Find an ECS-capable resolver so the query carries the option.
    let queries = day_queries(scenario, Day(1), usize::MAX);
    let ecs_query = queries
        .iter()
        .find(|q| q.ecs.is_some())
        .expect("small world has public resolvers");
    let served = pool
        .get(ecs_query.ldns)
        .query(&qname, ecs_query.ecs.as_ref())
        .expect("wire query");
    // LDNS-keyed answer to an ECS-bearing query: the scope on the wire
    // must be 0 — the §6 fix this PR carries.
    assert_eq!(served.ecs_scope, 0);
    assert_eq!(served.ttl_s, TTL_S);
}

#[test]
fn hot_swap_and_ttl_control_retention_through_the_wire() {
    // A TableStore behind the server: swapping tables changes answers
    // without restart, and the served TTL controls client-side retention
    // (a 0-TTL answer must never be cached).
    let scenario = Scenario::small(44);
    let plan = scenario.addressing;
    let vip = plan.anycast_ip();
    let site0 = plan.site_ip(anycast_netsim::SiteId(0));

    for (ttl, expect_stale_hit) in [(300u32, true), (0u32, false)] {
        // Start with the cold-start table: everyone gets the VIP.
        let store = Arc::new(TableStore::new(CompiledTable::empty(
            Grouping::Ldns,
            plan,
            ttl,
        )));
        let mut cfg = ServeConfig::new(vip);
        cfg.workers = 1;
        let mut directory = anycast_serve::server::LdnsDirectory::new();
        directory.insert(
            ldns_source_addr(LdnsId(0)),
            LdnsId(0),
            anycast_geo::GeoPoint::new(0.0, 0.0),
        );
        let server = DnsServer::spawn_tables(cfg, store.clone(), directory).expect("server spawns");

        let qname = service_qname();
        let mut client =
            WireClient::bind(ldns_source_addr(LdnsId(0)), server.local_addr()).expect("bind");
        let mut cache = DnsCache::new();

        // First query: miss, VIP answer, cached with the served TTL.
        let t0 = 100.0;
        assert_eq!(cache.get(&qname, None, t0), None);
        let a = client.query(&qname, None).expect("first query");
        assert_eq!(a.addr, vip);
        assert_eq!(a.ttl_s, ttl);
        cache.put(qname.clone(), None, a.addr, a.ttl_s, t0);

        // Retrain: the predictor now redirects LDNS 0 to site 0. Swap the
        // table while the server keeps running.
        let table = {
            use anycast_beacon::{BeaconDataset, BeaconMeasurement, Slot, Target};
            use anycast_netsim::{Prefix24, SiteId};
            let mut ds = BeaconDataset::new();
            let mk = |exec: u64, t: Target, rtt: f64| BeaconMeasurement {
                measurement_id: match t {
                    Target::Anycast => Slot::Anycast.id_for(exec),
                    Target::Unicast(_) => Slot::GeoClosest.id_for(exec),
                },
                slot: Slot::Anycast,
                prefix: Prefix24::containing(Ipv4Addr::new(10, 0, 0, 1)),
                ldns: LdnsId(0),
                ecs: None,
                target: t,
                served_site: SiteId(0),
                rtt_ms: rtt,
                failed: false,
                day: Day(0),
                time_s: 0.0,
            };
            ds.extend((0..25).map(|i| mk(i, Target::Anycast, 90.0)));
            ds.extend((100..125).map(|i| mk(i, Target::Unicast(SiteId(0)), 40.0)));
            let cfg = PredictorConfig {
                grouping: Grouping::Ldns,
                ..PredictorConfig::default()
            };
            Predictor::new(cfg).train(&ds, Day(0))
        };
        store.swap(CompiledTable::compile(&table, Grouping::Ldns, plan, ttl, 1));

        // A client still inside the TTL keeps the stale VIP answer; with
        // TTL 0 nothing was retained and the swap is visible immediately.
        let t1 = t0 + 1.0;
        match cache.get(&qname, None, t1) {
            Some(addr) => {
                assert!(expect_stale_hit, "0-TTL answer must not be cached");
                assert_eq!(addr, vip, "cache serves the pre-swap answer");
            }
            None => {
                assert!(!expect_stale_hit, "300s answer must still be cached at +1s");
                let b = client.query(&qname, None).expect("re-query");
                assert_eq!(b.addr, site0, "post-swap answer reaches the wire");
            }
        }

        // Past expiry both variants observe the new table.
        let t2 = t0 + f64::from(ttl) + 1.0;
        assert_eq!(cache.get(&qname, None, t2), None, "entry expired");
        let c = client.query(&qname, None).expect("post-expiry query");
        assert_eq!(c.addr, site0);
        drop(server);
    }
}

#[test]
fn overload_valve_degrades_to_anycast() {
    let (study, policy) = trained(45, Grouping::Ecs);
    let scenario = study.scenario();
    let plan = scenario.addressing;
    let mut cfg = ServeConfig::new(plan.anycast_ip());
    cfg.workers = 1;
    cfg.overload_watermark = 0; // every dequeue sees depth >= watermark
    cfg.valve_ttl_s = 7;
    cfg.day = Day(1);
    let directory = ldns_directory(scenario);
    let server = DnsServer::spawn(cfg, policy, directory).expect("server spawns");

    let qname = service_qname();
    let queries = day_queries(scenario, Day(1), 50);
    let mut pool = ClientPool::new(server.local_addr());
    for q in &queries {
        let a = pool
            .get(q.ldns)
            .query(&qname, q.ecs.as_ref())
            .expect("query");
        assert_eq!(a.addr, plan.anycast_ip(), "valve always answers the VIP");
        assert_eq!(a.ttl_s, 7, "valve answers use the short degraded TTL");
        assert_eq!(a.ecs_scope, 0, "degraded answers are global");
    }
    let degraded = server
        .stats()
        .degraded
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(degraded, queries.len() as u64);
}

#[test]
fn truncated_udp_answers_complete_over_tcp() {
    let (study, policy) = trained(46, Grouping::Ecs);
    let scenario = study.scenario();
    let plan = scenario.addressing;
    let mut cfg = ServeConfig::new(plan.anycast_ip());
    cfg.workers = 1;
    cfg.day = Day(1);
    // Clamp UDP responses below the answer size: every answer truncates.
    cfg.udp_response_cap = Some(40);
    // std TCP clients cannot bind a loopback source address, so TCP
    // connections arrive from 127.0.0.1; pin this test to one resolver
    // and register that address as its alias (the directory is operator
    // data — multi-homed resolvers are registered the same way).
    let queries: Vec<_> = {
        let all = day_queries(scenario, Day(1), usize::MAX);
        let ldns = all[0].ldns;
        all.into_iter()
            .filter(|q| q.ldns == ldns)
            .take(20)
            .collect()
    };
    let ldns = queries[0].ldns;
    let mut directory = ldns_directory(scenario);
    let believed = directory.lookup(ldns_source_addr(ldns)).unwrap().1;
    directory.insert(Ipv4Addr::new(127, 0, 0, 1), ldns, believed);
    let server = DnsServer::spawn(cfg, policy.clone(), directory).expect("server spawns");

    let qname = service_qname();
    let mut reference = AuthoritativeServer::new(policy, true);
    let mut pool = ClientPool::new(server.local_addr());
    for q in &queries {
        let served = pool
            .get(q.ldns)
            .query(&qname, q.ecs.as_ref())
            .expect("query");
        assert!(served.over_tcp, "a clamped answer must arrive over TCP");
        let (_, expected) = reference.resolve(&qname, q.ldns, believed, q.ecs, Day(1), 0.0);
        assert_eq!(
            (served.addr, served.ttl_s, served.ecs_scope),
            (expected.addr, expected.ttl_s, expected.ecs_scope),
            "TCP fallback serves the same bytes"
        );
    }
    let s = server.stats();
    use std::sync::atomic::Ordering::Relaxed;
    assert!(s.truncated.load(Relaxed) >= queries.len() as u64);
    assert!(s.tcp_queries.load(Relaxed) >= queries.len() as u64);
}

#[test]
fn malformed_packets_get_formerr_and_are_counted() {
    let (study, policy) = trained(47, Grouping::Ecs);
    let scenario = study.scenario();
    let cfg = ServeConfig::new(scenario.addressing.anycast_ip());
    let directory = ldns_directory(scenario);
    let server = DnsServer::spawn(cfg, policy, directory).expect("server spawns");

    let sock = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind");
    sock.set_read_timeout(Some(std::time::Duration::from_millis(2000)))
        .unwrap();
    // A garbage packet that still has an id.
    sock.send_to(&[0xAB, 0xCD, 0xFF, 0xFF, 0x00], server.local_addr())
        .expect("send");
    let mut buf = [0u8; 512];
    let (n, _) = sock.recv_from(&mut buf).expect("formerr reply");
    assert!(n >= 12);
    assert_eq!(&buf[..2], &[0xAB, 0xCD], "id echoed");
    assert_eq!(buf[3] & 0x0F, 1, "rcode FORMERR");
    assert_eq!(
        server
            .stats()
            .decode_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn unknown_qtypes_get_empty_noerror() {
    use anycast_serve::message::{decode_response, encode_query, Edns, WireQuery};
    let (study, policy) = trained(48, Grouping::Ecs);
    let scenario = study.scenario();
    let cfg = ServeConfig::new(scenario.addressing.anycast_ip());
    let directory = ldns_directory(scenario);
    let server = DnsServer::spawn(cfg, policy, directory).expect("server spawns");

    let q = WireQuery {
        id: 77,
        rd: false,
        qname: service_qname(),
        qtype: 28, // AAAA
        qclass: 1,
        edns: Some(Edns::plain(1232)),
    };
    let sock = std::net::UdpSocket::bind((ldns_source_addr(LdnsId(0)), 0)).expect("bind");
    sock.set_read_timeout(Some(std::time::Duration::from_millis(2000)))
        .unwrap();
    sock.send_to(&encode_query(&q), server.local_addr())
        .unwrap();
    let mut buf = [0u8; 512];
    let (n, _) = sock.recv_from(&mut buf).expect("reply");
    let r = decode_response(&buf[..n]).expect("decodes");
    assert_eq!(r.id, 77);
    assert_eq!(r.rcode, 0);
    assert_eq!(r.answer, None);
}

#[test]
fn policy_answers_are_pure_dnsanswer_roundtrips() {
    // Spot-check the codec against DnsAnswer directly (no server): the
    // wire triple survives for scoped, subnet and global answers.
    use anycast_serve::message::{decode_response, encode_response, Edns, WireEcs, WireQuery};
    let q = WireQuery {
        id: 5,
        rd: true,
        qname: service_qname(),
        qtype: 1,
        qclass: 1,
        edns: Some(Edns {
            udp_payload: 1232,
            ecs: Some(WireEcs {
                addr: Ipv4Addr::new(203, 0, 113, 0),
                source_prefix_len: 24,
                scope_prefix_len: 0,
            }),
        }),
    };
    for answer in [
        DnsAnswer::global(Ipv4Addr::new(198, 18, 0, 1), 60),
        DnsAnswer::subnet_scoped(Ipv4Addr::new(198, 19, 3, 1), 45),
        DnsAnswer::scoped(Ipv4Addr::new(198, 19, 7, 1), 0, 16),
    ] {
        let r = decode_response(&encode_response(&q, Some(&answer), 0, 4096)).unwrap();
        assert_eq!(r.answer, Some((answer.addr, answer.ttl_s)));
        assert_eq!(r.ecs.unwrap().scope_prefix_len, answer.ecs_scope);
    }
}

#[test]
fn recorder_toggle_is_obs_neutral_on_the_batched_path() {
    // PR-9 tentpole guard: the flight recorder samples traces on the hot
    // path, but it only *observes* — raw response datagrams must be
    // bit-for-bit identical with the recorder on and off, at 1 worker and
    // at 4, through the batched syscall path.
    use anycast_serve::message::{encode_query, Edns, WireEcs, WireQuery};
    use anycast_serve::wire::{CLASS_IN, TYPE_A};

    let mut study = Study::new(Scenario::small(54), StudyConfig::default());
    study.run_day(Day(0));
    let pcfg = PredictorConfig {
        grouping: Grouping::Ecs,
        ..PredictorConfig::default()
    };
    let table = Predictor::new(pcfg).train(study.dataset(), Day(0));
    let scenario = study.scenario();
    let compiled = CompiledTable::compile(&table, Grouping::Ecs, scenario.addressing, TTL_S, 1);

    let spawn = |workers: usize, recorder: bool| {
        let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
        cfg.workers = workers;
        cfg.batch = 32;
        cfg.day = Day(1);
        cfg.recorder = recorder;
        DnsServer::spawn_tables(
            cfg,
            Arc::new(TableStore::new(compiled.clone())),
            ldns_directory(scenario),
        )
        .expect("server spawns")
    };

    let mut wires: Vec<(LdnsId, Vec<u8>)> = Vec::new();
    for (i, q) in day_queries(scenario, Day(1), 300).iter().enumerate() {
        wires.push((
            q.ldns,
            encode_query(&WireQuery {
                id: i as u16,
                rd: true,
                qname: q.qname.clone(),
                qtype: TYPE_A,
                qclass: CLASS_IN,
                edns: Some(Edns {
                    udp_payload: 1232,
                    ecs: q.ecs.as_ref().map(WireEcs::from_option),
                }),
            }),
        ));
    }
    let ask = |server: &DnsServer, ldns: LdnsId, wire: &[u8]| -> Vec<u8> {
        let sock = std::net::UdpSocket::bind((ldns_source_addr(ldns), 0)).expect("bind");
        sock.set_read_timeout(Some(std::time::Duration::from_millis(2000)))
            .unwrap();
        sock.send_to(wire, server.local_addr()).expect("send");
        let mut buf = [0u8; 4096];
        let (n, _) = sock.recv_from(&mut buf).expect("reply");
        buf[..n].to_vec()
    };

    for workers in [1usize, 4] {
        let on = spawn(workers, true);
        let off = spawn(workers, false);
        for (ldns, wire) in &wires {
            assert_eq!(
                ask(&on, *ldns, wire),
                ask(&off, *ldns, wire),
                "recorder on/off must not change a single wire byte \
                 ({workers} workers)"
            );
        }
        use std::sync::atomic::Ordering::Relaxed;
        assert!(
            on.stats().udp_queries.load(Relaxed) >= wires.len() as u64,
            "the recorder-on server served the workload"
        );
        // The toggle actually reached the hot path (fold totals are
        // registry-global, so sampling volume itself is asserted by the
        // obs crate's unit tests, not per-server here).
        assert!(on.recorder().enabled());
        assert!(!off.recorder().enabled());
    }
}

#[test]
fn chaos_scrape_answers_live_prometheus_mid_replay() {
    // PR-9 in-band scrape, end to end over the wire: while a batched
    // server is serving a replay workload, a `CHAOS TXT metrics.bind`
    // query returns schema-valid Prometheus text reflecting the queries
    // served so far — through the exact same socket path as A queries.
    let mut study = Study::new(Scenario::small(55), StudyConfig::default());
    study.run_day(Day(0));
    let pcfg = PredictorConfig {
        grouping: Grouping::Ecs,
        ..PredictorConfig::default()
    };
    let table = Predictor::new(pcfg).train(study.dataset(), Day(0));
    let scenario = study.scenario();
    let compiled = CompiledTable::compile(&table, Grouping::Ecs, scenario.addressing, TTL_S, 1);

    let mut cfg = ServeConfig::new(scenario.addressing.anycast_ip());
    cfg.workers = 2;
    cfg.batch = 32;
    cfg.day = Day(1);
    let server = DnsServer::spawn_tables(
        cfg,
        Arc::new(TableStore::new(compiled)),
        ldns_directory(scenario),
    )
    .expect("server spawns");

    // Serve part of a day first so the scrape has counters to report.
    let qname = service_qname();
    let mut pool = ClientPool::new(server.local_addr());
    let queries = day_queries(scenario, Day(1), 200);
    for q in &queries {
        pool.get(q.ldns)
            .query(&qname, q.ecs.as_ref())
            .expect("wire query");
    }

    let mut scraper =
        WireClient::bind(Ipv4Addr::LOCALHOST, server.local_addr()).expect("scraper binds");
    let text = scraper.scrape_metrics().expect("CHAOS scrape succeeds");
    let problems = anycast_obs::validate_prometheus(&text);
    assert!(
        problems.is_empty(),
        "live scrape must be schema-valid Prometheus text: {problems:?}"
    );
    assert!(
        text.contains("serve_udp_queries_total"),
        "scrape reflects the serving counters"
    );
    // The snapshot was taken mid-replay: the served-query counter it
    // carries must cover the replayed prefix (scrape included).
    let served: u64 = text
        .lines()
        .find(|l| l.starts_with("serve_udp_queries_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("counter sample parses");
    assert!(
        served >= queries.len() as u64,
        "scraped counter {served} must cover the {} replayed queries",
        queries.len()
    );

    // And the ordinary A-record path keeps answering after the scrape.
    let q = &queries[0];
    pool.get(q.ldns)
        .query(&qname, q.ecs.as_ref())
        .expect("A queries still answered after a CHAOS scrape");
}
