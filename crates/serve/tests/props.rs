//! Property tests for the wire codec: hostile-input safety and bit-exact
//! round-trips.
//!
//! The decode fuzz tests run 10 000 cases each (the ISSUE acceptance
//! floor): arbitrary bytes must never panic, only return `Ok` or a
//! controlled [`WireError`].

use std::net::Ipv4Addr;

use anycast_dns::{DnsAnswer, DnsName};
use anycast_serve::message::{
    decode_query, decode_response, encode_query, encode_response, Edns, WireEcs, WireQuery,
};
use anycast_serve::wire::{Cursor, Flags, Header, CLASS_IN, TYPE_A};
use proptest::prelude::*;

fn arbitrary_name() -> impl Strategy<Value = DnsName> {
    proptest::string::string_regex("[a-z0-9]{1,12}(\\.[a-z0-9]{1,12}){0,3}")
        .expect("pattern parses")
        .prop_map(|s| DnsName::new(&s).expect("generated names are valid"))
}

fn arbitrary_ecs() -> impl Strategy<Value = WireEcs> {
    (any::<u32>(), 0u8..33).prop_map(|(addr, spl)| {
        let mask = if spl == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(spl))
        };
        WireEcs {
            addr: Ipv4Addr::from(addr & mask),
            source_prefix_len: spl,
            scope_prefix_len: 0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    #[test]
    fn decode_query_of_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = decode_query(&bytes);
    }

    #[test]
    fn decode_response_of_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = decode_response(&bytes);
    }

    #[test]
    fn name_decode_of_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = Cursor::new(&bytes).name();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn header_bits_round_trip(
        id in any::<u16>(),
        qr in any::<bool>(),
        opcode in 0u8..16,
        aa in any::<bool>(),
        tc in any::<bool>(),
        rd in any::<bool>(),
        ra in any::<bool>(),
        rcode in 0u8..16,
        counts in (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()),
    ) {
        let h = Header {
            id,
            flags: Flags { qr, opcode, aa, tc, rd, ra, rcode },
            qdcount: counts.0,
            ancount: counts.1,
            nscount: counts.2,
            arcount: counts.3,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        prop_assert_eq!(Header::decode(&mut Cursor::new(&buf)).unwrap(), h);
    }

    #[test]
    fn queries_round_trip_bit_exactly(
        id in any::<u16>(),
        rd in any::<bool>(),
        qname in arbitrary_name(),
        payload in 512u16..4096,
        ecs in arbitrary_ecs(),
        with_edns in any::<bool>(),
        with_ecs in any::<bool>(),
    ) {
        let q = WireQuery {
            id,
            rd,
            qname,
            qtype: TYPE_A,
            qclass: CLASS_IN,
            edns: with_edns.then_some(Edns {
                udp_payload: payload,
                ecs: with_ecs.then_some(ecs),
            }),
        };
        prop_assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
    }

    #[test]
    fn responses_round_trip_addr_ttl_and_scope(
        id in any::<u16>(),
        qname in arbitrary_name(),
        addr in any::<u32>(),
        ttl in any::<u32>(),
        scope in 0u8..33,
        ecs in arbitrary_ecs(),
        with_ecs in any::<bool>(),
    ) {
        let q = WireQuery {
            id,
            rd: true,
            qname,
            qtype: TYPE_A,
            qclass: CLASS_IN,
            edns: Some(Edns {
                udp_payload: 1232,
                ecs: with_ecs.then_some(ecs),
            }),
        };
        let answer = DnsAnswer::scoped(Ipv4Addr::from(addr), ttl, scope);
        let wire = encode_response(&q, Some(&answer), 0, 4096);
        let r = decode_response(&wire).unwrap();
        prop_assert_eq!(r.id, q.id);
        prop_assert_eq!(r.qname, q.qname);
        prop_assert_eq!(r.answer, Some((answer.addr, answer.ttl_s)));
        match (with_ecs, ecs.source_prefix_len) {
            (true, _) => {
                // The option is echoed: same address + source prefix,
                // scope from the answer.
                let echoed = r.ecs.expect("ECS must be echoed");
                prop_assert_eq!(echoed.addr, ecs.addr);
                prop_assert_eq!(echoed.source_prefix_len, ecs.source_prefix_len);
                prop_assert_eq!(echoed.scope_prefix_len, scope);
            }
            (false, _) => prop_assert!(r.ecs.is_none()),
        }
    }

    #[test]
    fn ecs_options_round_trip_through_queries(ecs in arbitrary_ecs()) {
        let q = WireQuery {
            id: 9,
            rd: false,
            qname: DnsName::new("www.cdn.example").unwrap(),
            qtype: TYPE_A,
            qclass: CLASS_IN,
            edns: Some(Edns { udp_payload: 1232, ecs: Some(ecs) }),
        };
        let got = decode_query(&encode_query(&q)).unwrap();
        prop_assert_eq!(got.edns.unwrap().ecs, Some(ecs));
    }

    #[test]
    fn corrupting_one_byte_never_panics(
        qname in arbitrary_name(),
        ecs in arbitrary_ecs(),
        pos_seed in any::<u16>(),
        val in any::<u8>(),
    ) {
        // Structured-then-corrupted packets reach deeper decode paths
        // than pure noise.
        let q = WireQuery {
            id: 7,
            rd: true,
            qname,
            qtype: TYPE_A,
            qclass: CLASS_IN,
            edns: Some(Edns { udp_payload: 1232, ecs: Some(ecs) }),
        };
        let mut wire = encode_query(&q);
        let pos = usize::from(pos_seed) % wire.len();
        wire[pos] = val;
        let _ = decode_query(&wire);
        let _ = decode_response(&wire);
    }
}

/// The compiled ECS trie against the obviously-correct model: a linear
/// scan for the longest stored prefix that covers the address and fits
/// the query's SOURCE PREFIX-LENGTH.
mod trie {
    use super::*;
    use anycast_netsim::Prefix;
    use anycast_serve::PrefixTrie;

    fn naive_lookup(
        entries: &[(Prefix, Ipv4Addr)],
        addr: Ipv4Addr,
        max_len: u8,
    ) -> Option<(Ipv4Addr, u8)> {
        entries
            .iter()
            .filter(|(p, _)| p.len() <= max_len.min(32) && p.contains(addr))
            // Ties on length are exact duplicates; `max_by_key` keeps the
            // last, matching the trie's insert-replaces semantics.
            .max_by_key(|(p, _)| p.len())
            .map(|&(p, a)| (a, p.len()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn trie_lookup_matches_naive_linear_scan(
            raw_entries in prop::collection::vec(
                // Nets drawn from 8 top bytes × dense mid bits so random
                // sets actually nest and share subtrees.
                (0u32..8, any::<u16>(), 0u8..33, any::<u32>()),
                0..40,
            ),
            raw_probes in prop::collection::vec((any::<u32>(), 0u8..40), 1..20),
        ) {
            let entries: Vec<(Prefix, Ipv4Addr)> = raw_entries
                .into_iter()
                .map(|(hi, mid, len, addr)| {
                    let net = (hi << 24) | (u32::from(mid) << 8);
                    (Prefix::from_raw(net, len), Ipv4Addr::from(addr))
                })
                .collect();
            let mut trie = PrefixTrie::new();
            for &(p, a) in &entries {
                trie.insert(p, a);
            }
            let distinct: std::collections::HashSet<_> =
                entries.iter().map(|(p, _)| p).collect();
            prop_assert_eq!(trie.entries(), distinct.len());
            // Random probes plus each entry's own network at several
            // source lengths — the interesting collision points.
            let mut probes: Vec<(Ipv4Addr, u8)> = raw_probes
                .into_iter()
                .map(|(a, l)| (Ipv4Addr::from(a), l))
                .collect();
            probes.extend(entries.iter().flat_map(|&(p, _)| {
                [
                    (p.network(), 32),
                    (p.network(), p.len()),
                    (Ipv4Addr::from(p.raw() | 0xFF), 24),
                ]
            }));
            for (addr, max_len) in probes {
                prop_assert_eq!(
                    trie.lookup(addr, max_len),
                    naive_lookup(&entries, addr, max_len),
                    "addr {} max_len {}",
                    addr,
                    max_len
                );
            }
        }
    }
}

/// The zero-alloc template path against the full encoder: for every
/// templatable query shape the patched bytes must be identical to what
/// `encode_response` would have produced — the invariant that makes the
/// fast path invisible on the wire.
mod templates {
    use super::*;
    use anycast_serve::template::{response_len, write_response};
    use anycast_serve::{AnswerRr, QueryView};

    /// ECS source prefix lengths the acceptance gate names explicitly.
    const SOURCE_LENS: [u8; 6] = [0, 8, 16, 20, 24, 32];

    fn ecs_at(addr: u32, spl: u8) -> WireEcs {
        let mask = if spl == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(spl))
        };
        WireEcs {
            addr: Ipv4Addr::from(addr & mask),
            source_prefix_len: spl,
            scope_prefix_len: 0,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2048))]

        #[test]
        fn patched_template_is_byte_identical_to_full_encoder(
            id in any::<u16>(),
            rd in any::<bool>(),
            qname in arbitrary_name(),
            payload in 512u16..4096,
            spl_idx in 0usize..SOURCE_LENS.len(),
            ecs_addr in any::<u32>(),
            with_edns in any::<bool>(),
            with_ecs in any::<bool>(),
            // Two independent answers stand in for a hot table swap: the
            // same parsed view patched with each must match the encoder
            // run with each — templates carry no cross-answer state.
            addr_a in any::<u32>(),
            ttl_a in 0u32..86_400,
            addr_b in any::<u32>(),
            ttl_b in 0u32..86_400,
            scope_raw in 0u8..33,
        ) {
            let spl = SOURCE_LENS[spl_idx];
            let ecs = (with_edns && with_ecs).then(|| ecs_at(ecs_addr, spl));
            let scope = if ecs.is_some() { scope_raw } else { 0 };
            let q = WireQuery {
                id,
                rd,
                qname,
                qtype: TYPE_A,
                qclass: CLASS_IN,
                edns: with_edns.then_some(Edns { udp_payload: payload, ecs }),
            };
            let wire = encode_query(&q);
            let view = QueryView::parse(&wire).expect("canonical queries are templatable");
            prop_assert_eq!(view.id, id);
            let decoded = decode_query(&wire).unwrap();
            let mut out = vec![0u8; 4096];
            for (addr, ttl) in [
                (Ipv4Addr::from(addr_a), ttl_a),
                (Ipv4Addr::from(addr_b), ttl_b),
            ] {
                let rr = AnswerRr::new(addr, ttl);
                let n = write_response(&mut out, &view, &rr, scope);
                prop_assert_eq!(n, response_len(&view), "advertised length is exact");
                let want = encode_response(
                    &decoded,
                    Some(&DnsAnswer::scoped(addr, ttl, scope)),
                    0,
                    4096,
                );
                prop_assert_eq!(&out[..n], &want[..], "template == full encoder");
            }
        }
    }
}

/// Crafted pointer abuse beyond what random bytes reliably hit.
mod pointers {
    use super::*;
    use anycast_serve::wire::WireError;

    #[test]
    fn pointer_chain_that_descends_is_followed() {
        // A valid two-name layout: "cdn.example" at offset 0, then
        // "www" + pointer at offset 13.
        let mut buf = Vec::new();
        buf.extend_from_slice(&[3, b'c', b'd', b'n', 7]);
        buf.extend_from_slice(b"example");
        buf.push(0);
        let second = buf.len();
        buf.extend_from_slice(&[3, b'w', b'w', b'w', 0xC0, 0x00]);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.name().unwrap(), DnsName::new("cdn.example").unwrap());
        assert_eq!(c.pos(), second);
        assert_eq!(c.name().unwrap(), DnsName::new("www.cdn.example").unwrap());
    }

    #[test]
    fn non_descending_chains_are_rejected() {
        // offset 0: label "a" then pointer to 4; offset 4: pointer to 0 —
        // a cycle through two sites.
        let buf = [1, b'a', 0xC0, 0x04, 0xC0, 0x00];
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.name(),
            Err(WireError::ForwardPointer | WireError::PointerLoop)
        ));
    }

    #[test]
    fn deep_but_legal_chains_stay_bounded() {
        // Chain: name_k points at name_{k-1}; all strictly descending.
        // 40 hops exceeds MAX_POINTER_JUMPS and must be rejected, not
        // stack-overflow.
        let mut buf = Vec::new();
        buf.extend_from_slice(&[1, b'a', 0]); // offset 0: "a"
        let mut prev = 0u16;
        let mut offsets = vec![0u16];
        for _ in 0..40 {
            let here = buf.len() as u16;
            buf.extend_from_slice(&[1, b'b']);
            buf.extend_from_slice(&(0xC000 | prev).to_be_bytes());
            prev = here;
            offsets.push(here);
        }
        let mut c = Cursor::new(&buf);
        c.skip(usize::from(prev)).unwrap();
        let r = c.name();
        // Either rejected for exceeding the jump cap (expected: 40 > 32)
        // or for the name growing too long; never a panic or hang.
        assert!(matches!(
            r,
            Err(WireError::PointerLoop | WireError::NameTooLong | WireError::BadName)
        ));
    }
}
