//! Property tests for the core contribution: the predictor and the load
//! planner must hold their invariants under arbitrary inputs.

use anycast_beacon::{BeaconDataset, BeaconMeasurement, Slot, Target};
use anycast_core::loadaware::{plan_shedding, total_overload, withdraw, SiteLoad};
use anycast_core::{GroupKey, Grouping, Metric, Predictor, PredictorConfig, Study, StudyConfig};
use anycast_dns::LdnsId;
use anycast_geo::GeoPoint;
use anycast_netsim::{Day, Prefix24, SiteId, WorldGenConfig};
use anycast_workload::{Scenario, ScenarioConfig};
use proptest::prelude::*;

/// Builds a dataset from a compact spec: per (prefix, target) a list of
/// rtts.
fn dataset(spec: &[(u8, Option<u16>, Vec<f64>)]) -> BeaconDataset {
    let mut ds = BeaconDataset::new();
    let mut exec = 0u64;
    for (prefix_octet, site, rtts) in spec {
        let prefix = Prefix24::containing(std::net::Ipv4Addr::new(11, 0, *prefix_octet, 1));
        let (slot, target) = match site {
            None => (Slot::Anycast, Target::Anycast),
            Some(s) => (Slot::GeoClosest, Target::Unicast(SiteId(*s))),
        };
        let rows: Vec<BeaconMeasurement> = rtts
            .iter()
            .map(|&rtt| {
                exec += 1;
                BeaconMeasurement {
                    measurement_id: slot.id_for(exec),
                    slot,
                    prefix,
                    ldns: LdnsId(0),
                    ecs: None,
                    target,
                    served_site: SiteId(site.unwrap_or(0)),
                    rtt_ms: rtt,
                    failed: false,
                    day: Day(0),
                    time_s: 0.0,
                }
            })
            .collect();
        ds.extend(rows);
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn predictor_never_uses_undersampled_targets(
        anycast_rtts in prop::collection::vec(1.0..300.0f64, 0..40),
        unicast_rtts in prop::collection::vec(1.0..300.0f64, 0..40),
        min_samples in 1usize..30,
    ) {
        let ds = dataset(&[
            (1, None, anycast_rtts.clone()),
            (1, Some(3), unicast_rtts.clone()),
        ]);
        let cfg = PredictorConfig { grouping: Grouping::Ecs, metric: Metric::P25, min_samples, failure_penalty_ms: 3_000.0 };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        let prefix = Prefix24::containing(std::net::Ipv4Addr::new(11, 0, 1, 1));
        match table.predict(GroupKey::Ecs(prefix.into())) {
            None => {
                prop_assert!(anycast_rtts.len() < min_samples && unicast_rtts.len() < min_samples);
            }
            Some(Target::Anycast) => prop_assert!(anycast_rtts.len() >= min_samples),
            Some(Target::Unicast(_)) => prop_assert!(unicast_rtts.len() >= min_samples),
        }
    }

    #[test]
    fn predictor_choice_minimizes_the_metric(
        a in prop::collection::vec(1.0..300.0f64, 10..30),
        b in prop::collection::vec(1.0..300.0f64, 10..30),
        c in prop::collection::vec(1.0..300.0f64, 10..30),
    ) {
        let ds = dataset(&[(1, None, a.clone()), (1, Some(2), b.clone()), (1, Some(5), c.clone())]);
        let cfg = PredictorConfig { grouping: Grouping::Ecs, metric: Metric::P25, min_samples: 10, failure_penalty_ms: 3_000.0 };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        let prefix = Prefix24::containing(std::net::Ipv4Addr::new(11, 0, 1, 1));
        let chosen = table.predict(GroupKey::Ecs(prefix.into())).unwrap();
        let score = |v: &Vec<f64>| Metric::P25.score(v).unwrap();
        let best = score(&a).min(score(&b)).min(score(&c));
        let chosen_score = match chosen {
            Target::Anycast => score(&a),
            Target::Unicast(SiteId(2)) => score(&b),
            Target::Unicast(SiteId(5)) => score(&c),
            _ => unreachable!(),
        };
        prop_assert!((chosen_score - best).abs() < 1e-9);
    }

    #[test]
    fn hybrid_filter_is_monotone_in_threshold(
        gains in prop::collection::vec(0.0..100.0f64, 1..20),
        t1 in 0.0..50.0f64,
        t2 in 0.0..50.0f64,
    ) {
        // Build a table with one redirected group per gain value.
        let spec: Vec<(u8, Option<u16>, Vec<f64>)> = gains
            .iter()
            .enumerate()
            .flat_map(|(i, &g)| {
                vec![
                    (i as u8, None, vec![100.0 + g; 12]),
                    (i as u8, Some(1), vec![100.0; 12]),
                ]
            })
            .collect();
        let ds = dataset(&spec);
        let cfg = PredictorConfig { grouping: Grouping::Ecs, metric: Metric::P25, min_samples: 10, failure_penalty_ms: 3_000.0 };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(table.hybrid_filter(hi).len() <= table.hybrid_filter(lo).len());
        // Every surviving group clears the threshold.
        for (_, choice) in table.hybrid_filter(lo).iter() {
            prop_assert!(choice.gain_ms.unwrap() >= lo - 1e-9);
        }
    }

    #[test]
    fn shedding_never_overloads_a_destination(
        loads in prop::collection::vec((0.0..500.0f64, 1.0..300.0f64), 1..20)
    ) {
        let sites: Vec<SiteLoad> = loads
            .iter()
            .enumerate()
            .map(|(i, &(load, capacity))| SiteLoad {
                site: SiteId(i as u16),
                location: GeoPoint::new(0.0, (i as f64 * 17.0) % 360.0 - 180.0),
                load,
                capacity,
            })
            .collect();
        let initially_healthy: Vec<bool> = sites.iter().map(|s| s.overload() == 0.0).collect();
        let (moves, after) = plan_shedding(&sites);
        // Load is conserved.
        let before_total: f64 = sites.iter().map(|s| s.load).sum();
        let after_total: f64 = after.iter().map(|s| s.load).sum();
        prop_assert!((before_total - after_total).abs() < 1e-6);
        // No healthy site was pushed over capacity.
        for (i, s) in after.iter().enumerate() {
            if initially_healthy[i] {
                prop_assert!(s.load <= s.capacity + 1e-6, "site {i} overloaded by shedding");
            }
        }
        // Shedding never increases total overload.
        prop_assert!(total_overload(&after) <= total_overload(&sites) + 1e-6);
        // Moves are positive and reference existing sites.
        for m in &moves {
            prop_assert!(m.amount > 0.0);
            prop_assert!((m.from.0 as usize) < sites.len());
            prop_assert!((m.to.0 as usize) < sites.len());
        }
    }

    #[test]
    fn withdrawal_conserves_load(
        loads in prop::collection::vec((0.0..500.0f64, 1.0..300.0f64), 2..20),
        victim in 0usize..20,
    ) {
        let sites: Vec<SiteLoad> = loads
            .iter()
            .enumerate()
            .map(|(i, &(load, capacity))| SiteLoad {
                site: SiteId(i as u16),
                location: GeoPoint::new(0.0, (i as f64 * 17.0) % 360.0 - 180.0),
                load,
                capacity,
            })
            .collect();
        let victim = SiteId((victim % loads.len()) as u16);
        let after = withdraw(&sites, victim);
        let before_total: f64 = sites.iter().map(|s| s.load).sum();
        let after_total: f64 = after.iter().map(|s| s.load).sum();
        prop_assert!((before_total - after_total).abs() < 1e-6);
        prop_assert_eq!(after.iter().find(|s| s.site == victim).unwrap().load, 0.0);
    }
}

// Each case runs three full campaign days over a Small world, so this
// block keeps its case count low; CI invokes it by name.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn study_worker_invariance(
        seed in 0u64..500,
        outages in any::<bool>(),
    ) {
        // The threaded campaign engine must be output-transparent: for a
        // fixed seed, the joined dataset AND the drained DNS log are
        // byte-identical for any worker count, including in worlds where
        // front-ends fail mid-day.
        let world = |seed: u64| {
            let mut cfg = ScenarioConfig::small(seed);
            if outages {
                cfg.net.p_site_outage = 0.25;
                cfg.net.p_site_drain = 0.15;
            }
            Scenario::build(cfg).expect("valid config")
        };
        let run = |workers: usize| {
            let cfg = StudyConfig { workers, ..StudyConfig::default() };
            let mut st = Study::new(world(seed), cfg);
            st.run_day(Day(0));
            (st.dataset().measurements().to_vec(), st.dns_log().to_vec())
        };
        let (m1, d1) = run(1);
        prop_assert!(!m1.is_empty(), "campaign produced no measurements");
        for workers in [2usize, 8] {
            let (m, d) = run(workers);
            prop_assert_eq!(&m, &m1, "measurements diverge at {} workers", workers);
            prop_assert_eq!(&d, &d1, "dns log diverges at {} workers", workers);
        }
    }
}

// Same transparency requirement on a policy-routed 10,000-AS world: the
// generated topology, the catchment tables behind every route, and the
// study output must all be bit-identical across worker counts. Route
// dynamics are boosted so mid-day incremental recomputes are exercised,
// not just the steady fast path.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn policy_world_study_worker_invariance(seed in 0u64..100) {
        let world = |seed: u64| {
            let mut cfg = ScenarioConfig::small(seed);
            cfg.net.worldgen = Some(WorldGenConfig {
                p_session_flap: 0.02,
                p_border_flap: 0.01,
                p_egress_shift: 0.03,
                ..WorldGenConfig::with_ases(10_000)
            });
            cfg.net.p_site_outage = 0.25;
            cfg.net.p_site_drain = 0.15;
            Scenario::build(cfg).expect("valid config")
        };
        let run = |workers: usize| {
            let cfg = StudyConfig { workers, ..StudyConfig::default() };
            let mut st = Study::new(world(seed), cfg);
            st.run_day(Day(0));
            (st.dataset().measurements().to_vec(), st.dns_log().to_vec())
        };
        let (m1, d1) = run(1);
        prop_assert!(!m1.is_empty(), "campaign produced no measurements");
        for workers in [2usize, 8] {
            let (m, d) = run(workers);
            prop_assert_eq!(&m, &m1, "measurements diverge at {} workers", workers);
            prop_assert_eq!(&d, &d1, "dns log diverges at {} workers", workers);
        }
    }
}
