//! The obs-neutrality contract, pinned end to end.
//!
//! Instrumentation is write-only: it never draws randomness and never
//! feeds a value back into simulation state. Two things must therefore
//! hold for the same seed:
//!
//! 1. **Output bytes are invariant** — obs enabled, disabled, or the
//!    campaign spread over any worker count, the joined dataset and the
//!    DNS log are byte-identical.
//! 2. **Deterministic metrics are invariant** — the counter/histogram
//!    slice of the snapshot (`Snapshot::deterministic`) is identical for
//!    any worker count, because every deterministic series tallies the
//!    event stream, not the scheduling.
//!
//! This file is a dedicated integration-test binary: `obs::capture`
//! serializes capture windows, and nothing else runs in this process, so
//! exact-count comparisons are safe.

use anycast_core::{Study, StudyConfig};
use anycast_netsim::Day;
use anycast_obs::Snapshot;
use anycast_workload::{Scenario, ScenarioConfig};
use proptest::prelude::*;

/// One campaign day; returns the output bytes (joined dataset + DNS log,
/// via the derived `Debug` forms, which cover every field).
fn run_campaign(seed: u64, workers: usize, outages: bool) -> String {
    let mut cfg = ScenarioConfig::small(seed);
    if outages {
        cfg.net.p_site_outage = 0.25;
        cfg.net.p_site_drain = 0.15;
    }
    let scenario = Scenario::build(cfg).expect("valid config");
    let study_cfg = StudyConfig {
        workers,
        ..StudyConfig::default()
    };
    let mut st = Study::new(scenario, study_cfg);
    st.run_day(Day(0));
    format!("{:?}\n{:?}", st.dataset().measurements(), st.dns_log())
}

/// Runs the campaign inside a capture window, returning output bytes and
/// the deterministic metrics delta.
fn captured_run(seed: u64, workers: usize, outages: bool) -> (String, Snapshot) {
    anycast_obs::set_enabled(true);
    let (bytes, delta) = anycast_obs::capture(|| run_campaign(seed, workers, outages));
    (bytes, delta.deterministic())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn outputs_and_deterministic_metrics_are_obs_and_worker_invariant(
        seed in 0u64..200,
        outages in any::<bool>(),
    ) {
        // Baseline: sequential, obs recording.
        let (bytes_1w, metrics_1w) = captured_run(seed, 1, outages);
        prop_assert!(
            metrics_1w.counter_sum("beacon_executions_total") > 0,
            "instrumentation recorded nothing"
        );

        // Worker counts must change neither output bytes nor the
        // deterministic metric slice.
        for workers in [2usize, 8] {
            let (bytes, metrics) = captured_run(seed, workers, outages);
            prop_assert_eq!(&bytes, &bytes_1w, "output bytes diverge at {} workers", workers);
            prop_assert_eq!(
                &metrics, &metrics_1w,
                "deterministic metrics diverge at {} workers", workers
            );
        }

        // Disabling obs must change no output byte either (and records
        // nothing at all).
        anycast_obs::set_enabled(false);
        let (bytes_off, delta_off) = anycast_obs::capture(|| run_campaign(seed, 2, outages));
        anycast_obs::set_enabled(true);
        prop_assert_eq!(&bytes_off, &bytes_1w, "output bytes change when obs is disabled");
        prop_assert_eq!(delta_off.deterministic().counter_sum("beacon_executions_total"), 0);
    }
}

#[test]
fn per_day_counters_match_the_dataset() {
    // The per-day labeled counters must agree with what the dataset
    // itself says: rows tallied per day equal rows joined per day.
    anycast_obs::set_enabled(true);
    let ((rows, failed), delta) = anycast_obs::capture(|| {
        let scenario = Scenario::build(ScenarioConfig::small(7)).expect("valid config");
        let mut st = Study::new(scenario, StudyConfig::default());
        st.run_day(Day(0));
        let rows = st.dataset().measurements().len() as u64;
        let failed = st
            .dataset()
            .measurements()
            .iter()
            .filter(|m| m.failed)
            .count() as u64;
        (rows, failed)
    });
    assert_eq!(
        delta.counter_with("study_day_rows_total", &[("day", "0")]),
        rows
    );
    assert_eq!(
        delta.counter_with("study_day_failed_rows_total", &[("day", "0")]),
        failed
    );
    assert!(delta.counter_with("study_day_events_total", &[("day", "0")]) > 0);
}
