//! The full §3 measurement campaign, orchestrated.
//!
//! A [`Study`] drives beacons through a [`Scenario`] the way production
//! drove them through Bing: a small fraction of each client's queries carry
//! the beacon, each beacon makes its four measurements through the client's
//! real resolver against the CDN's authoritative servers, and at the end of
//! each day the backend joins client-side HTTP results with server-side DNS
//! logs into the growing [`BeaconDataset`].
//!
//! # The parallel deterministic engine
//!
//! Calder et al. joined ~1B beacon measurements per day; the campaign is
//! the hot path behind every figure. `run_day` is therefore built around
//! **splittable determinism** rather than one shared sequential RNG:
//!
//! 1. **Schedule.** Each client's beacon count and timestamps for the day
//!    are drawn from a private stream derived as
//!    `stream_rng(seed, [SCHEDULE_STREAM, day, client])` — no client's
//!    draws can perturb another's.
//! 2. **Order.** The scheduled beacons are sorted into one global event
//!    list by `(time, client, beacon)` and numbered; event *i* of `day`
//!    gets execution id `(day << 28) | i`, globally unique across the
//!    campaign without any shared counter.
//! 3. **Execute.** Events fan out over worker threads with
//!    [`anycast_pipeline::map_ordered`]; each beacon draws its noise from
//!    `stream_rng(seed, [BEACON_STREAM, day, client, beacon])` and routes
//!    against a shared read-only [`RouteSnapshot`] built once for the day.
//!    Per-worker scratch state (authoritative server, resolver caches) is
//!    output-transparent: beacon hostnames are unique, so resolver caches
//!    only ever hit within a single execution.
//! 4. **Merge.** Outputs come back in event order, so the HTTP rows and
//!    the DNS log are globally time-ordered and **bit-identical for any
//!    worker count** — the same contract the pipeline crate's sharded
//!    ingestion makes, pinned end-to-end by the `study-worker-invariance`
//!    proptest.

use std::collections::HashMap;

use anycast_analysis::poor_paths::PrefixDayPerf;
use anycast_analysis::quantile::median;
use anycast_beacon::{
    join, BeaconClient, BeaconDataset, FetchConfig, MeasurementPolicy, Target, TimingModel,
};
use anycast_dns::{AuthoritativeServer, DnsName, DnsQueryLog, Ldns, LdnsId};
use anycast_geo::GeoPoint;
use anycast_netsim::{stream_rng, ClientAttachment, Day, Prefix24, RouteSnapshot};
use anycast_obs::span;
use anycast_pipeline::map_ordered;
use anycast_workload::{ldns_assign, temporal, Scenario};

/// First key of every scheduling stream ("schedule").
const SCHEDULE_STREAM: u64 = 0x7363_6865_6475_6c65;
/// First key of every per-beacon noise stream ("beacon!").
const BEACON_STREAM: u64 = 0x62_6561_636f_6e21;
/// Bits of the execution id reserved for the within-day event index; the
/// day number occupies the bits above. 2^28 beacons/day is two orders of
/// magnitude past the Paper-scale world.
const EXEC_INDEX_BITS: u32 = 28;
/// Per-worker bounded output queue depth for the ordered merge.
const QUEUE_DEPTH: usize = 16;

/// Campaign parameters.
///
/// **RNG stream identity.** Derived streams are keyed only by
/// `(scenario seed, day, client, beacon index)`, so a knob invalidates
/// pinned outputs exactly when it changes which streams exist or what is
/// asked of them:
///
/// * `beacon_rate` **affects stream identity** — it changes each client's
///   scheduled beacon count, hence the event list and every downstream id;
/// * `candidates` **affects stream identity** of the measurement policy's
///   answers (which unicast targets a beacon fetches);
/// * `timing` and `fetch` change how many draws a beacon makes from *its
///   own* stream (and the reported values), but never another stream's;
/// * `ttl_s`, `min_unicast_samples`, and `workers` are **stream-neutral**:
///   `workers` in particular is provably output-neutral (the
///   worker-invariance proptest pins it).
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Fraction of queries that carry the beacon ("a small fraction of
    /// search response pages", §1). Affects RNG stream identity.
    pub beacon_rate: f64,
    /// Candidate-set size for the DNS measurement policy (§3.3's ten).
    /// Affects which targets are measured, hence stream contents.
    pub candidates: usize,
    /// Measurement answer TTL, seconds (longer than a beacon run).
    /// Stream-neutral.
    pub ttl_s: u32,
    /// Browser timing accuracy model. Changes per-beacon draws, not
    /// stream identity.
    pub timing: TimingModel,
    /// Client-side fetch timeout/retry behavior (matters only in worlds
    /// with scheduled front-end failures). Changes per-beacon draws, not
    /// stream identity.
    pub fetch: FetchConfig,
    /// Minimum samples for a per-day unicast median to count in the §5
    /// daily poor-path analysis. Stream-neutral.
    pub min_unicast_samples: usize,
    /// Worker threads for `run_day` (≥ 1). Output bytes never depend on
    /// it. Defaults to `$ANYCAST_STUDY_WORKERS` when set, else 1.
    pub workers: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            beacon_rate: 0.04,
            candidates: 10,
            ttl_s: 300,
            timing: TimingModel::default(),
            fetch: FetchConfig::default(),
            min_unicast_samples: 6,
            workers: default_workers(),
        }
    }
}

/// Worker count from `$ANYCAST_STUDY_WORKERS` (CI exercises the threaded
/// path this way), defaulting to sequential.
fn default_workers() -> usize {
    std::env::var("ANYCAST_STUDY_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

/// One scheduled beacon execution: client `client`'s beacon number
/// `beacon` of the day, firing at `time_s`.
#[derive(Debug, Clone, Copy)]
struct Event {
    time_s: f64,
    client: usize,
    beacon: u64,
}

/// Per-worker scratch state for a day's event fan-out. The authoritative
/// server is a clone of the shared (pure, id-keyed) policy whose log is
/// drained after every event; resolver replicas are built lazily per
/// worker. Both are output-transparent: beacon hostnames are globally
/// unique, so a resolver cache can only hit within one execution.
struct DayWorker {
    auth: AuthoritativeServer<MeasurementPolicy>,
    resolvers: HashMap<LdnsId, Ldns>,
    /// Wall-time accumulator for this worker's beacon executions
    /// (`study.beacon`, labeled by worker index). Observability only:
    /// spans never touch RNG streams or outputs.
    beacon_span: std::sync::Arc<anycast_obs::SpanAcc>,
}

/// A running measurement campaign.
#[derive(Debug)]
pub struct Study {
    scenario: Scenario,
    policy: MeasurementPolicy,
    dataset: BeaconDataset,
    dns_log: Vec<DnsQueryLog>,
    zone: DnsName,
    cfg: StudyConfig,
    /// Client prefix → LDNS, fixed for the scenario (built once).
    ldns_of: HashMap<Prefix24, LdnsId>,
    /// Client index → LDNS (the hot-path form of `ldns_of`).
    client_ldns: Vec<LdnsId>,
    /// Resolver id → where the CDN's geolocation database believes the
    /// resolver is (pure per resolver, precomputed).
    believed: Vec<GeoPoint>,
}

impl Study {
    /// Sets up the campaign over a scenario.
    pub fn new(scenario: Scenario, cfg: StudyConfig) -> Study {
        let policy = MeasurementPolicy::new(
            scenario.internet.site_locations(),
            scenario.addressing,
            cfg.candidates,
            cfg.ttl_s,
            scenario.seed ^ 0x6265_6163_6f6e,
        );
        let ldns_of: HashMap<Prefix24, LdnsId> = scenario
            .clients
            .iter()
            .map(|c| (c.prefix, scenario.ldns.resolver_of(c.prefix)))
            .collect();
        let client_ldns: Vec<LdnsId> = scenario
            .clients
            .iter()
            .map(|c| ldns_of[&c.prefix])
            .collect();
        let believed: Vec<GeoPoint> = scenario
            .ldns
            .resolvers
            .iter()
            .map(|r| ldns_assign::believed_ldns_location(r, &scenario.geodb))
            .collect();
        Study {
            scenario,
            policy,
            dataset: BeaconDataset::new(),
            dns_log: Vec::new(),
            zone: DnsName::new("probe.cdn.example").expect("static zone is valid"),
            cfg,
            ldns_of,
            client_ldns,
            believed,
        }
    }

    /// The scenario under study.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The campaign configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// The joined measurements collected so far.
    pub fn dataset(&self) -> &BeaconDataset {
        &self.dataset
    }

    /// Server-side authoritative DNS log collected so far, in global time
    /// order (the backend's view before the join).
    pub fn dns_log(&self) -> &[DnsQueryLog] {
        &self.dns_log
    }

    /// Runs one day of beacons: schedules each client's executions from
    /// its private derived stream, sorts them into one global timeline,
    /// fans them out across `cfg.workers` threads against a shared per-day
    /// route snapshot, and merges results back in time order — so DNS and
    /// HTTP logs come out exactly as a sequential run would produce them,
    /// for any worker count. The day ends with the backend join of DNS and
    /// HTTP logs into the dataset.
    pub fn run_day(&mut self, day: Day) {
        let s = &self.scenario;
        let cfg = &self.cfg;
        let zone = &self.zone;
        let policy = &self.policy;
        let client_ldns = &self.client_ldns;
        let believed = &self.believed;
        let workers = cfg.workers.max(1);
        let day_factor = temporal::day_volume_factor(day);

        // Phase 1: schedule the day's beacon executions, one derived
        // stream per client. The floor+Bernoulli count and the rejection-
        // sampled timestamps all come from the client's own stream, so the
        // schedule is computable per client in isolation.
        let schedule_timer = span!("study.schedule").start();
        let schedules: Vec<Vec<f64>> = map_ordered(
            &s.clients,
            workers,
            QUEUE_DEPTH,
            |_| (),
            |(), idx, c| {
                let mut rng = stream_rng(s.seed, &[SCHEDULE_STREAM, u64::from(day.0), idx as u64]);
                let expected = c.volume as f64 * cfg.beacon_rate * day_factor;
                let n = anycast_workload::scenario::sample_count(expected, &mut rng);
                (0..n)
                    .map(|_| temporal::sample_query_time(c.attachment.location.lon_deg(), &mut rng))
                    .collect()
            },
        );
        let mut events: Vec<Event> = Vec::new();
        for (client, times) in schedules.iter().enumerate() {
            for (beacon, &time_s) in times.iter().enumerate() {
                events.push(Event {
                    time_s,
                    client,
                    beacon: beacon as u64,
                });
            }
        }
        // Total order: arrival time, then (client, beacon) as the
        // deterministic tiebreak for simultaneous arrivals.
        events.sort_unstable_by(|a, b| {
            a.time_s
                .total_cmp(&b.time_s)
                .then(a.client.cmp(&b.client))
                .then(a.beacon.cmp(&b.beacon))
        });
        assert!(
            (events.len() as u64) < 1 << EXEC_INDEX_BITS,
            "day of {} events overflows the execution-id index space",
            events.len()
        );
        drop(schedule_timer);

        // Phase 2: build the day's route memo once (shared read-only), then
        // fan events out; outputs come back merged in event order.
        let attachments: Vec<ClientAttachment> = s.clients.iter().map(|c| c.attachment).collect();
        let routes = span!("study.snapshot_build")
            .time(|| RouteSnapshot::build_parallel(&s.internet, &attachments, day, workers));
        let execute_timer = span!("study.execute").start();
        let outputs: Vec<(Vec<anycast_beacon::HttpResult>, Vec<DnsQueryLog>)> = map_ordered(
            &events,
            workers,
            QUEUE_DEPTH,
            |worker| DayWorker {
                auth: AuthoritativeServer::new(policy.clone(), false),
                resolvers: HashMap::new(),
                beacon_span: span!("study.beacon", &worker.to_string()),
            },
            |w, i, ev| {
                let _beacon_timer = w.beacon_span.start();
                let c = &s.clients[ev.client];
                let ldns_id = client_ldns[ev.client];
                let ldns = w.resolvers.entry(ldns_id).or_insert_with(|| {
                    let r = s.ldns.resolver(ldns_id);
                    Ldns::new(r.id, r.kind, r.location, r.supports_ecs)
                        .with_ecs_prefix_len(r.ecs_prefix_len)
                });
                let beacon_client = BeaconClient {
                    prefix: c.prefix,
                    attachment: c.attachment,
                };
                let execution = (u64::from(day.0) << EXEC_INDEX_BITS) | i as u64;
                let mut rng = stream_rng(
                    s.seed,
                    &[BEACON_STREAM, u64::from(day.0), ev.client as u64, ev.beacon],
                );
                let rows = anycast_beacon::run_beacon(
                    &s.internet,
                    routes.client(ev.client),
                    &s.addressing,
                    &cfg.timing,
                    &cfg.fetch,
                    zone,
                    &beacon_client,
                    ldns,
                    believed[ldns_id.0 as usize],
                    &mut w.auth,
                    execution,
                    ev.time_s,
                    &mut rng,
                );
                (rows, w.auth.drain_log())
            },
        );
        drop(execute_timer);

        // Phase 3: day-end backend processing — concatenate the already
        // time-ordered logs and join.
        let join_timer = span!("study.join").start();
        let mut http_rows = Vec::with_capacity(events.len() * 4);
        let mut dns_rows = Vec::with_capacity(events.len() * 4);
        for (rows, dns) in outputs {
            http_rows.extend(rows);
            dns_rows.extend(dns);
        }
        let joined = join(&http_rows, &dns_rows, &s.addressing);
        self.dataset.extend(joined);
        self.dns_log.extend(dns_rows);
        drop(join_timer);

        // Per-day campaign counters: tallied on the merge thread from the
        // already-ordered outputs, so the values are worker-count
        // invariant (the neutrality tests compare them directly).
        let day_label = day.0.to_string();
        let labels: &[(&str, &str)] = &[("day", &day_label)];
        let obs = anycast_obs::global();
        obs.counter_with("study_day_events_total", labels)
            .add(events.len() as u64);
        obs.counter_with("study_day_rows_total", labels)
            .add(http_rows.len() as u64);
        obs.counter_with("study_day_failed_rows_total", labels)
            .add(http_rows.iter().filter(|r| r.failed).count() as u64);
    }

    /// Runs a span of consecutive days. Each day derives its own streams,
    /// so days are independent too — running days 0..3 then 3..6 equals
    /// running 0..6.
    pub fn run_days(&mut self, start: Day, count: u32) {
        for day in start.span(count) {
            self.run_day(day);
        }
    }

    /// Client prefix → LDNS map (the DNS side of the §6 LDNS evaluation).
    /// Fixed for the scenario; built once at [`Study::new`].
    pub fn ldns_of(&self) -> &HashMap<Prefix24, LdnsId> {
        &self.ldns_of
    }

    /// Client prefix → daily query volume (the figure weighting).
    pub fn volumes(&self) -> HashMap<Prefix24, u64> {
        self.scenario
            .clients
            .iter()
            .map(|c| (c.prefix, c.volume))
            .collect()
    }

    /// §5's end-of-day analysis: for each /24 with anycast measurements on
    /// `day`, the median anycast latency and the best per-front-end unicast
    /// median (front-ends with fewer than `min_unicast_samples` samples are
    /// skipped).
    pub fn daily_prefix_perf(&self, day: Day) -> Vec<PrefixDayPerf<Prefix24>> {
        let by_target = self.dataset.by_prefix_target(day);
        let mut prefixes: Vec<Prefix24> = by_target.keys().map(|&(p, _)| p).collect();
        prefixes.sort();
        prefixes.dedup();
        let mut out = Vec::new();
        for prefix in prefixes {
            let Some(anycast_samples) = by_target.get(&(prefix, Target::Anycast)) else {
                continue;
            };
            let Some(anycast_ms) = median(anycast_samples) else {
                continue;
            };
            let best_unicast = by_target
                .iter()
                .filter(|((p, t), v)| {
                    *p == prefix
                        && matches!(t, Target::Unicast(_))
                        && v.len() >= self.cfg.min_unicast_samples
                })
                .filter_map(|(_, v)| median(v))
                .fold(f64::INFINITY, f64::min);
            if best_unicast.is_finite() {
                out.push(PrefixDayPerf {
                    key: prefix,
                    anycast_ms,
                    best_unicast_ms: best_unicast,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_beacon::Slot;

    fn small_study(seed: u64) -> Study {
        Study::new(Scenario::small(seed), StudyConfig::default())
    }

    #[test]
    fn one_day_produces_joined_measurements() {
        let mut study = small_study(1);
        study.run_day(Day(0));
        assert!(!study.dataset().is_empty(), "no measurements collected");
        // Every measurement joined an LDNS identity.
        for m in study.dataset().measurements() {
            assert!((m.ldns.0 as usize) < study.scenario().ldns.resolvers.len());
        }
        // All four slots appear.
        let slots: std::collections::HashSet<Slot> = study
            .dataset()
            .measurements()
            .iter()
            .map(|m| m.slot)
            .collect();
        assert_eq!(slots.len(), 4);
    }

    #[test]
    fn executions_have_anycast_and_unicast_sides() {
        let mut study = small_study(2);
        study.run_day(Day(0));
        let execs = study.dataset().executions();
        assert!(!execs.is_empty());
        let complete = execs
            .iter()
            .filter(|e| e.anycast.is_some() && e.unicast.len() == 3)
            .count();
        assert_eq!(complete, execs.len(), "incomplete executions found");
    }

    #[test]
    fn beacon_volume_tracks_rate() {
        let mut study = small_study(3);
        study.run_day(Day(0));
        let total_volume: u64 = study.scenario().clients.iter().map(|c| c.volume).sum();
        let expected_execs = total_volume as f64 * study.config().beacon_rate;
        let got = study.dataset().executions().len() as f64;
        assert!(
            (got - expected_execs).abs() < 0.25 * expected_execs,
            "{got} executions vs expected {expected_execs}"
        );
    }

    #[test]
    fn daily_perf_is_nonempty_and_sane() {
        let mut study = small_study(4);
        study.run_day(Day(0));
        let perf = study.daily_prefix_perf(Day(0));
        assert!(!perf.is_empty());
        for p in &perf {
            assert!(p.anycast_ms > 0.0 && p.best_unicast_ms > 0.0);
        }
        // Some prefixes should have room for improvement, but not most —
        // the paper's ~20% headline (generous band for a small world).
        let poor = perf.iter().filter(|p| p.improvement_ms() > 10.0).count();
        let frac = poor as f64 / perf.len() as f64;
        assert!(frac > 0.01 && frac < 0.6, "poor fraction {frac}");
    }

    #[test]
    fn measurements_arrive_in_time_order() {
        // The event-driven day must produce time-ordered logs, like a real
        // log pipeline — and so must the drained DNS log.
        let mut study = small_study(8);
        study.run_day(Day(0));
        let times: Vec<f64> = study
            .dataset()
            .measurements()
            .iter()
            .map(|m| m.time_s)
            .collect();
        assert!(times.len() > 100);
        let sorted = times.windows(2).all(|w| w[0] <= w[1]);
        assert!(sorted, "day's measurements are not time-ordered");
        let dns_sorted = study
            .dns_log()
            .windows(2)
            .all(|w| w[0].time_s <= w[1].time_s);
        assert!(dns_sorted, "day's DNS log is not time-ordered");
    }

    #[test]
    fn multi_day_runs_accumulate() {
        let mut study = small_study(5);
        study.run_days(Day(0), 2);
        assert_eq!(study.dataset().days(), vec![Day(0), Day(1)]);
    }

    #[test]
    fn execution_ids_are_unique_across_days() {
        let mut study = small_study(9);
        study.run_days(Day(0), 2);
        let mut execs: Vec<u64> = study
            .dataset()
            .measurements()
            .iter()
            .map(|m| Slot::execution_of(m.measurement_id))
            .collect();
        execs.sort_unstable();
        execs.dedup();
        let grouped = study.dataset().executions().len();
        assert_eq!(execs.len(), grouped, "execution ids collide across days");
    }

    #[test]
    fn worker_count_does_not_change_outputs() {
        // The proptest pins this over many seeds/worker counts; this is
        // the fast always-on check.
        let run = |workers: usize| {
            let cfg = StudyConfig {
                workers,
                ..StudyConfig::default()
            };
            let mut study = Study::new(Scenario::small(11), cfg);
            study.run_day(Day(0));
            study
        };
        let seq = run(1);
        let par = run(3);
        assert_eq!(
            seq.dataset().measurements(),
            par.dataset().measurements(),
            "joined dataset differs across worker counts"
        );
        assert_eq!(seq.dns_log(), par.dns_log(), "DNS log differs");
    }

    #[test]
    fn maps_cover_population() {
        let study = small_study(6);
        let ldns_of = study.ldns_of();
        let volumes = study.volumes();
        assert_eq!(ldns_of.len(), study.scenario().clients.len());
        assert_eq!(volumes.len(), study.scenario().clients.len());
    }
}
