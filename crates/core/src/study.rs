//! The full §3 measurement campaign, orchestrated.
//!
//! A [`Study`] drives beacons through a [`Scenario`] the way production
//! drove them through Bing: a small fraction of each client's queries carry
//! the beacon, each beacon makes its four measurements through the client's
//! real resolver against the CDN's authoritative servers, and at the end of
//! each day the backend joins client-side HTTP results with server-side DNS
//! logs into the growing [`BeaconDataset`].

use std::collections::HashMap;

use anycast_analysis::poor_paths::PrefixDayPerf;
use anycast_analysis::quantile::median;
use anycast_beacon::{
    join, BeaconClient, BeaconDataset, FetchConfig, MeasurementIdGen, MeasurementPolicy, Target,
    TimingModel,
};
use anycast_dns::{AuthoritativeServer, DnsName, LdnsId};
use anycast_netsim::{Day, Prefix24, Timeline};
use anycast_workload::{ldns_assign, temporal, Scenario};
use rand::Rng;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Fraction of queries that carry the beacon ("a small fraction of
    /// search response pages", §1).
    pub beacon_rate: f64,
    /// Candidate-set size for the DNS measurement policy (§3.3's ten).
    pub candidates: usize,
    /// Measurement answer TTL, seconds (longer than a beacon run).
    pub ttl_s: u32,
    /// Browser timing accuracy model.
    pub timing: TimingModel,
    /// Client-side fetch timeout/retry behavior (matters only in worlds
    /// with scheduled front-end failures).
    pub fetch: FetchConfig,
    /// Minimum samples for a per-day unicast median to count in the §5
    /// daily poor-path analysis.
    pub min_unicast_samples: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            beacon_rate: 0.04,
            candidates: 10,
            ttl_s: 300,
            timing: TimingModel::default(),
            fetch: FetchConfig::default(),
            min_unicast_samples: 6,
        }
    }
}

/// A running measurement campaign.
#[derive(Debug)]
pub struct Study {
    scenario: Scenario,
    auth: AuthoritativeServer<MeasurementPolicy>,
    dataset: BeaconDataset,
    ids: MeasurementIdGen,
    zone: DnsName,
    cfg: StudyConfig,
}

impl Study {
    /// Sets up the campaign over a scenario.
    pub fn new(scenario: Scenario, cfg: StudyConfig) -> Study {
        let policy = MeasurementPolicy::new(
            scenario.internet.site_locations(),
            scenario.addressing,
            cfg.candidates,
            cfg.ttl_s,
            scenario.seed ^ 0x6265_6163_6f6e,
        );
        // The measurement zone's authoritative server; ECS handling is not
        // needed for the beacon (client identity comes from the HTTP side).
        let auth = AuthoritativeServer::new(policy, false);
        Study {
            scenario,
            auth,
            dataset: BeaconDataset::new(),
            ids: MeasurementIdGen::new(),
            zone: DnsName::new("probe.cdn.example").expect("static zone is valid"),
            cfg,
        }
    }

    /// The scenario under study.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The campaign configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// The joined measurements collected so far.
    pub fn dataset(&self) -> &BeaconDataset {
        &self.dataset
    }

    /// Runs one day of beacons: samples beacon executions from each
    /// client's query stream, schedules them on the day's event timeline,
    /// and runs them in arrival order (so DNS and HTTP logs come out
    /// time-ordered, as production logs do). The day ends with the backend
    /// join of DNS and HTTP logs into the dataset.
    pub fn run_day(&mut self, day: Day, rng: &mut impl Rng) {
        let s = &mut self.scenario;
        let day_factor = temporal::day_volume_factor(day);
        // Phase 1: schedule the day's beacon executions.
        let mut timeline: Timeline<usize> = Timeline::new();
        for (idx, c) in s.clients.iter().enumerate() {
            let expected = c.volume as f64 * self.cfg.beacon_rate * day_factor;
            let n = {
                let base = expected.floor();
                let extra = if rng.gen::<f64>() < expected - base {
                    1u64
                } else {
                    0
                };
                base as u64 + extra
            };
            for _ in 0..n {
                let t = temporal::sample_query_time(c.attachment.location.lon_deg(), rng);
                timeline.push(t, idx);
            }
        }
        // Phase 2: drain events in time order.
        let mut http_rows = Vec::with_capacity(timeline.len() * 4);
        while let Some((t, idx)) = timeline.pop() {
            let c = &s.clients[idx];
            let ldns_id = s.ldns.resolver_of(c.prefix);
            let believed = ldns_assign::believed_ldns_location(s.ldns.resolver(ldns_id), &s.geodb);
            let beacon_client = BeaconClient {
                prefix: c.prefix,
                attachment: c.attachment,
            };
            let rows = anycast_beacon::run_beacon(
                &s.internet,
                &s.addressing,
                &self.cfg.timing,
                &self.cfg.fetch,
                &self.zone,
                &beacon_client,
                s.ldns.resolver_mut(ldns_id),
                believed,
                &mut self.auth,
                &mut self.ids,
                day,
                t,
                rng,
            );
            http_rows.extend(rows);
        }
        // Phase 3: day-end backend processing — pull the DNS logs and join.
        let dns_logs = self.auth.drain_log();
        let joined = join(&http_rows, &dns_logs, &s.addressing);
        self.dataset.extend(joined);
    }

    /// Runs a span of consecutive days.
    pub fn run_days(&mut self, start: Day, count: u32, rng: &mut impl Rng) {
        for day in start.span(count) {
            self.run_day(day, rng);
        }
    }

    /// Client prefix → LDNS map (the DNS side of the §6 LDNS evaluation).
    pub fn ldns_of(&self) -> HashMap<Prefix24, LdnsId> {
        self.scenario
            .clients
            .iter()
            .map(|c| (c.prefix, self.scenario.ldns.resolver_of(c.prefix)))
            .collect()
    }

    /// Client prefix → daily query volume (the figure weighting).
    pub fn volumes(&self) -> HashMap<Prefix24, u64> {
        self.scenario
            .clients
            .iter()
            .map(|c| (c.prefix, c.volume))
            .collect()
    }

    /// §5's end-of-day analysis: for each /24 with anycast measurements on
    /// `day`, the median anycast latency and the best per-front-end unicast
    /// median (front-ends with fewer than `min_unicast_samples` samples are
    /// skipped).
    pub fn daily_prefix_perf(&self, day: Day) -> Vec<PrefixDayPerf<Prefix24>> {
        let by_target = self.dataset.by_prefix_target(day);
        let mut prefixes: Vec<Prefix24> = by_target.keys().map(|&(p, _)| p).collect();
        prefixes.sort();
        prefixes.dedup();
        let mut out = Vec::new();
        for prefix in prefixes {
            let Some(anycast_samples) = by_target.get(&(prefix, Target::Anycast)) else {
                continue;
            };
            let Some(anycast_ms) = median(anycast_samples) else {
                continue;
            };
            let best_unicast = by_target
                .iter()
                .filter(|((p, t), v)| {
                    *p == prefix
                        && matches!(t, Target::Unicast(_))
                        && v.len() >= self.cfg.min_unicast_samples
                })
                .filter_map(|(_, v)| median(v))
                .fold(f64::INFINITY, f64::min);
            if best_unicast.is_finite() {
                out.push(PrefixDayPerf {
                    key: prefix,
                    anycast_ms,
                    best_unicast_ms: best_unicast,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_beacon::Slot;
    use anycast_workload::scenario::seeded_rng;

    fn small_study(seed: u64) -> Study {
        Study::new(Scenario::small(seed), StudyConfig::default())
    }

    #[test]
    fn one_day_produces_joined_measurements() {
        let mut study = small_study(1);
        let mut rng = seeded_rng(1, 2);
        study.run_day(Day(0), &mut rng);
        assert!(!study.dataset().is_empty(), "no measurements collected");
        // Every measurement joined an LDNS identity.
        for m in study.dataset().measurements() {
            assert!((m.ldns.0 as usize) < study.scenario().ldns.resolvers.len());
        }
        // All four slots appear.
        let slots: std::collections::HashSet<Slot> = study
            .dataset()
            .measurements()
            .iter()
            .map(|m| m.slot)
            .collect();
        assert_eq!(slots.len(), 4);
    }

    #[test]
    fn executions_have_anycast_and_unicast_sides() {
        let mut study = small_study(2);
        let mut rng = seeded_rng(2, 2);
        study.run_day(Day(0), &mut rng);
        let execs = study.dataset().executions();
        assert!(!execs.is_empty());
        let complete = execs
            .iter()
            .filter(|e| e.anycast.is_some() && e.unicast.len() == 3)
            .count();
        assert_eq!(complete, execs.len(), "incomplete executions found");
    }

    #[test]
    fn beacon_volume_tracks_rate() {
        let mut study = small_study(3);
        let mut rng = seeded_rng(3, 2);
        study.run_day(Day(0), &mut rng);
        let total_volume: u64 = study.scenario().clients.iter().map(|c| c.volume).sum();
        let expected_execs = total_volume as f64 * study.config().beacon_rate;
        let got = study.dataset().executions().len() as f64;
        assert!(
            (got - expected_execs).abs() < 0.25 * expected_execs,
            "{got} executions vs expected {expected_execs}"
        );
    }

    #[test]
    fn daily_perf_is_nonempty_and_sane() {
        let mut study = small_study(4);
        let mut rng = seeded_rng(4, 2);
        study.run_day(Day(0), &mut rng);
        let perf = study.daily_prefix_perf(Day(0));
        assert!(!perf.is_empty());
        for p in &perf {
            assert!(p.anycast_ms > 0.0 && p.best_unicast_ms > 0.0);
        }
        // Some prefixes should have room for improvement, but not most —
        // the paper's ~20% headline (generous band for a small world).
        let poor = perf.iter().filter(|p| p.improvement_ms() > 10.0).count();
        let frac = poor as f64 / perf.len() as f64;
        assert!(frac > 0.01 && frac < 0.6, "poor fraction {frac}");
    }

    #[test]
    fn measurements_arrive_in_time_order() {
        // The event-driven day must produce time-ordered logs, like a real
        // log pipeline.
        let mut study = small_study(8);
        let mut rng = seeded_rng(8, 2);
        study.run_day(Day(0), &mut rng);
        let times: Vec<f64> = study
            .dataset()
            .measurements()
            .iter()
            .map(|m| m.time_s)
            .collect();
        assert!(times.len() > 100);
        let sorted = times.windows(2).all(|w| w[0] <= w[1]);
        assert!(sorted, "day's measurements are not time-ordered");
    }

    #[test]
    fn multi_day_runs_accumulate() {
        let mut study = small_study(5);
        let mut rng = seeded_rng(5, 2);
        study.run_days(Day(0), 2, &mut rng);
        assert_eq!(study.dataset().days(), vec![Day(0), Day(1)]);
    }

    #[test]
    fn maps_cover_population() {
        let study = small_study(6);
        let ldns_of = study.ldns_of();
        let volumes = study.volumes();
        assert_eq!(ldns_of.len(), study.scenario().clients.len());
        assert_eq!(volumes.len(), study.scenario().clients.len());
    }
}
