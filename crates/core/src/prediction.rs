//! The §6 history-based prediction scheme.
//!
//! "We evaluate (in emulation based on our real user measurements) a
//! prediction scheme that maps from a client group (clients of an LDNS or
//! clients within an ECS prefix) to its predicted best front-end. It
//! updates its mapping every prediction interval, set to one day in our
//! experiment. The scheme chooses to map a client group to the lowest
//! latency front-end across the measurements for that group, picking either
//! the anycast address or one of the unicast front-ends. … For a given
//! client group, we select among the front-ends with 20+ measurements from
//! the clients."
//!
//! The prediction **metric** is the 25th percentile (or median) of the
//! group's latency distribution to each target: "analysis of client data
//! showed that higher percentiles of latency distributions are very noisy
//! … The 25th percentile and median have lower coefficient of variation."

use std::collections::{BTreeMap, HashMap};

use anycast_analysis::{percentile, QuantileBackend};
use anycast_beacon::{BeaconDataset, Target};
use anycast_dns::LdnsId;
use anycast_netsim::{Day, Prefix24};
use anycast_pipeline::{ecs_record_with_failures, ldns_record_with_failures};
use anycast_pipeline::{route_ldns, route_prefix, DayWindow, ShardConfig};

/// The granularity clients are grouped at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grouping {
    /// Per client /24, via the EDNS client-subnet option.
    Ecs,
    /// Per recursive resolver — classic DNS redirection granularity.
    Ldns,
}

impl Grouping {
    /// The ECS scope prefix length an answer keyed at this granularity
    /// advertises to a query (RFC 7871 §7.2.1: scope reflects how the
    /// *answer* was derived, not what the query asked).
    ///
    /// * [`Grouping::Ecs`] answers to ECS-bearing queries are specific to
    ///   the /24 the table is keyed by → scope 24. Without ECS there is no
    ///   subnet in play → scope 0.
    /// * [`Grouping::Ldns`] answers depend only on which resolver asked,
    ///   so they advertise scope 0 even when the query carried ECS — the
    ///   answer is cacheable for *all* clients of that resolver, per §6's
    ///   LDNS/ECS distinction.
    pub fn answer_scope(self, query_has_ecs: bool) -> u8 {
        match self {
            Grouping::Ecs if query_has_ecs => 24,
            _ => 0,
        }
    }
}

/// A client group's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// An ECS /24 group.
    Ecs(Prefix24),
    /// An LDNS group.
    Ldns(LdnsId),
}

/// The latency statistic used to score a candidate front-end.
///
/// ```
/// use anycast_core::Metric;
///
/// let samples = [10.0, 20.0, 30.0, 40.0, 400.0]; // spiky tail
/// assert_eq!(Metric::P25.score(&samples), Some(20.0));
/// assert!(Metric::P95.score(&samples).unwrap() > 300.0); // noise-dominated
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// 25th percentile — the paper's headline choice.
    P25,
    /// Median — evaluated by the paper, "very similar performance".
    Median,
    /// 75th percentile — included for the noise ablation the paper argues
    /// from.
    P75,
    /// 95th percentile — ditto.
    P95,
}

impl Metric {
    /// The percentile value.
    pub fn p(&self) -> f64 {
        match self {
            Metric::P25 => 25.0,
            Metric::Median => 50.0,
            Metric::P75 => 75.0,
            Metric::P95 => 95.0,
        }
    }

    /// Applies the metric to a latency sample.
    pub fn score(&self, samples: &[f64]) -> Option<f64> {
        percentile(samples, self.p())
    }
}

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Client grouping granularity.
    pub grouping: Grouping,
    /// Scoring metric.
    pub metric: Metric,
    /// Minimum measurements a `(group, target)` pair needs to be considered
    /// (paper: 20).
    pub min_samples: usize,
    /// Latency substituted for a *failed* measurement when scoring a
    /// target, ms. Failed fetches carry no RTT, but silently dropping them
    /// would make a flaky front-end look as good as its successful fetches
    /// — the predictor would happily redirect clients to a site that times
    /// out on them. Charging each failure the fetch timeout makes
    /// unreliability count against a target exactly as much as being that
    /// slow. Irrelevant (by construction) in worlds without failures.
    pub failure_penalty_ms: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            grouping: Grouping::Ecs,
            metric: Metric::P25,
            min_samples: 20,
            failure_penalty_ms: 3_000.0,
        }
    }
}

/// A group's trained choice: the target to serve and the gain the metric
/// expects over anycast (`None` when anycast itself lacked enough samples
/// to be scored).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Choice {
    /// The target to serve this group.
    pub target: Target,
    /// Expected improvement over anycast under the training metric, ms
    /// (0 when the choice *is* anycast).
    pub gain_ms: Option<f64>,
}

/// One scored candidate in a group's ranking: a target and its latency
/// score under the training metric (lower is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCandidate {
    /// The candidate target.
    pub target: Target,
    /// The group's latency score for this target, ms.
    pub score_ms: f64,
}

/// The per-group choice table produced by one training pass — what the
/// authoritative server would serve during the next prediction interval.
///
/// Besides each group's winning [`Choice`], the table retains the **full
/// ranking** of eligible candidates ([`PredictionTable::ranked`], best
/// first). Rank 0 is by construction the served choice, so consumers that
/// only read `predict`/`choice` see exactly the single-best behavior;
/// the load-management control plane uses the deeper ranks as principled
/// spill targets when a front-end saturates.
#[derive(Debug, Clone, Default)]
pub struct PredictionTable {
    choices: HashMap<GroupKey, Choice>,
    ranked: HashMap<GroupKey, Vec<RankedCandidate>>,
}

impl PredictionTable {
    /// The predicted best target for a group, if the group had enough data.
    pub fn predict(&self, key: GroupKey) -> Option<Target> {
        self.choices.get(&key).map(|c| c.target)
    }

    /// The full choice (target + expected gain) for a group.
    pub fn choice(&self, key: GroupKey) -> Option<&Choice> {
        self.choices.get(&key)
    }

    /// Restricts the table to groups whose expected gain over anycast is at
    /// least `min_gain_ms` — the §6 hybrid: "use DNS-based redirection for
    /// a small subset of poor performing clients, while leaving others to
    /// anycast". Groups with unknown gain are dropped (no evidence, no
    /// redirect).
    pub fn hybrid_filter(&self, min_gain_ms: f64) -> PredictionTable {
        let choices: HashMap<GroupKey, Choice> = self
            .choices
            .iter()
            .filter(|(_, c)| {
                matches!(c.target, Target::Unicast(_))
                    && c.gain_ms.is_some_and(|g| g >= min_gain_ms)
            })
            .map(|(k, c)| (*k, *c))
            .collect();
        let ranked = self
            .ranked
            .iter()
            .filter(|(k, _)| choices.contains_key(k))
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        PredictionTable { choices, ranked }
    }

    /// Number of groups with a prediction.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether no group has a prediction.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Groups predicted to do better on a *unicast* front-end (the clients
    /// DNS redirection would actually move; everyone else stays on
    /// anycast).
    pub fn redirected_groups(&self) -> impl Iterator<Item = (GroupKey, &Choice)> {
        self.choices
            .iter()
            .filter(|(_, c)| !matches!(c.target, Target::Anycast))
            .map(|(k, c)| (*k, c))
    }

    /// Iterates over every `(group, choice)`.
    pub fn iter(&self) -> impl Iterator<Item = (GroupKey, Choice)> + '_ {
        self.choices.iter().map(|(k, c)| (*k, *c))
    }

    /// The group's full candidate ranking, best first (empty for groups
    /// without a prediction). Rank 0 is always the target
    /// [`PredictionTable::predict`] serves; deeper ranks are the next-best
    /// eligible front-ends, in score order with the same tie-break.
    pub fn ranked(&self, key: GroupKey) -> &[RankedCandidate] {
        self.ranked.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over every group's candidate ranking.
    pub fn iter_ranked(&self) -> impl Iterator<Item = (GroupKey, &[RankedCandidate])> {
        self.ranked.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

/// The history-based predictor.
#[derive(Debug, Clone, Copy)]
pub struct Predictor {
    cfg: PredictorConfig,
}

impl Predictor {
    /// Creates a predictor.
    pub fn new(cfg: PredictorConfig) -> Predictor {
        Predictor { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Trains a prediction table from one day of beacon measurements (the
    /// paper's one-day prediction interval).
    pub fn train(&self, data: &BeaconDataset, day: Day) -> PredictionTable {
        self.train_window(data, &[day])
    }

    /// Trains from a multi-day window, pooling each group's measurements
    /// across the days. The paper used a one-day interval only because
    /// "our sampling rate was limited due to engineering issues" (§6,
    /// footnote 2); longer windows trade staleness for sample count — the
    /// `ablation-training-window` sweep quantifies that trade.
    pub fn train_window(&self, data: &BeaconDataset, days: &[Day]) -> PredictionTable {
        let mut grouped: HashMap<(GroupKey, Target), Vec<f64>> = HashMap::new();
        let penalty = self.cfg.failure_penalty_ms;
        for &day in days {
            for m in data.day(day) {
                let (key, target, rtt) = match self.cfg.grouping {
                    Grouping::Ecs => {
                        let (p, t, rtt) = ecs_record_with_failures(m, penalty);
                        (GroupKey::Ecs(p), t, rtt)
                    }
                    Grouping::Ldns => {
                        let (l, t, rtt) = ldns_record_with_failures(m, penalty);
                        (GroupKey::Ldns(l), t, rtt)
                    }
                };
                grouped.entry((key, target)).or_default().push(rtt);
            }
        }
        let min = self.cfg.min_samples;
        let p = self.cfg.metric.p();
        choose(grouped.into_iter().filter_map(|((key, target), samples)| {
            if samples.len() < min {
                anycast_obs::counter!("prediction_groups_discarded_total").inc();
                return None;
            }
            anycast_obs::counter!("prediction_groups_trained_total").inc();
            percentile(&samples, p).map(|score| (key, target, score))
        }))
    }

    /// Trains from streaming per-`(group, target)` summaries instead of
    /// raw sample vectors — the pipeline-fed path. Any
    /// [`QuantileBackend`] works; with `anycast_pipeline::QuantileSketch`
    /// the scores carry that sketch's rank-error bound, and the
    /// `ablation-sketch-accuracy` sweep measures what that does to the
    /// Figure 9 outcome shares (within 2 points at the default bound).
    ///
    /// The eligibility filter and tie-breaks are byte-for-byte the ones
    /// [`Predictor::train_window`] applies: `QuantileBackend::count` is
    /// exact, so "20+ measurements" means the same thing on both paths.
    pub fn train_from_stats<S: QuantileBackend>(
        &self,
        stats: &BTreeMap<(GroupKey, Target), S>,
    ) -> PredictionTable {
        let min = self.cfg.min_samples as u64;
        let p = self.cfg.metric.p();
        choose(stats.iter().filter_map(|(&(key, target), backend)| {
            if backend.count() < min {
                anycast_obs::counter!("prediction_groups_discarded_total").inc();
                return None;
            }
            anycast_obs::counter!("prediction_groups_trained_total").inc();
            backend.percentile(p).map(|score| (key, target, score))
        }))
    }

    /// Trains from a multi-day window through the full streaming pipeline:
    /// each day's measurements are sharded by group key into per-worker
    /// latency sketches of rank-error bound `eps`, merged, pooled across
    /// the window, and scored with [`Predictor::train_from_stats`].
    ///
    /// This is the production-shaped equivalent of
    /// [`Predictor::train_window`]: same filter, same tie-breaks, scores
    /// within the sketch's error bound — and, per the pipeline's
    /// determinism contract, the same table for any `shard.workers`.
    pub fn train_sketched(
        &self,
        data: &BeaconDataset,
        days: &[Day],
        eps: f64,
        shard: ShardConfig,
    ) -> PredictionTable {
        let mut window: DayWindow<GroupKey> = DayWindow::new(eps);
        let penalty = self.cfg.failure_penalty_ms;
        for &day in days {
            let records = data.day(day).map(|m| match self.cfg.grouping {
                Grouping::Ecs => {
                    let (p, t, rtt) = ecs_record_with_failures(m, penalty);
                    (GroupKey::Ecs(p), t, rtt)
                }
                Grouping::Ldns => {
                    let (l, t, rtt) = ldns_record_with_failures(m, penalty);
                    (GroupKey::Ldns(l), t, rtt)
                }
            });
            let sketches = anycast_pipeline::sketch_day(records, eps, shard, route_group);
            window.absorb_day(day, sketches);
        }
        self.train_from_stats(&window.pooled(days))
    }
}

/// Shard route for prediction group keys (key-ownership discipline: a
/// group's records always land on the same worker).
fn route_group(key: &GroupKey) -> u64 {
    match *key {
        GroupKey::Ecs(p) => route_prefix(p),
        GroupKey::Ldns(l) => route_ldns(l),
    }
}

/// Shared selection pass: given `(group, target, score)` rows (already
/// filtered for eligibility), ranks each group's targets by score and
/// picks the argmin as the served choice, computing the expected gain
/// over anycast. Both the exact and the sketch-fed training paths end
/// here, so their tie-break behavior cannot drift apart.
///
/// The ranking is total — `(score, target_order)` with a unique order per
/// target — so rank 0 is exactly the single-best target the pre-ranking
/// implementation kept, and the deeper ranks extend it without changing
/// any served answer.
fn choose(scores: impl Iterator<Item = (GroupKey, Target, f64)>) -> PredictionTable {
    let mut ranked: HashMap<GroupKey, Vec<RankedCandidate>> = HashMap::new();
    for (key, target, score) in scores {
        ranked.entry(key).or_default().push(RankedCandidate {
            target,
            score_ms: score,
        });
    }
    let mut choices = HashMap::with_capacity(ranked.len());
    for (key, cands) in &mut ranked {
        cands.sort_by(|a, b| {
            a.score_ms
                .total_cmp(&b.score_ms)
                .then_with(|| target_order(a.target).cmp(&target_order(b.target)))
        });
        let best = cands[0];
        let anycast = cands
            .iter()
            .find(|c| c.target == Target::Anycast)
            .map(|c| c.score_ms);
        let gain_ms = match best.target {
            Target::Anycast => Some(0.0),
            Target::Unicast(_) => anycast.map(|a| a - best.score_ms),
        };
        choices.insert(
            *key,
            Choice {
                target: best.target,
                gain_ms,
            },
        );
    }
    PredictionTable { choices, ranked }
}

/// Deterministic tie-break: anycast wins ties (don't redirect without
/// evidence), then lower site id.
fn target_order(t: Target) -> u32 {
    match t {
        Target::Anycast => 0,
        Target::Unicast(s) => 1 + u32::from(s.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_beacon::{BeaconMeasurement, Slot};
    use anycast_netsim::SiteId;
    use std::net::Ipv4Addr;

    fn prefix(n: u8) -> Prefix24 {
        Prefix24::containing(Ipv4Addr::new(11, 0, n, 1))
    }

    /// Builds `n` measurements of `rtt` for (prefix, ldns, target) on day 0.
    fn rows(
        exec_base: u64,
        p: Prefix24,
        ldns: u32,
        target: Target,
        rtt: f64,
        n: usize,
    ) -> Vec<BeaconMeasurement> {
        (0..n)
            .map(|i| {
                let slot = match target {
                    Target::Anycast => Slot::Anycast,
                    Target::Unicast(_) => Slot::GeoClosest,
                };
                BeaconMeasurement {
                    measurement_id: slot.id_for(exec_base + i as u64),
                    slot,
                    prefix: p,
                    ldns: LdnsId(ldns),
                    ecs: None,
                    target,
                    served_site: match target {
                        Target::Anycast => SiteId(0),
                        Target::Unicast(s) => s,
                    },
                    rtt_ms: rtt,
                    failed: false,
                    day: Day(0),
                    time_s: 0.0,
                }
            })
            .collect()
    }

    /// Like [`rows`], but every fetch failed (`rtt_ms` carries the burnt
    /// timeout time, which training must replace with its penalty).
    fn failed_rows(
        exec_base: u64,
        p: Prefix24,
        ldns: u32,
        target: Target,
        n: usize,
    ) -> Vec<BeaconMeasurement> {
        let mut v = rows(exec_base, p, ldns, target, 6000.0, n);
        for m in &mut v {
            m.failed = true;
        }
        v
    }

    #[test]
    fn failures_count_against_a_flaky_target() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        // Site 3 is fast when it answers — but times out more often than
        // it answers. Scored on successes alone it would win at 30 ms; the
        // failure penalty must make reliability part of the score.
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30.0,
            25,
        ));
        ds.extend(failed_rows(
            200,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30,
        ));
        let cfg = PredictorConfig {
            metric: Metric::Median,
            ..Default::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Anycast),
            "a mostly-failing front-end must not be chosen"
        );
    }

    #[test]
    fn sketch_and_exact_training_agree_on_failures() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30.0,
            25,
        ));
        ds.extend(failed_rows(
            200,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30,
        ));
        for metric in [Metric::P25, Metric::Median] {
            let predictor = Predictor::new(PredictorConfig {
                metric,
                ..Default::default()
            });
            let exact = predictor.train(&ds, Day(0));
            let sketched = predictor.train_sketched(&ds, &[Day(0)], 0.01, ShardConfig::default());
            assert_eq!(
                exact.predict(GroupKey::Ecs(prefix(1))),
                sketched.predict(GroupKey::Ecs(prefix(1))),
                "{metric:?}: penalty handling must match on both paths"
            );
        }
    }

    #[test]
    fn picks_the_lowest_latency_target() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            50.0,
            25,
        ));
        ds.extend(rows(
            200,
            prefix(1),
            0,
            Target::Unicast(SiteId(4)),
            65.0,
            25,
        ));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Unicast(SiteId(3)))
        );
    }

    #[test]
    fn anycast_kept_when_it_wins() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 40.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            50.0,
            25,
        ));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Anycast)
        );
        assert_eq!(table.redirected_groups().count(), 0);
    }

    #[test]
    fn min_samples_filter_applies_per_target() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        // Better target, but only 5 samples: must be ignored.
        ds.extend(rows(100, prefix(1), 0, Target::Unicast(SiteId(3)), 10.0, 5));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Anycast)
        );
    }

    #[test]
    fn group_without_enough_data_has_no_prediction() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 3));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(table.predict(GroupKey::Ecs(prefix(1))), None);
        assert!(table.is_empty());
    }

    #[test]
    fn ldns_grouping_pools_prefixes() {
        let mut ds = BeaconDataset::new();
        // Two prefixes behind one LDNS, each contributing 15 anycast
        // samples: individually below min_samples, pooled above it.
        ds.extend(rows(0, prefix(1), 7, Target::Anycast, 80.0, 15));
        ds.extend(rows(100, prefix(2), 7, Target::Anycast, 80.0, 15));
        ds.extend(rows(
            200,
            prefix(1),
            7,
            Target::Unicast(SiteId(2)),
            30.0,
            15,
        ));
        ds.extend(rows(
            300,
            prefix(2),
            7,
            Target::Unicast(SiteId(2)),
            30.0,
            15,
        ));
        let cfg = PredictorConfig {
            grouping: Grouping::Ldns,
            ..Default::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ldns(LdnsId(7))),
            Some(Target::Unicast(SiteId(2)))
        );
        // ECS grouping on the same data: no group qualifies.
        let ecs_table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert!(ecs_table.is_empty());
    }

    #[test]
    fn metric_changes_the_decision() {
        // Target A: excellent p25, terrible tail. Target B: flat 55 ms.
        let mut ds = BeaconDataset::new();
        let mut a_samples = rows(0, prefix(1), 0, Target::Unicast(SiteId(1)), 20.0, 13);
        a_samples.extend(rows(
            50,
            prefix(1),
            0,
            Target::Unicast(SiteId(1)),
            200.0,
            12,
        ));
        ds.extend(a_samples);
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(2)),
            55.0,
            25,
        ));
        ds.extend(rows(200, prefix(1), 0, Target::Anycast, 300.0, 25));
        let p25 = Predictor::new(PredictorConfig {
            metric: Metric::P25,
            ..Default::default()
        });
        let p95 = Predictor::new(PredictorConfig {
            metric: Metric::P95,
            ..Default::default()
        });
        assert_eq!(
            p25.train(&ds, Day(0)).predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Unicast(SiteId(1)))
        );
        assert_eq!(
            p95.train(&ds, Day(0)).predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Unicast(SiteId(2)))
        );
    }

    #[test]
    fn training_only_sees_the_given_day() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        let mut tomorrow = rows(100, prefix(1), 0, Target::Unicast(SiteId(3)), 10.0, 25);
        for m in &mut tomorrow {
            m.day = Day(1);
        }
        ds.extend(tomorrow);
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        // Day-1 data must not leak into day-0 training.
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Anycast)
        );
    }

    #[test]
    fn tie_prefers_anycast() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 50.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            50.0,
            25,
        ));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1))),
            Some(Target::Anycast)
        );
    }

    /// A dataset with clearly separated per-target latency levels, varied
    /// enough that sketches have real distributions to summarize.
    fn separated_dataset() -> BeaconDataset {
        let mut ds = BeaconDataset::new();
        let mut exec = 0u64;
        for g in 0..12u8 {
            // Jittered but well-separated levels: anycast ~80, site 3
            // ~50+g, site 4 ~65. Jitter is deterministic in (g, i).
            for (target, base) in [
                (Target::Anycast, 80.0),
                (Target::Unicast(SiteId(3)), 50.0 + f64::from(g)),
                (Target::Unicast(SiteId(4)), 65.0),
            ] {
                for i in 0..30usize {
                    let jitter = ((i * 7 + usize::from(g) * 3) % 11) as f64 - 5.0;
                    ds.extend(rows(
                        exec,
                        prefix(g),
                        u32::from(g),
                        target,
                        base + jitter,
                        1,
                    ));
                    exec += 1;
                }
            }
        }
        ds
    }

    #[test]
    fn sketch_training_agrees_with_exact_training() {
        let ds = separated_dataset();
        for grouping in [Grouping::Ecs, Grouping::Ldns] {
            let predictor = Predictor::new(PredictorConfig {
                grouping,
                ..Default::default()
            });
            let exact = predictor.train(&ds, Day(0));
            let sketched = predictor.train_sketched(&ds, &[Day(0)], 0.01, ShardConfig::default());
            assert_eq!(
                exact.len(),
                sketched.len(),
                "{grouping:?}: same groups qualify"
            );
            for (key, choice) in exact.iter() {
                assert_eq!(
                    sketched.predict(key),
                    Some(choice.target),
                    "{grouping:?}: sketch path must pick the same target for {key:?}"
                );
            }
        }
    }

    #[test]
    fn sketch_training_is_worker_count_invariant() {
        let ds = separated_dataset();
        let predictor = Predictor::new(PredictorConfig::default());
        let tables: Vec<Vec<(GroupKey, Choice)>> = [1usize, 3]
            .iter()
            .map(|&workers| {
                let shard = ShardConfig {
                    workers,
                    ..ShardConfig::default()
                };
                let mut t: Vec<(GroupKey, Choice)> = predictor
                    .train_sketched(&ds, &[Day(0)], 0.01, shard)
                    .iter()
                    .collect();
                t.sort_by_key(|(k, _)| *k);
                t
            })
            .collect();
        assert_eq!(
            tables[0], tables[1],
            "worker count must not change the trained table"
        );
    }

    #[test]
    fn rank_zero_is_the_served_choice_and_ranks_are_sorted() {
        let ds = separated_dataset();
        for grouping in [Grouping::Ecs, Grouping::Ldns] {
            let table = Predictor::new(PredictorConfig {
                grouping,
                ..Default::default()
            })
            .train(&ds, Day(0));
            assert!(!table.is_empty());
            let mut seen_ranked = 0usize;
            for (key, cands) in table.iter_ranked() {
                seen_ranked += 1;
                assert!(!cands.is_empty());
                assert_eq!(
                    table.predict(key),
                    Some(cands[0].target),
                    "rank 0 must be what the table serves"
                );
                for w in cands.windows(2) {
                    assert!(
                        w[0].score_ms < w[1].score_ms
                            || (w[0].score_ms == w[1].score_ms
                                && target_order(w[0].target) < target_order(w[1].target)),
                        "ranking must be strictly ordered by (score, tie-break)"
                    );
                }
            }
            assert_eq!(seen_ranked, table.len(), "every choice has a ranking");
        }
    }

    /// Pins k=1 equivalence: the ranked selection must pick exactly the
    /// target the pre-ranking argmin loop picked — including on exact
    /// score ties — and compute the same gain.
    #[test]
    fn rank_zero_matches_the_legacy_argmin_rule() {
        use anycast_analysis::ExactQuantiles;
        // Groups with assorted tie patterns; min_samples satisfied.
        let mk = |v: f64| ExactQuantiles::from(vec![v; 25]);
        let mut stats: BTreeMap<(GroupKey, Target), ExactQuantiles> = BTreeMap::new();
        let rows: &[(u8, Target, f64)] = &[
            // Group 1: plain win for site 2.
            (1, Target::Anycast, 80.0),
            (1, Target::Unicast(SiteId(2)), 50.0),
            (1, Target::Unicast(SiteId(5)), 60.0),
            // Group 2: exact three-way tie — anycast must win.
            (2, Target::Anycast, 40.0),
            (2, Target::Unicast(SiteId(1)), 40.0),
            (2, Target::Unicast(SiteId(3)), 40.0),
            // Group 3: unicast tie — lower site id must win.
            (3, Target::Unicast(SiteId(7)), 30.0),
            (3, Target::Unicast(SiteId(4)), 30.0),
            (3, Target::Anycast, 90.0),
            // Group 4: no anycast measurement at all.
            (4, Target::Unicast(SiteId(6)), 20.0),
            (4, Target::Unicast(SiteId(8)), 25.0),
        ];
        for &(g, t, v) in rows {
            stats.insert((GroupKey::Ecs(prefix(g)), t), mk(v));
        }
        let table = Predictor::new(PredictorConfig::default()).train_from_stats(&stats);
        // Legacy rule, recomputed independently: strict lexicographic min
        // over (score, target_order).
        let mut legacy: HashMap<GroupKey, (Target, f64)> = HashMap::new();
        let mut anycast: HashMap<GroupKey, f64> = HashMap::new();
        for (&(key, t), q) in &stats {
            let s = q.percentile(25.0).unwrap();
            if t == Target::Anycast {
                anycast.insert(key, s);
            }
            match legacy.get(&key) {
                Some(&(pt, ps)) if ps < s || (ps == s && target_order(pt) <= target_order(t)) => {}
                _ => {
                    legacy.insert(key, (t, s));
                }
            }
        }
        assert_eq!(table.len(), legacy.len());
        for (key, &(t, s)) in &legacy {
            let c = table.choice(*key).expect("group trained");
            assert_eq!(c.target, t, "{key:?}");
            let want_gain = match t {
                Target::Anycast => Some(0.0),
                Target::Unicast(_) => anycast.get(key).map(|a| a - s),
            };
            assert_eq!(c.gain_ms, want_gain, "{key:?}");
        }
    }

    #[test]
    fn hybrid_filter_keeps_rankings_for_surviving_groups() {
        let ds = separated_dataset();
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let filtered = table.hybrid_filter(5.0);
        for (key, _) in filtered.iter() {
            assert!(
                !filtered.ranked(key).is_empty(),
                "surviving group keeps its ranking"
            );
            assert_eq!(filtered.ranked(key), table.ranked(key));
        }
        // Dropped groups lose theirs.
        let dropped = table
            .iter()
            .map(|(k, _)| k)
            .find(|k| filtered.choice(*k).is_none());
        if let Some(k) = dropped {
            assert!(filtered.ranked(k).is_empty());
        }
    }

    #[test]
    fn train_from_stats_applies_the_min_samples_filter() {
        use anycast_analysis::ExactQuantiles;
        let mut stats: BTreeMap<(GroupKey, Target), ExactQuantiles> = BTreeMap::new();
        let key = GroupKey::Ecs(prefix(1));
        stats.insert((key, Target::Anycast), ExactQuantiles::from(vec![80.0; 25]));
        // Faster, but too few samples to be eligible.
        stats.insert(
            (key, Target::Unicast(SiteId(3))),
            ExactQuantiles::from(vec![10.0; 5]),
        );
        let table = Predictor::new(PredictorConfig::default()).train_from_stats(&stats);
        assert_eq!(table.predict(key), Some(Target::Anycast));
    }
}
