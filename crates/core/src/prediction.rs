//! The §6 history-based prediction scheme.
//!
//! "We evaluate (in emulation based on our real user measurements) a
//! prediction scheme that maps from a client group (clients of an LDNS or
//! clients within an ECS prefix) to its predicted best front-end. It
//! updates its mapping every prediction interval, set to one day in our
//! experiment. The scheme chooses to map a client group to the lowest
//! latency front-end across the measurements for that group, picking either
//! the anycast address or one of the unicast front-ends. … For a given
//! client group, we select among the front-ends with 20+ measurements from
//! the clients."
//!
//! The prediction **metric** is the 25th percentile (or median) of the
//! group's latency distribution to each target: "analysis of client data
//! showed that higher percentiles of latency distributions are very noisy
//! … The 25th percentile and median have lower coefficient of variation."

use std::collections::{BTreeMap, BTreeSet, HashMap};

use anycast_analysis::{percentile, QuantileBackend};
use anycast_beacon::{BeaconDataset, Target};
use anycast_dns::LdnsId;
use anycast_netsim::{Day, Prefix};
use anycast_pipeline::{ecs_record_with_failures, ldns_record_with_failures};
use anycast_pipeline::{route_ldns, route_subnet, DayWindow, ShardConfig};

/// The granularity clients are grouped at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grouping {
    /// Per client /24, via the EDNS client-subnet option.
    Ecs,
    /// Per recursive resolver — classic DNS redirection granularity.
    Ldns,
}

impl Grouping {
    /// The ECS scope prefix length an answer keyed at this granularity
    /// advertises (RFC 7871 §7.2.1: scope reflects how the *answer* was
    /// derived, not what the query asked).
    ///
    /// * [`Grouping::Ecs`] answers derived from a table group advertise the
    ///   matched group's prefix length (`matched_len`). A table **miss** —
    ///   the anycast-VIP fallback — is derived from no subnet at all, so it
    ///   advertises scope 0 and one cache entry covers every client of the
    ///   resolver.
    /// * [`Grouping::Ldns`] answers depend only on which resolver asked,
    ///   so they advertise scope 0 even when the query carried ECS — the
    ///   answer is cacheable for *all* clients of that resolver, per §6's
    ///   LDNS/ECS distinction.
    pub fn answer_scope(self, matched_len: Option<u8>) -> u8 {
        match self {
            Grouping::Ecs => matched_len.unwrap_or(0),
            Grouping::Ldns => 0,
        }
    }
}

/// A client group's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// An ECS subnet group: a /24 from plain training, or a shorter
    /// aggregate produced by [`Predictor::train_aggregated`].
    Ecs(Prefix),
    /// An LDNS group.
    Ldns(LdnsId),
}

/// The latency statistic used to score a candidate front-end.
///
/// ```
/// use anycast_core::Metric;
///
/// let samples = [10.0, 20.0, 30.0, 40.0, 400.0]; // spiky tail
/// assert_eq!(Metric::P25.score(&samples), Some(20.0));
/// assert!(Metric::P95.score(&samples).unwrap() > 300.0); // noise-dominated
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// 25th percentile — the paper's headline choice.
    P25,
    /// Median — evaluated by the paper, "very similar performance".
    Median,
    /// 75th percentile — included for the noise ablation the paper argues
    /// from.
    P75,
    /// 95th percentile — ditto.
    P95,
}

impl Metric {
    /// The percentile value.
    pub fn p(&self) -> f64 {
        match self {
            Metric::P25 => 25.0,
            Metric::Median => 50.0,
            Metric::P75 => 75.0,
            Metric::P95 => 95.0,
        }
    }

    /// Applies the metric to a latency sample.
    pub fn score(&self, samples: &[f64]) -> Option<f64> {
        percentile(samples, self.p())
    }
}

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Client grouping granularity.
    pub grouping: Grouping,
    /// Scoring metric.
    pub metric: Metric,
    /// Minimum measurements a `(group, target)` pair needs to be considered
    /// (paper: 20).
    pub min_samples: usize,
    /// Latency substituted for a *failed* measurement when scoring a
    /// target, ms. Failed fetches carry no RTT, but silently dropping them
    /// would make a flaky front-end look as good as its successful fetches
    /// — the predictor would happily redirect clients to a site that times
    /// out on them. Charging each failure the fetch timeout makes
    /// unreliability count against a target exactly as much as being that
    /// slow. Irrelevant (by construction) in worlds without failures.
    pub failure_penalty_ms: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            grouping: Grouping::Ecs,
            metric: Metric::P25,
            min_samples: 20,
            failure_penalty_ms: 3_000.0,
        }
    }
}

/// A group's trained choice: the target to serve and the gain the metric
/// expects over anycast (`None` when anycast itself lacked enough samples
/// to be scored).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Choice {
    /// The target to serve this group.
    pub target: Target,
    /// Expected improvement over anycast under the training metric, ms
    /// (0 when the choice *is* anycast).
    pub gain_ms: Option<f64>,
}

/// One scored candidate in a group's ranking: a target and its latency
/// score under the training metric (lower is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCandidate {
    /// The candidate target.
    pub target: Target,
    /// The group's latency score for this target, ms.
    pub score_ms: f64,
}

/// The per-group choice table produced by one training pass — what the
/// authoritative server would serve during the next prediction interval.
///
/// Besides each group's winning [`Choice`], the table retains the **full
/// ranking** of eligible candidates ([`PredictionTable::ranked`], best
/// first). Rank 0 is by construction the served choice, so consumers that
/// only read `predict`/`choice` see exactly the single-best behavior;
/// the load-management control plane uses the deeper ranks as principled
/// spill targets when a front-end saturates.
#[derive(Debug, Clone, Default)]
pub struct PredictionTable {
    choices: HashMap<GroupKey, Choice>,
    ranked: HashMap<GroupKey, Vec<RankedCandidate>>,
    /// Distinct prefix lengths among the ECS keys, longest first — the
    /// probe order for [`PredictionTable::lookup_lpm`].
    ecs_lens: Vec<u8>,
}

impl PredictionTable {
    /// Builds a table from its parts, indexing the ECS prefix lengths
    /// present. Every constructor funnels through here so longest-prefix
    /// lookup stays consistent with the key set.
    fn from_parts(
        choices: HashMap<GroupKey, Choice>,
        ranked: HashMap<GroupKey, Vec<RankedCandidate>>,
    ) -> PredictionTable {
        let mut ecs_lens: Vec<u8> = choices
            .keys()
            .filter_map(|k| match k {
                GroupKey::Ecs(p) => Some(p.len()),
                GroupKey::Ldns(_) => None,
            })
            .collect();
        ecs_lens.sort_unstable_by(|a, b| b.cmp(a));
        ecs_lens.dedup();
        PredictionTable {
            choices,
            ranked,
            ecs_lens,
        }
    }

    /// The predicted best target for a group, if the group had enough data.
    pub fn predict(&self, key: GroupKey) -> Option<Target> {
        self.choices.get(&key).map(|c| c.target)
    }

    /// Longest-prefix-match lookup for an ECS subnet: the most specific
    /// table entry whose prefix covers `p`, together with the matching
    /// aggregate's prefix — whose length is the RFC 7871 §7.2.1 SCOPE
    /// PREFIX-LENGTH the answer should advertise.
    ///
    /// Entries *longer* than the query's own prefix are never matched: an
    /// answer must not claim a scope more specific than the SOURCE
    /// PREFIX-LENGTH the query disclosed.
    pub fn lookup_lpm(&self, p: Prefix) -> Option<(Prefix, &Choice)> {
        for &len in &self.ecs_lens {
            if len > p.len() {
                continue;
            }
            let truncated = p.truncate(len);
            if let Some(c) = self.choices.get(&GroupKey::Ecs(truncated)) {
                return Some((truncated, c));
            }
        }
        None
    }

    /// The full choice (target + expected gain) for a group.
    pub fn choice(&self, key: GroupKey) -> Option<&Choice> {
        self.choices.get(&key)
    }

    /// Restricts the table to groups whose expected gain over anycast is at
    /// least `min_gain_ms` — the §6 hybrid: "use DNS-based redirection for
    /// a small subset of poor performing clients, while leaving others to
    /// anycast". Groups with unknown gain are dropped (no evidence, no
    /// redirect).
    pub fn hybrid_filter(&self, min_gain_ms: f64) -> PredictionTable {
        let choices: HashMap<GroupKey, Choice> = self
            .choices
            .iter()
            .filter(|(_, c)| {
                matches!(c.target, Target::Unicast(_))
                    && c.gain_ms.is_some_and(|g| g >= min_gain_ms)
            })
            .map(|(k, c)| (*k, *c))
            .collect();
        let ranked = self
            .ranked
            .iter()
            .filter(|(k, _)| choices.contains_key(k))
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        PredictionTable::from_parts(choices, ranked)
    }

    /// Number of groups with a prediction.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether no group has a prediction.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Groups predicted to do better on a *unicast* front-end (the clients
    /// DNS redirection would actually move; everyone else stays on
    /// anycast).
    pub fn redirected_groups(&self) -> impl Iterator<Item = (GroupKey, &Choice)> {
        self.choices
            .iter()
            .filter(|(_, c)| !matches!(c.target, Target::Anycast))
            .map(|(k, c)| (*k, c))
    }

    /// Iterates over every `(group, choice)`.
    pub fn iter(&self) -> impl Iterator<Item = (GroupKey, Choice)> + '_ {
        self.choices.iter().map(|(k, c)| (*k, *c))
    }

    /// The group's full candidate ranking, best first (empty for groups
    /// without a prediction). Rank 0 is always the target
    /// [`PredictionTable::predict`] serves; deeper ranks are the next-best
    /// eligible front-ends, in score order with the same tie-break.
    pub fn ranked(&self, key: GroupKey) -> &[RankedCandidate] {
        self.ranked.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over every group's candidate ranking.
    pub fn iter_ranked(&self) -> impl Iterator<Item = (GroupKey, &[RankedCandidate])> {
        self.ranked.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

/// Configuration for the routing-aware prefix-aggregation training pass
/// ([`Predictor::train_aggregated`]).
///
/// Real ECS tables cannot afford one entry per /24: the paper's dataset
/// alone spans hundreds of thousands of client /24s, most of which the §6
/// scheme leaves on anycast anyway. Aggregation exploits that: a short
/// *default* prefix carries the choice most of its /24s agree on, and only
/// the /24s whose own measurements disagree — by more than
/// `regret_bound_ms` under the training metric — get longer-prefix
/// *exception* entries, ORTC-style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationConfig {
    /// Maximum latency regret, in ms, a covered /24 may suffer from being
    /// served its aggregate's choice instead of its own best: if the /24's
    /// measurements score the aggregate's target worse than its own best
    /// target by more than this bound, the /24 keeps a specific entry.
    /// `0.0` means any measurable disagreement forces an exception.
    pub regret_bound_ms: f64,
    /// Shortest aggregate prefix length the pass may emit (values above 24
    /// are clamped to 24). `24` disables aggregation entirely.
    pub min_prefix_len: u8,
}

impl Default for AggregationConfig {
    /// 7.5 ms regret at up to /8 aggregates. Single-digit-millisecond
    /// regret sits below typical day-over-day drift of a /24's P25
    /// estimate, and the `ablation-table-compression` sweep places this
    /// bound where compression reaches ~10× before next-day Figure 9
    /// quality begins to degrade.
    fn default() -> Self {
        AggregationConfig {
            regret_bound_ms: 7.5,
            min_prefix_len: 8,
        }
    }
}

impl AggregationConfig {
    /// Disables aggregation: with no aggregates allowed shorter than /24
    /// the pass degenerates to per-/24 training, and the resulting table is
    /// byte-identical to [`Predictor::train`]'s.
    pub fn disabled() -> Self {
        AggregationConfig {
            regret_bound_ms: 0.0,
            min_prefix_len: 24,
        }
    }
}

/// The history-based predictor.
#[derive(Debug, Clone, Copy)]
pub struct Predictor {
    cfg: PredictorConfig,
}

impl Predictor {
    /// Creates a predictor.
    pub fn new(cfg: PredictorConfig) -> Predictor {
        Predictor { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Trains a prediction table from one day of beacon measurements (the
    /// paper's one-day prediction interval).
    pub fn train(&self, data: &BeaconDataset, day: Day) -> PredictionTable {
        self.train_window(data, &[day])
    }

    /// Trains from a multi-day window, pooling each group's measurements
    /// across the days. The paper used a one-day interval only because
    /// "our sampling rate was limited due to engineering issues" (§6,
    /// footnote 2); longer windows trade staleness for sample count — the
    /// `ablation-training-window` sweep quantifies that trade.
    pub fn train_window(&self, data: &BeaconDataset, days: &[Day]) -> PredictionTable {
        let mut grouped: HashMap<(GroupKey, Target), Vec<f64>> = HashMap::new();
        let penalty = self.cfg.failure_penalty_ms;
        for &day in days {
            for m in data.day(day) {
                let (key, target, rtt) = match self.cfg.grouping {
                    Grouping::Ecs => {
                        let (p, t, rtt) = ecs_record_with_failures(m, penalty);
                        (GroupKey::Ecs(p.into()), t, rtt)
                    }
                    Grouping::Ldns => {
                        let (l, t, rtt) = ldns_record_with_failures(m, penalty);
                        (GroupKey::Ldns(l), t, rtt)
                    }
                };
                grouped.entry((key, target)).or_default().push(rtt);
            }
        }
        let min = self.cfg.min_samples;
        let p = self.cfg.metric.p();
        choose(grouped.into_iter().filter_map(|((key, target), samples)| {
            if samples.len() < min {
                anycast_obs::counter!("prediction_groups_discarded_total").inc();
                return None;
            }
            anycast_obs::counter!("prediction_groups_trained_total").inc();
            percentile(&samples, p).map(|score| (key, target, score))
        }))
    }

    /// Trains from streaming per-`(group, target)` summaries instead of
    /// raw sample vectors — the pipeline-fed path. Any
    /// [`QuantileBackend`] works; with `anycast_pipeline::QuantileSketch`
    /// the scores carry that sketch's rank-error bound, and the
    /// `ablation-sketch-accuracy` sweep measures what that does to the
    /// Figure 9 outcome shares (within 2 points at the default bound).
    ///
    /// The eligibility filter and tie-breaks are byte-for-byte the ones
    /// [`Predictor::train_window`] applies: `QuantileBackend::count` is
    /// exact, so "20+ measurements" means the same thing on both paths.
    pub fn train_from_stats<S: QuantileBackend>(
        &self,
        stats: &BTreeMap<(GroupKey, Target), S>,
    ) -> PredictionTable {
        let min = self.cfg.min_samples as u64;
        let p = self.cfg.metric.p();
        choose(stats.iter().filter_map(|(&(key, target), backend)| {
            if backend.count() < min {
                anycast_obs::counter!("prediction_groups_discarded_total").inc();
                return None;
            }
            anycast_obs::counter!("prediction_groups_trained_total").inc();
            backend.percentile(p).map(|score| (key, target, score))
        }))
    }

    /// Trains from a multi-day window through the full streaming pipeline:
    /// each day's measurements are sharded by group key into per-worker
    /// latency sketches of rank-error bound `eps`, merged, pooled across
    /// the window, and scored with [`Predictor::train_from_stats`].
    ///
    /// This is the production-shaped equivalent of
    /// [`Predictor::train_window`]: same filter, same tie-breaks, scores
    /// within the sketch's error bound — and, per the pipeline's
    /// determinism contract, the same table for any `shard.workers`.
    pub fn train_sketched(
        &self,
        data: &BeaconDataset,
        days: &[Day],
        eps: f64,
        shard: ShardConfig,
    ) -> PredictionTable {
        let mut window: DayWindow<GroupKey> = DayWindow::new(eps);
        let penalty = self.cfg.failure_penalty_ms;
        for &day in days {
            let records = data.day(day).map(|m| match self.cfg.grouping {
                Grouping::Ecs => {
                    let (p, t, rtt) = ecs_record_with_failures(m, penalty);
                    (GroupKey::Ecs(p.into()), t, rtt)
                }
                Grouping::Ldns => {
                    let (l, t, rtt) = ldns_record_with_failures(m, penalty);
                    (GroupKey::Ldns(l), t, rtt)
                }
            });
            let sketches = anycast_pipeline::sketch_day(records, eps, shard, route_group);
            window.absorb_day(day, sketches);
        }
        self.train_from_stats(&window.pooled(days))
    }

    /// Trains a *routing-aware aggregated* table: variable-length prefix
    /// groups instead of one entry per /24.
    ///
    /// The pass is ORTC-style (optimal routing table construction:
    /// defaults plus exceptions) over the binary trie of the day's
    /// measured /24s, in two phases:
    ///
    /// 1. **Bottom-up feasibility.** Each /24 *excludes* the targets its
    ///    own samples show to be more than `agg.regret_bound_ms` worse
    ///    than its best — every other target is an acceptable default for
    ///    it. Exclusion sets merge up the trie exactly as ORTC merges
    ///    next-hop sets: where the children can agree on a shared default
    ///    (their exclusions don't cover the whole target universe) the
    ///    node excludes the union; where they can't, the node defers and
    ///    excludes only the intersection.
    /// 2. **Top-down emission.** A node at depth ≥ `agg.min_prefix_len`
    ///    emits an aggregate entry only when the choice inherited from the
    ///    nearest emitting ancestor is infeasible for it (or when there is
    ///    no ancestor); the emitted choice is the *robustly* best feasible
    ///    target — lowest median of per-leaf metric scores, preferring
    ///    targets measured in a majority of the node's leaves, so a
    ///    default is good for the typical covered /24 rather than a lucky
    ///    cluster. A /24 whose inherited default is within the regret
    ///    bound of its own best (over *all* its samples — a damage check,
    ///    not a choice) is covered and emits nothing; one that disagrees
    ///    beyond the bound keeps a longer-prefix exception entry with its
    ///    own ranking. A /24 with too little data for any choice of its
    ///    own *borrows* its aggregate's (counted by
    ///    `prediction_groups_borrowed_total`) — sparse groups inherit
    ///    evidence from their covering prefix instead of falling back to
    ///    anycast.
    ///
    /// Lookup against the result is [`PredictionTable::lookup_lpm`]; the
    /// matched prefix length is the ECS answer scope. With
    /// [`AggregationConfig::disabled`] the output is byte-identical to
    /// [`Predictor::train`].
    ///
    /// Only meaningful for [`Grouping::Ecs`]; an LDNS-grouped predictor
    /// has no prefixes to aggregate and falls back to plain training.
    pub fn train_aggregated(
        &self,
        data: &BeaconDataset,
        day: Day,
        agg: &AggregationConfig,
    ) -> PredictionTable {
        if self.cfg.grouping != Grouping::Ecs {
            return self.train(data, day);
        }
        let penalty = self.cfg.failure_penalty_ms;
        let mut by_leaf: BTreeMap<u32, BTreeMap<Target, Vec<f64>>> = BTreeMap::new();
        for m in data.day(day) {
            let (p, t, rtt) = ecs_record_with_failures(m, penalty);
            by_leaf
                .entry(Prefix::from(p).raw())
                .or_default()
                .entry(t)
                .or_default()
                .push(rtt);
        }
        let leaves: Vec<(u32, BTreeMap<Target, Vec<f64>>)> = by_leaf.into_iter().collect();
        let universe: BTreeSet<Target> = leaves
            .iter()
            .flat_map(|(_, stats)| stats.keys().copied())
            .collect();
        let metric_p = self.cfg.metric.p();
        // Locality-scoped evidence transfer: the median per-leaf score of
        // each target across the leaf's allocation block. /24s of one
        // announced block share an access network and a metro, so a
        // front-end measured by a /24's block siblings is evidence about
        // the /24 itself — the premise the whole aggregation rests on.
        let mut block_samples: HashMap<u32, BTreeMap<Target, Vec<f64>>> = HashMap::new();
        let block_mask = u32::MAX << (32 - LOCALITY_BLOCK_LEN);
        for (net, stats) in &leaves {
            let per_block = block_samples.entry(net & block_mask).or_default();
            for (t, samples) in stats {
                if let Some(s) = percentile(samples, metric_p) {
                    per_block.entry(*t).or_default().push(s);
                }
            }
        }
        let block_scores: HashMap<u32, BTreeMap<Target, f64>> = block_samples
            .into_iter()
            .map(|(block, by_target)| {
                let medians = by_target
                    .into_iter()
                    .filter_map(|(t, scores)| percentile(&scores, 50.0).map(|m| (t, m)))
                    .collect();
                (block, medians)
            })
            .collect();
        let mut ctx = AggContext {
            metric_p,
            min_samples: self.cfg.min_samples,
            regret_bound_ms: agg.regret_bound_ms,
            min_prefix_len: agg.min_prefix_len.min(24),
            universe,
            block_scores,
            excls: HashMap::new(),
            rows: Vec::new(),
        };
        build_exclusions(&leaves, 0, 0, &mut ctx);
        emit_subtree(&leaves, 0, 0, 0, None, &mut ctx);
        choose(ctx.rows.into_iter())
    }
}

/// The prefix length of an *allocation block* for evidence-transfer
/// purposes: /24s within one /21 are treated as routing siblings whose
/// measurements speak for each other. Access networks announce contiguous
/// blocks, so this is the scale at which "my neighbor reached that
/// front-end fine" is evidence rather than a guess — transferring
/// evidence across wider spans is exactly the failure mode the per-leaf
/// exclusion sets exist to prevent.
const LOCALITY_BLOCK_LEN: u8 = 21;

/// Shared state of one [`Predictor::train_aggregated`] trie walk.
struct AggContext {
    metric_p: f64,
    min_samples: usize,
    regret_bound_ms: f64,
    min_prefix_len: u8,
    /// Every target measured anywhere on the training day — the universe
    /// the ORTC exclusion sets live in.
    universe: BTreeSet<Target>,
    /// Per-[`LOCALITY_BLOCK_LEN`]-block median of per-leaf metric scores,
    /// for vouching for targets a leaf never measured itself.
    block_scores: HashMap<u32, BTreeMap<Target, f64>>,
    /// Phase-1 output: each trie node's excluded targets, keyed by
    /// `(depth, index of the node's first leaf)`. Nodes at one depth
    /// cover disjoint leaf ranges, so the pair is a unique node identity.
    excls: HashMap<(u8, usize), BTreeSet<Target>>,
    /// Emitted `(group, target, score)` rows, fed to [`choose`] at the end
    /// so aggregates and exceptions get exactly the ranking, tie-break,
    /// and gain computation every other training path gets.
    rows: Vec<(GroupKey, Target, f64)>,
}

impl AggContext {
    /// Scores an internal node's targets for use as a *default*: the
    /// median of the target's per-leaf metric scores. When `strict`, a
    /// target is eligible only if it was measured in a majority of the
    /// node's leaves and carries ≥ `min_samples` samples pooled.
    ///
    /// Robustness is the point. A default is served to every covered /24
    /// that has no say of its own, so it must be good for the *typical*
    /// leaf. Scoring the naively pooled sample set instead would let one
    /// dense, lucky cluster of samples elect a front-end that is terrible
    /// for every other leaf under the node — exactly the failure the
    /// regret bound exists to prevent.
    fn pooled_scores(
        &self,
        leaves: &[(u32, BTreeMap<Target, Vec<f64>>)],
        strict: bool,
    ) -> Vec<(Target, f64)> {
        let mut leaf_scores: BTreeMap<Target, Vec<f64>> = BTreeMap::new();
        let mut counts: BTreeMap<Target, usize> = BTreeMap::new();
        for (_, stats) in leaves {
            for (t, samples) in stats {
                if let Some(s) = percentile(samples, self.metric_p) {
                    leaf_scores.entry(*t).or_default().push(s);
                }
                *counts.entry(*t).or_default() += samples.len();
            }
        }
        let quorum = if strict { leaves.len().div_ceil(2) } else { 1 };
        let min_samples = if strict { self.min_samples } else { 1 };
        leaf_scores
            .into_iter()
            .filter(|(t, per_leaf)| counts[t] >= min_samples && per_leaf.len() >= quorum)
            .filter_map(|(t, per_leaf)| percentile(&per_leaf, 50.0).map(|v| (t, v)))
            .collect()
    }

    /// The default an emitting node serves, with the ranking rows to
    /// record for it: the best-scored target the node's exclusion set
    /// allows, robust (majority-quorum) scores first, any-leaf scores as
    /// the fallback. `None` when nothing feasible was measured under the
    /// node — the node then defers to its children entirely.
    fn node_choice(
        &self,
        leaves: &[(u32, BTreeMap<Target, Vec<f64>>)],
        excl: &BTreeSet<Target>,
    ) -> Option<(Target, Vec<(Target, f64)>)> {
        for strict in [true, false] {
            let scored: Vec<(Target, f64)> = self
                .pooled_scores(leaves, strict)
                .into_iter()
                .filter(|(t, _)| !excl.contains(t))
                .collect();
            if let Some((best, _)) = best_scored(&scored) {
                return Some((best, scored));
            }
        }
        None
    }

    /// Whether the allocation block around the /24 at `net` vouches for
    /// serving it `t` despite the leaf itself never measuring `t`: the
    /// block's sibling /24s measured `t` within the regret bound of the
    /// leaf's own best (`best_all`).
    fn block_vouches(&self, net: u32, t: Target, best_all: f64) -> bool {
        let block = net & (u32::MAX << (32 - LOCALITY_BLOCK_LEN));
        self.block_scores
            .get(&block)
            .and_then(|m| m.get(&t))
            .is_some_and(|&s| s - best_all <= self.regret_bound_ms)
    }
}

/// The best-scored target among `scored`, under the global tie-break.
fn best_scored(scored: &[(Target, f64)]) -> Option<(Target, f64)> {
    scored.iter().copied().min_by(|a, b| {
        a.1.total_cmp(&b.1)
            .then_with(|| target_order(a.0).cmp(&target_order(b.0)))
    })
}

/// Phase 1 (bottom-up): the exclusion set of the trie node at `len`
/// whose leaf slice starts at `start` — the targets that are *not* an
/// acceptable default for some /24 below it. Mirrors ORTC's next-hop-set
/// merge, complemented: where ORTC intersects candidate sets, exclusions
/// union; where children's candidates are disjoint (exclusions cover the
/// whole universe) the node defers and keeps only the shared exclusions.
fn build_exclusions(
    leaves: &[(u32, BTreeMap<Target, Vec<f64>>)],
    start: usize,
    len: u8,
    ctx: &mut AggContext,
) -> BTreeSet<Target> {
    let excl = if leaves.len() == 1 || len == 24 {
        leaf_exclusions(leaves[0].0, &leaves[0].1, ctx)
    } else {
        let bit = 1u32 << (31 - len);
        let split = leaves.partition_point(|(n, _)| n & bit == 0);
        if split == 0 || split == leaves.len() {
            build_exclusions(leaves, start, len + 1, ctx)
        } else {
            let a = build_exclusions(&leaves[..split], start, len + 1, ctx);
            let b = build_exclusions(&leaves[split..], start + split, len + 1, ctx);
            let union: BTreeSet<Target> = a.union(&b).copied().collect();
            if union.len() < ctx.universe.len() {
                union
            } else {
                a.intersection(&b).copied().collect()
            }
        }
    };
    ctx.excls.insert((len, start), excl.clone());
    excl
}

/// A /24's exclusion set: the targets its own samples rule out as a
/// default. A target is *acceptable* when the leaf measured it within
/// the regret bound of the best of everything measured at the leaf, or
/// when it is anycast (the evidence-free safe harbor); anything else is
/// excluded unless the leaf's allocation block *vouches* for it — its
/// routing siblings' median score lands within the bound of the leaf's
/// own best. The vouch cuts both ways by design: it admits front-ends
/// the leaf never reached, and it overrides a thin, noisy measurement
/// that dissents from the block consensus — while a genuine dissenter,
/// whose own best truly beats the block's median by more than the bound,
/// keeps its veto. Exactly the damage check [`emit_leaf`] applies, so
/// phase 1's feasibility and phase 2's cover/exception decisions cannot
/// disagree. A leaf too sparse for a choice of its own excludes nothing:
/// it will borrow any default.
fn leaf_exclusions(
    net: u32,
    stats: &BTreeMap<Target, Vec<f64>>,
    ctx: &AggContext,
) -> BTreeSet<Target> {
    let own = stats
        .iter()
        .filter(|(_, samples)| samples.len() >= ctx.min_samples)
        .filter_map(|(t, samples)| percentile(samples, ctx.metric_p).map(|s| (*t, s)));
    let Some((own_target, _)) = best_scored(&own.collect::<Vec<_>>()) else {
        return BTreeSet::new();
    };
    let all: BTreeMap<Target, f64> = stats
        .iter()
        .filter_map(|(t, s)| percentile(s, ctx.metric_p).map(|v| (*t, v)))
        .collect();
    let best_all = all.values().copied().fold(f64::INFINITY, f64::min);
    ctx.universe
        .iter()
        .filter(|&&t| {
            let acceptable = match all.get(&t) {
                Some(&s) => s - best_all <= ctx.regret_bound_ms,
                None => t == Target::Anycast,
            };
            t != own_target && !acceptable && !ctx.block_vouches(net, t, best_all)
        })
        .copied()
        .collect()
}

/// Phase 2 (top-down): recursive emission over the trie node `(net, len)`
/// covering the leaf slice starting at `start` (sorted by /24 network
/// address). `inherited` is the choice of the nearest ancestor that
/// emitted an aggregate entry; a node emits only when that choice is in
/// its exclusion set (or no ancestor emitted), which is what makes the
/// resulting table ORTC-minimal for the phase-1 feasibility sets.
fn emit_subtree(
    leaves: &[(u32, BTreeMap<Target, Vec<f64>>)],
    start: usize,
    net: u32,
    len: u8,
    inherited: Option<Target>,
    ctx: &mut AggContext,
) {
    if leaves.is_empty() {
        return;
    }
    if len == 24 {
        emit_leaf(leaves[0].0, &leaves[0].1, inherited, ctx);
        return;
    }
    let mut inherited = inherited;
    // Aggregating a single leaf would only claim unmeasured address space
    // around it without saving an entry, so defaults need ≥ 2 leaves.
    if len >= ctx.min_prefix_len && leaves.len() > 1 {
        let excl = &ctx.excls[&(len, start)];
        let infeasible = inherited.is_none_or(|h| excl.contains(&h));
        if infeasible {
            if let Some((best, scored)) = ctx.node_choice(leaves, excl) {
                let key = GroupKey::Ecs(Prefix::from_raw(net, len));
                ctx.rows
                    .extend(scored.into_iter().map(|(t, s)| (key, t, s)));
                inherited = Some(best);
            }
        }
    }
    let bit = 1u32 << (31 - len);
    let split = leaves.partition_point(|(n, _)| n & bit == 0);
    emit_subtree(&leaves[..split], start, net, len + 1, inherited, ctx);
    emit_subtree(
        &leaves[split..],
        start + split,
        net | bit,
        len + 1,
        inherited,
        ctx,
    );
}

/// Leaf (/24) emission: exactly [`Predictor::train`]'s per-group behavior
/// when uncovered, cover/exception/borrow logic under an aggregate.
fn emit_leaf(
    net: u32,
    stats: &BTreeMap<Target, Vec<f64>>,
    inherited: Option<Target>,
    ctx: &mut AggContext,
) {
    let key = GroupKey::Ecs(Prefix::from_raw(net, 24));
    let mut eligible: Vec<(Target, f64)> = Vec::new();
    for (t, samples) in stats {
        if samples.len() < ctx.min_samples {
            if inherited.is_none() {
                anycast_obs::counter!("prediction_groups_discarded_total").inc();
            }
            continue;
        }
        if inherited.is_none() {
            anycast_obs::counter!("prediction_groups_trained_total").inc();
        }
        if let Some(s) = percentile(samples, ctx.metric_p) {
            eligible.push((*t, s));
        }
    }
    let own = best_scored(&eligible);
    match (inherited, own) {
        // No covering aggregate: behave exactly like plain training.
        (None, Some(_)) => ctx.rows.extend(eligible.iter().map(|&(t, s)| (key, t, s))),
        (None, None) => {}
        // Covered but too sparse for a choice of its own: borrow the
        // aggregate's — don't emit, don't fall back to anycast.
        (Some(_), None) => anycast_obs::counter!("prediction_groups_borrowed_total").inc(),
        (Some(h), Some((own_target, _))) => {
            if own_target == h {
                return; // agrees with the aggregate — covered
            }
            // Regret of serving `h` here, over *all* of the leaf's samples
            // (no eligibility filter: this is a damage check, not a
            // choice), with the allocation block's vouch overriding both
            // gaps and thin dissent — mirror of [`leaf_exclusions`].
            let all: Vec<(Target, f64)> = stats
                .iter()
                .filter_map(|(t, s)| percentile(s, ctx.metric_p).map(|v| (*t, v)))
                .collect();
            let best_all = all.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
            let acceptable = match all.iter().find(|(t, _)| *t == h) {
                Some(&(_, h_score)) => h_score - best_all <= ctx.regret_bound_ms,
                None => h == Target::Anycast,
            };
            let damaging = !acceptable && !ctx.block_vouches(net, h, best_all);
            if damaging {
                // Disagrees beyond the bound: longer-prefix exception.
                ctx.rows.extend(eligible.iter().map(|&(t, s)| (key, t, s)));
            }
        }
    }
}

/// Shard route for prediction group keys (key-ownership discipline: a
/// group's records always land on the same worker).
fn route_group(key: &GroupKey) -> u64 {
    match *key {
        GroupKey::Ecs(p) => route_subnet(p),
        GroupKey::Ldns(l) => route_ldns(l),
    }
}

/// Shared selection pass: given `(group, target, score)` rows (already
/// filtered for eligibility), ranks each group's targets by score and
/// picks the argmin as the served choice, computing the expected gain
/// over anycast. Both the exact and the sketch-fed training paths end
/// here, so their tie-break behavior cannot drift apart.
///
/// The ranking is total — `(score, target_order)` with a unique order per
/// target — so rank 0 is exactly the single-best target the pre-ranking
/// implementation kept, and the deeper ranks extend it without changing
/// any served answer.
fn choose(scores: impl Iterator<Item = (GroupKey, Target, f64)>) -> PredictionTable {
    let mut ranked: HashMap<GroupKey, Vec<RankedCandidate>> = HashMap::new();
    for (key, target, score) in scores {
        ranked.entry(key).or_default().push(RankedCandidate {
            target,
            score_ms: score,
        });
    }
    let mut choices = HashMap::with_capacity(ranked.len());
    for (key, cands) in &mut ranked {
        cands.sort_by(|a, b| {
            a.score_ms
                .total_cmp(&b.score_ms)
                .then_with(|| target_order(a.target).cmp(&target_order(b.target)))
        });
        let best = cands[0];
        let anycast = cands
            .iter()
            .find(|c| c.target == Target::Anycast)
            .map(|c| c.score_ms);
        let gain_ms = match best.target {
            Target::Anycast => Some(0.0),
            Target::Unicast(_) => anycast.map(|a| a - best.score_ms),
        };
        choices.insert(
            *key,
            Choice {
                target: best.target,
                gain_ms,
            },
        );
    }
    PredictionTable::from_parts(choices, ranked)
}

/// Deterministic tie-break: anycast wins ties (don't redirect without
/// evidence), then lower site id.
fn target_order(t: Target) -> u32 {
    match t {
        Target::Anycast => 0,
        Target::Unicast(s) => 1 + u32::from(s.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_beacon::{BeaconMeasurement, Slot};
    use anycast_netsim::{Prefix24, SiteId};
    use std::net::Ipv4Addr;

    fn prefix(n: u8) -> Prefix24 {
        Prefix24::containing(Ipv4Addr::new(11, 0, n, 1))
    }

    /// Builds `n` measurements of `rtt` for (prefix, ldns, target) on day 0.
    fn rows(
        exec_base: u64,
        p: Prefix24,
        ldns: u32,
        target: Target,
        rtt: f64,
        n: usize,
    ) -> Vec<BeaconMeasurement> {
        (0..n)
            .map(|i| {
                let slot = match target {
                    Target::Anycast => Slot::Anycast,
                    Target::Unicast(_) => Slot::GeoClosest,
                };
                BeaconMeasurement {
                    measurement_id: slot.id_for(exec_base + i as u64),
                    slot,
                    prefix: p,
                    ldns: LdnsId(ldns),
                    ecs: None,
                    target,
                    served_site: match target {
                        Target::Anycast => SiteId(0),
                        Target::Unicast(s) => s,
                    },
                    rtt_ms: rtt,
                    failed: false,
                    day: Day(0),
                    time_s: 0.0,
                }
            })
            .collect()
    }

    /// Like [`rows`], but every fetch failed (`rtt_ms` carries the burnt
    /// timeout time, which training must replace with its penalty).
    fn failed_rows(
        exec_base: u64,
        p: Prefix24,
        ldns: u32,
        target: Target,
        n: usize,
    ) -> Vec<BeaconMeasurement> {
        let mut v = rows(exec_base, p, ldns, target, 6000.0, n);
        for m in &mut v {
            m.failed = true;
        }
        v
    }

    #[test]
    fn failures_count_against_a_flaky_target() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        // Site 3 is fast when it answers — but times out more often than
        // it answers. Scored on successes alone it would win at 30 ms; the
        // failure penalty must make reliability part of the score.
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30.0,
            25,
        ));
        ds.extend(failed_rows(
            200,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30,
        ));
        let cfg = PredictorConfig {
            metric: Metric::Median,
            ..Default::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Anycast),
            "a mostly-failing front-end must not be chosen"
        );
    }

    #[test]
    fn sketch_and_exact_training_agree_on_failures() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30.0,
            25,
        ));
        ds.extend(failed_rows(
            200,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            30,
        ));
        for metric in [Metric::P25, Metric::Median] {
            let predictor = Predictor::new(PredictorConfig {
                metric,
                ..Default::default()
            });
            let exact = predictor.train(&ds, Day(0));
            let sketched = predictor.train_sketched(&ds, &[Day(0)], 0.01, ShardConfig::default());
            assert_eq!(
                exact.predict(GroupKey::Ecs(prefix(1).into())),
                sketched.predict(GroupKey::Ecs(prefix(1).into())),
                "{metric:?}: penalty handling must match on both paths"
            );
        }
    }

    #[test]
    fn picks_the_lowest_latency_target() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            50.0,
            25,
        ));
        ds.extend(rows(
            200,
            prefix(1),
            0,
            Target::Unicast(SiteId(4)),
            65.0,
            25,
        ));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Unicast(SiteId(3)))
        );
    }

    #[test]
    fn anycast_kept_when_it_wins() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 40.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            50.0,
            25,
        ));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Anycast)
        );
        assert_eq!(table.redirected_groups().count(), 0);
    }

    #[test]
    fn min_samples_filter_applies_per_target() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        // Better target, but only 5 samples: must be ignored.
        ds.extend(rows(100, prefix(1), 0, Target::Unicast(SiteId(3)), 10.0, 5));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Anycast)
        );
    }

    #[test]
    fn group_without_enough_data_has_no_prediction() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 3));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(table.predict(GroupKey::Ecs(prefix(1).into())), None);
        assert!(table.is_empty());
    }

    #[test]
    fn ldns_grouping_pools_prefixes() {
        let mut ds = BeaconDataset::new();
        // Two prefixes behind one LDNS, each contributing 15 anycast
        // samples: individually below min_samples, pooled above it.
        ds.extend(rows(0, prefix(1), 7, Target::Anycast, 80.0, 15));
        ds.extend(rows(100, prefix(2), 7, Target::Anycast, 80.0, 15));
        ds.extend(rows(
            200,
            prefix(1),
            7,
            Target::Unicast(SiteId(2)),
            30.0,
            15,
        ));
        ds.extend(rows(
            300,
            prefix(2),
            7,
            Target::Unicast(SiteId(2)),
            30.0,
            15,
        ));
        let cfg = PredictorConfig {
            grouping: Grouping::Ldns,
            ..Default::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ldns(LdnsId(7))),
            Some(Target::Unicast(SiteId(2)))
        );
        // ECS grouping on the same data: no group qualifies.
        let ecs_table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert!(ecs_table.is_empty());
    }

    #[test]
    fn metric_changes_the_decision() {
        // Target A: excellent p25, terrible tail. Target B: flat 55 ms.
        let mut ds = BeaconDataset::new();
        let mut a_samples = rows(0, prefix(1), 0, Target::Unicast(SiteId(1)), 20.0, 13);
        a_samples.extend(rows(
            50,
            prefix(1),
            0,
            Target::Unicast(SiteId(1)),
            200.0,
            12,
        ));
        ds.extend(a_samples);
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(2)),
            55.0,
            25,
        ));
        ds.extend(rows(200, prefix(1), 0, Target::Anycast, 300.0, 25));
        let p25 = Predictor::new(PredictorConfig {
            metric: Metric::P25,
            ..Default::default()
        });
        let p95 = Predictor::new(PredictorConfig {
            metric: Metric::P95,
            ..Default::default()
        });
        assert_eq!(
            p25.train(&ds, Day(0))
                .predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Unicast(SiteId(1)))
        );
        assert_eq!(
            p95.train(&ds, Day(0))
                .predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Unicast(SiteId(2)))
        );
    }

    #[test]
    fn training_only_sees_the_given_day() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 80.0, 25));
        let mut tomorrow = rows(100, prefix(1), 0, Target::Unicast(SiteId(3)), 10.0, 25);
        for m in &mut tomorrow {
            m.day = Day(1);
        }
        ds.extend(tomorrow);
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        // Day-1 data must not leak into day-0 training.
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Anycast)
        );
    }

    #[test]
    fn tie_prefers_anycast() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows(0, prefix(1), 0, Target::Anycast, 50.0, 25));
        ds.extend(rows(
            100,
            prefix(1),
            0,
            Target::Unicast(SiteId(3)),
            50.0,
            25,
        ));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        assert_eq!(
            table.predict(GroupKey::Ecs(prefix(1).into())),
            Some(Target::Anycast)
        );
    }

    /// A dataset with clearly separated per-target latency levels, varied
    /// enough that sketches have real distributions to summarize.
    fn separated_dataset() -> BeaconDataset {
        let mut ds = BeaconDataset::new();
        let mut exec = 0u64;
        for g in 0..12u8 {
            // Jittered but well-separated levels: anycast ~80, site 3
            // ~50+g, site 4 ~65. Jitter is deterministic in (g, i).
            for (target, base) in [
                (Target::Anycast, 80.0),
                (Target::Unicast(SiteId(3)), 50.0 + f64::from(g)),
                (Target::Unicast(SiteId(4)), 65.0),
            ] {
                for i in 0..30usize {
                    let jitter = ((i * 7 + usize::from(g) * 3) % 11) as f64 - 5.0;
                    ds.extend(rows(
                        exec,
                        prefix(g),
                        u32::from(g),
                        target,
                        base + jitter,
                        1,
                    ));
                    exec += 1;
                }
            }
        }
        ds
    }

    #[test]
    fn sketch_training_agrees_with_exact_training() {
        let ds = separated_dataset();
        for grouping in [Grouping::Ecs, Grouping::Ldns] {
            let predictor = Predictor::new(PredictorConfig {
                grouping,
                ..Default::default()
            });
            let exact = predictor.train(&ds, Day(0));
            let sketched = predictor.train_sketched(&ds, &[Day(0)], 0.01, ShardConfig::default());
            assert_eq!(
                exact.len(),
                sketched.len(),
                "{grouping:?}: same groups qualify"
            );
            for (key, choice) in exact.iter() {
                assert_eq!(
                    sketched.predict(key),
                    Some(choice.target),
                    "{grouping:?}: sketch path must pick the same target for {key:?}"
                );
            }
        }
    }

    #[test]
    fn sketch_training_is_worker_count_invariant() {
        let ds = separated_dataset();
        let predictor = Predictor::new(PredictorConfig::default());
        let tables: Vec<Vec<(GroupKey, Choice)>> = [1usize, 3]
            .iter()
            .map(|&workers| {
                let shard = ShardConfig {
                    workers,
                    ..ShardConfig::default()
                };
                let mut t: Vec<(GroupKey, Choice)> = predictor
                    .train_sketched(&ds, &[Day(0)], 0.01, shard)
                    .iter()
                    .collect();
                t.sort_by_key(|(k, _)| *k);
                t
            })
            .collect();
        assert_eq!(
            tables[0], tables[1],
            "worker count must not change the trained table"
        );
    }

    #[test]
    fn rank_zero_is_the_served_choice_and_ranks_are_sorted() {
        let ds = separated_dataset();
        for grouping in [Grouping::Ecs, Grouping::Ldns] {
            let table = Predictor::new(PredictorConfig {
                grouping,
                ..Default::default()
            })
            .train(&ds, Day(0));
            assert!(!table.is_empty());
            let mut seen_ranked = 0usize;
            for (key, cands) in table.iter_ranked() {
                seen_ranked += 1;
                assert!(!cands.is_empty());
                assert_eq!(
                    table.predict(key),
                    Some(cands[0].target),
                    "rank 0 must be what the table serves"
                );
                for w in cands.windows(2) {
                    assert!(
                        w[0].score_ms < w[1].score_ms
                            || (w[0].score_ms == w[1].score_ms
                                && target_order(w[0].target) < target_order(w[1].target)),
                        "ranking must be strictly ordered by (score, tie-break)"
                    );
                }
            }
            assert_eq!(seen_ranked, table.len(), "every choice has a ranking");
        }
    }

    /// Pins k=1 equivalence: the ranked selection must pick exactly the
    /// target the pre-ranking argmin loop picked — including on exact
    /// score ties — and compute the same gain.
    #[test]
    fn rank_zero_matches_the_legacy_argmin_rule() {
        use anycast_analysis::ExactQuantiles;
        // Groups with assorted tie patterns; min_samples satisfied.
        let mk = |v: f64| ExactQuantiles::from(vec![v; 25]);
        let mut stats: BTreeMap<(GroupKey, Target), ExactQuantiles> = BTreeMap::new();
        let rows: &[(u8, Target, f64)] = &[
            // Group 1: plain win for site 2.
            (1, Target::Anycast, 80.0),
            (1, Target::Unicast(SiteId(2)), 50.0),
            (1, Target::Unicast(SiteId(5)), 60.0),
            // Group 2: exact three-way tie — anycast must win.
            (2, Target::Anycast, 40.0),
            (2, Target::Unicast(SiteId(1)), 40.0),
            (2, Target::Unicast(SiteId(3)), 40.0),
            // Group 3: unicast tie — lower site id must win.
            (3, Target::Unicast(SiteId(7)), 30.0),
            (3, Target::Unicast(SiteId(4)), 30.0),
            (3, Target::Anycast, 90.0),
            // Group 4: no anycast measurement at all.
            (4, Target::Unicast(SiteId(6)), 20.0),
            (4, Target::Unicast(SiteId(8)), 25.0),
        ];
        for &(g, t, v) in rows {
            stats.insert((GroupKey::Ecs(prefix(g).into()), t), mk(v));
        }
        let table = Predictor::new(PredictorConfig::default()).train_from_stats(&stats);
        // Legacy rule, recomputed independently: strict lexicographic min
        // over (score, target_order).
        let mut legacy: HashMap<GroupKey, (Target, f64)> = HashMap::new();
        let mut anycast: HashMap<GroupKey, f64> = HashMap::new();
        for (&(key, t), q) in &stats {
            let s = q.percentile(25.0).unwrap();
            if t == Target::Anycast {
                anycast.insert(key, s);
            }
            match legacy.get(&key) {
                Some(&(pt, ps)) if ps < s || (ps == s && target_order(pt) <= target_order(t)) => {}
                _ => {
                    legacy.insert(key, (t, s));
                }
            }
        }
        assert_eq!(table.len(), legacy.len());
        for (key, &(t, s)) in &legacy {
            let c = table.choice(*key).expect("group trained");
            assert_eq!(c.target, t, "{key:?}");
            let want_gain = match t {
                Target::Anycast => Some(0.0),
                Target::Unicast(_) => anycast.get(key).map(|a| a - s),
            };
            assert_eq!(c.gain_ms, want_gain, "{key:?}");
        }
    }

    #[test]
    fn hybrid_filter_keeps_rankings_for_surviving_groups() {
        let ds = separated_dataset();
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let filtered = table.hybrid_filter(5.0);
        for (key, _) in filtered.iter() {
            assert!(
                !filtered.ranked(key).is_empty(),
                "surviving group keeps its ranking"
            );
            assert_eq!(filtered.ranked(key), table.ranked(key));
        }
        // Dropped groups lose theirs.
        let dropped = table
            .iter()
            .map(|(k, _)| k)
            .find(|k| filtered.choice(*k).is_none());
        if let Some(k) = dropped {
            assert!(filtered.ranked(k).is_empty());
        }
    }

    #[test]
    fn train_from_stats_applies_the_min_samples_filter() {
        use anycast_analysis::ExactQuantiles;
        let mut stats: BTreeMap<(GroupKey, Target), ExactQuantiles> = BTreeMap::new();
        let key = GroupKey::Ecs(prefix(1).into());
        stats.insert((key, Target::Anycast), ExactQuantiles::from(vec![80.0; 25]));
        // Faster, but too few samples to be eligible.
        stats.insert(
            (key, Target::Unicast(SiteId(3))),
            ExactQuantiles::from(vec![10.0; 5]),
        );
        let table = Predictor::new(PredictorConfig::default()).train_from_stats(&stats);
        assert_eq!(table.predict(key), Some(Target::Anycast));
    }

    #[test]
    fn disabled_aggregation_is_byte_identical_to_plain_training() {
        let ds = separated_dataset();
        let predictor = Predictor::new(PredictorConfig::default());
        let plain = predictor.train(&ds, Day(0));
        let agg = predictor.train_aggregated(&ds, Day(0), &AggregationConfig::disabled());
        assert_eq!(plain.len(), agg.len());
        for (key, choice) in plain.iter() {
            assert_eq!(agg.choice(key), Some(&choice), "{key:?}");
            assert_eq!(agg.ranked(key), plain.ranked(key), "{key:?}");
        }
    }

    #[test]
    fn aggregation_merges_agreeing_leaves_into_one_aggregate() {
        // All 12 leaves of separated_dataset() prefer site 3: the whole
        // table collapses to a single /8 default entry.
        let ds = separated_dataset();
        let predictor = Predictor::new(PredictorConfig::default());
        let plain = predictor.train(&ds, Day(0));
        let agg = predictor.train_aggregated(&ds, Day(0), &AggregationConfig::default());
        assert_eq!(agg.len(), 1, "12 agreeing /24s compress to one entry");
        for g in 0..12u8 {
            let (matched, choice) = agg
                .lookup_lpm(prefix(g).into())
                .expect("every measured /24 is covered");
            assert_eq!(matched.len(), 8);
            assert_eq!(
                Some(choice.target),
                plain.predict(GroupKey::Ecs(prefix(g).into()))
            );
        }
        // Unmeasured space outside the aggregate still misses.
        assert!(agg
            .lookup_lpm(Prefix::new(Ipv4Addr::new(99, 0, 0, 0), 24))
            .is_none());
    }

    /// Five leaves prefer site 3; one strongly prefers site 4.
    fn exception_dataset() -> BeaconDataset {
        let mut ds = BeaconDataset::new();
        let mut exec = 0u64;
        for g in 0..6u8 {
            let (s3, s4) = if g == 5 { (100.0, 20.0) } else { (50.0, 70.0) };
            for (target, rtt) in [
                (Target::Anycast, 80.0),
                (Target::Unicast(SiteId(3)), s3),
                (Target::Unicast(SiteId(4)), s4),
            ] {
                ds.extend(rows(exec, prefix(g), u32::from(g), target, rtt, 25));
                exec += 25;
            }
        }
        ds
    }

    #[test]
    fn aggregation_keeps_exceptions_for_disagreeing_leaves() {
        let ds = exception_dataset();
        let predictor = Predictor::new(PredictorConfig::default());
        let plain = predictor.train(&ds, Day(0));
        let agg = predictor.train_aggregated(&ds, Day(0), &AggregationConfig::default());
        assert!(
            agg.len() < plain.len(),
            "aggregation must shrink the table ({} vs {})",
            agg.len(),
            plain.len()
        );
        // Compression must not change any measured leaf's served target.
        for g in 0..6u8 {
            let (matched, choice) = agg.lookup_lpm(prefix(g).into()).expect("covered");
            assert_eq!(
                Some(choice.target),
                plain.predict(GroupKey::Ecs(prefix(g).into())),
                "leaf {g} (matched {matched})"
            );
        }
        // The dissenting leaf is served by a more specific entry than the
        // default aggregate.
        let (matched, choice) = agg.lookup_lpm(prefix(5).into()).unwrap();
        assert_eq!(choice.target, Target::Unicast(SiteId(4)));
        assert!(matched.len() > 8, "exception is longer than the default");
    }

    #[test]
    fn sparse_leaves_borrow_their_aggregate() {
        let mut ds = separated_dataset();
        // Leaf 20 has 5 anycast samples: below min_samples, so plain
        // training discards it entirely.
        ds.extend(rows(10_000, prefix(20), 20, Target::Anycast, 80.0, 5));
        let predictor = Predictor::new(PredictorConfig::default());
        let plain = predictor.train(&ds, Day(0));
        assert_eq!(plain.predict(GroupKey::Ecs(prefix(20).into())), None);
        let agg = predictor.train_aggregated(&ds, Day(0), &AggregationConfig::default());
        assert_eq!(
            agg.choice(GroupKey::Ecs(prefix(20).into())),
            None,
            "the sparse leaf gets no entry of its own"
        );
        let (matched, choice) = agg
            .lookup_lpm(prefix(20).into())
            .expect("borrows the covering aggregate");
        assert_eq!(matched.len(), 8);
        assert_eq!(choice.target, Target::Unicast(SiteId(3)));
    }

    #[test]
    fn lpm_lookup_prefers_longest_match_and_respects_source_len() {
        use anycast_analysis::ExactQuantiles;
        let mut stats: BTreeMap<(GroupKey, Target), ExactQuantiles> = BTreeMap::new();
        let key8 = GroupKey::Ecs(Prefix::new(Ipv4Addr::new(11, 0, 0, 0), 8));
        let key24 = GroupKey::Ecs(prefix(5).into());
        stats.insert(
            (key8, Target::Anycast),
            ExactQuantiles::from(vec![40.0; 25]),
        );
        stats.insert(
            (key24, Target::Unicast(SiteId(2))),
            ExactQuantiles::from(vec![30.0; 25]),
        );
        let table = Predictor::new(PredictorConfig::default()).train_from_stats(&stats);
        // /24 query under the exception: longest match wins.
        let (m, c) = table.lookup_lpm(prefix(5).into()).unwrap();
        assert_eq!((m.len(), c.target), (24, Target::Unicast(SiteId(2))));
        // /24 query elsewhere under the default.
        let (m, c) = table.lookup_lpm(prefix(9).into()).unwrap();
        assert_eq!((m.len(), c.target), (8, Target::Anycast));
        // A /16 query must never match the /24 entry (scope would exceed
        // the disclosed source prefix) — it falls back to the /8.
        let (m, _) = table
            .lookup_lpm(Prefix::new(Ipv4Addr::new(11, 0, 5, 0), 16))
            .unwrap();
        assert_eq!(m.len(), 8);
        // Outside the default entirely: miss.
        assert!(table
            .lookup_lpm(Prefix::new(Ipv4Addr::new(12, 0, 0, 0), 24))
            .is_none());
    }
}
