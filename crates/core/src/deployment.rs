//! The CDN deployment: sites + addressing, as a service-level view.
//!
//! `anycast-netsim` knows the CDN as routers and links; this module is the
//! CDN *service* view the paper operates at: named front-end locations with
//! an anycast VIP and per-site unicast /24s (§3.1), plus the geographic
//! queries the figures need (distance from a client to its Nth-closest
//! front-end, Figure 2).

use anycast_geo::{GeoPoint, NearestIndex};
use anycast_netsim::{CdnAddressing, Internet, SiteId};

/// One front-end location, as presented in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEnd {
    /// Site id.
    pub site: SiteId,
    /// Metro name ("Seattle, US").
    pub label: String,
    /// Location.
    pub location: GeoPoint,
}

/// The deployment: front-ends and the address plan.
#[derive(Debug, Clone)]
pub struct Deployment {
    front_ends: Vec<FrontEnd>,
    index: NearestIndex<SiteId>,
    addressing: CdnAddressing,
}

impl Deployment {
    /// Builds the deployment view of a simulated world.
    pub fn of(internet: &Internet) -> Deployment {
        let topo = internet.topology();
        let front_ends: Vec<FrontEnd> = topo
            .cdn
            .site_ids()
            .map(|s| {
                let metro = topo.atlas.metro(topo.cdn.site_metro(s));
                FrontEnd {
                    site: s,
                    label: format!("{}, {}", metro.name, metro.country),
                    location: metro.location(),
                }
            })
            .collect();
        let index = NearestIndex::new(front_ends.iter().map(|f| (f.site, f.location)).collect());
        Deployment {
            front_ends,
            index,
            addressing: CdnAddressing::standard(topo.cdn.sites.len() as u16),
        }
    }

    /// All front-ends.
    pub fn front_ends(&self) -> &[FrontEnd] {
        &self.front_ends
    }

    /// Number of locations — the §4 size statistic.
    pub fn size(&self) -> usize {
        self.front_ends.len()
    }

    /// The address plan.
    pub fn addressing(&self) -> &CdnAddressing {
        &self.addressing
    }

    /// Nearest-k front-ends to a point, `(site, km)` ascending.
    pub fn nearest(&self, from: &GeoPoint, k: usize) -> Vec<(SiteId, f64)> {
        self.index.k_nearest(from, k)
    }

    /// Distance to the n-th closest front-end (1-based) — Figure 2's
    /// quantity.
    pub fn distance_to_nth_km(&self, from: &GeoPoint, n: usize) -> Option<f64> {
        self.index.distance_to_nth(from, n)
    }

    /// The front-end record for a site.
    pub fn front_end(&self, site: SiteId) -> &FrontEnd {
        &self.front_ends[site.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_netsim::NetConfig;

    fn deployment() -> Deployment {
        let net = Internet::new(NetConfig::small(), 2).unwrap();
        Deployment::of(&net)
    }

    #[test]
    fn size_matches_topology() {
        let d = deployment();
        assert_eq!(d.size(), NetConfig::small().n_sites);
        assert_eq!(d.addressing().n_sites() as usize, d.size());
    }

    #[test]
    fn labels_are_human_readable() {
        let d = deployment();
        for f in d.front_ends() {
            assert!(f.label.contains(", "), "{}", f.label);
        }
    }

    #[test]
    fn nearest_ordering_holds() {
        let d = deployment();
        let p = GeoPoint::new(48.85, 2.35);
        let near = d.nearest(&p, 5);
        assert_eq!(near.len(), 5);
        for w in near.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(d.distance_to_nth_km(&p, 1), Some(near[0].1));
        assert_eq!(d.distance_to_nth_km(&p, 5), Some(near[4].1));
    }

    #[test]
    fn front_end_lookup_is_by_site_id() {
        let d = deployment();
        for f in d.front_ends() {
            assert_eq!(d.front_end(f.site).site, f.site);
        }
    }
}
