//! The §4 CDN size comparison.
//!
//! "We examine 21 CDNs and content providers for which there is publicly
//! available data." The paper's point: thousand-site deployments (Google,
//! Akamai) are the *exception*; most CDNs — including the anycast CDNs and
//! the studied Bing deployment — operate a few dozen locations. This table
//! embeds the counts the paper reports so the comparison can be regenerated
//! as `table-cdn-sizes`.

/// How a CDN directs clients to front-ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectionKind {
    /// BGP anycast.
    Anycast,
    /// DNS-based redirection.
    Dns,
    /// Not publicly documented.
    Unknown,
}

/// One row of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdnEntry {
    /// CDN or content-provider name.
    pub name: &'static str,
    /// Number of front-end locations (lower bound where the paper says
    /// "over N").
    pub locations: u32,
    /// Whether the count is a lower bound ("over 1000").
    pub lower_bound: bool,
    /// Redirection mechanism, where known.
    pub redirection: RedirectionKind,
    /// Whether the paper calls this deployment out as an extreme outlier
    /// (the China-centric and hyperscale deployments).
    pub outlier: bool,
}

/// The 21-CDN comparison (§4), plus the studied deployment itself.
pub const CDN_CATALOG: &[CdnEntry] = &[
    CdnEntry {
        name: "Google",
        locations: 1000,
        lower_bound: true,
        redirection: RedirectionKind::Dns,
        outlier: true,
    },
    CdnEntry {
        name: "Akamai",
        locations: 1000,
        lower_bound: true,
        redirection: RedirectionKind::Dns,
        outlier: true,
    },
    CdnEntry {
        name: "ChinaNetCenter",
        locations: 100,
        lower_bound: true,
        redirection: RedirectionKind::Unknown,
        outlier: true,
    },
    CdnEntry {
        name: "ChinaCache",
        locations: 100,
        lower_bound: true,
        redirection: RedirectionKind::Unknown,
        outlier: true,
    },
    CdnEntry {
        name: "CDNetworks",
        locations: 161,
        lower_bound: false,
        redirection: RedirectionKind::Dns,
        outlier: false,
    },
    CdnEntry {
        name: "SkyparkCDN",
        locations: 119,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
    CdnEntry {
        name: "Level3",
        locations: 62,
        lower_bound: false,
        redirection: RedirectionKind::Dns,
        outlier: false,
    },
    CdnEntry {
        name: "Bing CDN (studied)",
        locations: 44,
        lower_bound: false,
        redirection: RedirectionKind::Anycast,
        outlier: false,
    },
    CdnEntry {
        name: "CloudFlare",
        locations: 43,
        lower_bound: false,
        redirection: RedirectionKind::Anycast,
        outlier: false,
    },
    CdnEntry {
        name: "CacheFly",
        locations: 41,
        lower_bound: false,
        redirection: RedirectionKind::Anycast,
        outlier: false,
    },
    CdnEntry {
        name: "Amazon CloudFront",
        locations: 37,
        lower_bound: false,
        redirection: RedirectionKind::Dns,
        outlier: false,
    },
    CdnEntry {
        name: "EdgeCast",
        locations: 31,
        lower_bound: false,
        redirection: RedirectionKind::Anycast,
        outlier: false,
    },
    CdnEntry {
        name: "MaxCDN",
        locations: 30,
        lower_bound: false,
        redirection: RedirectionKind::Dns,
        outlier: false,
    },
    CdnEntry {
        name: "Fastly",
        locations: 28,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
    CdnEntry {
        name: "Incapsula",
        locations: 27,
        lower_bound: false,
        redirection: RedirectionKind::Anycast,
        outlier: false,
    },
    CdnEntry {
        name: "KeyCDN",
        locations: 25,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
    CdnEntry {
        name: "Limelight",
        locations: 24,
        lower_bound: false,
        redirection: RedirectionKind::Dns,
        outlier: false,
    },
    CdnEntry {
        name: "Highwinds",
        locations: 23,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
    CdnEntry {
        name: "CDN77",
        locations: 21,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
    CdnEntry {
        name: "LeaseWeb",
        locations: 19,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
    CdnEntry {
        name: "OnApp",
        locations: 18,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
    CdnEntry {
        name: "CDNify",
        locations: 17,
        lower_bound: false,
        redirection: RedirectionKind::Unknown,
        outlier: false,
    },
];

/// Non-outlier entries, sorted by location count descending — the
/// population the paper situates the studied CDN within.
pub fn mainstream_cdns() -> Vec<&'static CdnEntry> {
    let mut v: Vec<&CdnEntry> = CDN_CATALOG.iter().filter(|e| !e.outlier).collect();
    v.sort_by_key(|e| std::cmp::Reverse(e.locations));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_at_least_21_entries() {
        assert!(CDN_CATALOG.len() >= 21);
    }

    #[test]
    fn paper_quoted_counts_are_present() {
        let find = |n: &str| CDN_CATALOG.iter().find(|e| e.name == n).unwrap();
        assert_eq!(find("CDNetworks").locations, 161);
        assert_eq!(find("SkyparkCDN").locations, 119);
        assert_eq!(find("Level3").locations, 62);
        assert_eq!(find("CloudFlare").locations, 43);
        assert_eq!(find("CacheFly").locations, 41);
        assert_eq!(find("Amazon CloudFront").locations, 37);
        assert_eq!(find("EdgeCast").locations, 31);
        assert_eq!(find("CDNify").locations, 17);
        assert!(find("Google").lower_bound && find("Google").locations >= 1000);
    }

    #[test]
    fn anycast_cdns_flagged() {
        for name in ["CloudFlare", "CacheFly", "EdgeCast", "Bing CDN (studied)"] {
            let e = CDN_CATALOG.iter().find(|e| e.name == name).unwrap();
            assert_eq!(e.redirection, RedirectionKind::Anycast, "{name}");
        }
    }

    #[test]
    fn mainstream_range_matches_paper() {
        // "The remaining 17 CDNs … have between 17 locations (CDNify) and
        // 62 locations (Level3)" — after excluding the two mid-size DNS
        // CDNs above that range.
        let mainstream = mainstream_cdns();
        let max_small = mainstream
            .iter()
            .filter(|e| e.locations <= 62)
            .map(|e| e.locations)
            .max()
            .unwrap();
        let min = mainstream.iter().map(|e| e.locations).min().unwrap();
        assert_eq!(max_small, 62);
        assert_eq!(min, 17);
        // Sorted descending.
        for w in mainstream.windows(2) {
            assert!(w[0].locations >= w[1].locations);
        }
    }

    #[test]
    fn studied_cdn_is_level3_maxcdn_scale() {
        let bing = CDN_CATALOG
            .iter()
            .find(|e| e.name.starts_with("Bing"))
            .unwrap();
        assert!(bing.locations >= 30 && bing.locations <= 62);
    }
}
