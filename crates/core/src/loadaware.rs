//! Load-aware traffic shedding (the FastRoute-shaped extension).
//!
//! §2: "anycast is unaware of server load. If a particular front-end
//! becomes overloaded, it is difficult to gradually direct traffic away
//! from that front-end, although there has been recent progress in this
//! area \[FastRoute\]. Simply withdrawing the route to take that front-end
//! offline can lead to cascading overloading of nearby front-ends."
//!
//! This module implements both alternatives so the claim can be tested:
//!
//! * [`plan_shedding`] — gradual, DNS-driven shedding: move just enough
//!   load off each overloaded site, to the nearest sites with headroom;
//! * [`withdraw`] — the blunt instrument: take the site offline entirely,
//!   letting each displaced unit of load fall to the next-nearest site —
//!   and watch the cascade.

use std::collections::HashMap;

use anycast_geo::GeoPoint;
use anycast_netsim::SiteId;

/// A site's load/capacity state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteLoad {
    /// Site id.
    pub site: SiteId,
    /// Location (shedding prefers nearby targets).
    pub location: GeoPoint,
    /// Current offered load (arbitrary units, e.g. queries/s).
    pub load: f64,
    /// Capacity in the same units.
    pub capacity: f64,
}

impl SiteLoad {
    /// The capacity this site is planned against: NaN and negative
    /// capacities are degenerate (a meaningless or impossible budget) and
    /// are treated as **zero** — the site can hold nothing, so all of its
    /// load is overload and it never accepts spill. `+inf` is legitimate
    /// and means "uncapacitated". Without this guard a NaN capacity
    /// silently disables a site's overload (`NaN` comparisons are all
    /// false) and a negative one lets [`plan_shedding`] move more load
    /// off a site than the site actually has.
    pub fn effective_capacity(&self) -> f64 {
        if self.capacity.is_nan() || self.capacity < 0.0 {
            0.0
        } else {
            self.capacity
        }
    }

    /// Load above capacity (zero when healthy).
    pub fn overload(&self) -> f64 {
        (self.load - self.effective_capacity()).max(0.0)
    }

    /// Spare capacity (zero when at or over capacity).
    pub fn headroom(&self) -> f64 {
        (self.effective_capacity() - self.load).max(0.0)
    }
}

/// One shedding instruction: move `amount` of load from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// Overloaded source site.
    pub from: SiteId,
    /// Destination site (has headroom at planning time).
    pub to: SiteId,
    /// Load units to move.
    pub amount: f64,
}

/// Plans gradual shedding: for every overloaded site, move its excess to
/// the nearest sites with headroom (closest first). Returns the moves and
/// the resulting loads.
///
/// If total load exceeds total capacity the residual overload stays on the
/// original sites (there is nowhere to put it) — the planner never
/// overloads a destination.
pub fn plan_shedding(sites: &[SiteLoad]) -> (Vec<Move>, Vec<SiteLoad>) {
    let mut state: Vec<SiteLoad> = sites.to_vec();
    let mut moves = Vec::new();
    let overloaded: Vec<usize> = (0..state.len())
        .filter(|&i| state[i].overload() > 0.0)
        .collect();
    for idx in overloaded {
        // Never move more than the site actually carries: with a
        // degenerate (negative → zero) capacity, overload equals load,
        // and the clamp keeps the source from going negative.
        let mut excess = state[idx].overload().min(state[idx].load.max(0.0));
        if excess <= 0.0 {
            continue;
        }
        // Destinations by distance from the overloaded site.
        let from_loc = state[idx].location;
        let mut order: Vec<usize> = (0..state.len()).filter(|&j| j != idx).collect();
        order.sort_by(|&a, &b| {
            state[a]
                .location
                .haversine_km(&from_loc)
                .total_cmp(&state[b].location.haversine_km(&from_loc))
        });
        for j in order {
            if excess <= 0.0 {
                break;
            }
            let take = state[j].headroom().min(excess);
            if take <= 0.0 {
                continue;
            }
            state[j].load += take;
            state[idx].load -= take;
            excess -= take;
            moves.push(Move {
                from: state[idx].site,
                to: state[j].site,
                amount: take,
            });
        }
    }
    (moves, state)
}

/// Withdraws `site` entirely: its whole load falls onto the nearest
/// remaining site (anycast's actual failover behaviour — BGP moves the
/// traffic wholesale, with no regard for capacity). Returns the resulting
/// loads with the withdrawn site at zero.
pub fn withdraw(sites: &[SiteLoad], site: SiteId) -> Vec<SiteLoad> {
    let mut state: Vec<SiteLoad> = sites.to_vec();
    let Some(idx) = state.iter().position(|s| s.site == site) else {
        return state;
    };
    let moved = state[idx].load;
    let from_loc = state[idx].location;
    state[idx].load = 0.0;
    if let Some(nearest) = (0..state.len()).filter(|&j| j != idx).min_by(|&a, &b| {
        state[a]
            .location
            .haversine_km(&from_loc)
            .total_cmp(&state[b].location.haversine_km(&from_loc))
    }) {
        state[nearest].load += moved;
    }
    state
}

/// Total overload across sites — the health metric the experiments report.
pub fn total_overload(sites: &[SiteLoad]) -> f64 {
    sites.iter().map(SiteLoad::overload).sum()
}

/// Builds per-site loads from `(site, weight)` observations (e.g. the
/// volume-weighted anycast routing of a scenario's clients) and a uniform
/// capacity factor: every site gets `capacity_factor × mean load`.
pub fn loads_from_traffic(
    traffic: &HashMap<SiteId, f64>,
    locations: &[(SiteId, GeoPoint)],
    capacity_factor: f64,
) -> Vec<SiteLoad> {
    let total: f64 = traffic.values().sum();
    let mean = total / locations.len().max(1) as f64;
    locations
        .iter()
        .map(|&(site, location)| SiteLoad {
            site,
            location,
            load: traffic.get(&site).copied().unwrap_or(0.0),
            capacity: capacity_factor * mean,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(id: u16, lon: f64, load: f64, capacity: f64) -> SiteLoad {
        SiteLoad {
            site: SiteId(id),
            location: GeoPoint::new(0.0, lon),
            load,
            capacity,
        }
    }

    #[test]
    fn shedding_clears_overload_when_capacity_exists() {
        let sites = vec![
            site(0, 0.0, 150.0, 100.0), // overloaded by 50
            site(1, 5.0, 40.0, 100.0),  // 60 headroom, nearest
            site(2, 50.0, 90.0, 100.0), // 10 headroom, far
        ];
        let (moves, after) = plan_shedding(&sites);
        assert_eq!(total_overload(&after), 0.0);
        // Nearest destination takes the load.
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].to, SiteId(1));
        assert!((moves[0].amount - 50.0).abs() < 1e-9);
        // No destination went over capacity.
        for s in &after {
            assert!(s.load <= s.capacity + 1e-9);
        }
    }

    #[test]
    fn shedding_spills_to_second_nearest_when_first_fills() {
        let sites = vec![
            site(0, 0.0, 200.0, 100.0), // overloaded by 100
            site(1, 5.0, 70.0, 100.0),  // 30 headroom
            site(2, 10.0, 20.0, 100.0), // 80 headroom
        ];
        let (moves, after) = plan_shedding(&sites);
        assert_eq!(total_overload(&after), 0.0);
        assert_eq!(moves.len(), 2);
        assert_eq!(moves[0].to, SiteId(1));
        assert!((moves[0].amount - 30.0).abs() < 1e-9);
        assert_eq!(moves[1].to, SiteId(2));
        assert!((moves[1].amount - 70.0).abs() < 1e-9);
    }

    #[test]
    fn residual_overload_stays_when_system_is_saturated() {
        let sites = vec![site(0, 0.0, 250.0, 100.0), site(1, 5.0, 100.0, 100.0)];
        let (_, after) = plan_shedding(&sites);
        assert!((total_overload(&after) - 150.0).abs() < 1e-9);
        // The healthy site was not pushed over.
        assert!(after[1].load <= after[1].capacity + 1e-9);
    }

    #[test]
    fn withdrawal_cascades_where_shedding_does_not() {
        // The §2 scenario: an overloaded site next to a near-capacity
        // neighbour. Shedding moves only the excess (fits); withdrawal
        // dumps everything (cascades).
        let sites = vec![
            site(0, 0.0, 120.0, 100.0), // overloaded by 20
            site(1, 5.0, 80.0, 100.0),  // 20 headroom — exactly enough
            site(2, 90.0, 50.0, 100.0),
        ];
        let (_, shed) = plan_shedding(&sites);
        assert_eq!(total_overload(&shed), 0.0, "gradual shedding fits");

        let withdrawn = withdraw(&sites, SiteId(0));
        assert!(
            total_overload(&withdrawn) > 0.0,
            "withdrawal must cascade the neighbour"
        );
        // The cascade landed on the nearest site.
        assert!(withdrawn[1].load > withdrawn[1].capacity);
    }

    #[test]
    fn withdraw_unknown_site_is_a_no_op() {
        let sites = vec![site(0, 0.0, 10.0, 100.0)];
        assert_eq!(withdraw(&sites, SiteId(9)), sites);
    }

    #[test]
    fn degenerate_capacities_are_guarded() {
        // NaN capacity: all load counts as overload, never a destination.
        let nan = site(0, 0.0, 50.0, f64::NAN);
        assert_eq!(nan.effective_capacity(), 0.0);
        assert_eq!(nan.overload(), 50.0);
        assert_eq!(nan.headroom(), 0.0);
        // Negative capacity: same as zero.
        let neg = site(0, 0.0, 50.0, -100.0);
        assert_eq!(neg.overload(), 50.0);
        assert_eq!(neg.headroom(), 0.0);
        // Zero capacity is a dead site (the PR-2 outage shape).
        let dead = site(0, 0.0, 50.0, 0.0);
        assert_eq!(dead.overload(), 50.0);
        // Infinite capacity is legitimately uncapacitated.
        let inf = site(0, 0.0, 50.0, f64::INFINITY);
        assert_eq!(inf.overload(), 0.0);
        assert_eq!(inf.headroom(), f64::INFINITY);
    }

    #[test]
    fn plan_shedding_survives_degenerate_sites() {
        let sites = vec![
            site(0, 0.0, 150.0, f64::NAN),      // everything must leave
            site(1, 5.0, 40.0, -10.0),          // negative: sheds all, takes none
            site(2, 10.0, 20.0, 400.0),         // the only real destination
            site(3, 15.0, 30.0, f64::INFINITY), // uncapacitated destination
        ];
        let (moves, after) = plan_shedding(&sites);
        for s in &after {
            assert!(s.load.is_finite(), "no NaN/inf loads: {s:?}");
            assert!(s.load >= -1e-9, "no negative loads: {s:?}");
            assert!(
                s.load <= s.effective_capacity() + 1e-9 || s.effective_capacity() == 0.0,
                "no destination overloaded: {s:?}"
            );
        }
        for m in &moves {
            assert!(m.amount.is_finite() && m.amount > 0.0, "bad move {m:?}");
            // Degenerate-capacity sites never receive spill.
            assert!(m.to == SiteId(2) || m.to == SiteId(3), "bad dest {m:?}");
        }
        assert_eq!(total_overload(&after), 0.0);
    }

    #[test]
    fn negative_capacity_never_drives_load_negative() {
        let sites = vec![site(0, 0.0, 50.0, -1000.0), site(1, 5.0, 0.0, 1000.0)];
        let (moves, after) = plan_shedding(&sites);
        // Overload reads 50 (not 1050): exactly the carried load moves.
        assert_eq!(moves.len(), 1);
        assert!((moves[0].amount - 50.0).abs() < 1e-9);
        assert!(after[0].load.abs() < 1e-9);
        assert!((after[1].load - 50.0).abs() < 1e-9);
    }

    #[test]
    fn loads_from_traffic_distributes_capacity() {
        let mut traffic = HashMap::new();
        traffic.insert(SiteId(0), 300.0);
        traffic.insert(SiteId(1), 100.0);
        let locations = vec![
            (SiteId(0), GeoPoint::new(0.0, 0.0)),
            (SiteId(1), GeoPoint::new(0.0, 10.0)),
        ];
        let sites = loads_from_traffic(&traffic, &locations, 1.2);
        // mean load 200, capacity 240 each.
        assert!((sites[0].capacity - 240.0).abs() < 1e-9);
        assert!((sites[0].overload() - 60.0).abs() < 1e-9);
        assert_eq!(sites[1].overload(), 0.0);
    }
}
