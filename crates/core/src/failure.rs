//! Graceful degradation under front-end failures: anycast failover vs DNS
//! redirection staleness.
//!
//! §2's core availability argument: "in the event of the failure of the
//! front-end, BGP fails over to the next best front-end" with no
//! client-visible action, whereas DNS redirection "can take a long time to
//! take effect" because "clients and client LDNS servers … cache DNS
//! records". This module makes both halves of that argument executable:
//!
//! * [`anycast_request`] — a client request over the anycast VIP at an
//!   instant, honoring the netsim's failure schedule: it fails only inside
//!   a dead site's BGP reconvergence window, after which routing has
//!   already failed the client over to the next-best live site;
//! * [`DnsRedirectionSim`] — a client request under classic DNS
//!   redirection: a health-checked authority always answers a *live*
//!   front-end, but the answer is cached for a TTL, and a site that dies
//!   mid-TTL takes its cached clients down with it until their answers
//!   expire.
//!
//! Both paths are deterministic — outcomes use the route's `base_rtt_ms`,
//! no RNG — so the bench experiments can sweep outage rate and TTL and get
//! reproducible availability numbers.

use std::collections::HashMap;

use anycast_geo::GeoPoint;
use anycast_netsim::{ClientAttachment, Day, Internet, Prefix24, RouteSnapshot, SiteId};

/// Why a request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureReason {
    /// No live front-end was reachable at all (every site down, or the
    /// health-checked authority had nothing to answer).
    NoLiveRoute,
    /// The client's anycast catchment site died and BGP has not yet
    /// reconverged around the withdrawal — the §2 "one routing step" of
    /// loss anycast pays.
    Converging,
    /// The client's cached DNS answer points at a front-end that has gone
    /// down mid-TTL — the staleness window DNS redirection pays.
    StaleDnsAnswer,
}

/// The outcome of one simulated client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestOutcome {
    /// The request was served.
    Served {
        /// Front-end that served it.
        site: SiteId,
        /// Deterministic round-trip time, ms.
        rtt_ms: f64,
    },
    /// The request was lost.
    Failed(FailureReason),
}

impl RequestOutcome {
    /// Whether the request was served.
    pub fn served(&self) -> bool {
        matches!(self, RequestOutcome::Served { .. })
    }

    /// The failure reason, if the request failed.
    pub fn reason(&self) -> Option<FailureReason> {
        match self {
            RequestOutcome::Served { .. } => None,
            RequestOutcome::Failed(r) => Some(*r),
        }
    }
}

/// One client request over the anycast VIP at `(day, time_s)`.
///
/// Anycast clients take no action on failure: either routing has already
/// steered them to a live site (served), or their catchment's announcement
/// was just withdrawn and they blackhole until BGP reconverges
/// ([`FailureReason::Converging`]).
pub fn anycast_request(
    internet: &Internet,
    client: &ClientAttachment,
    day: Day,
    time_s: f64,
) -> RequestOutcome {
    match internet.anycast_route_at(client, day, time_s) {
        Some(d) => RequestOutcome::Served {
            site: d.site,
            rtt_ms: d.base_rtt_ms,
        },
        None => {
            let steady = internet.anycast_route(client, day).site;
            if internet.outages().converging(steady, day, time_s) {
                RequestOutcome::Failed(FailureReason::Converging)
            } else {
                RequestOutcome::Failed(FailureReason::NoLiveRoute)
            }
        }
    }
}

/// A stream of anycast requests at the given instants of one day.
pub fn anycast_requests(
    internet: &Internet,
    client: &ClientAttachment,
    day: Day,
    times_s: &[f64],
) -> Vec<RequestOutcome> {
    times_s
        .iter()
        .map(|&t| anycast_request(internet, client, day, t))
        .collect()
}

/// [`anycast_request`] through a per-day [`RouteSnapshot`]: identical
/// outcomes (the snapshot is transparent), but the steady-state path is an
/// array lookup instead of a full BGP/IGP re-selection. `client` indexes
/// the population the snapshot was built over.
pub fn anycast_request_memo(
    internet: &Internet,
    routes: &RouteSnapshot,
    client: usize,
    time_s: f64,
) -> RequestOutcome {
    match routes.anycast_at(internet, client, time_s) {
        Some(d) => RequestOutcome::Served {
            site: d.site,
            rtt_ms: d.base_rtt_ms,
        },
        None => {
            let steady = routes.steady_anycast(client).site;
            if internet.outages().converging(steady, routes.day(), time_s) {
                RequestOutcome::Failed(FailureReason::Converging)
            } else {
                RequestOutcome::Failed(FailureReason::NoLiveRoute)
            }
        }
    }
}

/// A stream of memoized anycast requests at the given instants of the
/// snapshot's day.
pub fn anycast_requests_memo(
    internet: &Internet,
    routes: &RouteSnapshot,
    client: usize,
    times_s: &[f64],
) -> Vec<RequestOutcome> {
    times_s
        .iter()
        .map(|&t| anycast_request_memo(internet, routes, client, t))
        .collect()
}

/// `n` evenly spaced request instants across a day, offset off the exact
/// boundaries (deterministic; shared by the failure experiments).
pub fn request_times(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 + 0.5) * 86_400.0 / n as f64)
        .collect()
}

/// Classic DNS redirection under failures.
///
/// The authority is health-checked: at resolution time it always answers
/// the unicast address of the *live* front-end nearest the client. The
/// answer is cached for `ttl_s` seconds (client + LDNS caches collapsed
/// into one, keyed by client /24). A front-end that dies mid-TTL strands
/// its cached clients ([`FailureReason::StaleDnsAnswer`]) until their
/// entries expire and re-resolution steers them to a live site — exactly
/// the recovery lag §2 holds against DNS redirection.
#[derive(Debug)]
pub struct DnsRedirectionSim<'a> {
    internet: &'a Internet,
    sites: Vec<(SiteId, GeoPoint)>,
    ttl_s: f64,
    cache: HashMap<Prefix24, (SiteId, f64)>,
}

impl<'a> DnsRedirectionSim<'a> {
    /// Creates the simulator with the given answer TTL (seconds).
    pub fn new(internet: &'a Internet, ttl_s: f64) -> DnsRedirectionSim<'a> {
        DnsRedirectionSim {
            internet,
            sites: internet.site_locations(),
            ttl_s,
            cache: HashMap::new(),
        }
    }

    /// The nearest front-end to `loc` that is up at `(day, time_s)` —
    /// what the health-checked authority answers. Ties break on site id.
    fn resolve(&self, loc: &GeoPoint, day: Day, time_s: f64) -> Option<SiteId> {
        self.sites
            .iter()
            .filter(|&&(s, _)| !self.internet.outages().is_down(s, day, time_s))
            .map(|&(s, sloc)| (s, sloc.haversine_km(loc)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(s, _)| s)
    }

    /// The site the client uses at `(day, time_s)`: the cached answer if
    /// still within TTL, else a fresh health-checked resolution (which is
    /// cached). `None` when nothing is live to answer.
    fn answer_site(
        &mut self,
        prefix: Prefix24,
        loc: &GeoPoint,
        day: Day,
        time_s: f64,
    ) -> Option<SiteId> {
        let now = f64::from(day.0) * 86_400.0 + time_s;
        let cached = self
            .cache
            .get(&prefix)
            .copied()
            .filter(|&(_, expires)| expires > now)
            .map(|(site, _)| site);
        match cached {
            Some(site) => Some(site),
            None => {
                let site = self.resolve(loc, day, time_s)?;
                self.cache.insert(prefix, (site, now + self.ttl_s));
                Some(site)
            }
        }
    }

    /// One request from `prefix` at `(day, time_s)`. Time must not go
    /// backwards across calls for a given prefix (cache expiry is absolute
    /// experiment time).
    pub fn request(
        &mut self,
        prefix: Prefix24,
        client: &ClientAttachment,
        day: Day,
        time_s: f64,
    ) -> RequestOutcome {
        let Some(site) = self.answer_site(prefix, &client.location, day, time_s) else {
            return RequestOutcome::Failed(FailureReason::NoLiveRoute);
        };
        match self.internet.unicast_route_at(client, site, day, time_s) {
            Some(d) => RequestOutcome::Served {
                site,
                rtt_ms: d.base_rtt_ms,
            },
            // The answer was live when cached; the site died under it.
            None => RequestOutcome::Failed(FailureReason::StaleDnsAnswer),
        }
    }

    /// [`DnsRedirectionSim::request`] through a per-day [`RouteSnapshot`]
    /// built over the same client population (the snapshot's day supplies
    /// the day): identical outcomes, memoized unicast routing. `client`
    /// indexes the snapshot's population.
    pub fn request_memo(
        &mut self,
        prefix: Prefix24,
        routes: &RouteSnapshot,
        client: usize,
        time_s: f64,
    ) -> RequestOutcome {
        let day = routes.day();
        let loc = routes.attachment(client).location;
        let Some(site) = self.answer_site(prefix, &loc, day, time_s) else {
            return RequestOutcome::Failed(FailureReason::NoLiveRoute);
        };
        match routes.unicast_at(client, site, time_s) {
            Some(d) => RequestOutcome::Served {
                site,
                rtt_ms: d.base_rtt_ms,
            },
            None => RequestOutcome::Failed(FailureReason::StaleDnsAnswer),
        }
    }

    /// The configured TTL, seconds.
    pub fn ttl_s(&self) -> f64 {
        self.ttl_s
    }

    /// Drops all cached answers (a resolver restart).
    pub fn clear(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_netsim::{NetConfig, OutageKind, OutageWindow};
    use std::net::Ipv4Addr;

    fn failure_world() -> Internet {
        let cfg = NetConfig {
            p_site_outage: 0.3,
            p_site_drain: 0.15,
            ..NetConfig::small()
        };
        Internet::new(cfg, 11).unwrap()
    }

    fn attachment(internet: &Internet, idx: usize) -> ClientAttachment {
        let e = &internet.topology().eyeballs[idx];
        ClientAttachment {
            as_id: e.id,
            metro: e.home_metro,
            location: internet.topology().atlas.metro(e.home_metro).location(),
            access: anycast_netsim::AccessTech::Cable,
        }
    }

    /// First unplanned outage whose window leaves room on both sides, with
    /// a client whose steady-state anycast catchment is the dying site.
    fn unplanned_outage_with_victim(
        internet: &Internet,
    ) -> Option<(SiteId, Day, OutageWindow, ClientAttachment)> {
        let n = internet.topology().cdn.sites.len() as u16;
        for day in 0..40u32 {
            for s in 0..n {
                let site = SiteId(s);
                let Some(win) = internet.outages().window_on(site, Day(day)) else {
                    continue;
                };
                if win.kind != OutageKind::Unplanned || win.start_s < 400.0 || win.end_s > 86_000.0
                {
                    continue;
                }
                for idx in 0..internet.topology().eyeballs.len() {
                    let c = attachment(internet, idx);
                    if internet.anycast_route(&c, Day(day)).site == site {
                        return Some((site, Day(day), win, c));
                    }
                }
            }
        }
        None
    }

    #[test]
    fn failure_free_world_always_serves() {
        let internet = Internet::new(NetConfig::small(), 3).unwrap();
        let c = attachment(&internet, 0);
        let p = Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1));
        let mut dns = DnsRedirectionSim::new(&internet, 300.0);
        for &t in &request_times(8) {
            assert!(anycast_request(&internet, &c, Day(0), t).served());
            assert!(dns.request(p, &c, Day(0), t).served());
        }
    }

    #[test]
    fn anycast_fails_only_while_converging_then_recovers_in_one_step() {
        let internet = failure_world();
        let (site, day, win, c) =
            unplanned_outage_with_victim(&internet).expect("an unplanned outage with a victim");
        let reconv = internet.outages().reconvergence_s();
        // Mid-convergence: the withdrawal is still propagating — blackhole.
        let during = anycast_request(&internet, &c, day, win.start_s + reconv * 0.5);
        assert_eq!(during.reason(), Some(FailureReason::Converging));
        // One routing step later: served by a different, live site.
        let after = anycast_request(&internet, &c, day, win.start_s + reconv + 1.0);
        match after {
            RequestOutcome::Served { site: s, .. } => {
                assert_ne!(s, site);
                assert!(!internet
                    .outages()
                    .is_down(s, day, win.start_s + reconv + 1.0));
            }
            RequestOutcome::Failed(r) => panic!("expected failover, got {r:?}"),
        }
        // Before the outage: served by the (then healthy) catchment site.
        let before = anycast_request(&internet, &c, day, win.start_s - 1.0);
        assert_eq!(
            before,
            RequestOutcome::Served {
                site,
                rtt_ms: match before {
                    RequestOutcome::Served { rtt_ms, .. } => rtt_ms,
                    _ => unreachable!(),
                }
            }
        );
    }

    /// A client whose nearest front-end (what the authority answers when
    /// everything is healthy) is the given site.
    fn client_nearest_to(internet: &Internet, site: SiteId) -> Option<ClientAttachment> {
        let sites = internet.site_locations();
        (0..internet.topology().eyeballs.len())
            .map(|idx| attachment(internet, idx))
            .find(|c| {
                sites
                    .iter()
                    .map(|&(s, loc)| (s, loc.haversine_km(&c.location)))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .map(|(s, _)| s)
                    == Some(site)
            })
    }

    #[test]
    fn dns_clients_fail_until_ttl_expiry_then_re_resolve() {
        let internet = failure_world();
        let (site, day, win, _) =
            unplanned_outage_with_victim(&internet).expect("an unplanned outage");
        let c = client_nearest_to(&internet, site).expect("a client homed on the dying site");
        let p = Prefix24::containing(Ipv4Addr::new(11, 0, 7, 1));
        let ttl = 300.0;
        let mut dns = DnsRedirectionSim::new(&internet, ttl);
        // Resolved shortly before the outage: the healthy nearest site.
        let t0 = win.start_s - 10.0;
        assert_eq!(
            dns.request(p, &c, day, t0),
            RequestOutcome::Served {
                site,
                rtt_ms: internet.unicast_route(&c, site, day).base_rtt_ms
            }
        );
        // Mid-outage, answer still cached: stale — and stays stale well
        // after anycast has already reconverged.
        let t1 = win.start_s + internet.outages().reconvergence_s() + 10.0;
        assert!(t1 - t0 < ttl, "probe must land inside the cached TTL");
        assert_eq!(
            dns.request(p, &c, day, t1).reason(),
            Some(FailureReason::StaleDnsAnswer)
        );
        // After expiry: re-resolution health-checks and picks a live site.
        let t2 = t0 + ttl + 1.0;
        assert!(
            t2 < win.end_s,
            "re-resolution probe still inside the outage"
        );
        match dns.request(p, &c, day, t2) {
            RequestOutcome::Served { site: s, .. } => assert_ne!(s, site),
            RequestOutcome::Failed(r) => panic!("expected re-resolved answer, got {r:?}"),
        }
    }

    #[test]
    fn memoized_paths_match_direct_paths_under_failures() {
        let internet = failure_world();
        let clients: Vec<ClientAttachment> = (0..6).map(|i| attachment(&internet, i)).collect();
        let times = request_times(24);
        for day in 0..6u32 {
            let day = Day(day);
            let routes = RouteSnapshot::build(&internet, &clients, day);
            let mut dns_direct = DnsRedirectionSim::new(&internet, 300.0);
            let mut dns_memo = DnsRedirectionSim::new(&internet, 300.0);
            for (i, c) in clients.iter().enumerate() {
                let p = Prefix24::containing(Ipv4Addr::new(11, 0, i as u8, 1));
                for &t in &times {
                    assert_eq!(
                        anycast_request_memo(&internet, &routes, i, t),
                        anycast_request(&internet, c, day, t),
                        "anycast divergence day {day:?} t {t}"
                    );
                    assert_eq!(
                        dns_memo.request_memo(p, &routes, i, t),
                        dns_direct.request(p, c, day, t),
                        "dns divergence day {day:?} t {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn request_times_are_in_range_and_sorted() {
        let times = request_times(48);
        assert_eq!(times.len(), 48);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times[0] > 0.0 && times[47] < 86_400.0);
    }
}
