//! The paper's primary contribution, as a library.
//!
//! *Analyzing the Performance of an Anycast CDN* (IMC 2015) contributes
//! three things on top of its substrates, and each is a module here:
//!
//! * a characterization of the **CDN deployment** itself — front-end sites,
//!   anycast + unicast addressing, and the §4 comparison against 21 public
//!   CDN footprints ([`deployment`], [`catalog`]);
//! * the space of **client redirection policies** the paper weighs against
//!   each other — pure anycast, geo-DNS at LDNS granularity, prediction-
//!   driven DNS at LDNS or ECS granularity, and the hybrid the conclusion
//!   advocates ([`redirection`]);
//! * the **history-based prediction scheme** of §6: group clients by /24
//!   (ECS) or by resolver (LDNS), score each candidate front-end by a
//!   robust low percentile of yesterday's latency distribution, and serve
//!   each group the argmin of {anycast, unicast front-ends}
//!   ([`prediction`]), evaluated against the next day's measurements at the
//!   50th and 75th percentiles ([`evaluation`]);
//! * the §2 **availability argument** made executable: anycast's
//!   one-routing-step failover against DNS redirection's TTL-long
//!   staleness when a front-end dies ([`failure`]);
//! * [`study`] orchestrates the full §3 measurement campaign over a
//!   simulated world: beacon sampling from the query stream, DNS/HTTP log
//!   collection, the join, and the per-day aggregates every figure
//!   consumes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod deployment;
pub mod evaluation;
pub mod failure;
pub mod flows;
pub mod loadaware;
pub mod prediction;
pub mod redirection;
pub mod study;

pub use deployment::Deployment;
pub use evaluation::{evaluate_prediction, weighted_availability, EvalRow};
pub use failure::{
    anycast_request, anycast_request_memo, anycast_requests, anycast_requests_memo, request_times,
    DnsRedirectionSim, FailureReason, RequestOutcome,
};
pub use flows::{disruption_rate, DisruptionStats, FlowModel};
pub use loadaware::{plan_shedding, withdraw, SiteLoad};
pub use prediction::{
    AggregationConfig, Choice, GroupKey, Grouping, Metric, PredictionTable, Predictor,
    PredictorConfig,
};
pub use redirection::{AnycastPolicy, GeoClosestDnsPolicy, HybridPolicy, PredictionPolicy};
pub use study::{Study, StudyConfig};
