//! Next-day evaluation of the prediction scheme (Figure 9).
//!
//! "We evaluate the performance of the prediction scheme by comparing
//! against the performance observed in next day's beacon measurements. We
//! compare 50th and 75th anycast performance for the group to 50th and 75th
//! performance for the predicted front-end" (§6). The Bing team's internal
//! benchmark is the 75th percentile.
//!
//! Evaluation is per client /24 (the figure's y-axis is "CDF of weighted
//! /24s") even when the prediction was made at LDNS granularity: each
//! prefix inherits its resolver's predicted front-end.

use std::collections::HashMap;

use anycast_analysis::percentile;
use anycast_beacon::{BeaconDataset, Target};
use anycast_dns::LdnsId;
use anycast_netsim::{Day, Prefix24};

use crate::prediction::{GroupKey, Grouping, PredictionTable};

/// One prefix's evaluation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalRow {
    /// The evaluated /24.
    pub prefix: Prefix24,
    /// Query-volume weight of the prefix.
    pub weight: f64,
    /// What the table predicted for this prefix's group (`Target::Anycast`
    /// when the prediction kept anycast or no prediction existed).
    pub choice: Target,
    /// `anycast_p50 − predicted_p50` on the evaluation day: positive means
    /// the prediction improved on anycast, negative means it hurt, zero
    /// means the prediction was (or fell back to) anycast.
    pub improvement_p50_ms: f64,
    /// Same at the 75th percentile.
    pub improvement_p75_ms: f64,
    /// Fraction of the eval day's fetches towards the *chosen* target that
    /// were served rather than timing out — 1.0 in failure-free worlds.
    /// Latency improvements mean nothing if the chosen front-end doesn't
    /// answer; this is the availability axis the failure worlds add.
    pub availability: f64,
}

/// Evaluates a trained table against `eval_day`'s measurements.
///
/// `ldns_of` maps each prefix to its resolver (needed for
/// [`Grouping::Ldns`]); `volumes` supplies the query-volume weights. A
/// prefix is evaluated only if the eval day has anycast samples for it and
/// — when the choice is a unicast front-end — samples to that front-end;
/// otherwise the comparison the paper makes is undefined for that prefix.
pub fn evaluate_prediction(
    table: &PredictionTable,
    grouping: Grouping,
    data: &BeaconDataset,
    eval_day: Day,
    ldns_of: &HashMap<Prefix24, LdnsId>,
    volumes: &HashMap<Prefix24, u64>,
) -> Vec<EvalRow> {
    let by_prefix = data.by_prefix_target(eval_day);
    let outcomes = data.outcomes_by_prefix_target(eval_day);
    // Collect the prefixes seen on the eval day.
    let mut prefixes: Vec<Prefix24> = by_prefix.keys().map(|&(p, _)| p).collect();
    prefixes.sort();
    prefixes.dedup();

    let mut out = Vec::new();
    for prefix in prefixes {
        let Some(anycast_samples) = by_prefix.get(&(prefix, Target::Anycast)) else {
            continue;
        };
        // ECS tables are longest-prefix-match (an aggregated table may
        // cover this /24 with a shorter default entry); LDNS tables key on
        // the prefix's resolver.
        let choice = match grouping {
            Grouping::Ecs => table
                .lookup_lpm(prefix.into())
                .map(|(_, c)| c.target)
                .unwrap_or(Target::Anycast),
            Grouping::Ldns => match ldns_of.get(&prefix) {
                Some(&l) => table.predict(GroupKey::Ldns(l)).unwrap_or(Target::Anycast),
                None => continue,
            },
        };
        let (p50, p75) = match choice {
            Target::Anycast => (0.0, 0.0),
            Target::Unicast(_) => {
                let Some(chosen_samples) = by_prefix.get(&(prefix, choice)) else {
                    continue;
                };
                let any50 = percentile(anycast_samples, 50.0);
                let any75 = percentile(anycast_samples, 75.0);
                let cho50 = percentile(chosen_samples, 50.0);
                let cho75 = percentile(chosen_samples, 75.0);
                match (any50, any75, cho50, cho75) {
                    (Some(a50), Some(a75), Some(c50), Some(c75)) => (a50 - c50, a75 - c75),
                    _ => continue,
                }
            }
        };
        let availability = match outcomes.get(&(prefix, choice)) {
            Some(&(served, failed)) if served + failed > 0 => {
                served as f64 / (served + failed) as f64
            }
            _ => 1.0,
        };
        out.push(EvalRow {
            prefix,
            weight: volumes.get(&prefix).copied().unwrap_or(1) as f64,
            choice,
            improvement_p50_ms: p50,
            improvement_p75_ms: p75,
            availability,
        });
    }
    out
}

/// Summary fractions over an evaluation: `(improved, unchanged, hurt)`
/// weighted shares at the given percentile (`true` → p50, `false` → p75).
/// "Improved"/"hurt" use a small epsilon so measurement-noise ties count as
/// unchanged.
pub fn outcome_shares(rows: &[EvalRow], use_p50: bool) -> (f64, f64, f64) {
    let eps = 1e-9;
    let total: f64 = rows.iter().map(|r| r.weight).sum();
    if total == 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let mut improved = 0.0;
    let mut hurt = 0.0;
    for r in rows {
        let v = if use_p50 {
            r.improvement_p50_ms
        } else {
            r.improvement_p75_ms
        };
        if v > eps {
            improved += r.weight;
        } else if v < -eps {
            hurt += r.weight;
        }
    }
    (
        improved / total,
        1.0 - (improved + hurt) / total,
        hurt / total,
    )
}

/// Volume-weighted mean availability over an evaluation — the scalar the
/// failure experiments track alongside the Figure 9 latency shares.
/// Returns 1.0 for an empty evaluation (nothing failed because nothing
/// was asked).
pub fn weighted_availability(rows: &[EvalRow]) -> f64 {
    let total: f64 = rows.iter().map(|r| r.weight).sum();
    if total == 0.0 {
        return 1.0;
    }
    rows.iter().map(|r| r.weight * r.availability).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::{Predictor, PredictorConfig};
    use anycast_beacon::{BeaconMeasurement, Slot};
    use anycast_netsim::SiteId;
    use std::net::Ipv4Addr;

    fn prefix(n: u8) -> Prefix24 {
        Prefix24::containing(Ipv4Addr::new(11, 0, n, 1))
    }

    fn rows_on(
        day: u32,
        exec_base: u64,
        p: Prefix24,
        target: Target,
        rtts: &[f64],
    ) -> Vec<BeaconMeasurement> {
        rtts.iter()
            .enumerate()
            .map(|(i, &rtt)| {
                let slot = match target {
                    Target::Anycast => Slot::Anycast,
                    Target::Unicast(_) => Slot::GeoClosest,
                };
                BeaconMeasurement {
                    measurement_id: slot.id_for(exec_base + i as u64),
                    slot,
                    prefix: p,
                    ldns: LdnsId(0),
                    ecs: None,
                    target,
                    served_site: match target {
                        Target::Anycast => SiteId(0),
                        Target::Unicast(s) => s,
                    },
                    rtt_ms: rtt,
                    failed: false,
                    day: Day(day),
                    time_s: 0.0,
                }
            })
            .collect()
    }

    fn train_eval_dataset() -> BeaconDataset {
        let mut ds = BeaconDataset::new();
        // Day 0 (training): prefix 1 is badly served by anycast.
        ds.extend(rows_on(0, 0, prefix(1), Target::Anycast, &[100.0; 25]));
        ds.extend(rows_on(
            0,
            100,
            prefix(1),
            Target::Unicast(SiteId(3)),
            &[60.0; 25],
        ));
        // Day 1 (eval): the improvement persists (stable pathology).
        ds.extend(rows_on(1, 200, prefix(1), Target::Anycast, &[95.0; 20]));
        ds.extend(rows_on(
            1,
            300,
            prefix(1),
            Target::Unicast(SiteId(3)),
            &[58.0; 20],
        ));
        ds
    }

    #[test]
    fn persistent_pathology_shows_positive_improvement() {
        let ds = train_eval_dataset();
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            &ds,
            Day(1),
            &HashMap::new(),
            &HashMap::from([(prefix(1), 10u64)]),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].choice, Target::Unicast(SiteId(3)));
        assert!((rows[0].improvement_p50_ms - 37.0).abs() < 1e-9);
        assert_eq!(rows[0].weight, 10.0);
        let (improved, unchanged, hurt) = outcome_shares(&rows, true);
        assert_eq!((improved, unchanged, hurt), (1.0, 0.0, 0.0));
    }

    #[test]
    fn transient_pathology_shows_negative_improvement() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows_on(0, 0, prefix(1), Target::Anycast, &[100.0; 25]));
        ds.extend(rows_on(
            0,
            100,
            prefix(1),
            Target::Unicast(SiteId(3)),
            &[60.0; 25],
        ));
        // Day 1: the route healed; anycast is now better.
        ds.extend(rows_on(1, 200, prefix(1), Target::Anycast, &[40.0; 20]));
        ds.extend(rows_on(
            1,
            300,
            prefix(1),
            Target::Unicast(SiteId(3)),
            &[58.0; 20],
        ));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            &ds,
            Day(1),
            &HashMap::new(),
            &HashMap::new(),
        );
        assert!(rows[0].improvement_p50_ms < 0.0);
        let (_, _, hurt) = outcome_shares(&rows, true);
        assert_eq!(hurt, 1.0);
    }

    #[test]
    fn anycast_choice_scores_zero() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows_on(0, 0, prefix(1), Target::Anycast, &[40.0; 25]));
        ds.extend(rows_on(
            0,
            100,
            prefix(1),
            Target::Unicast(SiteId(3)),
            &[60.0; 25],
        ));
        ds.extend(rows_on(1, 200, prefix(1), Target::Anycast, &[40.0; 20]));
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            &ds,
            Day(1),
            &HashMap::new(),
            &HashMap::new(),
        );
        assert_eq!(rows[0].choice, Target::Anycast);
        assert_eq!(rows[0].improvement_p50_ms, 0.0);
        let (_, unchanged, _) = outcome_shares(&rows, false);
        assert_eq!(unchanged, 1.0);
    }

    #[test]
    fn ldns_grouping_propagates_group_choice_to_prefixes() {
        let mut ds = BeaconDataset::new();
        // Training day: all data under LDNS 5, pooled.
        ds.extend(rows_on(0, 0, prefix(1), Target::Anycast, &[100.0; 15]));
        ds.extend(rows_on(0, 100, prefix(2), Target::Anycast, &[100.0; 15]));
        ds.extend(rows_on(
            0,
            200,
            prefix(1),
            Target::Unicast(SiteId(2)),
            &[50.0; 15],
        ));
        ds.extend(rows_on(
            0,
            300,
            prefix(2),
            Target::Unicast(SiteId(2)),
            &[50.0; 15],
        ));
        // Eval day: prefix 1 measured both targets.
        ds.extend(rows_on(1, 400, prefix(1), Target::Anycast, &[100.0; 5]));
        ds.extend(rows_on(
            1,
            500,
            prefix(1),
            Target::Unicast(SiteId(2)),
            &[52.0; 5],
        ));
        let mut ds5 = BeaconDataset::new();
        // Rebuild with ldns 5 on every row.
        let rows: Vec<BeaconMeasurement> = ds
            .measurements()
            .iter()
            .map(|m| BeaconMeasurement {
                ldns: LdnsId(5),
                ..*m
            })
            .collect();
        ds5.extend(rows);
        let cfg = PredictorConfig {
            grouping: Grouping::Ldns,
            ..Default::default()
        };
        let table = Predictor::new(cfg).train(&ds5, Day(0));
        let ldns_of = HashMap::from([(prefix(1), LdnsId(5)), (prefix(2), LdnsId(5))]);
        let rows = evaluate_prediction(
            &table,
            Grouping::Ldns,
            &ds5,
            Day(1),
            &ldns_of,
            &HashMap::new(),
        );
        assert_eq!(rows.len(), 1); // prefix 2 has no eval-day data
        assert_eq!(rows[0].prefix, prefix(1));
        assert!(rows[0].improvement_p50_ms > 0.0);
    }

    #[test]
    fn missing_eval_samples_drop_the_row() {
        let ds = {
            let mut ds = BeaconDataset::new();
            ds.extend(rows_on(0, 0, prefix(1), Target::Anycast, &[100.0; 25]));
            ds.extend(rows_on(
                0,
                100,
                prefix(1),
                Target::Unicast(SiteId(3)),
                &[60.0; 25],
            ));
            // Eval day: anycast only — the predicted front-end was never
            // measured, so the comparison is undefined.
            ds.extend(rows_on(1, 200, prefix(1), Target::Anycast, &[95.0; 20]));
            ds
        };
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            &ds,
            Day(1),
            &HashMap::new(),
            &HashMap::new(),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn outcome_shares_empty_input() {
        assert_eq!(outcome_shares(&[], true), (0.0, 0.0, 0.0));
    }

    #[test]
    fn availability_reflects_eval_day_failures() {
        let mut ds = BeaconDataset::new();
        ds.extend(rows_on(0, 0, prefix(1), Target::Anycast, &[40.0; 25]));
        // Eval day: 15 served, 5 timed out.
        ds.extend(rows_on(1, 200, prefix(1), Target::Anycast, &[40.0; 15]));
        let mut bad = rows_on(1, 300, prefix(1), Target::Anycast, &[6000.0; 5]);
        for m in &mut bad {
            m.failed = true;
        }
        ds.extend(bad);
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            &ds,
            Day(1),
            &HashMap::new(),
            &HashMap::new(),
        );
        assert_eq!(rows[0].choice, Target::Anycast);
        assert!((rows[0].availability - 0.75).abs() < 1e-9);
        assert!((weighted_availability(&rows) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn failure_free_eval_has_full_availability() {
        let ds = train_eval_dataset();
        let table = Predictor::new(PredictorConfig::default()).train(&ds, Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            &ds,
            Day(1),
            &HashMap::new(),
            &HashMap::new(),
        );
        assert!(rows.iter().all(|r| r.availability == 1.0));
        assert_eq!(weighted_availability(&rows), 1.0);
    }
}
