//! Redirection policies: the §2/§6 design space as pluggable DNS policies.
//!
//! Each policy implements [`anycast_dns::RedirectionPolicy`] and can be
//! installed on an [`anycast_dns::AuthoritativeServer`]:
//!
//! * [`AnycastPolicy`] — always answer the anycast VIP (the studied CDN's
//!   production behaviour);
//! * [`GeoClosestDnsPolicy`] — answer the unicast address of the front-end
//!   nearest to the requesting LDNS's believed location (classic geo-DNS,
//!   §2's "performance-based decision … based on which LDNS forwarded the
//!   request" in its simplest form);
//! * [`PredictionPolicy`] — answer from a trained
//!   [`crate::prediction::PredictionTable`], at ECS or LDNS granularity,
//!   falling back to anycast for unknown groups;
//! * [`HybridPolicy`] — the paper's conclusion: anycast for everyone except
//!   the groups a prediction table says gain at least a threshold from DNS
//!   redirection.

use anycast_geo::GeoPoint;
use anycast_netsim::CdnAddressing;

use anycast_dns::{DnsAnswer, QueryContext, RedirectionPolicy};

use crate::deployment::Deployment;
use crate::prediction::{GroupKey, Grouping, PredictionTable};
use anycast_beacon::Target;

/// Always answer the anycast VIP.
#[derive(Debug, Clone, Copy)]
pub struct AnycastPolicy {
    addressing: CdnAddressing,
    ttl_s: u32,
}

impl AnycastPolicy {
    /// Creates the policy.
    pub fn new(addressing: CdnAddressing, ttl_s: u32) -> AnycastPolicy {
        AnycastPolicy { addressing, ttl_s }
    }
}

impl RedirectionPolicy for AnycastPolicy {
    fn answer(&self, _query: &QueryContext<'_>) -> DnsAnswer {
        DnsAnswer::global(self.addressing.anycast_ip(), self.ttl_s)
    }
}

/// Geo-DNS: the front-end nearest the LDNS's believed location.
#[derive(Debug, Clone)]
pub struct GeoClosestDnsPolicy {
    deployment: Deployment,
    ttl_s: u32,
}

impl GeoClosestDnsPolicy {
    /// Creates the policy over a deployment.
    pub fn new(deployment: Deployment, ttl_s: u32) -> GeoClosestDnsPolicy {
        GeoClosestDnsPolicy { deployment, ttl_s }
    }

    /// The site this policy selects for an LDNS at `loc`.
    pub fn select(&self, loc: &GeoPoint) -> Option<anycast_netsim::SiteId> {
        self.deployment.nearest(loc, 1).first().map(|&(s, _)| s)
    }
}

impl RedirectionPolicy for GeoClosestDnsPolicy {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        match self.select(&query.ldns_location) {
            Some(site) => DnsAnswer::global(self.deployment.addressing().site_ip(site), self.ttl_s),
            None => DnsAnswer::global(self.deployment.addressing().anycast_ip(), self.ttl_s),
        }
    }
}

/// Prediction-driven DNS redirection.
#[derive(Debug, Clone)]
pub struct PredictionPolicy {
    table: PredictionTable,
    grouping: Grouping,
    addressing: CdnAddressing,
    ttl_s: u32,
}

impl PredictionPolicy {
    /// Creates the policy from a trained table.
    pub fn new(
        table: PredictionTable,
        grouping: Grouping,
        addressing: CdnAddressing,
        ttl_s: u32,
    ) -> PredictionPolicy {
        PredictionPolicy {
            table,
            grouping,
            addressing,
            ttl_s,
        }
    }

    /// Swaps in a freshly trained table (the daily prediction-interval
    /// update).
    pub fn update_table(&mut self, table: PredictionTable) {
        self.table = table;
    }

    /// The currently installed table.
    pub fn table(&self) -> &PredictionTable {
        &self.table
    }
}

impl RedirectionPolicy for PredictionPolicy {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        // ECS tables are longest-prefix-match: the matched aggregate's
        // length is the answer's scope (RFC 7871 §7.2.1). A miss — the
        // anycast fallback — was derived from no subnet, so it is scope 0;
        // advertising the query's own length there was the classic
        // over-scoping bug that shattered resolver caches.
        let (choice, matched_len) = match self.grouping {
            Grouping::Ecs => match query.ecs.and_then(|e| self.table.lookup_lpm(e.prefix)) {
                Some((matched, c)) => (c.target, Some(matched.len())),
                None => (Target::Anycast, None),
            },
            Grouping::Ldns => (
                self.table
                    .predict(GroupKey::Ldns(query.ldns))
                    .unwrap_or(Target::Anycast),
                None,
            ),
        };
        let addr = match choice {
            Target::Anycast => self.addressing.anycast_ip(),
            Target::Unicast(site) => self.addressing.site_ip(site),
        };
        DnsAnswer::scoped(addr, self.ttl_s, self.grouping.answer_scope(matched_len))
    }
}

/// The hybrid: prediction-driven redirection restricted to groups whose
/// expected gain clears a threshold; anycast for everyone else.
#[derive(Debug, Clone)]
pub struct HybridPolicy {
    inner: PredictionPolicy,
}

impl HybridPolicy {
    /// Builds the hybrid from a full table by keeping only groups with an
    /// expected gain of at least `min_gain_ms`.
    pub fn new(
        table: &PredictionTable,
        min_gain_ms: f64,
        grouping: Grouping,
        addressing: CdnAddressing,
        ttl_s: u32,
    ) -> HybridPolicy {
        HybridPolicy {
            inner: PredictionPolicy::new(
                table.hybrid_filter(min_gain_ms),
                grouping,
                addressing,
                ttl_s,
            ),
        }
    }

    /// Number of groups the hybrid actually redirects.
    pub fn redirected_count(&self) -> usize {
        self.inner.table().len()
    }
}

impl RedirectionPolicy for HybridPolicy {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        self.inner.answer(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_beacon::{BeaconDataset, BeaconMeasurement, Slot};
    use anycast_dns::{DnsName, EcsOption, LdnsId};
    use anycast_netsim::{Day, Internet, NetConfig, Prefix24, SiteId};
    use std::net::Ipv4Addr;

    fn ctx<'a>(
        qname: &'a DnsName,
        ldns: u32,
        loc: GeoPoint,
        ecs: Option<EcsOption>,
    ) -> QueryContext<'a> {
        QueryContext {
            qname,
            ldns: LdnsId(ldns),
            ldns_location: loc,
            ecs,
            day: Day(0),
            time_s: 0.0,
        }
    }

    fn prefix(n: u8) -> Prefix24 {
        Prefix24::containing(Ipv4Addr::new(11, 0, n, 1))
    }

    fn trained_table(site: u16, gain: f64) -> PredictionTable {
        // Train a one-group table through the real Predictor so internals
        // stay consistent.
        use crate::prediction::{Predictor, PredictorConfig};
        let mut ds = BeaconDataset::new();
        let mk = |exec: u64, t: Target, rtt: f64, i: usize| BeaconMeasurement {
            measurement_id: match t {
                Target::Anycast => Slot::Anycast.id_for(exec + i as u64),
                Target::Unicast(_) => Slot::GeoClosest.id_for(exec + i as u64),
            },
            slot: Slot::Anycast,
            prefix: prefix(1),
            ldns: LdnsId(0),
            ecs: None,
            target: t,
            served_site: SiteId(0),
            rtt_ms: rtt,
            failed: false,
            day: Day(0),
            time_s: 0.0,
        };
        ds.extend((0..25).map(|i| mk(0, Target::Anycast, 50.0 + gain, i)));
        ds.extend((0..25).map(|i| mk(100, Target::Unicast(SiteId(site)), 50.0, i)));
        Predictor::new(PredictorConfig::default()).train(&ds, Day(0))
    }

    #[test]
    fn anycast_policy_always_answers_vip() {
        let plan = CdnAddressing::standard(8);
        let p = AnycastPolicy::new(plan, 60);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let a = p.answer(&ctx(&qname, 0, GeoPoint::new(0.0, 0.0), None));
        assert!(plan.is_anycast(a.addr));
        assert_eq!(a.ecs_scope, 0);
    }

    #[test]
    fn geo_policy_selects_nearest_site() {
        let net = Internet::new(NetConfig::small(), 3).unwrap();
        let deployment = Deployment::of(&net);
        let plan = *deployment.addressing();
        // Query from exactly a front-end's location: that site must win.
        let fe = deployment.front_ends()[2].clone();
        let p = GeoClosestDnsPolicy::new(deployment, 60);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let a = p.answer(&ctx(&qname, 0, fe.location, None));
        assert_eq!(plan.site_for_ip(a.addr), Some(fe.site));
    }

    #[test]
    fn prediction_policy_ecs_uses_subnet() {
        let plan = CdnAddressing::standard(8);
        let table = trained_table(3, 30.0);
        let p = PredictionPolicy::new(table, Grouping::Ecs, plan, 60);
        let qname = DnsName::new("www.cdn.example").unwrap();
        // Known subnet: redirected, subnet-scoped.
        let a = p.answer(&ctx(
            &qname,
            0,
            GeoPoint::new(0.0, 0.0),
            Some(EcsOption::for_prefix(prefix(1))),
        ));
        assert_eq!(plan.site_for_ip(a.addr), Some(SiteId(3)));
        assert_eq!(a.ecs_scope, 24);
        // Unknown subnet: anycast fallback — derived from no subnet, so it
        // must advertise scope 0, not echo the query's /24.
        let b = p.answer(&ctx(
            &qname,
            0,
            GeoPoint::new(0.0, 0.0),
            Some(EcsOption::for_prefix(prefix(9))),
        ));
        assert!(plan.is_anycast(b.addr));
        assert_eq!(b.ecs_scope, 0, "table miss must be scope 0");
        // No ECS at all: anycast fallback, global scope.
        let c = p.answer(&ctx(&qname, 0, GeoPoint::new(0.0, 0.0), None));
        assert!(plan.is_anycast(c.addr));
        assert_eq!(c.ecs_scope, 0);
    }

    #[test]
    fn prediction_policy_ldns_grouping_ignores_ecs() {
        let plan = CdnAddressing::standard(8);
        // Build an LDNS-keyed table via the predictor.
        use crate::prediction::{Predictor, PredictorConfig};
        let mut ds = BeaconDataset::new();
        let mk = |exec: u64, t: Target, rtt: f64| BeaconMeasurement {
            measurement_id: match t {
                Target::Anycast => Slot::Anycast.id_for(exec),
                Target::Unicast(_) => Slot::GeoClosest.id_for(exec),
            },
            slot: Slot::Anycast,
            prefix: prefix(1),
            ldns: LdnsId(4),
            ecs: None,
            target: t,
            served_site: SiteId(0),
            rtt_ms: rtt,
            failed: false,
            day: Day(0),
            time_s: 0.0,
        };
        ds.extend((0..25).map(|i| mk(i, Target::Anycast, 90.0)));
        ds.extend((100..125).map(|i| mk(i, Target::Unicast(SiteId(2)), 40.0)));
        let cfg = PredictorConfig {
            grouping: Grouping::Ldns,
            ..Default::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        let p = PredictionPolicy::new(table, Grouping::Ldns, plan, 60);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let a = p.answer(&ctx(&qname, 4, GeoPoint::new(0.0, 0.0), None));
        assert_eq!(plan.site_for_ip(a.addr), Some(SiteId(2)));
        // A different LDNS gets anycast.
        let b = p.answer(&ctx(&qname, 5, GeoPoint::new(0.0, 0.0), None));
        assert!(plan.is_anycast(b.addr));
    }

    #[test]
    fn ldns_keyed_answers_to_ecs_queries_advertise_scope_zero() {
        // The §6 LDNS/ECS distinction on the wire: an answer computed per
        // resolver does not depend on the client subnet, so even when the
        // query carries ECS the response must advertise scope 0 — one
        // cache entry serves every client of the LDNS.
        let plan = CdnAddressing::standard(8);
        use crate::prediction::{Predictor, PredictorConfig};
        let mut ds = BeaconDataset::new();
        let mk = |exec: u64, t: Target, rtt: f64| BeaconMeasurement {
            measurement_id: match t {
                Target::Anycast => Slot::Anycast.id_for(exec),
                Target::Unicast(_) => Slot::GeoClosest.id_for(exec),
            },
            slot: Slot::Anycast,
            prefix: prefix(1),
            ldns: LdnsId(4),
            ecs: None,
            target: t,
            served_site: SiteId(0),
            rtt_ms: rtt,
            failed: false,
            day: Day(0),
            time_s: 0.0,
        };
        ds.extend((0..25).map(|i| mk(i, Target::Anycast, 90.0)));
        ds.extend((100..125).map(|i| mk(i, Target::Unicast(SiteId(2)), 40.0)));
        let cfg = PredictorConfig {
            grouping: Grouping::Ldns,
            ..Default::default()
        };
        let table = Predictor::new(cfg).train(&ds, Day(0));
        let p = PredictionPolicy::new(table, Grouping::Ldns, plan, 60);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let a = p.answer(&ctx(
            &qname,
            4,
            GeoPoint::new(0.0, 0.0),
            Some(EcsOption::for_prefix(prefix(1))),
        ));
        assert_eq!(
            plan.site_for_ip(a.addr),
            Some(SiteId(2)),
            "still redirected"
        );
        assert_eq!(a.ecs_scope, 0, "LDNS-keyed answer must be scope 0");
        // ECS-keyed answers advertise the matched aggregate's length; a
        // miss is scope 0; LDNS-keyed answers are always scope 0.
        assert_eq!(Grouping::Ecs.answer_scope(Some(24)), 24);
        assert_eq!(Grouping::Ecs.answer_scope(Some(8)), 8);
        assert_eq!(Grouping::Ecs.answer_scope(None), 0);
        assert_eq!(Grouping::Ldns.answer_scope(Some(24)), 0);
    }

    #[test]
    fn hybrid_threshold_gates_redirection() {
        let plan = CdnAddressing::standard(8);
        let table = trained_table(3, 12.0); // expected gain 12 ms
        let qname = DnsName::new("www.cdn.example").unwrap();
        let ecs = Some(EcsOption::for_prefix(prefix(1)));

        let permissive = HybridPolicy::new(&table, 5.0, Grouping::Ecs, plan, 60);
        assert_eq!(permissive.redirected_count(), 1);
        let a = permissive.answer(&ctx(&qname, 0, GeoPoint::new(0.0, 0.0), ecs));
        assert_eq!(plan.site_for_ip(a.addr), Some(SiteId(3)));

        let strict = HybridPolicy::new(&table, 25.0, Grouping::Ecs, plan, 60);
        assert_eq!(strict.redirected_count(), 0);
        let b = strict.answer(&ctx(&qname, 0, GeoPoint::new(0.0, 0.0), ecs));
        assert!(plan.is_anycast(b.addr));
    }
}
