//! TCP-session disruption under anycast route changes (§2's claim,
//! quantified).
//!
//! "Anycast routing changes can cause ongoing TCP sessions to terminate
//! and need to be restarted. In the context of the Web, which is dominated
//! by short flows, this does not appear to be an issue in practice" (§2,
//! citing operational experience \[31\] and FastRoute \[23\]).
//!
//! This module tests that claim in the simulator: flows with configurable
//! duration distributions arrive on the diurnal clock; a flow breaks if an
//! anycast route change (a churn flip, which lands at a deterministic time
//! within its day) occurs during the flow's lifetime *and* actually moves
//! the client to a different front-end. Sweeping the duration distribution
//! from web-like (sub-second) to video-like (minutes) shows where the
//! "short flows are fine" argument stops holding.

use anycast_geo::LogNormal;
use anycast_netsim::Day;
use anycast_workload::{temporal, Scenario};
use rand::distributions::Distribution;
use rand::Rng;

/// Flow duration model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowModel {
    /// Median flow duration, seconds.
    pub duration_median_s: f64,
    /// Lognormal sigma (web traffic is heavy-tailed).
    pub duration_sigma: f64,
}

impl FlowModel {
    /// Web page loads: short, heavy-tailed.
    pub fn web() -> FlowModel {
        FlowModel {
            duration_median_s: 1.5,
            duration_sigma: 1.2,
        }
    }

    /// Video sessions: minutes.
    pub fn video() -> FlowModel {
        FlowModel {
            duration_median_s: 300.0,
            duration_sigma: 0.8,
        }
    }
}

/// Outcome of one disruption experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisruptionStats {
    /// Flows simulated.
    pub flows: u64,
    /// Flows whose lifetime contained a front-end-changing route flip.
    pub broken: u64,
}

impl DisruptionStats {
    /// Fraction of flows broken.
    pub fn broken_fraction(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.broken as f64 / self.flows as f64
        }
    }
}

/// Simulates `flows_per_client` flows per client on `day` and counts the
/// ones broken by an anycast route change.
///
/// A client's route can change at most once per day (the churn model's
/// flip, at [`Scenario::flip_time_s`]); a flow is broken when it spans the
/// flip time *and* the flip changes the serving front-end (flips between
/// egresses mapping to the same site keep TCP intact — the connection's
/// packets still reach the same terminating server).
pub fn disruption_rate(
    scenario: &Scenario,
    day: Day,
    model: FlowModel,
    flows_per_client: u32,
    rng: &mut impl Rng,
) -> DisruptionStats {
    let duration = LogNormal::new(model.duration_median_s, model.duration_sigma);
    let mut flows = 0u64;
    let mut broken = 0u64;
    for client in &scenario.clients {
        let flips = scenario.internet.churn().flips_on(
            client.attachment.as_id,
            client.attachment.metro,
            day,
        );
        let change = if flips {
            let before = scenario
                .internet
                .anycast_route_at_day_start(&client.attachment, day);
            let after = scenario.internet.anycast_route(&client.attachment, day);
            (before.site != after.site).then(|| scenario.flip_time_s(client, day))
        } else {
            None
        };
        for _ in 0..flows_per_client {
            flows += 1;
            let Some(flip_at) = change else { continue };
            let start = temporal::sample_query_time(client.attachment.location.lon_deg(), rng);
            let end = start + duration.sample(rng);
            if start < flip_at && end > flip_at {
                broken += 1;
            }
        }
    }
    DisruptionStats { flows, broken }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_workload::scenario::seeded_rng;

    #[test]
    fn web_flows_are_rarely_broken() {
        let scenario = Scenario::small(21);
        let mut rng = seeded_rng(21, 0xf10);
        let stats = disruption_rate(&scenario, Day(0), FlowModel::web(), 10, &mut rng);
        assert!(stats.flows > 1000);
        // The paper's operational claim: for short web flows this "does
        // not appear to be an issue in practice".
        assert!(
            stats.broken_fraction() < 0.001,
            "web flows broken at {:.4}%",
            100.0 * stats.broken_fraction()
        );
    }

    #[test]
    fn longer_flows_break_more() {
        let scenario = Scenario::small(22);
        let mut rng = seeded_rng(22, 0xf10);
        let web = disruption_rate(&scenario, Day(0), FlowModel::web(), 20, &mut rng);
        let mut rng = seeded_rng(22, 0xf10);
        let video = disruption_rate(&scenario, Day(0), FlowModel::video(), 20, &mut rng);
        assert!(
            video.broken_fraction() >= web.broken_fraction(),
            "video {} vs web {}",
            video.broken_fraction(),
            web.broken_fraction()
        );
    }

    #[test]
    fn frozen_world_breaks_nothing() {
        use anycast_netsim::NetConfig;
        use anycast_workload::ScenarioConfig;
        let cfg = ScenarioConfig {
            net: NetConfig {
                flappy_fraction: 0.0,
                ..NetConfig::small()
            },
            ..ScenarioConfig::small(23)
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut rng = seeded_rng(23, 0xf10);
        let stats = disruption_rate(&scenario, Day(0), FlowModel::video(), 5, &mut rng);
        assert_eq!(stats.broken, 0);
    }

    #[test]
    fn stats_handle_zero_flows() {
        let stats = DisruptionStats {
            flows: 0,
            broken: 0,
        };
        assert_eq!(stats.broken_fraction(), 0.0);
    }
}
