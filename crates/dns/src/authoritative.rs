//! The CDN's authoritative nameserver.
//!
//! "The CDN makes a performance-based decision about what IP address to
//! return based on which LDNS forwarded the request" (§2). The decision
//! logic itself is a [`RedirectionPolicy`] supplied by `anycast-core`
//! (anycast-always, geo-DNS, prediction-driven, hybrid); this module
//! provides the mechanism: receive a query with its LDNS identity and
//! optional ECS, ask the policy, log the query, return the record.

use anycast_geo::GeoPoint;
use anycast_netsim::Day;

use crate::ecs::EcsOption;
use crate::ldns::LdnsId;
use crate::log::DnsQueryLog;
use crate::name::DnsName;
use crate::record::{ARecord, DnsAnswer};

/// Everything a redirection policy may condition on. Note what is *not*
/// here: the client's own address (unless ECS carried its prefix) — the
/// fundamental information gap of LDNS-granularity redirection.
#[derive(Debug, Clone, Copy)]
pub struct QueryContext<'a> {
    /// The queried name.
    pub qname: &'a DnsName,
    /// The forwarding LDNS.
    pub ldns: LdnsId,
    /// Where the CDN believes that LDNS is (from its geolocation database).
    pub ldns_location: GeoPoint,
    /// Client subnet, if the LDNS supports ECS and the server accepts it.
    pub ecs: Option<EcsOption>,
    /// Simulation day.
    pub day: Day,
    /// Seconds within the day.
    pub time_s: f64,
}

/// A pluggable answer policy.
pub trait RedirectionPolicy {
    /// Decides the answer for one query.
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer;
}

impl<F> RedirectionPolicy for F
where
    F: Fn(&QueryContext<'_>) -> DnsAnswer,
{
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        self(query)
    }
}

/// A shared policy is a policy — this is what lets a hot-reloadable table
/// store be installed once and swapped underneath a running server.
impl<P: RedirectionPolicy + ?Sized> RedirectionPolicy for std::sync::Arc<P> {
    fn answer(&self, query: &QueryContext<'_>) -> DnsAnswer {
        (**self).answer(query)
    }
}

/// The authoritative server: policy + ECS switch + query log.
#[derive(Debug)]
pub struct AuthoritativeServer<P> {
    policy: P,
    ecs_enabled: bool,
    log: Vec<DnsQueryLog>,
}

impl<P: RedirectionPolicy> AuthoritativeServer<P> {
    /// Creates a server. `ecs_enabled` controls whether incoming ECS
    /// options are honored (passed through to the policy) or stripped —
    /// real CDNs must opt in to ECS (§7).
    pub fn new(policy: P, ecs_enabled: bool) -> Self {
        AuthoritativeServer {
            policy,
            ecs_enabled,
            log: Vec::new(),
        }
    }

    /// Whether ECS is honored.
    pub fn ecs_enabled(&self) -> bool {
        self.ecs_enabled
    }

    /// Resolves one query: consults the policy, appends to the query log,
    /// returns the record the LDNS should cache.
    pub fn resolve(
        &mut self,
        qname: &DnsName,
        ldns: LdnsId,
        ldns_location: GeoPoint,
        ecs: Option<EcsOption>,
        day: Day,
        time_s: f64,
    ) -> (ARecord, DnsAnswer) {
        let effective_ecs = if self.ecs_enabled { ecs } else { None };
        let ctx = QueryContext {
            qname,
            ldns,
            ldns_location,
            ecs: effective_ecs,
            day,
            time_s,
        };
        let answer = self.policy.answer(&ctx);
        self.log.push(DnsQueryLog {
            qname: qname.clone(),
            ldns,
            ecs: effective_ecs.map(|e| e.prefix),
            answer: answer.addr,
            day,
            time_s,
        });
        (
            ARecord::new(qname.clone(), answer.addr, answer.ttl_s),
            answer,
        )
    }

    /// The accumulated query log.
    pub fn log(&self) -> &[DnsQueryLog] {
        &self.log
    }

    /// Drains the query log (the backend "pushes logs to storage").
    pub fn drain_log(&mut self) -> Vec<DnsQueryLog> {
        std::mem::take(&mut self.log)
    }

    /// Access to the policy (e.g. to update a prediction table between
    /// days).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_netsim::Prefix24;
    use std::net::Ipv4Addr;

    fn fixed_policy(addr: Ipv4Addr) -> impl RedirectionPolicy {
        move |_q: &QueryContext<'_>| DnsAnswer::global(addr, 300)
    }

    #[test]
    fn resolve_returns_policy_answer_and_logs() {
        let ip = Ipv4Addr::new(203, 0, 113, 5);
        let mut server = AuthoritativeServer::new(fixed_policy(ip), false);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let (rec, ans) = server.resolve(
            &qname,
            LdnsId(9),
            GeoPoint::new(0.0, 0.0),
            None,
            Day(1),
            42.0,
        );
        assert_eq!(rec.addr, ip);
        assert_eq!(ans.ttl_s, 300);
        assert_eq!(server.log().len(), 1);
        assert_eq!(server.log()[0].ldns, LdnsId(9));
        assert_eq!(server.log()[0].day, Day(1));
    }

    #[test]
    fn ecs_stripped_when_disabled() {
        let seen = std::cell::RefCell::new(None);
        let policy = |q: &QueryContext<'_>| {
            *seen.borrow_mut() = Some(q.ecs.is_some());
            DnsAnswer::global(Ipv4Addr::new(1, 1, 1, 1), 60)
        };
        let mut server = AuthoritativeServer::new(policy, false);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let ecs = EcsOption::for_prefix(Prefix24::containing(Ipv4Addr::new(9, 9, 9, 9)));
        assert_eq!(ecs.source_prefix_len(), 24);
        server.resolve(
            &qname,
            LdnsId(0),
            GeoPoint::new(0.0, 0.0),
            Some(ecs),
            Day(0),
            0.0,
        );
        assert_eq!(*seen.borrow(), Some(false));
        assert_eq!(server.log()[0].ecs, None);
    }

    #[test]
    fn ecs_passed_when_enabled() {
        let policy = |q: &QueryContext<'_>| {
            assert!(q.ecs.is_some());
            DnsAnswer::subnet_scoped(Ipv4Addr::new(1, 1, 1, 1), 60)
        };
        let mut server = AuthoritativeServer::new(policy, true);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let p = Prefix24::containing(Ipv4Addr::new(9, 9, 9, 9));
        server.resolve(
            &qname,
            LdnsId(0),
            GeoPoint::new(0.0, 0.0),
            Some(EcsOption::for_prefix(p)),
            Day(0),
            0.0,
        );
        assert_eq!(server.log()[0].ecs, Some(p.into()));
    }

    #[test]
    fn drain_log_empties() {
        let mut server = AuthoritativeServer::new(fixed_policy(Ipv4Addr::new(1, 1, 1, 1)), false);
        let qname = DnsName::new("a.cdn.example").unwrap();
        for i in 0..5 {
            server.resolve(
                &qname,
                LdnsId(i),
                GeoPoint::new(0.0, 0.0),
                None,
                Day(0),
                f64::from(i),
            );
        }
        let drained = server.drain_log();
        assert_eq!(drained.len(), 5);
        assert!(server.log().is_empty());
    }
}
