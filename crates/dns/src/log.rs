//! Authoritative-side query logs.
//!
//! "Our authoritative DNS servers also push their query logs to the backend
//! storage. Each test URL has a globally unique identifier, allowing us to
//! join HTTP results from the client side with DNS results from the server
//! side" (§3.2.2). [`DnsQueryLog`] is one row of that log; the beacon
//! crate's `join` module performs the join.

use std::net::Ipv4Addr;

use anycast_netsim::{Day, Prefix};

use crate::ldns::LdnsId;
use crate::name::DnsName;

/// One authoritative query-log row.
#[derive(Debug, Clone, PartialEq)]
pub struct DnsQueryLog {
    /// Queried name (unique per beacon measurement).
    pub qname: DnsName,
    /// The LDNS that forwarded the query — the *only* client identity a
    /// non-ECS authoritative server ever sees.
    pub ldns: LdnsId,
    /// Client subnet, when the LDNS attached ECS (any prefix length the
    /// resolver chose to forward).
    pub ecs: Option<Prefix>,
    /// Address returned.
    pub answer: Ipv4Addr,
    /// Day of the query.
    pub day: Day,
    /// Seconds within the day.
    pub time_s: f64,
}

impl DnsQueryLog {
    /// The measurement id embedded in the qname, if this row belongs to a
    /// beacon measurement.
    pub fn measurement_id(&self) -> Option<u64> {
        self.qname.measurement_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_id_passthrough() {
        let zone = DnsName::new("cdn.example").unwrap();
        let row = DnsQueryLog {
            qname: DnsName::measurement(42, &zone),
            ldns: LdnsId(3),
            ecs: None,
            answer: Ipv4Addr::new(203, 0, 113, 9),
            day: Day(0),
            time_s: 10.0,
        };
        assert_eq!(row.measurement_id(), Some(42));
    }
}
