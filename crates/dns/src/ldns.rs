//! Local DNS resolvers (LDNS).
//!
//! "The client's local DNS resolver (LDNS), typically configured by the
//! client's ISP, will receive the DNS request … and forward it to the CDN's
//! authoritative nameserver" (§2). Two resolver populations matter to the
//! paper:
//!
//! * **ISP-local resolvers**, near their clients — the reason LDNS
//!   geolocation is a usable proxy for client location (§3.3 cites that only
//!   11–12% of demand is >500 km from its LDNS);
//! * **public resolvers** (Google Public DNS, OpenDNS), which serve "large,
//!   geographically disparate sets of clients" and are the motivating case
//!   for ECS.
//!
//! [`Ldns`] models both: a location, an ECS capability flag (public
//! resolvers pioneered ECS), and a TTL cache shared by all clients of the
//! resolver — the root of the LDNS-granularity imprecision.

use std::net::Ipv4Addr;

use anycast_geo::GeoPoint;
use anycast_netsim::{Day, Prefix, Prefix24};

use crate::authoritative::{AuthoritativeServer, RedirectionPolicy};
use crate::cache::DnsCache;
use crate::ecs::EcsOption;
use crate::name::DnsName;

/// Identifier of an LDNS resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LdnsId(pub u32);

impl std::fmt::Display for LdnsId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ldns{}", self.0)
    }
}

/// The resolver population a resolver belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolverKind {
    /// Operated by the client's ISP, located near its clients.
    IspLocal,
    /// A public anycast resolver serving clients worldwide.
    Public,
}

/// The outcome of one resolution through an LDNS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Address handed to the client.
    pub addr: Ipv4Addr,
    /// Whether the answer came from the resolver cache (no authoritative
    /// query was made — and hence no authoritative log row exists).
    pub cache_hit: bool,
}

/// A recursive resolver.
#[derive(Debug)]
pub struct Ldns {
    /// This resolver's id.
    pub id: LdnsId,
    /// Population it belongs to.
    pub kind: ResolverKind,
    /// True location of the resolver.
    pub location: GeoPoint,
    /// Whether it attaches ECS to upstream queries (public resolvers do;
    /// most ISP resolvers in the study's era did not).
    pub supports_ecs: bool,
    /// SOURCE PREFIX-LENGTH this resolver forwards when it attaches ECS.
    /// 24 is the paper's granularity; real resolvers may truncate further
    /// for privacy (RFC 7871 §11.1), which is what the serving plane's
    /// longest-prefix-match tables exist to answer correctly.
    pub ecs_prefix_len: u8,
    cache: DnsCache,
}

impl Ldns {
    /// Cache bound per resolver. The beacon's unique hostnames would grow
    /// an unbounded cache linearly over a month-long campaign; real
    /// resolvers cap theirs.
    const CACHE_CAPACITY: usize = 100_000;

    /// Creates a resolver forwarding full /24 ECS (when it forwards ECS at
    /// all).
    pub fn new(id: LdnsId, kind: ResolverKind, location: GeoPoint, supports_ecs: bool) -> Ldns {
        Ldns {
            id,
            kind,
            location,
            supports_ecs,
            ecs_prefix_len: 24,
            cache: DnsCache::with_capacity(Self::CACHE_CAPACITY),
        }
    }

    /// Sets the SOURCE PREFIX-LENGTH this resolver truncates ECS to
    /// (clamped to 1–24; a resolver that wants no ECS at all clears
    /// `supports_ecs` instead).
    pub fn with_ecs_prefix_len(mut self, len: u8) -> Ldns {
        self.ecs_prefix_len = len.clamp(1, 24);
        self
    }

    /// Resolves `qname` on behalf of a client in `client_prefix`,
    /// consulting the cache first and the authoritative server on a miss.
    ///
    /// `believed_location` is where the *CDN's geolocation database* places
    /// this LDNS (which may differ from `self.location`); it is what gets
    /// passed to the redirection policy, faithfully reproducing the
    /// geolocation-error exposure of real LDNS-based redirection.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve<P: RedirectionPolicy>(
        &mut self,
        qname: &DnsName,
        client_prefix: Prefix24,
        believed_location: GeoPoint,
        auth: &mut AuthoritativeServer<P>,
        day: Day,
        time_s: f64,
    ) -> Resolution {
        let now_s = f64::from(day.0) * 86_400.0 + time_s;
        let ecs_active = self.supports_ecs && auth.ecs_enabled();
        let cache_scope = if ecs_active {
            Some(client_prefix)
        } else {
            None
        };
        if let Some(addr) = self.cache.get(qname, cache_scope, now_s) {
            return Resolution {
                addr,
                cache_hit: true,
            };
        }
        let ecs = ecs_active.then(|| {
            EcsOption::for_subnet(Prefix::from(client_prefix).truncate(self.ecs_prefix_len))
        });
        let (record, answer) = auth.resolve(qname, self.id, believed_location, ecs, day, time_s);
        // Per RFC 7871 the cache scope follows the *answer's* scope: a
        // global answer (scope 0) is shared across subnets even if we sent
        // ECS.
        let store_scope = (ecs_active && answer.ecs_scope > 0).then_some(client_prefix);
        self.cache
            .put(qname.clone(), store_scope, record.addr, record.ttl_s, now_s);
        Resolution {
            addr: record.addr,
            cache_hit: false,
        }
    }

    /// Cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Clears the cache (day-boundary housekeeping in long runs).
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authoritative::QueryContext;
    use crate::record::DnsAnswer;

    fn counting_policy(counter: std::rc::Rc<std::cell::Cell<u32>>) -> impl RedirectionPolicy {
        move |q: &QueryContext<'_>| {
            counter.set(counter.get() + 1);
            match q.ecs {
                Some(e) => {
                    // Vary the answer by subnet so scope separation is
                    // observable.
                    let last = (e.prefix.raw() >> 8) as u8;
                    DnsAnswer::subnet_scoped(Ipv4Addr::new(10, 0, 0, last), 300)
                }
                None => DnsAnswer::global(Ipv4Addr::new(10, 0, 0, 0), 300),
            }
        }
    }

    fn prefix(n: u8) -> Prefix24 {
        Prefix24::containing(Ipv4Addr::new(100, 0, n, 1))
    }

    #[test]
    fn cache_hit_skips_authoritative() {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut auth = AuthoritativeServer::new(counting_policy(hits.clone()), false);
        let mut ldns = Ldns::new(
            LdnsId(0),
            ResolverKind::IspLocal,
            GeoPoint::new(0.0, 0.0),
            false,
        );
        let qname = DnsName::new("www.cdn.example").unwrap();
        let r1 = ldns.resolve(&qname, prefix(1), ldns.location, &mut auth, Day(0), 0.0);
        assert!(!r1.cache_hit);
        let r2 = ldns.resolve(&qname, prefix(2), ldns.location, &mut auth, Day(0), 10.0);
        assert!(r2.cache_hit);
        assert_eq!(r1.addr, r2.addr);
        assert_eq!(hits.get(), 1, "authoritative must be hit exactly once");
        assert_eq!(auth.log().len(), 1);
    }

    #[test]
    fn ttl_expiry_forces_refetch() {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut auth = AuthoritativeServer::new(counting_policy(hits.clone()), false);
        let mut ldns = Ldns::new(
            LdnsId(0),
            ResolverKind::IspLocal,
            GeoPoint::new(0.0, 0.0),
            false,
        );
        let qname = DnsName::new("www.cdn.example").unwrap();
        ldns.resolve(&qname, prefix(1), ldns.location, &mut auth, Day(0), 0.0);
        // 300s TTL: a query 400s later misses.
        let r = ldns.resolve(&qname, prefix(1), ldns.location, &mut auth, Day(0), 400.0);
        assert!(!r.cache_hit);
        assert_eq!(hits.get(), 2);
    }

    #[test]
    fn ecs_separates_subnets_in_cache() {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut auth = AuthoritativeServer::new(counting_policy(hits.clone()), true);
        let mut ldns = Ldns::new(
            LdnsId(1),
            ResolverKind::Public,
            GeoPoint::new(0.0, 0.0),
            true,
        );
        let qname = DnsName::new("www.cdn.example").unwrap();
        let r1 = ldns.resolve(&qname, prefix(1), ldns.location, &mut auth, Day(0), 0.0);
        let r2 = ldns.resolve(&qname, prefix(2), ldns.location, &mut auth, Day(0), 1.0);
        assert!(
            !r1.cache_hit && !r2.cache_hit,
            "different subnets both miss"
        );
        assert_ne!(r1.addr, r2.addr, "answers are subnet-specific");
        // Same subnet again: cached.
        let r3 = ldns.resolve(&qname, prefix(1), ldns.location, &mut auth, Day(0), 2.0);
        assert!(r3.cache_hit);
        assert_eq!(r3.addr, r1.addr);
        assert_eq!(hits.get(), 2);
    }

    #[test]
    fn non_ecs_resolver_never_sends_ecs() {
        let policy = |q: &QueryContext<'_>| {
            assert!(q.ecs.is_none());
            DnsAnswer::global(Ipv4Addr::new(1, 1, 1, 1), 60)
        };
        let mut auth = AuthoritativeServer::new(policy, true);
        let mut ldns = Ldns::new(
            LdnsId(2),
            ResolverKind::IspLocal,
            GeoPoint::new(0.0, 0.0),
            false,
        );
        let qname = DnsName::new("www.cdn.example").unwrap();
        ldns.resolve(&qname, prefix(3), ldns.location, &mut auth, Day(0), 0.0);
        assert_eq!(auth.log()[0].ecs, None);
    }

    #[test]
    fn truncating_resolver_sends_coarse_ecs() {
        // A privacy-truncating resolver must forward its configured source
        // prefix length, with host bits masked, not a fabricated /24.
        let policy = |q: &QueryContext<'_>| {
            let e = q.ecs.expect("ECS forwarded");
            assert_eq!(e.source_prefix_len(), 16);
            assert_eq!(u32::from(e.prefix.network()) & 0xFFFF, 0);
            DnsAnswer::global(Ipv4Addr::new(1, 1, 1, 1), 60)
        };
        let mut auth = AuthoritativeServer::new(policy, true);
        let mut ldns = Ldns::new(
            LdnsId(3),
            ResolverKind::Public,
            GeoPoint::new(0.0, 0.0),
            true,
        )
        .with_ecs_prefix_len(16);
        let qname = DnsName::new("www.cdn.example").unwrap();
        ldns.resolve(&qname, prefix(1), ldns.location, &mut auth, Day(0), 0.0);
        let logged = auth.log()[0].ecs.expect("logged ECS");
        assert_eq!(logged.len(), 16);
    }

    #[test]
    fn cross_day_time_is_absolute() {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut auth = AuthoritativeServer::new(counting_policy(hits.clone()), false);
        let mut ldns = Ldns::new(
            LdnsId(0),
            ResolverKind::IspLocal,
            GeoPoint::new(0.0, 0.0),
            false,
        );
        let qname = DnsName::new("www.cdn.example").unwrap();
        // Cached at the very end of day 0 ...
        ldns.resolve(
            &qname,
            prefix(1),
            ldns.location,
            &mut auth,
            Day(0),
            86_399.0,
        );
        // ... still valid 100 s into day 1 (TTL 300).
        let r = ldns.resolve(&qname, prefix(1), ldns.location, &mut auth, Day(1), 100.0);
        assert!(r.cache_hit);
    }
}
