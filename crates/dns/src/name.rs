//! DNS names.
//!
//! Names are stored lowercase (DNS is case-insensitive) and validated
//! against the classic RFC 1035 shape constraints: non-empty labels of at
//! most 63 octets, total length at most 253, and label characters limited to
//! letters, digits and hyphens. The beacon's unique measurement hostnames
//! (`m-<id>.probe.<zone>`) satisfy these by construction.

/// A validated, lowercase DNS name.
///
/// ```
/// use anycast_dns::DnsName;
///
/// let zone = DnsName::new("cdn.example").unwrap();
/// let probe = DnsName::measurement(0xbeef, &zone);
/// assert!(probe.is_in_zone(&zone));
/// assert_eq!(probe.measurement_id(), Some(0xbeef));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnsName(String);

/// Why a string failed to parse as a DNS name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// Empty input or a name consisting only of the root dot.
    Empty,
    /// Total length exceeded 253 characters.
    TooLong,
    /// A label was empty (consecutive dots) or longer than 63 characters.
    BadLabel(String),
    /// A label contained a character outside `[a-z0-9-]` or started/ended
    /// with a hyphen.
    BadChar(String),
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::Empty => write!(f, "empty name"),
            NameError::TooLong => write!(f, "name exceeds 253 characters"),
            NameError::BadLabel(l) => write!(f, "bad label {l:?}"),
            NameError::BadChar(l) => write!(f, "bad character in label {l:?}"),
        }
    }
}

impl std::error::Error for NameError {}

impl DnsName {
    /// Parses and normalizes a name. A single trailing dot is accepted and
    /// dropped.
    pub fn new(s: &str) -> Result<DnsName, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(NameError::Empty);
        }
        let lower = s.to_ascii_lowercase();
        if lower.len() > 253 {
            return Err(NameError::TooLong);
        }
        for label in lower.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(NameError::BadLabel(label.to_string()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(NameError::BadChar(label.to_string()));
            }
            if !label
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                return Err(NameError::BadChar(label.to_string()));
            }
        }
        Ok(DnsName(lower))
    }

    /// The normalized name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The labels, leftmost first.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Whether this name is underneath `zone` (or equal to it).
    pub fn is_in_zone(&self, zone: &DnsName) -> bool {
        self == zone || self.0.ends_with(&format!(".{}", zone.0))
    }

    /// Builds the beacon's unique measurement hostname for measurement id
    /// `id` in `zone`: `m-<id>.probe.<zone>`. The uniqueness of `id` is what
    /// lets the backend join client-side HTTP timings with server-side DNS
    /// logs (§3.2.2).
    pub fn measurement(id: u64, zone: &DnsName) -> DnsName {
        DnsName(format!("m-{id:016x}.probe.{}", zone.0))
    }

    /// Extracts the measurement id from a name built by
    /// [`DnsName::measurement`], if it is one.
    pub fn measurement_id(&self) -> Option<u64> {
        let first = self.labels().next()?;
        let hex = first.strip_prefix("m-")?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok()
    }
}

impl std::fmt::Display for DnsName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for DnsName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let n = DnsName::new("WWW.Example.COM.").unwrap();
        assert_eq!(n.as_str(), "www.example.com");
        assert_eq!(
            n.labels().collect::<Vec<_>>(),
            vec!["www", "example", "com"]
        );
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(DnsName::new(""), Err(NameError::Empty));
        assert_eq!(DnsName::new("."), Err(NameError::Empty));
        assert!(matches!(DnsName::new("a..b"), Err(NameError::BadLabel(_))));
        assert!(matches!(
            DnsName::new("-bad.com"),
            Err(NameError::BadChar(_))
        ));
        assert!(matches!(
            DnsName::new("bad-.com"),
            Err(NameError::BadChar(_))
        ));
        assert!(matches!(
            DnsName::new("spa ce.com"),
            Err(NameError::BadChar(_))
        ));
        let long_label = "a".repeat(64);
        assert!(matches!(
            DnsName::new(&long_label),
            Err(NameError::BadLabel(_))
        ));
        let long_name = format!("{}.{}", "a".repeat(63), "b".repeat(63)).repeat(3);
        assert!(matches!(DnsName::new(&long_name), Err(NameError::TooLong)));
    }

    #[test]
    fn zone_membership() {
        let zone = DnsName::new("cdn.example").unwrap();
        assert!(DnsName::new("a.cdn.example").unwrap().is_in_zone(&zone));
        assert!(DnsName::new("cdn.example").unwrap().is_in_zone(&zone));
        assert!(!DnsName::new("cdn.example.org").unwrap().is_in_zone(&zone));
        assert!(!DnsName::new("badcdn.example").unwrap().is_in_zone(&zone));
    }

    #[test]
    fn measurement_names_round_trip() {
        let zone = DnsName::new("cdn.example").unwrap();
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            let n = DnsName::measurement(id, &zone);
            assert!(n.is_in_zone(&zone));
            assert_eq!(n.measurement_id(), Some(id), "{n}");
        }
    }

    #[test]
    fn non_measurement_names_have_no_id() {
        assert_eq!(
            DnsName::new("www.cdn.example").unwrap().measurement_id(),
            None
        );
        assert_eq!(
            DnsName::new("m-xyz.probe.cdn.example")
                .unwrap()
                .measurement_id(),
            None
        );
        assert_eq!(
            DnsName::new("m-0.probe.cdn.example")
                .unwrap()
                .measurement_id(),
            None
        );
    }

    #[test]
    fn from_str_works() {
        let n: DnsName = "bing.cdn.example".parse().unwrap();
        assert_eq!(n.as_str(), "bing.cdn.example");
    }
}
