//! TTL-honoring resolver cache.
//!
//! Cache entries are keyed by `(name, ECS prefix)` per RFC 7871 §7.3.1: an
//! answer computed for one client subnet must not be served to another. For
//! non-ECS answers the prefix key is `None` and the entry is shared by all
//! clients of the resolver — exactly the coarseness that makes pure
//! LDNS-granularity redirection imprecise (§2).
//!
//! Time is absolute experiment seconds (day × 86 400 + seconds-of-day).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use anycast_netsim::Prefix24;

use crate::name::DnsName;

/// Cache key: name plus optional ECS scope.
type Key = (DnsName, Option<Prefix24>);

#[derive(Debug, Clone)]
struct Entry {
    addr: Ipv4Addr,
    expires_at: f64,
}

/// A TTL cache of A answers.
#[derive(Debug, Clone, Default)]
pub struct DnsCache {
    entries: HashMap<Key, Entry>,
    hits: u64,
    misses: u64,
    /// Maximum live entries; 0 = unbounded. Real resolvers bound their
    /// cache; the beacon's unique per-measurement names would otherwise
    /// grow a resolver's cache without limit over a month-long campaign.
    capacity: usize,
}

impl DnsCache {
    /// Creates an unbounded cache.
    pub fn new() -> DnsCache {
        DnsCache::default()
    }

    /// Creates a cache evicting down to `capacity` live entries. Eviction
    /// removes the entries expiring soonest — the cheapest victims, since
    /// they are the least likely to be hit again before expiry.
    pub fn with_capacity(capacity: usize) -> DnsCache {
        DnsCache {
            capacity,
            ..DnsCache::default()
        }
    }

    /// Looks up `name` (scoped to `ecs` if the cached answer was
    /// subnet-scoped) at time `now_s`. Expired entries are treated as
    /// absent (and dropped).
    pub fn get(&mut self, name: &DnsName, ecs: Option<Prefix24>, now_s: f64) -> Option<Ipv4Addr> {
        let key = (name.clone(), ecs);
        match self.entries.get(&key) {
            Some(e) if e.expires_at > now_s => {
                self.hits += 1;
                Some(e.addr)
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores an answer valid for `ttl_s` seconds from `now_s`, evicting
    /// expired and soonest-expiring entries if a capacity is set.
    pub fn put(
        &mut self,
        name: DnsName,
        ecs: Option<Prefix24>,
        addr: Ipv4Addr,
        ttl_s: u32,
        now_s: f64,
    ) {
        let key = (name, ecs);
        // Overwriting an existing key does not grow the cache, so it must
        // not trigger eviction: doing so could victimize the key itself
        // (it may be the soonest-expiring entry) and then evict an
        // unrelated live entry on the next insert.
        if self.capacity > 0
            && self.entries.len() >= self.capacity
            && !self.entries.contains_key(&key)
        {
            // Cheap pass: drop everything already expired.
            self.entries.retain(|_, e| e.expires_at > now_s);
            // Still full: evict the soonest-expiring entries.
            while self.entries.len() >= self.capacity {
                let victim = self
                    .entries
                    .iter()
                    .min_by(|a, b| a.1.expires_at.total_cmp(&b.1.expires_at))
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        self.entries.remove(&k);
                    }
                    None => break,
                }
            }
        }
        self.entries.insert(
            key,
            Entry {
                addr,
                expires_at: now_s + f64::from(ttl_s),
            },
        );
    }

    /// Number of live + expired entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every entry (used at day boundaries in long experiments to
    /// model resolver restarts and bound memory).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::new(s).unwrap()
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut c = DnsCache::new();
        let n = name("a.cdn.example");
        let ip = Ipv4Addr::new(203, 0, 113, 1);
        c.put(n.clone(), None, ip, 60, 1000.0);
        assert_eq!(c.get(&n, None, 1059.0), Some(ip));
        assert_eq!(c.get(&n, None, 1060.0), None);
        // Expired entry is evicted.
        assert!(c.is_empty());
    }

    #[test]
    fn zero_ttl_answers_are_never_served() {
        // §2: DNS redirection keeps control via small TTLs; the limit case
        // is TTL 0 — an answer usable once but never cacheable. A 0-TTL
        // put must not produce a hit at any later time, including the very
        // same instant it was stored.
        let mut c = DnsCache::new();
        let n = name("a.cdn.example");
        c.put(n.clone(), None, Ipv4Addr::new(203, 0, 113, 1), 0, 100.0);
        assert_eq!(c.get(&n, None, 100.0), None);
        assert_eq!(c.get(&n, None, 100.001), None);
        assert!(c.is_empty(), "the expired 0-TTL entry must be dropped");
    }

    #[test]
    fn zero_ttl_put_does_not_displace_live_entries() {
        let mut c = DnsCache::with_capacity(2);
        c.put(
            name("live.cdn.example"),
            None,
            Ipv4Addr::new(1, 1, 1, 1),
            1000,
            0.0,
        );
        // Fill to capacity with 0-TTL churn; the live entry must survive.
        for i in 0..5u8 {
            c.put(
                name(&format!("burst{i}.cdn.example")),
                None,
                Ipv4Addr::new(10, 0, 0, i),
                0,
                1.0,
            );
        }
        assert_eq!(
            c.get(&name("live.cdn.example"), None, 2.0),
            Some(Ipv4Addr::new(1, 1, 1, 1))
        );
    }

    #[test]
    fn ecs_scoped_entries_do_not_leak_across_subnets() {
        let mut c = DnsCache::new();
        let n = name("a.cdn.example");
        let p1 = Prefix24::containing(Ipv4Addr::new(1, 1, 1, 1));
        let p2 = Prefix24::containing(Ipv4Addr::new(2, 2, 2, 2));
        c.put(n.clone(), Some(p1), Ipv4Addr::new(10, 0, 0, 1), 300, 0.0);
        assert_eq!(c.get(&n, Some(p1), 1.0), Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(c.get(&n, Some(p2), 1.0), None);
        assert_eq!(c.get(&n, None, 1.0), None);
    }

    #[test]
    fn put_overwrites() {
        let mut c = DnsCache::new();
        let n = name("a.cdn.example");
        c.put(n.clone(), None, Ipv4Addr::new(10, 0, 0, 1), 300, 0.0);
        c.put(n.clone(), None, Ipv4Addr::new(10, 0, 0, 2), 300, 5.0);
        assert_eq!(c.get(&n, None, 6.0), Some(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = DnsCache::new();
        let n = name("a.cdn.example");
        assert_eq!(c.get(&n, None, 0.0), None);
        c.put(n.clone(), None, Ipv4Addr::new(10, 0, 0, 1), 300, 0.0);
        c.get(&n, None, 1.0);
        c.get(&n, None, 2.0);
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut c = DnsCache::with_capacity(3);
        for i in 0..10u8 {
            let n = name(&format!("h{i}.cdn.example"));
            c.put(n, None, Ipv4Addr::new(10, 0, 0, i), 300, f64::from(i));
        }
        assert!(c.len() <= 3, "cache grew to {}", c.len());
        // The most recent entry survives.
        assert_eq!(
            c.get(&name("h9.cdn.example"), None, 9.5),
            Some(Ipv4Addr::new(10, 0, 0, 9))
        );
    }

    #[test]
    fn overwrite_at_capacity_preserves_other_live_entries() {
        // Regression: overwriting an existing key at capacity used to run
        // eviction anyway. The soonest-expiring victim could be the very
        // key being overwritten, leaving the cache under capacity, after
        // which the next insert evicted an unrelated live entry.
        let mut c = DnsCache::with_capacity(3);
        c.put(
            name("a.cdn.example"),
            None,
            Ipv4Addr::new(1, 1, 1, 1),
            1000,
            0.0,
        );
        c.put(
            name("b.cdn.example"),
            None,
            Ipv4Addr::new(2, 2, 2, 2),
            10, // soonest-expiring but live: the eviction victim pre-fix
            0.0,
        );
        c.put(
            name("c.cdn.example"),
            None,
            Ipv4Addr::new(3, 3, 3, 3),
            1000,
            0.0,
        );
        // At capacity. Refresh `a` — a pure overwrite.
        c.put(
            name("a.cdn.example"),
            None,
            Ipv4Addr::new(1, 1, 1, 9),
            1000,
            1.0,
        );
        assert_eq!(c.len(), 3);
        // All three entries are live and intact.
        assert_eq!(
            c.get(&name("a.cdn.example"), None, 2.0),
            Some(Ipv4Addr::new(1, 1, 1, 9))
        );
        assert_eq!(
            c.get(&name("b.cdn.example"), None, 2.0),
            Some(Ipv4Addr::new(2, 2, 2, 2))
        );
        assert_eq!(
            c.get(&name("c.cdn.example"), None, 2.0),
            Some(Ipv4Addr::new(3, 3, 3, 3))
        );
    }

    #[test]
    fn eviction_prefers_expired_entries() {
        let mut c = DnsCache::with_capacity(2);
        c.put(
            name("old.cdn.example"),
            None,
            Ipv4Addr::new(1, 1, 1, 1),
            10,
            0.0,
        );
        c.put(
            name("live.cdn.example"),
            None,
            Ipv4Addr::new(2, 2, 2, 2),
            1000,
            0.0,
        );
        // At t=100 `old` is expired; inserting a third entry must keep `live`.
        c.put(
            name("new.cdn.example"),
            None,
            Ipv4Addr::new(3, 3, 3, 3),
            1000,
            100.0,
        );
        assert_eq!(
            c.get(&name("live.cdn.example"), None, 101.0),
            Some(Ipv4Addr::new(2, 2, 2, 2))
        );
        assert_eq!(
            c.get(&name("new.cdn.example"), None, 101.0),
            Some(Ipv4Addr::new(3, 3, 3, 3))
        );
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = DnsCache::new();
        for i in 0..1000u32 {
            let n = name(&format!("h{i}.cdn.example"));
            c.put(n, None, Ipv4Addr::new(10, 0, 0, 1), 300, 0.0);
        }
        assert_eq!(c.len(), 1000);
    }

    #[test]
    fn clear_empties() {
        let mut c = DnsCache::new();
        c.put(
            name("a.cdn.example"),
            None,
            Ipv4Addr::new(1, 1, 1, 1),
            10,
            0.0,
        );
        c.clear();
        assert!(c.is_empty());
    }
}
