//! DNS substrate for the anycast-CDN reproduction.
//!
//! The paper's alternative to anycast is DNS-based redirection (§2): the
//! client's **LDNS** forwards queries to the CDN's **authoritative**
//! nameserver, which makes a performance-based decision per LDNS — or per
//! client /24 when the **EDNS client-subnet (ECS)** extension is in play.
//! The beacon methodology also leans on DNS mechanics: warm-up queries to
//! remove lookup latency from measurements, TTLs longer than the beacon, and
//! per-measurement unique hostnames that let server-side DNS logs be joined
//! with client-side HTTP timings (§3.2.2).
//!
//! This crate models exactly those mechanics:
//!
//! * [`name::DnsName`] — hostnames, including the unique measurement ids;
//! * [`record::ARecord`] / [`record::DnsAnswer`] — minimal A-record answers;
//! * [`ecs::EcsOption`] — the client-subnet option at /24 granularity;
//! * [`cache::DnsCache`] — TTL-honoring cache, ECS-scope aware;
//! * [`ldns::Ldns`] — recursive resolvers (ISP-local and public), each with
//!   a cache and optional ECS support;
//! * [`authoritative::AuthoritativeServer`] — the CDN's nameserver with a
//!   pluggable [`authoritative::RedirectionPolicy`] (the policies themselves
//!   live in `anycast-core`) and a query log ([`log::DnsQueryLog`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod authoritative;
pub mod cache;
pub mod ecs;
pub mod ldns;
pub mod log;
pub mod name;
pub mod record;

pub use authoritative::{AuthoritativeServer, QueryContext, RedirectionPolicy};
pub use cache::DnsCache;
pub use ecs::EcsOption;
pub use ldns::{Ldns, LdnsId, ResolverKind};
pub use log::DnsQueryLog;
pub use name::DnsName;
pub use record::{ARecord, DnsAnswer};
