//! Minimal resource records.
//!
//! The study only needs A records (the beacon fetches test URLs whose
//! hostnames resolve to front-end IPs), so that is all we model. TTLs are
//! kept because the paper's methodology depends on them twice: DNS-based
//! redirection uses *small* TTLs to retain control (§2), while the beacon
//! sets TTLs *longer than the beacon duration* so the warm-up query removes
//! lookup latency from the timed fetch (§3.2.2).

use std::net::Ipv4Addr;

use crate::name::DnsName;

/// What a redirection policy returns: an address and the TTL to serve it
/// with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsAnswer {
    /// The address to return.
    pub addr: Ipv4Addr,
    /// Time-to-live in seconds.
    pub ttl_s: u32,
    /// ECS scope prefix length to advertise. Per RFC 7871 this must be
    /// derived from the granularity of the key the answer was computed
    /// from, **not** from the query: an answer looked up per client /24
    /// advertises the table's prefix length (24 here), while an answer
    /// keyed by the LDNS alone advertises 0 — cacheable for every client
    /// of that resolver — even when the query carried an ECS option
    /// (§6's LDNS/ECS distinction).
    pub ecs_scope: u8,
}

impl DnsAnswer {
    /// An answer that does not vary by client subnet.
    pub fn global(addr: Ipv4Addr, ttl_s: u32) -> DnsAnswer {
        DnsAnswer::scoped(addr, ttl_s, 0)
    }

    /// An answer tailored to a /24 client subnet.
    pub fn subnet_scoped(addr: Ipv4Addr, ttl_s: u32) -> DnsAnswer {
        DnsAnswer::scoped(addr, ttl_s, 24)
    }

    /// An answer advertising an explicit ECS scope — the scope of the
    /// table key the answer was derived from (0 for LDNS-keyed answers,
    /// the table's prefix length for subnet-keyed ones).
    pub fn scoped(addr: Ipv4Addr, ttl_s: u32, ecs_scope: u8) -> DnsAnswer {
        DnsAnswer {
            addr,
            ttl_s,
            ecs_scope,
        }
    }
}

/// A complete A record: name, address, TTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ARecord {
    /// Owner name.
    pub name: DnsName,
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// Time-to-live in seconds.
    pub ttl_s: u32,
}

impl ARecord {
    /// Creates a record.
    pub fn new(name: DnsName, addr: Ipv4Addr, ttl_s: u32) -> ARecord {
        ARecord { name, addr, ttl_s }
    }
}

impl std::fmt::Display for ARecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} IN A {}", self.name, self.ttl_s, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_carry_scope() {
        let a = DnsAnswer::global(Ipv4Addr::new(1, 2, 3, 4), 300);
        assert_eq!(a.ecs_scope, 0);
        let b = DnsAnswer::subnet_scoped(Ipv4Addr::new(1, 2, 3, 4), 60);
        assert_eq!(b.ecs_scope, 24);
        let c = DnsAnswer::scoped(Ipv4Addr::new(1, 2, 3, 4), 60, 16);
        assert_eq!(c.ecs_scope, 16);
        assert_eq!(
            DnsAnswer::scoped(c.addr, 60, 0),
            DnsAnswer::global(c.addr, 60)
        );
    }

    #[test]
    fn record_displays_zone_file_style() {
        let r = ARecord::new(
            DnsName::new("www.cdn.example").unwrap(),
            Ipv4Addr::new(203, 0, 113, 7),
            120,
        );
        assert_eq!(r.to_string(), "www.cdn.example 120 IN A 203.0.113.7");
    }
}
