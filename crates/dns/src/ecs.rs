//! EDNS client-subnet (ECS).
//!
//! ECS (§2, [RFC 7871]) "allows a portion of the client's actual IP address
//! to be forwarded to the authoritative resolver, allowing per-prefix
//! redirection decisions". The paper's ECS-based prediction scheme (§6)
//! operates on /24 prefixes, but real resolvers forward whatever SOURCE
//! PREFIX-LENGTH they choose — public resolvers commonly truncate below
//! /24 for privacy — so the option carries a variable-length
//! [`Prefix`]. The prefix length *is* the source prefix length.
//!
//! [RFC 7871]: https://www.rfc-editor.org/rfc/rfc7871

use anycast_netsim::{Prefix, Prefix24};

/// The client-subnet option attached to a forwarded DNS query.
///
/// The carried [`Prefix`] is canonical: bits beyond its length are zero
/// (the `Prefix` constructors mask them), matching RFC 7871 §6's
/// requirement for the wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcsOption {
    /// The client subnet the resolver forwarded.
    pub prefix: Prefix,
}

impl EcsOption {
    /// Builds the classic /24 option for a client prefix — the paper's §6
    /// granularity and the default resolver behavior in the simulator.
    pub fn for_prefix(prefix: Prefix24) -> EcsOption {
        EcsOption {
            prefix: prefix.into(),
        }
    }

    /// Builds the option for an arbitrary-length subnet (a resolver
    /// truncating for privacy, or a synthetic coarse-prefix query).
    pub fn for_subnet(prefix: Prefix) -> EcsOption {
        EcsOption { prefix }
    }

    /// The SOURCE PREFIX-LENGTH this option advertises.
    pub fn source_prefix_len(&self) -> u8 {
        self.prefix.len()
    }
}

impl std::fmt::Display for EcsOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ecs={}", self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn carries_the_prefix() {
        let p = Prefix24::containing(Ipv4Addr::new(198, 51, 100, 42));
        let o = EcsOption::for_prefix(p);
        assert_eq!(o.prefix, p.into());
        assert_eq!(o.source_prefix_len(), 24);
        assert_eq!(o.to_string(), "ecs=198.51.100.0/24");
    }

    #[test]
    fn non_slash24_subnets_are_first_class() {
        let o = EcsOption::for_subnet(Prefix::new(Ipv4Addr::new(198, 51, 100, 42), 16));
        assert_eq!(o.source_prefix_len(), 16);
        assert_eq!(o.prefix.network(), Ipv4Addr::new(198, 51, 0, 0));
        assert_eq!(o.to_string(), "ecs=198.51.0.0/16");
    }
}
