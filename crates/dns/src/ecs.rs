//! EDNS client-subnet (ECS).
//!
//! ECS (§2, [RFC 7871]) "allows a portion of the client's actual IP address
//! to be forwarded to the authoritative resolver, allowing per-prefix
//! redirection decisions". The paper's ECS-based prediction scheme (§6)
//! operates on /24 prefixes, so the option here carries a
//! [`Prefix24`] with a source prefix length of 24.
//!
//! [RFC 7871]: https://www.rfc-editor.org/rfc/rfc7871

use anycast_netsim::Prefix24;

/// The client-subnet option attached to a forwarded DNS query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcsOption {
    /// The client's /24 prefix.
    pub prefix: Prefix24,
    /// Source prefix length the resolver forwarded (always 24 here; real
    /// resolvers may truncate further for privacy).
    pub source_prefix_len: u8,
}

impl EcsOption {
    /// Builds the option for a client prefix.
    pub fn for_prefix(prefix: Prefix24) -> EcsOption {
        EcsOption {
            prefix,
            source_prefix_len: 24,
        }
    }
}

impl std::fmt::Display for EcsOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ecs={}", self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn carries_the_prefix() {
        let p = Prefix24::containing(Ipv4Addr::new(198, 51, 100, 42));
        let o = EcsOption::for_prefix(p);
        assert_eq!(o.prefix, p);
        assert_eq!(o.source_prefix_len, 24);
        assert_eq!(o.to_string(), "ecs=198.51.100.0/24");
    }
}
