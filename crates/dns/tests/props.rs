//! Property tests for the DNS substrate.

use anycast_dns::{
    AuthoritativeServer, DnsAnswer, DnsCache, DnsName, Ldns, LdnsId, QueryContext, ResolverKind,
};
use anycast_geo::GeoPoint;
use anycast_netsim::{Day, Prefix24};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?").unwrap()
}

proptest! {
    #[test]
    fn valid_names_round_trip(labels in prop::collection::vec(label(), 1..5)) {
        let name = labels.join(".");
        let parsed = DnsName::new(&name).unwrap();
        prop_assert_eq!(parsed.as_str(), name.to_ascii_lowercase());
        prop_assert_eq!(parsed.labels().count(), labels.len());
    }

    #[test]
    fn names_are_case_insensitive(labels in prop::collection::vec(label(), 1..4)) {
        let lower = labels.join(".");
        let upper = lower.to_ascii_uppercase();
        prop_assert_eq!(DnsName::new(&lower).unwrap(), DnsName::new(&upper).unwrap());
    }

    #[test]
    fn measurement_ids_round_trip(id in any::<u64>()) {
        let zone = DnsName::new("cdn.example").unwrap();
        let name = DnsName::measurement(id, &zone);
        prop_assert_eq!(name.measurement_id(), Some(id));
        prop_assert!(name.is_in_zone(&zone));
    }

    #[test]
    fn cache_respects_ttl_boundaries(ttl in 1u32..86_400, put_at in 0.0..1e6f64, delta in 0.0..1e5f64) {
        let mut cache = DnsCache::new();
        let name = DnsName::new("a.cdn.example").unwrap();
        let ip = Ipv4Addr::new(203, 0, 113, 1);
        cache.put(name.clone(), None, ip, ttl, put_at);
        let probe = put_at + delta;
        let hit = cache.get(&name, None, probe);
        if delta < f64::from(ttl) {
            prop_assert_eq!(hit, Some(ip));
        } else {
            prop_assert_eq!(hit, None);
        }
    }

    #[test]
    fn authoritative_logs_every_query(n in 1usize..50) {
        let policy = |_q: &QueryContext<'_>| DnsAnswer::global(Ipv4Addr::new(1, 1, 1, 1), 60);
        let mut server = AuthoritativeServer::new(policy, false);
        let zone = DnsName::new("cdn.example").unwrap();
        for i in 0..n {
            let qname = DnsName::measurement(i as u64, &zone);
            server.resolve(&qname, LdnsId(0), GeoPoint::new(0.0, 0.0), None, Day(0), i as f64);
        }
        prop_assert_eq!(server.log().len(), n);
        // Ids in the log match the queries.
        for (i, row) in server.log().iter().enumerate() {
            prop_assert_eq!(row.measurement_id(), Some(i as u64));
        }
    }

    #[test]
    fn resolver_caches_within_ttl(gap_s in 0.0..250.0f64) {
        // TTL 300: any second query within 250s must be a cache hit.
        let policy = |_q: &QueryContext<'_>| DnsAnswer::global(Ipv4Addr::new(9, 9, 9, 9), 300);
        let mut server = AuthoritativeServer::new(policy, false);
        let mut ldns = Ldns::new(LdnsId(0), ResolverKind::IspLocal, GeoPoint::new(0.0, 0.0), false);
        let qname = DnsName::new("www.cdn.example").unwrap();
        let prefix = Prefix24::containing(Ipv4Addr::new(11, 0, 0, 1));
        let first = ldns.resolve(&qname, prefix, ldns.location, &mut server, Day(0), 0.0);
        prop_assert!(!first.cache_hit);
        let second = ldns.resolve(&qname, prefix, ldns.location, &mut server, Day(0), gap_s);
        prop_assert!(second.cache_hit);
        prop_assert_eq!(first.addr, second.addr);
        prop_assert_eq!(server.log().len(), 1);
    }
}

#[test]
fn malformed_names_are_rejected() {
    for bad in [
        "",
        ".",
        "..",
        "-x.com",
        "x-.com",
        "a b.com",
        "Ü.com",
        &"a".repeat(64),
    ] {
        assert!(DnsName::new(bad).is_err(), "{bad:?} should be rejected");
    }
}
