//! The run report end to end: one `bench`-shaped run must produce a
//! report that (a) validates against the checked-in JSON schema CI
//! enforces, and (b) carries metrics from every instrumented layer —
//! pipeline, study, beacon, netsim, and prediction.

use anycast_bench::studybench;
use anycast_bench::worlds::Scale;
use anycast_obs::{json, schema, RunMeta, RunReport};

fn checked_in_schema() -> json::Value {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../obs/schemas/run_report.schema.json"
    );
    let text = std::fs::read_to_string(path).expect("schema file is checked in");
    json::parse(&text).expect("schema file is valid JSON")
}

#[test]
fn bench_run_report_validates_and_covers_every_layer() {
    anycast_obs::set_enabled(true);
    let (_, delta) = anycast_obs::capture(|| {
        // The smallest real sweep: one worker count, one timed iteration,
        // plus the sketched training stage.
        studybench::run(Scale::Small, 3, &[1], 1)
    });

    // Layer coverage: one `figures bench` run must light up all five
    // instrumented subsystems (the ISSUE's acceptance criterion).
    for counter in [
        "pipeline_records_routed_total",   // sketched training shards records
        "beacon_executions_total",         // the campaign ran beacons
        "netsim_route_memo_hits_total",    // fetches routed via the day memo
        "prediction_groups_trained_total", // training scored groups
    ] {
        assert!(delta.counter(counter) > 0, "no {counter} recorded");
    }
    assert!(
        delta.counter_sum("study_day_events_total") > 0,
        "no per-day study counters recorded"
    );
    assert!(
        delta
            .histograms
            .keys()
            .any(|k| k.name == "beacon_reported_ms"),
        "latency histogram missing"
    );
    assert!(
        delta.spans.keys().any(|k| k.name == "study.execute"),
        "study phase spans missing"
    );

    // The report over that snapshot validates against the checked-in
    // schema — the same check CI runs over `figures --obs-out` output.
    let report = RunReport::new(
        RunMeta {
            tool: "figures".into(),
            scale: "small".into(),
            seed: 3,
            workers: 1,
            artifacts: vec!["bench".into()],
        },
        delta,
    );
    let doc = json::parse(&report.to_json()).expect("report serializes to valid JSON");
    let violations = schema::validate(&doc, &checked_in_schema());
    assert!(
        violations.is_empty(),
        "run report violates its schema:\n{}",
        violations.join("\n")
    );
}

#[test]
fn prometheus_dump_is_well_formed() {
    anycast_obs::set_enabled(true);
    let (_, delta) = anycast_obs::capture(|| {
        let mut st = anycast_bench::worlds::study(Scale::Small, 5);
        st.run_day(anycast_netsim::Day(0));
    });
    let prom = delta.to_prometheus();
    assert!(prom.contains("# TYPE beacon_executions_total counter"));
    assert!(prom.contains("# TYPE beacon_reported_ms histogram"));
    assert!(prom.contains("beacon_reported_ms_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("beacon_reported_ms_count"));
    // Every sample line is `name{labels} value` or `name value`.
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        let mut parts = line.rsplitn(2, ' ');
        let value = parts.next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
        assert!(parts.next().is_some(), "no metric name in {line:?}");
    }
}
