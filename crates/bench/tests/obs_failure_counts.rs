//! Failure observability: the counters the run report surfaces must agree
//! with what the analysis layer independently computes.
//!
//! * `beacon_fetch_failures_total` — beacon executions whose every
//!   attempt timed out — must match the failed-request tally
//!   [`anycast_pipeline::tally_outcomes`] produces over the same joined
//!   dataset (satellite: failure worlds are *visible*, not just survived).
//! * `pipeline_shard_panics_total` — ShardError recoveries — must match
//!   the number of worker deaths the producer actually observed.
//!
//! Dedicated integration-test binary: exact-count assertions run inside
//! `obs::capture` windows with nothing else in the process.

use std::collections::BTreeMap;

use anycast_core::{Study, StudyConfig};
use anycast_netsim::{Day, Prefix24};
use anycast_pipeline::{route_prefix, tally_outcomes, Aggregate, ShardConfig, ShardedIngest};
use anycast_workload::{Scenario, ScenarioConfig};

/// A failure world: outages and drains scheduled at high rates so some
/// beacon fetches really do hit dead front-ends.
fn failure_world(seed: u64) -> Scenario {
    let mut cfg = ScenarioConfig::small(seed);
    cfg.net.p_site_outage = 0.3;
    cfg.net.p_site_drain = 0.15;
    Scenario::build(cfg).expect("valid config")
}

#[test]
fn failed_fetch_counter_matches_tally_outcomes() {
    anycast_obs::set_enabled(true);
    let (st, delta) = anycast_obs::capture(|| {
        let mut st = Study::new(failure_world(11), StudyConfig::default());
        st.run_days(Day(0), 3);
        st
    });

    // Independent ground truth: shard the joined rows through the
    // availability tally (which takes `(key, served)` records) and sum
    // the failed side.
    let tallies: BTreeMap<Prefix24, _> = tally_outcomes(
        st.dataset()
            .measurements()
            .iter()
            .map(|m| (m.prefix, !m.failed)),
        ShardConfig::default(),
        |p: &Prefix24| route_prefix(*p),
    );
    let failed_rows: u64 = tallies.values().map(|c| c.failed).sum();
    let total_rows: u64 = tallies.values().map(|c| c.total()).sum();
    assert!(failed_rows > 0, "failure world produced no failed fetches");
    assert_eq!(total_rows, st.dataset().measurements().len() as u64);

    assert_eq!(
        delta.counter("beacon_fetch_failures_total"),
        failed_rows,
        "run-report failure counter disagrees with tally_outcomes"
    );
    // Failed fetches imply retries: the retry counter saw at least one
    // retry per failure (max_attempts >= 2 by default).
    assert!(delta.counter("beacon_fetch_retries_total") >= failed_rows);
    // And the per-day failed-row counters sum to the same total.
    assert_eq!(
        delta.counter_sum("study_day_failed_rows_total"),
        failed_rows
    );
}

/// Aggregate that panics on a poison record.
struct Poisonable;

impl Aggregate for Poisonable {
    type Record = u64;
    type Output = u64;

    fn observe(&mut self, record: u64) {
        assert!(record != 99, "poison record 99 observed");
    }

    fn finish(self) -> u64 {
        0
    }
}

#[test]
fn shard_panic_counter_matches_observed_errors() {
    anycast_obs::set_enabled(true);
    let (observed, delta) = anycast_obs::capture(|| {
        let cfg = ShardConfig {
            workers: 2,
            batch: 1,
            queue_depth: 1,
        };
        let mut ingest =
            ShardedIngest::new(cfg, |r: &u64| anycast_pipeline::mix64(*r), |_| Poisonable);
        let mut errors = 0u64;
        for i in 0..1_000u64 {
            let record = if i == 10 { 99 } else { i };
            if ingest.push(record).is_err() {
                errors += 1;
                break;
            }
        }
        if ingest.finish().is_err() && errors == 0 {
            errors += 1;
        }
        errors
    });
    assert_eq!(observed, 1, "exactly one worker death is observed");
    assert_eq!(
        delta.counter("pipeline_shard_panics_total"),
        observed,
        "panic counter disagrees with observed ShardErrors"
    );
    assert!(delta.counter("pipeline_records_routed_total") > 0);
}
