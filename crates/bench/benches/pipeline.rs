//! Benches for the streaming-aggregation pipeline: ingest throughput on a
//! web-scale day, day-sketch merge cost, and sketch-fed vs exact predictor
//! training.
//!
//! The headline comparison is `pipeline-ingest`: a synthetic ≥1M-record
//! day pushed through sharded streaming ingestion (bounded memory,
//! per-group quantile sketches built in-flight) against the repo's
//! original batch path (materialize every record, regroup into per-group
//! vectors, sort each to read a percentile). The streaming path must win
//! even on one core — it does strictly less work per record at day close —
//! and that margin is what makes it the production-shaped choice.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use anycast_analysis::quantile::percentile;
use anycast_beacon::Target;
use anycast_core::{Metric, Predictor, PredictorConfig, Study, StudyConfig};
use anycast_netsim::{Day, SiteId};
use anycast_pipeline::{mix64, sketch_day, DayWindow, QuantileSketch, ShardConfig};
use anycast_workload::Scenario;

/// One synthetic day: `n` latency records across `groups` client groups
/// and 4 targets, Zipf-ish group popularity, deterministic.
fn synthetic_day(n: usize, groups: u32) -> Vec<(u32, Target, f64)> {
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    (0..n)
        .map(|i| {
            // Skew: low group ids are hot (mirrors per-/24 query volume).
            let r: f64 = rng.gen_range(0.0f64..1.0);
            let key = ((r * r) * f64::from(groups)) as u32;
            let target = match i % 4 {
                0 => Target::Anycast,
                t => Target::Unicast(SiteId(t as u16)),
            };
            let rtt = rng.gen_range(5.0f64..250.0);
            (key, target, rtt)
        })
        .collect()
}

/// The pre-pipeline batch path: materialize the day, regroup into exact
/// per-(group, target) sample vectors, sort each, read p25.
fn batch_exact_p25(records: &[(u32, Target, f64)]) -> usize {
    // Materialization pass: what a log collector does before analysis.
    let day: Vec<(u32, Target, f64)> = records.to_vec();
    let mut grouped: HashMap<(u32, Target), Vec<f64>> = HashMap::new();
    for (k, t, v) in day {
        grouped.entry((k, t)).or_default().push(v);
    }
    grouped.values().filter_map(|v| percentile(v, 25.0)).count()
}

/// The streaming path: sharded ingest into per-group sketches, merged,
/// p25 read from each.
fn streaming_p25(records: &[(u32, Target, f64)], workers: usize) -> usize {
    let cfg = ShardConfig {
        workers,
        batch: 8192,
        queue_depth: 8,
    };
    let mut day = sketch_day(records.iter().copied(), 0.01, cfg, |k: &u32| {
        mix64(u64::from(*k))
    });
    day.values_mut()
        .filter_map(|s| s.quantile_read(25.0))
        .count()
}

fn bench_ingest(c: &mut Criterion) {
    let records = synthetic_day(1 << 20, 4096);
    let mut group = c.benchmark_group("pipeline-ingest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("batch-exact-1M", |b| {
        b.iter(|| black_box(batch_exact_p25(&records)))
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("sharded-{workers}w-1M").as_str(), |b| {
            b.iter(|| black_box(streaming_p25(&records, workers)))
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    // A month of day-sketches for one hot group: the train_window pooling
    // cost at day close.
    let days: Vec<QuantileSketch> = (0..28u64)
        .map(|d| {
            let mut s = QuantileSketch::new(0.01);
            let mut rng = SmallRng::seed_from_u64(d);
            for _ in 0..20_000 {
                s.observe(rng.gen_range(5.0f64..250.0));
            }
            s
        })
        .collect();
    let mut group = c.benchmark_group("pipeline-merge");
    group.bench_function("pool-28-day-sketches", |b| {
        b.iter(|| {
            let mut pooled = days[0].clone();
            for d in &days[1..] {
                pooled.merge(d);
            }
            black_box(pooled.quantile(25.0))
        })
    });
    // The windowed variant: per-(group, target) maps across 7 days.
    let mut window: DayWindow<u32> = DayWindow::new(0.01);
    let mut rng = SmallRng::seed_from_u64(99);
    for d in 0..7u32 {
        for _ in 0..50_000 {
            let key = rng.gen_range(0u32..256);
            window.observe(Day(d), key, Target::Anycast, rng.gen_range(5.0f64..250.0));
        }
    }
    let all_days: Vec<Day> = window.days();
    group.bench_function("pool-7-day-window-256-groups", |b| {
        b.iter(|| black_box(window.pooled(&all_days).len()))
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut study = Study::new(Scenario::small(9), StudyConfig::default());
    study.run_day(Day(0));
    let predictor = Predictor::new(PredictorConfig {
        metric: Metric::P25,
        min_samples: 5,
        ..Default::default()
    });
    let mut group = c.benchmark_group("pipeline-train");
    group.bench_function("exact-train-day", |b| {
        b.iter(|| black_box(predictor.train(study.dataset(), Day(0)).len()))
    });
    group.bench_function("sketch-train-day", |b| {
        b.iter(|| {
            black_box(
                predictor
                    .train_sketched(study.dataset(), &[Day(0)], 0.01, ShardConfig::default())
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_merge, bench_training);
criterion_main!(benches);
