//! Criterion benches: one per regenerated table/figure.
//!
//! Each bench runs the full figure pipeline at `Scale::Small` — world
//! build, measurement campaign, analysis — so regressions anywhere in the
//! stack show up as figure-level slowdowns. Absolute numbers for
//! EXPERIMENTS.md come from the `figures` binary at `--scale paper`.

use criterion::{criterion_group, criterion_main, Criterion};

use anycast_bench::figures;
use anycast_bench::worlds::Scale;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in figures::ALL {
        group.bench_function(id, |b| {
            b.iter(|| {
                let fig = figures::compute(id, Scale::Small, 2015).expect("known id");
                std::hint::black_box(fig.series.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
