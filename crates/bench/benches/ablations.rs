//! Criterion benches for the ablation sweeps (DESIGN.md §3).

use criterion::{criterion_group, criterion_main, Criterion};

use anycast_bench::ablations;
use anycast_bench::worlds::Scale;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for id in ablations::ALL {
        group.bench_function(id, |b| {
            b.iter(|| {
                let fig = ablations::compute(id, Scale::Small, 2015).expect("known id");
                std::hint::black_box(fig.series.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
