//! Microbenchmarks of the hot kernels under the figures: routing decisions,
//! latency sampling, candidate selection, CDF construction, and predictor
//! training.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use anycast_analysis::Ecdf;
use anycast_core::{Deployment, Metric, Predictor, PredictorConfig, Study, StudyConfig};
use anycast_geo::GeoPoint;
use anycast_netsim::Day;
use anycast_workload::Scenario;

fn bench_routing(c: &mut Criterion) {
    let s = Scenario::small(7);
    let clients: Vec<_> = s.clients.iter().map(|c| c.attachment).collect();
    let site = s.internet.topology().cdn.site_ids().next().unwrap();
    let mut group = c.benchmark_group("routing");
    group.bench_function("anycast_route", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % clients.len();
            std::hint::black_box(s.internet.anycast_route(&clients[i], Day(0)).site)
        })
    });
    group.bench_function("unicast_route", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % clients.len();
            std::hint::black_box(
                s.internet
                    .unicast_route(&clients[i], site, Day(0))
                    .base_rtt_ms,
            )
        })
    });
    group.bench_function("measure_anycast", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % clients.len();
            std::hint::black_box(s.internet.measure_anycast(&clients[i], Day(0), &mut rng))
        })
    });
    group.finish();
}

fn bench_geo(c: &mut Criterion) {
    let s = Scenario::small(7);
    let deployment = Deployment::of(&s.internet);
    let mut group = c.benchmark_group("geo");
    group.bench_function("haversine", |b| {
        let a = GeoPoint::new(47.6, -122.3);
        let z = GeoPoint::new(51.5, -0.13);
        b.iter(|| std::hint::black_box(a.haversine_km(&z)))
    });
    group.bench_function("nearest_10_of_12_sites", |b| {
        let p = GeoPoint::new(40.7, -74.0);
        b.iter(|| std::hint::black_box(deployment.nearest(&p, 10).len()))
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let values: Vec<f64> = (0..10_000).map(|_| rng.gen_range(1.0..300.0)).collect();
    let mut group = c.benchmark_group("analysis");
    group.bench_function("ecdf_build_10k", |b| {
        b.iter(|| std::hint::black_box(Ecdf::from_values(values.iter().copied()).len()))
    });
    let ecdf = Ecdf::from_values(values.iter().copied());
    group.bench_function("ecdf_query", |b| {
        b.iter(|| std::hint::black_box(ecdf.fraction_at_or_below(150.0)))
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut study = Study::new(Scenario::small(9), StudyConfig::default());
    study.run_day(Day(0));
    let predictor = Predictor::new(PredictorConfig {
        metric: Metric::P25,
        min_samples: 5,
        ..Default::default()
    });
    c.bench_function("predictor_train_day", |b| {
        b.iter(|| std::hint::black_box(predictor.train(study.dataset(), Day(0)).len()))
    });
}

criterion_group!(
    benches,
    bench_routing,
    bench_geo,
    bench_analysis,
    bench_prediction
);
criterion_main!(benches);
