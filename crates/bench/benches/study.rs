//! Bench for the parallel campaign engine: one full beacon day
//! (`Study::run_day`) at the Small scale, sequential vs sharded.
//!
//! The engine's contract is that worker count never changes output bytes
//! (the `study_worker_invariance` proptest pins that), so this bench is
//! purely about wall-clock: the same day's schedule/execute/merge phases
//! fanned across 1, 2, and 8 workers. The study is built once per worker
//! count; each iteration re-runs day 0, so the timed region is exactly one
//! campaign day (schedule fan-out, ordered execution, merge, join).
//! Speedup tops out at `min(workers, host cores)` — on a single-core
//! runner every worker count ties, and `BENCH_study.json` records which
//! case the committed numbers came from.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use anycast_bench::worlds::{self, Scale};
use anycast_core::{Study, StudyConfig};
use anycast_netsim::Day;

fn bench_run_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for workers in [1usize, 2, 8] {
        let cfg = StudyConfig {
            workers,
            ..StudyConfig::default()
        };
        let mut st = Study::new(worlds::scenario(Scale::Small, 2015), cfg);
        group.bench_function(format!("run-day-{workers}w").as_str(), |b| {
            b.iter(|| st.run_day(Day(0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_run_day);
criterion_main!(benches);
