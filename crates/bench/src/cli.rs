//! Argument parsing for the `figures` binary, separated so it is testable.
//!
//! Grammar:
//!
//! ```text
//! figures <artifact|all|ablations|extras|everything|bench|serve-bench>
//!         [--scale small|paper] [--seed N] [--queries N]
//!         [--workers N[,N...]] [--batch N[,N...]] [--csv]
//!         [--out DIR] [--scrape-out FILE]
//!         [--obs-out FILE] [--obs-prom FILE] [--quiet] [-v]
//! ```
//!
//! `bench` is special: it times the campaign engine across worker counts
//! and writes `BENCH_study.json` instead of rendering a figure.
//! `serve-bench` sweeps the batched wire serving plane across
//! `--workers` × `--batch` (comma-separated axes) and merges the
//! headline `serve_qps`/`serve_p50_us`/`serve_p99_us` plus the full
//! sweep trajectory into the same file; `--queries` overrides its
//! per-scale per-point query count. `--scrape-out FILE` makes
//! `serve-bench` issue a live `CHAOS TXT metrics.bind` scrape against
//! the first sweep point mid-replay and write the Prometheus text it
//! answered with to FILE.
//!
//! `--obs-out` / `--obs-prom` write the observability run report (JSON /
//! Prometheus text) collected across all computed artifacts; `--quiet`
//! and `-v` set the stderr log level (stdout carries only results).

use std::path::PathBuf;

use anycast_obs::logging::Level;

use crate::worlds::Scale;
use crate::{ablations, extras, figures};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Artifact ids to compute, in order.
    pub ids: Vec<&'static str>,
    /// Experiment scale.
    pub scale: Scale,
    /// World seed.
    pub seed: u64,
    /// Emit long-form CSV to stdout instead of text tables.
    pub csv: bool,
    /// Write per-artifact `.csv`/`.txt` files here instead of stdout.
    pub out_dir: Option<PathBuf>,
    /// Write the JSON observability run report here.
    pub obs_out: Option<PathBuf>,
    /// Write the Prometheus text-format metrics dump here.
    pub obs_prom: Option<PathBuf>,
    /// Stderr log level: `--quiet` → error-only, `-v` → debug.
    pub log_level: Level,
    /// `serve-bench` query count override (`--queries N`).
    pub queries: Option<usize>,
    /// `serve-bench` worker-count sweep axis (`--workers 1,2,4`).
    pub workers: Option<Vec<usize>>,
    /// `serve-bench` batch-size sweep axis (`--batch 1,8,32`).
    pub batch: Option<Vec<usize>>,
    /// `serve-bench` mid-replay CHAOS scrape destination
    /// (`--scrape-out FILE`); when set, the first sweep point is
    /// scraped over the wire while the replay is still running and the
    /// Prometheus text is written here.
    pub scrape_out: Option<PathBuf>,
}

/// Parses a comma-separated list of positive integers (`1,2,4`).
fn parse_list(s: &str) -> Option<Vec<usize>> {
    let vals: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse().ok().filter(|&n: &usize| n > 0))
        .collect::<Option<_>>()?;
    (!vals.is_empty()).then_some(vals)
}

/// Parse failure, with a message for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Resolves a target word to the artifact ids it denotes.
pub fn resolve_target(target: &str) -> Result<Vec<&'static str>, ParseError> {
    match target {
        "all" => Ok(figures::ALL.to_vec()),
        // The campaign-engine timing sweep (studybench); writes
        // BENCH_study.json rather than a figure table.
        "bench" => Ok(vec!["bench"]),
        // Closed-loop wire-serving load (servebench); merges into
        // BENCH_study.json.
        "serve-bench" => Ok(vec!["serve-bench"]),
        "ablations" => Ok(ablations::ALL.to_vec()),
        "extras" => Ok(extras::ALL.to_vec()),
        "everything" => Ok(figures::ALL
            .iter()
            .chain(ablations::ALL.iter())
            .chain(extras::ALL.iter())
            .copied()
            .collect()),
        one => figures::ALL
            .iter()
            .chain(ablations::ALL.iter())
            .chain(extras::ALL.iter())
            .find(|&&id| id == one)
            .map(|&id| vec![id])
            .ok_or_else(|| ParseError(format!("unknown artifact {one:?}"))),
    }
}

/// Parses command-line arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Invocation, ParseError> {
    let mut target: Option<String> = None;
    let mut scale = Scale::Paper;
    let mut seed: u64 = 2015;
    let mut csv = false;
    let mut out_dir = None;
    let mut obs_out = None;
    let mut obs_prom = None;
    let mut log_level = Level::Info;
    let mut queries = None;
    let mut workers = None;
    let mut batch = None;
    let mut scrape_out = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| Scale::parse(s))
                    .ok_or_else(|| ParseError("expected --scale small|paper".into()))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError("expected --seed <u64>".into()))?;
            }
            "--queries" => {
                queries = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| ParseError("expected --queries <positive N>".into()))?,
                );
            }
            "--workers" => {
                workers = Some(
                    it.next()
                        .map(String::as_str)
                        .and_then(parse_list)
                        .ok_or_else(|| {
                            ParseError("expected --workers <N[,N...]> (positive)".into())
                        })?,
                );
            }
            "--batch" => {
                batch = Some(
                    it.next()
                        .map(String::as_str)
                        .and_then(parse_list)
                        .ok_or_else(|| {
                            ParseError("expected --batch <N[,N...]> (positive)".into())
                        })?,
                );
            }
            "--csv" => csv = true,
            "--out" => {
                out_dir = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("expected --out <dir>".into()))?,
                ));
            }
            "--obs-out" => {
                obs_out =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        ParseError("expected --obs-out <file>".into())
                    })?));
            }
            "--obs-prom" => {
                obs_prom =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        ParseError("expected --obs-prom <file>".into())
                    })?));
            }
            "--scrape-out" => {
                scrape_out =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        ParseError("expected --scrape-out <file>".into())
                    })?));
            }
            "--quiet" | "-q" => log_level = Level::Error,
            "--verbose" | "-v" => log_level = Level::Debug,
            "--help" | "-h" => return Err(ParseError(String::new())),
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(ParseError(format!("unexpected argument {other:?}"))),
        }
    }
    let target = target.ok_or_else(|| ParseError("missing artifact id".into()))?;
    Ok(Invocation {
        ids: resolve_target(&target)?,
        scale,
        seed,
        csv,
        out_dir,
        obs_out,
        obs_prom,
        log_level,
        queries,
        workers,
        batch,
        scrape_out,
    })
}

/// The usage text.
pub fn usage_text() -> String {
    format!(
        "usage: figures <artifact|all|ablations|extras|everything|bench|serve-bench> \
         [--scale small|paper] [--seed N] [--queries N] [--csv] [--out DIR]\n\
         \x20       [--workers N[,N...]] [--batch N[,N...]] \
         [--obs-out FILE] [--obs-prom FILE] [--quiet] [-v]\n\
         bench: times Study::run_day across worker counts, \
         writes BENCH_study.json\n\
         serve-bench: batched wire load swept across --workers x --batch \
         (defaults 1,2,4 x 1,8,32), merges headline serve_qps/p50/p99 and \
         the sweep into BENCH_study.json (--queries overrides the \
         per-scale per-point count; ANYCAST_SERVE_BATCH=N forces one \
         batch value; --scrape-out FILE scrapes CHAOS TXT metrics.bind \
         mid-replay and writes the Prometheus text to FILE)\n\
         --obs-out/--obs-prom: write the observability run report \
         (JSON / Prometheus text)\n\
         artifacts: {}\n\
         ablations: {}\n\
         extras:    {}",
        figures::ALL.join(" "),
        ablations::ALL.join(" "),
        extras::ALL.join(" "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_a_full_invocation() {
        let inv = parse(&args(&["fig3", "--scale", "small", "--seed", "7", "--csv"])).unwrap();
        assert_eq!(inv.ids, vec!["fig3"]);
        assert_eq!(inv.scale, Scale::Small);
        assert_eq!(inv.seed, 7);
        assert!(inv.csv);
        assert!(inv.out_dir.is_none());
    }

    #[test]
    fn defaults_are_paper_scale_seed_2015() {
        let inv = parse(&args(&["fig1"])).unwrap();
        assert_eq!(inv.scale, Scale::Paper);
        assert_eq!(inv.seed, 2015);
        assert!(!inv.csv);
    }

    #[test]
    fn groups_expand() {
        assert_eq!(resolve_target("all").unwrap().len(), figures::ALL.len());
        assert_eq!(
            resolve_target("ablations").unwrap().len(),
            ablations::ALL.len()
        );
        assert_eq!(resolve_target("extras").unwrap().len(), extras::ALL.len());
        assert_eq!(
            resolve_target("everything").unwrap().len(),
            figures::ALL.len() + ablations::ALL.len() + extras::ALL.len()
        );
    }

    #[test]
    fn every_known_id_resolves_alone() {
        for id in figures::ALL
            .iter()
            .chain(ablations::ALL.iter())
            .chain(extras::ALL.iter())
        {
            assert_eq!(resolve_target(id).unwrap(), vec![*id]);
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["nonsense"])).is_err());
        assert!(parse(&args(&["fig1", "--seed"])).is_err());
        assert!(parse(&args(&["fig1", "--seed", "x"])).is_err());
        assert!(parse(&args(&["fig1", "--scale", "huge"])).is_err());
        assert!(parse(&args(&["fig1", "extra-arg"])).is_err());
    }

    #[test]
    fn out_dir_is_captured() {
        let inv = parse(&args(&["fig2", "--out", "/tmp/x"])).unwrap();
        assert_eq!(inv.out_dir, Some(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn usage_mentions_every_group() {
        let u = usage_text();
        assert!(u.contains("fig9") && u.contains("ablation-hybrid") && u.contains("world-summary"));
        assert!(u.contains("bench") && u.contains("BENCH_study.json"));
    }

    #[test]
    fn obs_flags_are_captured() {
        let inv = parse(&args(&[
            "fig1",
            "--obs-out",
            "report.json",
            "--obs-prom",
            "metrics.prom",
        ]))
        .unwrap();
        assert_eq!(inv.obs_out, Some(PathBuf::from("report.json")));
        assert_eq!(inv.obs_prom, Some(PathBuf::from("metrics.prom")));
        assert_eq!(inv.log_level, Level::Info);
        assert!(parse(&args(&["fig1", "--obs-out"])).is_err());
        assert!(parse(&args(&["fig1", "--obs-prom"])).is_err());
    }

    #[test]
    fn verbosity_flags_set_the_level() {
        assert_eq!(parse(&args(&["fig1"])).unwrap().log_level, Level::Info);
        assert_eq!(
            parse(&args(&["fig1", "--quiet"])).unwrap().log_level,
            Level::Error
        );
        assert_eq!(
            parse(&args(&["fig1", "-v"])).unwrap().log_level,
            Level::Debug
        );
    }

    #[test]
    fn bench_target_resolves() {
        assert_eq!(resolve_target("bench").unwrap(), vec!["bench"]);
        let inv = parse(&args(&["bench", "--scale", "small"])).unwrap();
        assert_eq!(inv.ids, vec!["bench"]);
        assert_eq!(inv.scale, Scale::Small);
    }

    #[test]
    fn serve_bench_target_and_queries_flag() {
        assert_eq!(resolve_target("serve-bench").unwrap(), vec!["serve-bench"]);
        let inv = parse(&args(&["serve-bench", "--queries", "1000"])).unwrap();
        assert_eq!(inv.ids, vec!["serve-bench"]);
        assert_eq!(inv.queries, Some(1000));
        assert_eq!(parse(&args(&["fig1"])).unwrap().queries, None);
        assert!(parse(&args(&["serve-bench", "--queries"])).is_err());
        assert!(parse(&args(&["serve-bench", "--queries", "0"])).is_err());
        assert!(parse(&args(&["serve-bench", "--queries", "x"])).is_err());
        assert!(usage_text().contains("serve-bench"));
    }

    #[test]
    fn sweep_axes_parse_as_comma_lists() {
        let inv = parse(&args(&[
            "serve-bench",
            "--workers",
            "1,2,4",
            "--batch",
            "1, 8,32",
        ]))
        .unwrap();
        assert_eq!(inv.workers, Some(vec![1, 2, 4]));
        assert_eq!(inv.batch, Some(vec![1, 8, 32]));
        let single = parse(&args(&["serve-bench", "--batch", "16"])).unwrap();
        assert_eq!(single.batch, Some(vec![16]));
        assert_eq!(single.workers, None);
        assert!(parse(&args(&["serve-bench", "--workers"])).is_err());
        assert!(parse(&args(&["serve-bench", "--workers", ""])).is_err());
        assert!(parse(&args(&["serve-bench", "--workers", "1,0"])).is_err());
        assert!(parse(&args(&["serve-bench", "--batch", "a,b"])).is_err());
        assert!(usage_text().contains("--workers") && usage_text().contains("--batch"));
    }

    #[test]
    fn scrape_out_is_captured() {
        let inv = parse(&args(&["serve-bench", "--scrape-out", "chaos.prom"])).unwrap();
        assert_eq!(inv.scrape_out, Some(PathBuf::from("chaos.prom")));
        assert_eq!(parse(&args(&["fig1"])).unwrap().scrape_out, None);
        assert!(parse(&args(&["serve-bench", "--scrape-out"])).is_err());
        assert!(usage_text().contains("--scrape-out"));
    }
}
