//! Ablations of the design choices the paper motivates.
//!
//! Each function sweeps one knob and reports the metric the paper uses to
//! justify its choice:
//!
//! * [`prediction_metric`] — §6 argues for low percentiles because high
//!   ones are noisy; sweep P25/P50/P75/P95 and report improved/hurt shares;
//! * [`min_samples`] — the 20-measurement filter;
//! * [`candidate_count`] — Figure 1's argument for capping candidates at
//!   ten; sweep the beacon candidate-set size;
//! * [`deployment_density`] — §4 ties the results to a few-dozen-site
//!   deployment; sweep the site count and watch the anycast penalty;
//! * [`hybrid_threshold`] — §6's hybrid: how the redirected share and the
//!   improvement trade off against the gain threshold;
//! * [`sketch_accuracy`] — the streaming-pipeline question: how much of
//!   the Figure 9 result survives when training reads bounded-memory
//!   quantile sketches instead of exact per-group sample vectors;
//! * [`outage_ttl`] — the §2 availability argument under stress: outage
//!   rate × DNS TTL, anycast failover against DNS redirection staleness;
//! * [`load_shedding`] — the §2 load-management question closed by the
//!   control plane: capacity headroom × {off, shed, withdraw}, trading
//!   overload integral against latency inflation;
//! * [`table_compression`] — the routing-aware aggregation question: how
//!   many trie entries the default+exception pass saves per regret-bound
//!   setting, and what it costs in next-day Figure 9 quality;
//! * [`world_scale`] — the Internet-scale worldgen question: what growing
//!   the policy-routed AS graph from 1 k to 75 k ASes costs in generation
//!   time, catchment compute and route-table bytes, and what it does to
//!   Figure 9 quality.

use std::collections::BTreeMap;

use anycast_analysis::cdf::Ecdf;
use anycast_analysis::report::Series;
use anycast_control::{
    simulate, CapacityPlan, ControlConfig, ControlMode, DemandModel, LoopConfig,
};
use anycast_core::{
    anycast_request_memo, evaluate_prediction, evaluation::outcome_shares, request_times,
    AggregationConfig, Deployment, DnsRedirectionSim, Grouping, Metric, Predictor, PredictorConfig,
    Study, StudyConfig,
};
use anycast_netsim::{Day, NetConfig, RouteSnapshot};
use anycast_obs::json::{parse, Value};
use anycast_pipeline::ShardConfig;
use anycast_workload::{ldns_assign, Scenario};

use crate::worlds::{figure_days, rng_for, scenario, scenario_config, study, Scale};
use crate::FigureResult;

/// Sweep of the prediction metric (ECS grouping, p75 evaluation).
pub fn prediction_metric(scale: Scale, seed: u64) -> FigureResult {
    let mut st = study(scale, seed);
    st.run_days(Day(0), 2);
    let ldns_of = st.ldns_of();
    let volumes = st.volumes();

    let metrics = [
        (Metric::P25, "p25"),
        (Metric::Median, "p50"),
        (Metric::P75, "p75"),
        (Metric::P95, "p95"),
    ];
    let mut improved_pts = Vec::new();
    let mut hurt_pts = Vec::new();
    let mut scalars = Vec::new();
    for (i, (metric, label)) in metrics.iter().enumerate() {
        let cfg = PredictorConfig {
            grouping: Grouping::Ecs,
            metric: *metric,
            min_samples: 20,
            failure_penalty_ms: 3_000.0,
        };
        let table = Predictor::new(cfg).train(st.dataset(), Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            st.dataset(),
            Day(1),
            ldns_of,
            &volumes,
        );
        let (improved, _, hurt) = outcome_shares(&rows, false);
        improved_pts.push((i as f64, improved));
        hurt_pts.push((i as f64, hurt));
        scalars.push((format!("{label}: improved - hurt (p75)"), improved - hurt));
    }

    FigureResult {
        id: "ablation-prediction-metric",
        title: "Prediction metric sweep (x: 0=p25, 1=p50, 2=p75, 3=p95)".into(),
        x_label: "metric index".into(),
        series: vec![
            Series::new("weighted share improved", improved_pts),
            Series::new("weighted share hurt", hurt_pts),
        ],
        scalars,
        text: None,
    }
}

/// Sweep of the minimum-sample filter (ECS grouping, p25 metric).
pub fn min_samples(scale: Scale, seed: u64) -> FigureResult {
    let mut st = study(scale, seed);
    st.run_days(Day(0), 2);
    let ldns_of = st.ldns_of();
    let volumes = st.volumes();

    let mut improved_pts = Vec::new();
    let mut hurt_pts = Vec::new();
    let mut redirected_pts = Vec::new();
    for &min in &[1usize, 5, 20, 50] {
        let cfg = PredictorConfig {
            grouping: Grouping::Ecs,
            metric: Metric::P25,
            min_samples: min,
            failure_penalty_ms: 3_000.0,
        };
        let table = Predictor::new(cfg).train(st.dataset(), Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            st.dataset(),
            Day(1),
            ldns_of,
            &volumes,
        );
        let (improved, _, hurt) = outcome_shares(&rows, false);
        improved_pts.push((min as f64, improved));
        hurt_pts.push((min as f64, hurt));
        redirected_pts.push((min as f64, table.redirected_groups().count() as f64));
    }

    FigureResult {
        id: "ablation-min-samples",
        title: "Minimum-sample filter sweep".into(),
        x_label: "min samples".into(),
        series: vec![
            Series::new("weighted share improved", improved_pts),
            Series::new("weighted share hurt", hurt_pts),
            Series::new("groups redirected", redirected_pts),
        ],
        scalars: Vec::new(),
        text: None,
    }
}

/// Sweep of the beacon candidate-set size: median over clients of the best
/// latency reachable within the k nearest candidates (Figure 1's argument).
pub fn candidate_count(scale: Scale, seed: u64) -> FigureResult {
    let s = scenario(scale, seed);
    let deployment = Deployment::of(&s.internet);
    let mut rng = rng_for(seed, 0xab03);
    let max_k = 12usize.min(deployment.size());

    // One pass: per client, cumulative best latency per candidate rank.
    let mut cumulative: Vec<Vec<f64>> = Vec::with_capacity(s.clients.len());
    for c in &s.clients {
        let ldns_id = s.ldns.resolver_of(c.prefix);
        let believed = ldns_assign::believed_ldns_location(s.ldns.resolver(ldns_id), &s.geodb);
        let mut best = f64::INFINITY;
        let mut row = Vec::with_capacity(max_k);
        for (site, _) in deployment.nearest(&believed, max_k) {
            best = best.min(
                s.internet
                    .measure_unicast(&c.attachment, site, Day(0), &mut rng),
            );
            row.push(best);
        }
        cumulative.push(row);
    }

    let points: Vec<(f64, f64)> = (1..=max_k)
        .map(|k| {
            let med = Ecdf::from_values(
                cumulative
                    .iter()
                    .filter_map(|row| row.get(k.min(row.len()) - 1).copied()),
            )
            .median()
            .unwrap_or(f64::NAN);
            (k as f64, med)
        })
        .collect();
    let knee_gain = points[2].1 - points.last().unwrap().1;

    FigureResult {
        id: "ablation-candidates",
        title: "Candidate-set size sweep: median best latency within k nearest".into(),
        x_label: "candidates k".into(),
        series: vec![Series::new("median best latency (ms)", points)],
        scalars: vec![("gain from k=3 to k=max (ms)".to_string(), knee_gain)],
        text: None,
    }
}

/// Sweep of deployment density: fraction of beacon executions with ≥25 ms
/// anycast penalty, per site count.
pub fn deployment_density(scale: Scale, seed: u64) -> FigureResult {
    let site_counts: &[usize] = match scale {
        Scale::Small => &[6, 12, 24],
        Scale::Paper => &[10, 22, 44, 66, 88],
    };
    let mut penalty_pts = Vec::new();
    let mut median_dist_pts = Vec::new();
    for &n_sites in site_counts {
        let mut cfg = scenario_config(scale, seed);
        cfg.net = NetConfig { n_sites, ..cfg.net };
        let scenario = Scenario::build(cfg).expect("valid density config");
        let mut st = Study::new(scenario, StudyConfig::default());
        st.run_days(Day(0), figure_days(scale, 1));
        let penalties = Ecdf::from_values(
            st.dataset()
                .executions()
                .iter()
                .filter_map(|e| e.anycast_penalty_ms()),
        );
        penalty_pts.push((n_sites as f64, penalties.fraction_above(25.0)));
        // Median client distance to nearest front-end.
        let deployment = Deployment::of(&st.scenario().internet);
        let dist = Ecdf::from_values(
            st.scenario()
                .clients
                .iter()
                .filter_map(|c| deployment.distance_to_nth_km(&c.attachment.location, 1)),
        );
        median_dist_pts.push((n_sites as f64, dist.median().unwrap_or(f64::NAN)));
    }

    FigureResult {
        id: "ablation-density",
        title: "Deployment density sweep".into(),
        x_label: "front-end sites".into(),
        series: vec![
            Series::new("fraction of requests ≥25ms penalty", penalty_pts),
            Series::new("median km to nearest front-end", median_dist_pts),
        ],
        scalars: Vec::new(),
        text: None,
    }
}

/// Sweep of the hybrid gain threshold (ECS grouping).
pub fn hybrid_threshold(scale: Scale, seed: u64) -> FigureResult {
    let mut st = study(scale, seed);
    st.run_days(Day(0), 2);
    let ldns_of = st.ldns_of();
    let volumes = st.volumes();
    let cfg = PredictorConfig {
        grouping: Grouping::Ecs,
        metric: Metric::P25,
        min_samples: 20,
        failure_penalty_ms: 3_000.0,
    };
    let full_table = Predictor::new(cfg).train(st.dataset(), Day(0));

    let mut redirected_pts = Vec::new();
    let mut improved_pts = Vec::new();
    let mut hurt_pts = Vec::new();
    for &threshold in &[0.0, 5.0, 10.0, 25.0, 50.0] {
        let table = full_table.hybrid_filter(threshold);
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            st.dataset(),
            Day(1),
            ldns_of,
            &volumes,
        );
        let (improved, _, hurt) = outcome_shares(&rows, false);
        redirected_pts.push((threshold, table.len() as f64));
        improved_pts.push((threshold, improved));
        hurt_pts.push((threshold, hurt));
    }

    FigureResult {
        id: "ablation-hybrid",
        title: "Hybrid gain-threshold sweep".into(),
        x_label: "min predicted gain (ms)".into(),
        series: vec![
            Series::new("groups redirected", redirected_pts),
            Series::new("weighted share improved (p75)", improved_pts),
            Series::new("weighted share hurt (p75)", hurt_pts),
        ],
        scalars: Vec::new(),
        text: None,
    }
}

/// Sweep of the training-window length: train on the last k days, evaluate
/// on the following day. The paper was pinned to one-day intervals by its
/// sampling rate (§6 footnote 2); this sweep shows what longer histories
/// buy (more qualifying groups) and cost (staleness under churn).
pub fn training_window(scale: Scale, seed: u64) -> FigureResult {
    let total_days = 5u32;
    let mut st = study(scale, seed);
    st.run_days(Day(0), total_days + 1);
    let ldns_of = st.ldns_of();
    let volumes = st.volumes();

    let mut improved_pts = Vec::new();
    let mut hurt_pts = Vec::new();
    let mut coverage_pts = Vec::new();
    for k in 1..=total_days {
        let window: Vec<Day> = ((total_days - k)..total_days).map(Day).collect();
        let cfg = PredictorConfig {
            grouping: Grouping::Ecs,
            metric: Metric::P25,
            min_samples: 20,
            failure_penalty_ms: 3_000.0,
        };
        let table = Predictor::new(cfg).train_window(st.dataset(), &window);
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            st.dataset(),
            Day(total_days),
            ldns_of,
            &volumes,
        );
        let (improved, _, hurt) = outcome_shares(&rows, false);
        improved_pts.push((f64::from(k), improved));
        hurt_pts.push((f64::from(k), hurt));
        coverage_pts.push((f64::from(k), table.len() as f64));
    }

    FigureResult {
        id: "ablation-training-window",
        title: "Training-window length sweep (train on last k days, evaluate next day)".into(),
        x_label: "window length (days)".into(),
        series: vec![
            Series::new("weighted share improved (p75)", improved_pts),
            Series::new("weighted share hurt (p75)", hurt_pts),
            Series::new("groups with prediction", coverage_pts),
        ],
        scalars: Vec::new(),
        text: None,
    }
}

/// Sweep of the pipeline sketch's rank-error bound: train the predictor
/// from streaming quantile sketches (`Predictor::train_sketched`) at each
/// bound, evaluate on the next day exactly as Figure 9 does, and compare
/// the improved/hurt shares against exact-path training. At the default
/// bound (ε = 0.01) the shares must agree within 2 percentage points —
/// the contract that lets the streaming pipeline replace the
/// materialize-and-sort path at production scale.
pub fn sketch_accuracy(scale: Scale, seed: u64) -> FigureResult {
    let mut st = study(scale, seed);
    st.run_days(Day(0), 2);
    let ldns_of = st.ldns_of();
    let volumes = st.volumes();
    let shard = ShardConfig::default();
    const DEFAULT_EPS: f64 = 0.01;

    let mut series = Vec::new();
    let mut scalars = Vec::new();
    for (grouping, label) in [(Grouping::Ecs, "ECS"), (Grouping::Ldns, "LDNS")] {
        let cfg = PredictorConfig {
            grouping,
            metric: Metric::P25,
            min_samples: 20,
            failure_penalty_ms: 3_000.0,
        };
        let predictor = Predictor::new(cfg);
        let exact_table = predictor.train(st.dataset(), Day(0));
        let exact_rows = evaluate_prediction(
            &exact_table,
            grouping,
            st.dataset(),
            Day(1),
            ldns_of,
            &volumes,
        );
        let (exact_improved, _, exact_hurt) = outcome_shares(&exact_rows, false);
        scalars.push((
            format!("{label} exact improved share (p75)"),
            exact_improved,
        ));
        scalars.push((format!("{label} exact hurt share (p75)"), exact_hurt));

        let mut improved_pts = Vec::new();
        let mut hurt_pts = Vec::new();
        let mut agreement_pts = Vec::new();
        for &eps in &[0.005, DEFAULT_EPS, 0.02, 0.05, 0.1, 0.2] {
            let table = predictor.train_sketched(st.dataset(), &[Day(0)], eps, shard);
            let rows =
                evaluate_prediction(&table, grouping, st.dataset(), Day(1), ldns_of, &volumes);
            let (improved, _, hurt) = outcome_shares(&rows, false);
            improved_pts.push((eps * 1e3, improved));
            hurt_pts.push((eps * 1e3, hurt));
            let agreeing = exact_table
                .iter()
                .filter(|(k, c)| table.predict(*k) == Some(c.target))
                .count();
            let agreement = if exact_table.is_empty() {
                1.0
            } else {
                agreeing as f64 / exact_table.len() as f64
            };
            agreement_pts.push((eps * 1e3, agreement));
            if eps == DEFAULT_EPS {
                scalars.push((
                    format!("{label} |Δ improved| at default ε (pp)"),
                    (improved - exact_improved).abs() * 100.0,
                ));
                scalars.push((
                    format!("{label} |Δ hurt| at default ε (pp)"),
                    (hurt - exact_hurt).abs() * 100.0,
                ));
            }
        }
        series.push(Series::new(
            format!("{label} improved (sketch)"),
            improved_pts,
        ));
        series.push(Series::new(format!("{label} hurt (sketch)"), hurt_pts));
        series.push(Series::new(
            format!("{label} choice agreement"),
            agreement_pts,
        ));
    }

    FigureResult {
        id: "ablation-sketch-accuracy",
        title: "Sketch-fed training vs exact training across rank-error bounds".into(),
        x_label: "rank-error bound ε (x 1e-3)".into(),
        series,
        scalars,
        text: None,
    }
}

/// Joint sweep of outage rate × DNS answer TTL — the robustness ablation
/// behind the §2 availability argument.
///
/// One world is built per outage rate; within a world the same
/// deterministic probe schedule is replayed once over the anycast VIP
/// (cache-free, so TTL-independent) and once per TTL through
/// [`DnsRedirectionSim`]. Reported per rate: one DNS-unavailability curve
/// over TTL plus an anycast-unavailability scalar. The claim being
/// ablated: anycast's loss stays pinned to the BGP reconvergence window no
/// matter how unreliable front-ends get, while DNS redirection's loss
/// scales with both knobs.
pub fn outage_ttl(scale: Scale, seed: u64) -> FigureResult {
    const RATES: [f64; 3] = [0.05, 0.15, 0.3];
    const TTLS_S: [f64; 4] = [60.0, 300.0, 900.0, 3600.0];
    let days = figure_days(scale, 3);
    let times = request_times(192);

    let mut series = Vec::new();
    let mut scalars = Vec::new();
    for rate in RATES {
        let mut cfg = scenario_config(scale, seed);
        cfg.net.p_site_outage = rate;
        let s = Scenario::build(cfg).expect("valid outage config");
        let internet = &s.internet;

        // Per-day route snapshots keep the 192-probe/day sweep from
        // re-resolving steady routes on every probe.
        let attachments: Vec<_> = s.clients.iter().map(|c| c.attachment).collect();

        let (mut any_served, mut any_failed) = (0u64, 0u64);
        for day in 0..days {
            let snap = RouteSnapshot::build(internet, &attachments, Day(day));
            for &t in &times {
                for i in 0..s.clients.len() {
                    if anycast_request_memo(internet, &snap, i, t).served() {
                        any_served += 1;
                    } else {
                        any_failed += 1;
                    }
                }
            }
        }
        scalars.push((
            format!("anycast unavailability at outage rate {rate}"),
            any_failed as f64 / (any_served + any_failed) as f64,
        ));

        let mut dns_pts = Vec::new();
        for ttl in TTLS_S {
            let mut dns = DnsRedirectionSim::new(internet, ttl);
            let (mut served, mut failed) = (0u64, 0u64);
            for day in 0..days {
                let snap = RouteSnapshot::build(internet, &attachments, Day(day));
                for &t in &times {
                    for (i, c) in s.clients.iter().enumerate() {
                        if dns.request_memo(c.prefix, &snap, i, t).served() {
                            served += 1;
                        } else {
                            failed += 1;
                        }
                    }
                }
            }
            dns_pts.push((ttl, failed as f64 / (served + failed) as f64));
        }
        series.push(Series::new(
            format!("DNS unavailability, outage rate {rate}"),
            dns_pts,
        ));
    }

    FigureResult {
        id: "ablation-outage-ttl",
        title: "Outage rate × DNS TTL sweep: unavailability of DNS redirection vs anycast".into(),
        x_label: "DNS answer TTL (s)".into(),
        series,
        scalars,
        text: None,
    }
}

/// Capacity headroom × {off, shed, withdraw}: the latency-vs-overload
/// tradeoff the control plane navigates.
///
/// Every site's capacity is set to `headroom ×` its peak projected load
/// across the day's control epochs, so headroom < 1 guarantees each site
/// is undersized at its own peak. For each headroom the closed loop runs
/// in all three modes and reports the overload integral (site-queries
/// above capacity, summed over epochs) and the median per-query latency
/// inflation the steering paid for it.
pub fn load_shedding(scale: Scale, seed: u64) -> FigureResult {
    const HEADROOMS: [f64; 5] = [0.7, 0.85, 0.95, 1.1, 1.3];
    let mut st = study(scale, seed);
    st.run_day(anycast_netsim::Day(0));
    let cfg = PredictorConfig {
        grouping: Grouping::Ldns,
        ..PredictorConfig::default()
    };
    let table = Predictor::new(cfg).train(st.dataset(), anycast_netsim::Day(0));
    let scenario = st.scenario();

    let loop_cfg = |mode: ControlMode| LoopConfig {
        grouping: Grouping::Ldns,
        day: Day(1),
        epochs: 6,
        control: ControlConfig {
            mode,
            ..ControlConfig::default()
        },
        ..LoopConfig::default()
    };

    // Per-site peak projected load across the day's epochs — the yardstick
    // every headroom factor scales.
    let base = loop_cfg(ControlMode::Off);
    let model = DemandModel::build(
        scenario,
        &table,
        base.grouping,
        base.day,
        base.epochs,
        base.query_cap,
    );
    let mut peak: BTreeMap<anycast_netsim::SiteId, f64> = BTreeMap::new();
    for epoch in &model.epochs {
        for (site, load) in epoch.project(&table, &BTreeMap::new()) {
            let p = peak.entry(site).or_insert(0.0);
            *p = p.max(load);
        }
    }

    let modes = [
        (ControlMode::Off, "off"),
        (ControlMode::Shed, "shed"),
        (ControlMode::Withdraw, "withdraw"),
    ];
    let mut overload_pts: Vec<Vec<(f64, f64)>> = vec![Vec::new(); modes.len()];
    let mut inflation_pts: Vec<Vec<(f64, f64)>> = vec![Vec::new(); modes.len()];
    let mut scalars = Vec::new();
    for &h in &HEADROOMS {
        let mut caps = CapacityPlan::new();
        for (&site, &p) in &peak {
            caps.set(site, h * p.max(1.0));
        }
        for (i, &(mode, _)) in modes.iter().enumerate() {
            let run = simulate(scenario, &table, &loop_cfg(mode), &caps);
            overload_pts[i].push((h, run.overload_integral));
            inflation_pts[i].push((h, run.median_inflation_ms));
        }
    }
    // The headline: at the tightest headroom, how much of the valve-only
    // overload the closed loop sheds, and what it pays in latency.
    let off0 = overload_pts[0][0].1;
    let shed0 = overload_pts[1][0].1;
    if off0 > 0.0 {
        scalars.push((
            format!("overload integral shed at headroom {}", HEADROOMS[0]),
            1.0 - shed0 / off0,
        ));
    }
    scalars.push((
        format!(
            "median inflation (ms) of shedding at headroom {}",
            HEADROOMS[0]
        ),
        inflation_pts[1][0].1,
    ));

    let mut series = Vec::new();
    for (i, &(_, name)) in modes.iter().enumerate() {
        series.push(Series::new(
            format!("overload integral, {name}"),
            overload_pts[i].clone(),
        ));
    }
    for (i, &(_, name)) in modes.iter().enumerate() {
        series.push(Series::new(
            format!("median inflation ms, {name}"),
            inflation_pts[i].clone(),
        ));
    }

    FigureResult {
        id: "ablation-load-shedding",
        title: "Load-shedding tradeoff: capacity headroom × control mode".into(),
        x_label: "capacity headroom (× peak site load)".into(),
        series,
        scalars,
        text: None,
    }
}

/// Sweep of the routing-aware aggregation regret bound: table size (trie
/// entries) against next-day Figure 9 quality, plain per-/24 training as
/// the baseline.
///
/// The series answer the PR's acceptance question directly: how many
/// entries does the ORTC-style default+exception pass save, and how many
/// percentage points of the improved−hurt margin does it give back? A
/// scalar pins the identity contract — the disabled config must reproduce
/// plain training choice-for-choice.
pub fn table_compression(scale: Scale, seed: u64) -> FigureResult {
    const BOUNDS_MS: [f64; 7] = [0.0, 1.0, 2.5, 5.0, 7.5, 10.0, 25.0];
    let default_bound = AggregationConfig::default().regret_bound_ms;
    let mut st = study(scale, seed);
    st.run_days(Day(0), 2);
    let ldns_of = st.ldns_of();
    let volumes = st.volumes();
    // Production-shaped baseline: one entry per measured /24, however
    // thin the evidence — the served table holds every /24 the logs saw,
    // not just the well-sampled ones. That is the table the aggregation
    // pass has to shrink; Fig-9's min_samples filter would leave a
    // handful of entries at small scale and nothing to compress.
    let cfg = PredictorConfig {
        grouping: Grouping::Ecs,
        metric: Metric::P25,
        min_samples: 1,
        failure_penalty_ms: 3_000.0,
    };
    let predictor = Predictor::new(cfg);
    let plain = predictor.train(st.dataset(), Day(0));
    let plain_rows = evaluate_prediction(
        &plain,
        Grouping::Ecs,
        st.dataset(),
        Day(1),
        ldns_of,
        &volumes,
    );
    let (plain_improved, _, plain_hurt) = outcome_shares(&plain_rows, false);
    let plain_margin = plain_improved - plain_hurt;

    let mut entry_pts = Vec::new();
    let mut ratio_pts = Vec::new();
    let mut delta_pts = Vec::new();
    let mut scalars = vec![
        ("plain table entries".to_string(), plain.len() as f64),
        ("plain improved - hurt (p75)".to_string(), plain_margin),
    ];
    for &bound in &BOUNDS_MS {
        let agg = AggregationConfig {
            regret_bound_ms: bound,
            ..AggregationConfig::default()
        };
        let table = predictor.train_aggregated(st.dataset(), Day(0), &agg);
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            st.dataset(),
            Day(1),
            ldns_of,
            &volumes,
        );
        let (improved, _, hurt) = outcome_shares(&rows, false);
        let ratio = plain.len() as f64 / table.len().max(1) as f64;
        let delta_pp = (plain_margin - (improved - hurt)) * 100.0;
        entry_pts.push((bound, table.len() as f64));
        ratio_pts.push((bound, ratio));
        delta_pts.push((bound, delta_pp));
        if bound == default_bound {
            scalars.push(("compression ratio at default bound".to_string(), ratio));
            scalars.push(("quality loss at default bound (pp)".to_string(), delta_pp));
        }
    }
    // The identity contract: disabled aggregation reproduces plain
    // training choice-for-choice (1.0 = identical).
    let disabled = predictor.train_aggregated(st.dataset(), Day(0), &AggregationConfig::disabled());
    let identical = disabled.len() == plain.len()
        && plain
            .iter()
            .all(|(k, c)| disabled.predict(k) == Some(c.target));
    scalars.push((
        "disabled config identical to plain".to_string(),
        f64::from(identical),
    ));

    FigureResult {
        id: "ablation-table-compression",
        title: "Routing-aware aggregation sweep: table size vs Fig-9 quality".into(),
        x_label: "regret bound (ms)".into(),
        series: vec![
            Series::new("table entries", entry_pts),
            Series::new("compression ratio vs plain", ratio_pts),
            Series::new("quality loss vs plain (pp)", delta_pts),
        ],
        scalars,
        text: None,
    }
}

/// The live-telemetry overhead ablation: the same pipelined serving
/// point measured with the hot-path flight recorder sampling and with it
/// compiled out of the run, plus the CUSUM detection-latency curve that
/// prices the drift detectors the recorder feeds.
///
/// Two questions, one figure:
///
/// * what does per-query trace sampling cost at the headline point
///   (`recorder_overhead_pct` — the PR's bar is ≤3%);
/// * how many control epochs does a persistent share shift of magnitude
///   `d` take to fire under the default [`anycast_obs::DriftConfig`]
///   (driven through a real [`anycast_obs::Cusum`], matching the
///   closed-form `⌈h/(d−k)⌉` bound).
pub fn obs_overhead(scale: Scale, seed: u64) -> FigureResult {
    let queries = crate::servebench::default_queries(scale);
    // One short loopback run has ~10% scheduler noise, which would drown
    // a ≤3% recorder cost. Three defenses: a single worker (so server,
    // client and drain threads do not oversubscribe small CI hosts into
    // a scheduling lottery), repetitions *interleaved* (on, off, on,
    // off, …) so slow background-load drift hits both settings equally,
    // and the median QPS per setting — robust to the occasional run a
    // background task lands on.
    let sample = |recorder: bool| {
        let r =
            crate::servebench::run_sweep_cfg(scale, seed, &[1], &[32], queries, recorder, false);
        (r.headline().qps, r.headline().p99_us)
    };
    let (mut on, mut off) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        on.push(sample(true));
        off.push(sample(false));
    }
    let median = |v: &mut Vec<(f64, f64)>| {
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v[v.len() / 2]
    };
    let (qps_on, p99_on) = median(&mut on);
    let (qps_off, p99_off) = median(&mut off);
    let overhead_pct = if qps_off > 0.0 {
        (qps_off - qps_on) / qps_off * 100.0
    } else {
        0.0
    };

    let dc = anycast_obs::DriftConfig::default();
    let mut latency_pts = Vec::new();
    for d in [0.075, 0.1, 0.15, 0.2, 0.3, 0.4] {
        let mut cusum = anycast_obs::Cusum::new(dc.k, dc.h);
        let fired = (1..=100).find(|_| cusum.update(d).is_some()).unwrap_or(100);
        latency_pts.push((d, fired as f64));
    }

    FigureResult {
        id: "ablation-obs-overhead",
        title: "Live telemetry: flight-recorder cost and drift detection latency".into(),
        x_label: "per-epoch share shift (detector series)".into(),
        series: vec![Series::new("epochs to fire (default CUSUM)", latency_pts)],
        scalars: vec![
            ("serve_qps_recorder_on".into(), qps_on),
            ("serve_qps_recorder_off".into(), qps_off),
            ("recorder_overhead_pct".into(), overhead_pct),
            ("serve_p99_us_recorder_on".into(), p99_on),
            ("serve_p99_us_recorder_off".into(), p99_off),
        ],
        text: None,
    }
}

/// The Internet-scale world ablation: sweep the AS count of the
/// policy-routed worldgen topology and record what growing the world
/// costs — generation time, catchment-compute time (steady table plus
/// every per-site unicast table), peak route-table bytes — and what it
/// buys: the Fig-9-style improved−hurt margin of a two-day mini study
/// run on each world.
///
/// The acceptance bar rides along as scalars: the largest world's
/// generation + full-catchment time must stay far under the 60 s
/// single-thread budget, and every world must route every AS.
pub fn world_scale(scale: Scale, seed: u64) -> FigureResult {
    let sizes: &[usize] = match scale {
        Scale::Small => &[1_000, 10_000],
        Scale::Paper => &[1_000, 10_000, 75_000],
    };
    let mut gen_pts = Vec::new();
    let mut catch_pts = Vec::new();
    let mut bytes_pts = Vec::new();
    let mut margin_pts = Vec::new();
    let mut scalars = Vec::new();
    for &n in sizes {
        let mut cfg = scenario_config(scale, seed);
        cfg.net.worldgen = Some(anycast_netsim::WorldGenConfig::with_ases(n));

        // Generation: the full topology + policy plane, nothing routed yet.
        let t0 = std::time::Instant::now();
        let net = anycast_netsim::Internet::new(cfg.net.clone(), seed).expect("valid worldgen");
        let gen_s = t0.elapsed().as_secs_f64();
        let pw = std::sync::Arc::clone(net.policy_world().expect("worldgen has a policy plane"));

        // Catchments: the steady anycast table plus one unicast table per
        // site's announcement border — the same set the eval plane needs.
        let t1 = std::time::Instant::now();
        let steady = pw.steady_table();
        for site in net.topology().cdn.site_ids() {
            pw.unicast_table(net.topology().cdn.unicast_announcement_border(site));
        }
        let catch_s = t1.elapsed().as_secs_f64();
        let table_mb = pw.memory_bytes() as f64 / (1024.0 * 1024.0);

        // Fig-9-style quality on this world: train day 0, evaluate day 1.
        let mut st = Study::new(
            Scenario::build(cfg).expect("valid worldgen"),
            StudyConfig::default(),
        );
        st.run_days(Day(0), 2);
        let ldns_of = st.ldns_of();
        let volumes = st.volumes();
        let pcfg = PredictorConfig {
            grouping: Grouping::Ecs,
            metric: Metric::P25,
            min_samples: 20,
            failure_penalty_ms: 3_000.0,
        };
        let table = Predictor::new(pcfg).train(st.dataset(), Day(0));
        let rows = evaluate_prediction(
            &table,
            Grouping::Ecs,
            st.dataset(),
            Day(1),
            ldns_of,
            &volumes,
        );
        let (improved, _, hurt) = outcome_shares(&rows, false);

        let x = n as f64;
        gen_pts.push((x, gen_s));
        catch_pts.push((x, catch_s));
        bytes_pts.push((x, table_mb));
        margin_pts.push((x, improved - hurt));
        scalars.push((format!("{n} ASes: routed"), steady.routed_count() as f64));
        scalars.push((format!("{n} ASes: gen+catchments s"), gen_s + catch_s));
    }
    let &(largest, _) = gen_pts.last().expect("at least one size");
    let total_s = gen_pts.last().unwrap().1 + catch_pts.last().unwrap().1;
    scalars.push(("largest world ASes".into(), largest));
    scalars.push(("largest world gen+catchments s".into(), total_s));
    scalars.push((
        "largest world within 60 s budget".into(),
        f64::from(total_s < 60.0),
    ));

    FigureResult {
        id: "ablation-world-scale",
        title: "Internet-scale worlds: cost and prediction quality vs AS count".into(),
        x_label: "ASes in the generated topology".into(),
        series: vec![
            Series::new("generation time s", gen_pts),
            Series::new("catchment compute s", catch_pts),
            Series::new("route-table MB", bytes_pts),
            Series::new("improved - hurt (p75)", margin_pts),
        ],
        scalars,
        text: None,
    }
}

/// Merges a figure's series and scalars into the cumulative
/// `BENCH_study.json` body under `key` (same discipline as `servebench`):
/// each series becomes `key.<snake_name>` as an array of `[x, y]` pairs,
/// and the scalars ride along.
fn merge_figure_into_bench_json(fig: &FigureResult, key: &str, existing: Option<&str>) -> String {
    let mut root = existing
        .and_then(|s| parse(s).ok())
        .and_then(|v| match v {
            Value::Obj(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    let mut body = BTreeMap::new();
    for s in &fig.series {
        let name: String = s
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let pts = s
            .points
            .iter()
            .map(|&(x, y)| Value::Arr(vec![Value::Num(x), Value::Num(y)]))
            .collect();
        body.insert(name, Value::Arr(pts));
    }
    for (name, v) in &fig.scalars {
        let name: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        body.insert(name, Value::Num(*v));
    }
    root.insert(key.into(), Value::Obj(body));
    Value::Obj(root).to_json_pretty()
}

/// Merges the [`load_shedding`] tradeoff series into the cumulative
/// `BENCH_study.json` body under `load_shedding`.
pub fn merge_load_shedding_into_bench_json(fig: &FigureResult, existing: Option<&str>) -> String {
    merge_figure_into_bench_json(fig, "load_shedding", existing)
}

/// Merges the [`table_compression`] sweep into the cumulative
/// `BENCH_study.json` body under `table_compression`.
pub fn merge_table_compression_into_bench_json(
    fig: &FigureResult,
    existing: Option<&str>,
) -> String {
    merge_figure_into_bench_json(fig, "table_compression", existing)
}

/// Merges the [`obs_overhead`] ablation into the cumulative
/// `BENCH_study.json` body under `obs_overhead`.
pub fn merge_obs_overhead_into_bench_json(fig: &FigureResult, existing: Option<&str>) -> String {
    merge_figure_into_bench_json(fig, "obs_overhead", existing)
}

/// Merges the [`world_scale`] sweep into the cumulative
/// `BENCH_study.json` body under `world_scale`.
pub fn merge_world_scale_into_bench_json(fig: &FigureResult, existing: Option<&str>) -> String {
    merge_figure_into_bench_json(fig, "world_scale", existing)
}

/// All ablation ids.
pub const ALL: [&str; 12] = [
    "ablation-prediction-metric",
    "ablation-min-samples",
    "ablation-candidates",
    "ablation-density",
    "ablation-hybrid",
    "ablation-training-window",
    "ablation-sketch-accuracy",
    "ablation-outage-ttl",
    "ablation-load-shedding",
    "ablation-table-compression",
    "ablation-obs-overhead",
    "ablation-world-scale",
];

/// Computes an ablation by id.
pub fn compute(id: &str, scale: Scale, seed: u64) -> Option<FigureResult> {
    match id {
        "ablation-prediction-metric" => Some(prediction_metric(scale, seed)),
        "ablation-min-samples" => Some(min_samples(scale, seed)),
        "ablation-candidates" => Some(candidate_count(scale, seed)),
        "ablation-density" => Some(deployment_density(scale, seed)),
        "ablation-hybrid" => Some(hybrid_threshold(scale, seed)),
        "ablation-training-window" => Some(training_window(scale, seed)),
        "ablation-sketch-accuracy" => Some(sketch_accuracy(scale, seed)),
        "ablation-outage-ttl" => Some(outage_ttl(scale, seed)),
        "ablation-load-shedding" => Some(load_shedding(scale, seed)),
        "ablation-table-compression" => Some(table_compression(scale, seed)),
        "ablation-obs-overhead" => Some(obs_overhead(scale, seed)),
        "ablation-world-scale" => Some(world_scale(scale, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_sweep_is_monotone_nonincreasing() {
        let fig = candidate_count(Scale::Small, 1);
        let pts = &fig.series[0].points;
        for w in pts.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "more candidates cannot hurt");
        }
    }

    #[test]
    fn density_reduces_distance() {
        let fig = deployment_density(Scale::Small, 1);
        let dist = &fig.series[1].points;
        assert!(
            dist.last().unwrap().1 <= dist.first().unwrap().1,
            "denser deployments must shorten nearest-front-end distance"
        );
    }

    #[test]
    fn min_samples_reduces_redirections() {
        let fig = min_samples(Scale::Small, 1);
        let redirected = &fig.series[2].points;
        assert!(
            redirected.last().unwrap().1 <= redirected.first().unwrap().1,
            "stricter filters must redirect fewer groups"
        );
    }

    #[test]
    fn hybrid_threshold_monotone() {
        let fig = hybrid_threshold(Scale::Small, 1);
        let redirected = &fig.series[0].points;
        for w in redirected.windows(2) {
            assert!(w[1].1 <= w[0].1, "higher thresholds redirect fewer groups");
        }
    }

    #[test]
    fn all_ids_resolve() {
        for id in ALL {
            assert!(compute(id, Scale::Small, 1).is_some(), "{id}");
        }
        assert!(compute("nope", Scale::Small, 1).is_none());
    }

    #[test]
    fn sketch_training_matches_exact_within_two_points() {
        // The PR's acceptance bar: at the default rank-error bound, the
        // sketch-fed predictor reproduces the exact-path Figure 9
        // improved/hurt shares within 2 percentage points, for both
        // groupings.
        let fig = sketch_accuracy(Scale::Small, 1);
        for (name, v) in &fig.scalars {
            if name.contains("|Δ") {
                assert!(*v <= 2.0, "{name} = {v:.3} pp exceeds the 2 pp budget");
            }
        }
        // Sanity: all four delta scalars are actually present.
        assert_eq!(
            fig.scalars.iter().filter(|(n, _)| n.contains("|Δ")).count(),
            4
        );
    }

    #[test]
    fn tighter_sketches_agree_at_least_as_well() {
        let fig = sketch_accuracy(Scale::Small, 1);
        for s in fig.series.iter().filter(|s| s.name.contains("agreement")) {
            let first = s.points.first().unwrap().1;
            assert!(
                first >= 0.9,
                "{}: tightest bound agrees on only {first:.3} of choices",
                s.name
            );
        }
    }

    #[test]
    fn outage_ttl_sweep_pins_anycast_loss_below_dns() {
        let fig = outage_ttl(Scale::Small, 7);
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.scalars.len(), 3);
        for (s, (_, any_unavail)) in fig.series.iter().zip(&fig.scalars) {
            // Within each world, longer TTLs cannot improve DNS availability.
            assert!(
                s.points.last().unwrap().1 >= s.points.first().unwrap().1 - 1e-12,
                "{}: unavailability shrank with TTL",
                s.name
            );
            // At the longest TTL, DNS loses at least as much as anycast.
            assert!(
                s.points.last().unwrap().1 >= *any_unavail,
                "{}: DNS beat anycast availability",
                s.name
            );
        }
        // Anycast stays near-perfect even at the harshest outage rate.
        assert!(fig.scalars[2].1 < 0.01, "anycast loss {}", fig.scalars[2].1);
    }

    #[test]
    fn load_shedding_trades_overload_for_latency() {
        let fig = load_shedding(Scale::Small, 1);
        assert_eq!(fig.series.len(), 6);
        let off = &fig.series[0].points;
        let shed = &fig.series[1].points;
        let withdraw = &fig.series[2].points;
        let off_infl = &fig.series[3].points;
        // The valve-only baseline is actually overloaded at tight headroom…
        assert!(off[0].1 > 0.0, "headroom 0.7 must overload the baseline");
        // …wherever some site still has spare capacity (headroom ≥ 0.85
        // leaves off-peak sites with room), shedding beats doing nothing;
        // below that the system is under-provisioned outright and no DNS
        // steering can win — that crossover is the figure's point.
        for (o, s) in off.iter().zip(shed).filter(|(o, _)| o.0 >= 0.85) {
            assert!(
                s.1 <= o.1 + 1e-9,
                "shed ({}) beat by off ({}) at {}",
                s.1,
                o.1,
                o.0
            );
        }
        let mid = off.iter().zip(shed).find(|(o, _)| o.0 >= 0.95).unwrap();
        assert!(
            mid.1 .1 < mid.0 .1,
            "with real spare capacity shedding must strictly help"
        );
        // …withdrawing a whole site never beats targeted shedding…
        for (w, s) in withdraw.iter().zip(shed) {
            assert!(w.1 >= s.1 - 1e-9, "withdraw beat shedding at {}", w.0);
        }
        // …more headroom never increases the baseline overload…
        for w in off.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "overload must shrink with headroom"
            );
        }
        // …and a baseline that steers nothing pays nothing.
        assert!(off_infl.iter().all(|&(_, y)| y == 0.0));
    }

    #[test]
    fn load_shedding_merges_into_bench_json() {
        let fig = load_shedding(Scale::Small, 1);
        let existing = r#"{"bench": "study-run-day", "train_s": 0.5}"#;
        let merged = merge_load_shedding_into_bench_json(&fig, Some(existing));
        let v = parse(&merged).expect("merged output parses");
        assert_eq!(
            v.get("bench").and_then(Value::as_str),
            Some("study-run-day")
        );
        let ls = v.get("load_shedding").expect("load_shedding object");
        for key in [
            "overload_integral__off",
            "overload_integral__shed",
            "overload_integral__withdraw",
            "median_inflation_ms__off",
            "median_inflation_ms__shed",
            "median_inflation_ms__withdraw",
        ] {
            assert!(ls.get(key).is_some(), "missing series {key}");
        }
        // Merging into nothing (or garbage) still produces a valid body.
        let fresh = parse(&merge_load_shedding_into_bench_json(&fig, None)).unwrap();
        assert!(fresh.get("load_shedding").is_some());
        let over_garbage =
            parse(&merge_load_shedding_into_bench_json(&fig, Some("not json"))).unwrap();
        assert!(over_garbage.get("load_shedding").is_some());
    }

    #[test]
    fn table_compression_meets_the_acceptance_bar() {
        let fig = table_compression(Scale::Small, 1);
        let scalar = |needle: &str| {
            fig.scalars
                .iter()
                .find(|(n, _)| n.contains(needle))
                .unwrap_or_else(|| panic!("missing scalar {needle}"))
                .1
        };
        // The PR's acceptance bar at the default regret bound: ≥10× fewer
        // entries, ≤1 pp of the Fig-9 improved−hurt margin given back.
        assert!(
            scalar("compression ratio") >= 10.0,
            "compression ratio {} below 10x",
            scalar("compression ratio")
        );
        // Signed: a negative loss (robust pooling beating noisy per-/24
        // training) is fine; only giving back margin is budgeted.
        assert!(
            scalar("quality loss") <= 1.0,
            "quality loss {} pp exceeds the 1 pp budget",
            scalar("quality loss")
        );
        assert_eq!(
            scalar("disabled config identical"),
            1.0,
            "disabled aggregation drifted from plain training"
        );
        // Looser bounds can only shrink the table.
        let entries = &fig.series[0].points;
        for w in entries.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "entries must fall with the bound");
        }
    }

    #[test]
    fn table_compression_merges_into_bench_json() {
        let fig = table_compression(Scale::Small, 1);
        let existing = r#"{"bench": "study-run-day"}"#;
        let merged = merge_table_compression_into_bench_json(&fig, Some(existing));
        let v = parse(&merged).expect("merged output parses");
        assert_eq!(
            v.get("bench").and_then(Value::as_str),
            Some("study-run-day")
        );
        let tc = v
            .get("table_compression")
            .expect("table_compression object");
        for key in [
            "table_entries",
            "compression_ratio_vs_plain",
            "quality_loss_vs_plain__pp_",
        ] {
            assert!(tc.get(key).is_some(), "missing series {key}");
        }
    }

    #[test]
    fn longer_windows_cover_more_groups() {
        let fig = training_window(Scale::Small, 2);
        let coverage = &fig.series[2].points;
        assert!(
            coverage.last().unwrap().1 >= coverage.first().unwrap().1,
            "more history cannot shrink coverage"
        );
    }
}
