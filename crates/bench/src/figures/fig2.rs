//! Figure 2 — distance from volume-weighted clients to their nearest
//! front-ends.
//!
//! "The median distance of the nearest front-end is 280 km, of the second
//! nearest is 700 km, and of fourth nearest is 1300 km" (§4). X axis is
//! kilometres on a log scale (64…8192).

use anycast_analysis::cdf::{log2_grid, Ecdf};
use anycast_analysis::report::Series;
use anycast_core::Deployment;

use crate::worlds::{scenario, Scale};
use crate::FigureResult;

/// The nearest-rank lines.
pub const RANKS: [usize; 4] = [1, 2, 3, 4];

/// Computes the figure.
pub fn compute(scale: Scale, seed: u64) -> FigureResult {
    let s = scenario(scale, seed);
    let deployment = Deployment::of(&s.internet);
    let grid = log2_grid(64.0, 8192.0, 2);

    let mut series = Vec::new();
    let mut scalars = Vec::new();
    for &n in &RANKS {
        let pairs = s.clients.iter().filter_map(|c| {
            deployment
                .distance_to_nth_km(&c.attachment.location, n)
                .map(|d| (d, c.volume as f64))
        });
        let ecdf = Ecdf::from_weighted(pairs);
        scalars.push((
            format!("median distance to {}{} closest (km)", n, ordinal(n)),
            ecdf.median().unwrap_or(f64::NAN),
        ));
        series.push(Series::new(
            format!("{}{} closest", n, ordinal(n)),
            ecdf.cdf_series(&grid),
        ));
    }

    FigureResult {
        id: "fig2",
        title: "Distances from volume-weighted clients to nearest front-ends".into(),
        x_label: "distance (km, log grid)".into(),
        series,
        scalars,
        text: None,
    }
}

fn ordinal(n: usize) -> &'static str {
    match n {
        1 => "st",
        2 => "nd",
        3 => "rd",
        _ => "th",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_ordered() {
        let fig = compute(Scale::Small, 1);
        assert_eq!(fig.series.len(), 4);
        // The CDF of the 1st-closest must dominate the 4th-closest at every
        // grid point (closer rank → shorter distances).
        let first = &fig.series[0];
        let fourth = &fig.series[3];
        for (a, b) in first.points.iter().zip(&fourth.points) {
            assert!(a.1 >= b.1 - 1e-12);
        }
        // Medians increase with rank.
        let medians: Vec<f64> = fig.scalars.iter().map(|(_, v)| *v).collect();
        for w in medians.windows(2) {
            assert!(w[0] <= w[1], "medians not increasing: {medians:?}");
        }
    }

    #[test]
    fn nearest_front_end_is_usually_close() {
        // The small world has only 12 sites, so its absolute distances run
        // longer than the paper's 44-site deployment; the paper-scale
        // medians (≈280 km to the 1st closest) are recorded by
        // EXPERIMENTS.md from the `figures` binary. Here we check the
        // small-world median is in a sane band.
        let fig = compute(Scale::Small, 2);
        let median_first = fig.scalars[0].1;
        assert!(
            median_first > 30.0 && median_first < 4000.0,
            "median 1st-closest {median_first}"
        );
    }
}
