//! Figure 6 — persistence of poor anycast performance.
//!
//! "For the majority of /24s categorized as having poor-performing paths,
//! those poor-performing paths are short-lived. Around 60% appear for only
//! one day over the month. Around 10% of /24s show poor performance for 5
//! days or more … only 5% of /24s see continuous poor performance over 5
//! days or more" (§5).

use anycast_analysis::cdf::{linear_grid, Ecdf};
use anycast_analysis::persistence::persistence_by_key;
use anycast_analysis::report::Series;

use crate::figures::fig5;
use crate::worlds::Scale;
use crate::FigureResult;

/// Computes the figure from the same month of data as Figure 5.
pub fn compute(scale: Scale, seed: u64) -> FigureResult {
    let poor = fig5::poor_days_by_prefix(scale, seed);
    let persistence = persistence_by_key(poor);

    let days_bad: Vec<f64> = persistence
        .values()
        .map(|p| f64::from(p.days_bad))
        .collect();
    let max_consec: Vec<f64> = persistence
        .values()
        .map(|p| f64::from(p.max_consecutive))
        .collect();
    let grid = linear_grid(1.0, 15.0, 14);
    let days_ecdf = Ecdf::from_values(days_bad.iter().copied());
    let consec_ecdf = Ecdf::from_values(max_consec.iter().copied());

    let scalars = vec![
        (
            "poor on exactly one day".to_string(),
            days_ecdf.fraction_at_or_below(1.0),
        ),
        ("poor on 5+ days".to_string(), days_ecdf.fraction_above(4.0)),
        (
            "5+ consecutive poor days".to_string(),
            consec_ecdf.fraction_above(4.0),
        ),
        ("prefixes ever poor".to_string(), persistence.len() as f64),
    ];

    let series = vec![
        Series::new("Max # of Consecutive Days", consec_ecdf.cdf_series(&grid)),
        Series::new("# Days", days_ecdf.cdf_series(&grid)),
    ];

    FigureResult {
        id: "fig6",
        title: "Poor-path duration across the month".into(),
        x_label: "number of days".into(),
        series,
        scalars,
        text: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_days_dominate_total_days() {
        let fig = compute(Scale::Small, 1);
        // max-consecutive ≤ days-bad, so its CDF lies above.
        let consec = &fig.series[0];
        let days = &fig.series[1];
        for (a, b) in consec.points.iter().zip(&days.points) {
            assert!(a.1 >= b.1 - 1e-12);
        }
    }

    #[test]
    fn majority_of_poor_paths_are_short_lived() {
        // A single small world has only ~10 ever-poor prefixes, so the
        // per-seed fractions are binomial noise; pool a few independent
        // worlds to test the distributional claim at a usable sample size.
        let (mut one_day_n, mut five_plus_n, mut total) = (0.0, 0.0, 0.0);
        for seed in [1, 2, 3] {
            let fig = compute(Scale::Small, seed);
            let ever_poor = fig.scalars[3].1;
            one_day_n += fig.scalars[0].1 * ever_poor;
            five_plus_n += fig.scalars[1].1 * ever_poor;
            total += ever_poor;
        }
        let one_day = one_day_n / total;
        let five_plus = five_plus_n / total;
        // Paper: ~60% one-day, ~10% five-plus (over 28 days; the small
        // scale runs 7, so accept broad bands and check the ordering).
        assert!(one_day > 0.3, "one-day fraction {one_day}");
        assert!(five_plus < one_day, "persistence inversion");
    }
}
