//! Figure 3 — the headline result: CCDF of the per-request difference
//! between anycast latency and the best of three unicast front-ends.
//!
//! "Most of the time, in most regions, anycast does well … However, anycast
//! is at least 25ms slower for 20% of requests, and just below 10% of
//! anycast measurements are 100ms or more slower than the best unicast for
//! the client" (§5). Three curves: Europe, World, United States.

use std::collections::HashMap;

use anycast_analysis::cdf::{linear_grid, Ecdf};
use anycast_analysis::report::Series;
use anycast_geo::{Region, Scope};
use anycast_netsim::{Day, Prefix24};

use crate::worlds::{figure_days, study, Scale};
use crate::FigureResult;

/// Days of beacon data the figure aggregates ("collected over a period of a
/// few days").
pub const PAPER_DAYS: u32 = 3;

/// Computes the figure.
pub fn compute(scale: Scale, seed: u64) -> FigureResult {
    let mut st = study(scale, seed);
    st.run_days(Day(0), figure_days(scale, PAPER_DAYS));

    // Scope lookup per prefix.
    let scope_of: HashMap<Prefix24, (&'static str, Region)> = st
        .scenario()
        .clients
        .iter()
        .map(|c| (c.prefix, (c.country, c.region)))
        .collect();

    let executions = st.dataset().executions();
    let grid = linear_grid(0.0, 100.0, 20);
    let mut series = Vec::new();
    let mut scalars = Vec::new();
    for scope in Scope::FIGURE3 {
        let penalties = executions.iter().filter_map(|e| {
            let (country, region) = scope_of.get(&e.prefix)?;
            if !scope.contains(country, *region) {
                return None;
            }
            e.anycast_penalty_ms()
        });
        let ecdf = Ecdf::from_values(penalties);
        if scope == Scope::World {
            scalars.push((
                "fraction of requests ≥25ms slower (world)".to_string(),
                ecdf.fraction_above(25.0),
            ));
            scalars.push((
                "fraction of requests ≥100ms slower (world)".to_string(),
                ecdf.fraction_above(100.0),
            ));
        }
        series.push(Series::new(scope.label(), ecdf.ccdf_series(&grid)));
    }
    scalars.push(("beacon executions".to_string(), executions.len() as f64));

    FigureResult {
        id: "fig3",
        title: "Fraction of requests where best-of-three unicast beat anycast".into(),
        x_label: "anycast - best unicast (ms)".into(),
        series,
        scalars,
        text: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdfs_are_monotone_and_plausible() {
        let fig = compute(Scale::Small, 1);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[0].1 >= w[1].1, "CCDF must decrease ({})", s.name);
            }
        }
        // The paper's shape: a sizable fraction of requests see some
        // penalty, a small fraction sees a large one.
        let world = fig.series.iter().find(|s| s.name == "World").unwrap();
        let at_0 = world.points[0].1;
        let at_100 = world.points.last().unwrap().1;
        assert!(at_0 > 0.1 && at_0 < 0.95, "penalty>0 fraction {at_0}");
        assert!(at_100 < at_0, "tail must be thinner than head");
    }

    #[test]
    fn world_curve_includes_all_requests() {
        let fig = compute(Scale::Small, 2);
        let execs = fig
            .scalars
            .iter()
            .find(|(k, _)| k.contains("executions"))
            .unwrap()
            .1;
        assert!(execs > 100.0, "too few executions: {execs}");
    }
}
