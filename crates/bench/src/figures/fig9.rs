//! Figure 9 — does history-based prediction beat anycast?
//!
//! "The 'EDNS-0' lines … depict, as a distribution across clients weighted
//! by query volume, the difference between performance to the predicted
//! front-end (at the 50th and 75th percentile) and the performance to the
//! anycast-routed front-end … For the nearly 40% of query-weighted prefixes
//! we predict to see improvement over anycast, only 30% see a performance
//! improvement over anycast, while 10% of weighted prefixes see worse
//! performance … [LDNS] improvement for around 27% of weighted /24s … a
//! penalty … for around 17%" (§6).
//!
//! Train on day d, evaluate on day d+1, 25th-percentile metric, 20-sample
//! minimum — exactly the paper's emulation.

use anycast_analysis::cdf::{linear_grid, Ecdf};
use anycast_analysis::report::Series;
use anycast_core::{
    evaluate_prediction, evaluation::outcome_shares, Grouping, Metric, Predictor, PredictorConfig,
};
use anycast_netsim::Day;

use crate::worlds::{study, Scale};
use crate::FigureResult;

/// Computes the figure.
pub fn compute(scale: Scale, seed: u64) -> FigureResult {
    let mut st = study(scale, seed);
    st.run_days(Day(0), 2);

    let ldns_of = st.ldns_of();
    let volumes = st.volumes();
    let grid = linear_grid(-400.0, 400.0, 80);
    let mut series = Vec::new();
    let mut scalars = Vec::new();

    for (grouping, label) in [(Grouping::Ecs, "EDNS-0"), (Grouping::Ldns, "LDNS")] {
        let cfg = PredictorConfig {
            grouping,
            metric: Metric::P25,
            min_samples: 20,
            failure_penalty_ms: 3_000.0,
        };
        let table = Predictor::new(cfg).train(st.dataset(), Day(0));
        let rows = evaluate_prediction(&table, grouping, st.dataset(), Day(1), ldns_of, &volumes);
        let p50 = Ecdf::from_weighted(rows.iter().map(|r| (r.improvement_p50_ms, r.weight)));
        let p75 = Ecdf::from_weighted(rows.iter().map(|r| (r.improvement_p75_ms, r.weight)));
        series.push(Series::new(
            format!("{label} Median"),
            p50.cdf_series(&grid),
        ));
        series.push(Series::new(format!("{label} 75th"), p75.cdf_series(&grid)));
        let (improved, unchanged, hurt) = outcome_shares(&rows, false);
        scalars.push((format!("{label}: weighted share improved (p75)"), improved));
        scalars.push((
            format!("{label}: weighted share unchanged (p75)"),
            unchanged,
        ));
        scalars.push((format!("{label}: weighted share hurt (p75)"), hurt));
        scalars.push((
            format!("{label}: groups redirected"),
            table.redirected_groups().count() as f64,
        ));
    }

    FigureResult {
        id: "fig9",
        title: "Improvement over anycast from LDNS/ECS prediction (25th-pct metric)".into(),
        x_label: "improvement (ms)".into(),
        series,
        scalars,
        text: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_has_four_curves() {
        let fig = compute(Scale::Small, 1);
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[0].1 <= w[1].1, "CDF must be monotone ({})", s.name);
            }
        }
    }

    #[test]
    fn prediction_rarely_hurts() {
        // The paper's qualitative takeaway: most clients are unchanged and
        // the hurt share is small. (The stronger improved ≥ hurt property
        // holds at paper scale — see EXPERIMENTS.md — but a 12-site small
        // world redirects so few groups that a single regressing prefix can
        // dominate, so the small-scale test checks the weaker invariants.)
        let fig = compute(Scale::Small, 2);
        let get = |needle: &str| {
            fig.scalars
                .iter()
                .find(|(k, _)| k.starts_with(needle))
                .map(|(_, v)| *v)
                .unwrap()
        };
        let improved = get("EDNS-0: weighted share improved");
        let hurt = get("EDNS-0: weighted share hurt");
        let unchanged = get("EDNS-0: weighted share unchanged");
        assert!(
            hurt < 0.15,
            "ECS prediction hurt {hurt} of weighted prefixes"
        );
        assert!(
            unchanged > 0.5,
            "most prefixes must be unchanged, got {unchanged}"
        );
        // Shares are a partition.
        assert!((improved + hurt + unchanged - 1.0).abs() < 1e-9);
    }
}
