//! One module per regenerated table/figure. See the crate docs for the map.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table_cdn_sizes;

use crate::worlds::Scale;
use crate::FigureResult;

/// All artifact ids, in paper order.
pub const ALL: [&str; 10] = [
    "fig1",
    "table-cdn-sizes",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
];

/// Computes an artifact by id.
pub fn compute(id: &str, scale: Scale, seed: u64) -> Option<FigureResult> {
    match id {
        "fig1" => Some(fig1::compute(scale, seed)),
        "table-cdn-sizes" => Some(table_cdn_sizes::compute()),
        "fig2" => Some(fig2::compute(scale, seed)),
        "fig3" => Some(fig3::compute(scale, seed)),
        "fig4" => Some(fig4::compute(scale, seed)),
        "fig5" => Some(fig5::compute(scale, seed)),
        "fig6" => Some(fig6::compute(scale, seed)),
        "fig7" => Some(fig7::compute(scale, seed)),
        "fig8" => Some(fig8::compute(scale, seed)),
        "fig9" => Some(fig9::compute(scale, seed)),
        _ => None,
    }
}
