//! Figure 8 — how far a front-end switch moves a client.
//!
//! "When the majority of clients switch front-ends, it is to a nearby
//! front-end … The median change in distance from front-end switches is
//! 483 km while 83% are within 2000 km" (§5). We measure, per switch event,
//! the absolute change in the client-to-front-end distance.

use anycast_analysis::cdf::{log2_grid, Ecdf};
use anycast_analysis::report::Series;
use anycast_core::Deployment;
use anycast_geo::GeoPoint;
use anycast_netsim::{Day, Prefix24};
use std::collections::HashMap;

use crate::figures::fig7::week_observations;
use crate::worlds::{scenario, Scale};
use crate::FigureResult;

/// Computes the figure from the same week of passive data as Figure 7.
pub fn compute(scale: Scale, seed: u64) -> FigureResult {
    let s = scenario(scale, seed);
    let deployment = Deployment::of(&s.internet);
    let (store, observations) = week_observations(scale, seed);

    // Believed client locations (first record of the week per prefix).
    let mut client_loc: HashMap<Prefix24, GeoPoint> = HashMap::new();
    for day in Day(0).span(7) {
        for r in store.day(day) {
            client_loc.entry(r.prefix).or_insert(r.location);
        }
    }

    let mut deltas: Vec<f64> = Vec::new();
    for (prefix, obs) in &observations {
        let Some(loc) = client_loc.get(prefix) else {
            continue;
        };
        for (_, from, to) in obs.switches() {
            let d_from = deployment.front_end(from).location.haversine_km(loc);
            let d_to = deployment.front_end(to).location.haversine_km(loc);
            deltas.push((d_to - d_from).abs());
        }
    }

    let grid = log2_grid(64.0, 8192.0, 2);
    let ecdf = Ecdf::from_values(deltas.iter().copied());
    let scalars = vec![
        (
            "median distance change (km)".to_string(),
            ecdf.median().unwrap_or(f64::NAN),
        ),
        (
            "switches within 2000 km".to_string(),
            ecdf.fraction_at_or_below(2000.0),
        ),
        ("switch events".to_string(), deltas.len() as f64),
    ];

    FigureResult {
        id: "fig8",
        title: "Change in client-to-front-end distance on front-end switch".into(),
        x_label: "distance change (km, log grid)".into(),
        series: vec![Series::new("front-end changes", ecdf.cdf_series(&grid))],
        scalars,
        text: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_exist_and_are_mostly_nearby() {
        let fig = compute(Scale::Small, 1);
        let events = fig.scalars[2].1;
        assert!(events > 5.0, "too few switch events ({events}) to analyze");
        let within_2000 = fig.scalars[1].1;
        assert!(within_2000 > 0.4, "switches implausibly far: {within_2000}");
    }

    #[test]
    fn cdf_is_monotone() {
        let fig = compute(Scale::Small, 2);
        for w in fig.series[0].points.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
