//! Figure 7 — cumulative fraction of clients that switch front-ends over a
//! week.
//!
//! "Within the first day, 7% of clients landed on multiple front-ends. An
//! additional 2-4% clients see a front-end change each day until the
//! weekend, where there is very little churn, less than .5% … Across the
//! entire week, 21% of clients landed on multiple front-ends" (§5). The
//! week runs Wednesday through Tuesday — day 0 of the simulation clock is a
//! Wednesday for exactly this reason.

use anycast_analysis::affinity::{cumulative_switch_curve, ClientObservations};
use anycast_analysis::report::Series;
use anycast_netsim::{Day, Prefix24, SiteId};
use anycast_telemetry::TelemetryStore;
use std::collections::HashMap;

use crate::worlds::{rng_for, scenario, Scale};
use crate::FigureResult;

/// The week of passive data.
pub const WEEK_DAYS: u32 = 7;

/// Builds the per-client observations for the week (shared with Figure 8).
pub fn week_observations(
    scale: Scale,
    seed: u64,
) -> (
    TelemetryStore,
    HashMap<Prefix24, ClientObservations<SiteId>>,
) {
    let s = scenario(scale, seed);
    let mut rng = rng_for(seed, 0xf167);
    let mut store = TelemetryStore::new();
    for day in Day(0).span(WEEK_DAYS) {
        for r in s.generate_passive_day(day, &mut rng) {
            store.push(r);
        }
    }
    let serving = store.daily_serving_site();
    let mut multi: HashMap<Prefix24, Vec<u32>> = HashMap::new();
    for day in Day(0).span(WEEK_DAYS) {
        for (prefix, sites) in store.sites_seen(day) {
            if sites.len() > 1 {
                multi.entry(prefix).or_default().push(day.0);
            }
        }
    }
    let observations: HashMap<Prefix24, ClientObservations<SiteId>> = serving
        .into_iter()
        .map(|(prefix, days)| {
            let daily_sites: Vec<(u32, SiteId)> = days.into_iter().map(|(d, s)| (d.0, s)).collect();
            let multi_site_days = multi.remove(&prefix).unwrap_or_default();
            (
                prefix,
                ClientObservations {
                    daily_sites,
                    multi_site_days,
                },
            )
        })
        .collect();
    (store, observations)
}

/// Computes the figure.
pub fn compute(scale: Scale, seed: u64) -> FigureResult {
    let (_, observations) = week_observations(scale, seed);
    let clients: Vec<ClientObservations<SiteId>> = observations.into_values().collect();
    let days: Vec<u32> = (0..WEEK_DAYS).collect();
    let curve = cumulative_switch_curve(&clients, &days);

    let points: Vec<(f64, f64)> = curve.iter().map(|&(d, f)| (f64::from(d), f)).collect();
    let day_one = points.first().map(|&(_, f)| f).unwrap_or(0.0);
    let week = points.last().map(|&(_, f)| f).unwrap_or(0.0);
    // Weekend increments: day 0 is Wed, so Sat/Sun are indices 3 and 4.
    let weekend_increment = (points[4].1 - points[2].1).max(0.0);

    let scalars = vec![
        ("switched within first day (Wed)".to_string(), day_one),
        ("switched within full week".to_string(), week),
        ("weekend increment (Sat+Sun)".to_string(), weekend_increment),
        ("clients observed".to_string(), clients.len() as f64),
    ];

    FigureResult {
        id: "fig7",
        title: "Cumulative fraction of clients that changed front-ends (Wed→Tue)".into(),
        x_label: "day of week (0=Wed)".into(),
        series: vec![Series::new("cumulative fraction switched", points)],
        scalars,
        text: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_with_weekend_plateau() {
        let fig = compute(Scale::Small, 1);
        let pts = &fig.series[0].points;
        assert_eq!(pts.len(), 7);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "curve must be cumulative");
        }
        // Weekday increments (Thu, Fri) should collectively exceed the
        // weekend increments (Sat, Sun).
        let weekday_inc = (pts[2].1 - pts[0].1).max(0.0);
        let weekend_inc = (pts[4].1 - pts[2].1).max(0.0);
        assert!(
            weekday_inc >= weekend_inc,
            "weekday {weekday_inc} vs weekend {weekend_inc}"
        );
    }

    #[test]
    fn shape_matches_paper_bands() {
        let fig = compute(Scale::Small, 2);
        let day_one = fig.scalars[0].1;
        let week = fig.scalars[1].1;
        // Paper: 7% day one, 21% week. Generous bands for the small world.
        assert!(day_one > 0.01 && day_one < 0.30, "day-one {day_one}");
        assert!(week >= day_one && week < 0.45, "week {week}");
    }
}
