//! Figure 1 — diminishing returns of measuring additional front-ends.
//!
//! "The labeled Nth line includes latency measurements from the nearest N
//! front-ends to the LDNS. The results show decreasing latency as we
//! initially include more front-ends, but we see little decrease after
//! adding five front-ends per prefix" (§3.3). The figure validates the
//! beacon's ten-candidate cap.
//!
//! Regeneration: for every client /24, measure each of the ten front-ends
//! nearest its LDNS (three samples each, keeping the minimum — the paper
//! plots *minimum observed* latency), then for each N plot the CDF over
//! /24s of the minimum across the nearest N.

use anycast_analysis::cdf::{linear_grid, Ecdf};
use anycast_analysis::report::Series;
use anycast_core::Deployment;
use anycast_netsim::Day;
use anycast_workload::ldns_assign;

use crate::worlds::{rng_for, scenario, Scale};
use crate::FigureResult;

/// The candidate-count lines of the figure.
pub const N_LINES: [usize; 5] = [1, 3, 5, 7, 9];

/// Samples per candidate front-end.
const SAMPLES: usize = 3;

/// Computes the figure.
pub fn compute(scale: Scale, seed: u64) -> FigureResult {
    let s = scenario(scale, seed);
    let deployment = Deployment::of(&s.internet);
    let mut rng = rng_for(seed, 0xf161);

    // Per client: ascending-candidate-rank minimum latencies.
    let max_n = *N_LINES.iter().max().expect("non-empty");
    let mut per_client_min: Vec<Vec<f64>> = Vec::with_capacity(s.clients.len());
    for c in &s.clients {
        let ldns_id = s.ldns.resolver_of(c.prefix);
        let believed = ldns_assign::believed_ldns_location(s.ldns.resolver(ldns_id), &s.geodb);
        let candidates = deployment.nearest(&believed, max_n);
        let mut mins = Vec::with_capacity(candidates.len());
        let mut best_so_far = f64::INFINITY;
        for &(site, _) in &candidates {
            let mut site_min = f64::INFINITY;
            for _ in 0..SAMPLES {
                site_min =
                    site_min.min(
                        s.internet
                            .measure_unicast(&c.attachment, site, Day(0), &mut rng),
                    );
            }
            best_so_far = best_so_far.min(site_min);
            mins.push(best_so_far);
        }
        per_client_min.push(mins);
    }

    let grid = linear_grid(0.0, 200.0, 40);
    let mut series = Vec::new();
    // Paper legend order: 9 front-ends first.
    for &n in N_LINES.iter().rev() {
        let values = per_client_min
            .iter()
            .filter_map(|mins| mins.get(n.min(mins.len()) - 1).copied());
        let ecdf = Ecdf::from_values(values);
        series.push(Series::new(
            format!("{n} front-ends"),
            ecdf.cdf_series(&grid),
        ));
    }

    // Headline scalars: median min-latency at N=1, 5, 9 — the diminishing-
    // returns argument in numbers.
    let median_at = |n: usize| {
        Ecdf::from_values(
            per_client_min
                .iter()
                .filter_map(|m| m.get(n.min(m.len()) - 1).copied()),
        )
        .median()
        .unwrap_or(f64::NAN)
    };
    let scalars = vec![
        (
            "median min-latency, 1 front-end (ms)".to_string(),
            median_at(1),
        ),
        (
            "median min-latency, 5 front-ends (ms)".to_string(),
            median_at(5),
        ),
        (
            "median min-latency, 9 front-ends (ms)".to_string(),
            median_at(9),
        ),
        (
            "gain from 5 to 9 front-ends (ms)".to_string(),
            median_at(5) - median_at(9),
        ),
    ];

    FigureResult {
        id: "fig1",
        title: "Diminishing returns of measuring to additional front-ends".into(),
        x_label: "min latency (ms)".into(),
        series,
        scalars,
        text: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = compute(Scale::Small, 1);
        assert_eq!(fig.series.len(), N_LINES.len());
        // More candidates can only lower the minimum: at every grid point
        // the 9-front-end CDF dominates the 1-front-end CDF.
        let nine = &fig.series[0];
        let one = fig.series.last().unwrap();
        assert!(nine.name.starts_with('9') && one.name.starts_with('1'));
        for (a, b) in nine.points.iter().zip(&one.points) {
            assert!(a.1 >= b.1 - 1e-12, "CDF ordering violated at x={}", a.0);
        }
        // Diminishing returns: the 1→5 gain exceeds the 5→9 gain.
        let med = |name_prefix: &str| {
            fig.scalars
                .iter()
                .find(|(k, _)| k.contains(name_prefix))
                .unwrap()
                .1
        };
        let gain_1_to_5 = med("1 front-end") - med("5 front-ends");
        let gain_5_to_9 = med("5 front-ends") - med("9 front-ends");
        assert!(gain_1_to_5 >= gain_5_to_9, "{gain_1_to_5} vs {gain_5_to_9}");
        assert!(gain_5_to_9 < 10.0, "no plateau after 5 front-ends");
    }
}
