//! §4's CDN size comparison, rendered as a table.
//!
//! "We examine 21 CDNs and content providers for which there is publicly
//! available data … the Bing CDN is most similar to Level3 and MaxCDN."

use anycast_core::catalog::{RedirectionKind, CDN_CATALOG};

use crate::FigureResult;

/// Renders the catalog.
pub fn compute() -> FigureResult {
    let mut text = String::new();
    text.push_str(&format!(
        "{:<22} {:>10}  {:<8} {}\n",
        "CDN", "locations", "redirect", "notes"
    ));
    let mut rows: Vec<_> = CDN_CATALOG.to_vec();
    rows.sort_by_key(|e| std::cmp::Reverse(e.locations));
    for e in rows {
        let redirect = match e.redirection {
            RedirectionKind::Anycast => "anycast",
            RedirectionKind::Dns => "dns",
            RedirectionKind::Unknown => "?",
        };
        let count = if e.lower_bound {
            format!(">{}", e.locations)
        } else {
            e.locations.to_string()
        };
        let notes = if e.outlier { "outlier" } else { "" };
        text.push_str(&format!(
            "{:<22} {:>10}  {:<8} {}\n",
            e.name, count, redirect, notes
        ));
    }
    let anycast_count = CDN_CATALOG
        .iter()
        .filter(|e| e.redirection == RedirectionKind::Anycast)
        .count();
    FigureResult {
        id: "table-cdn-sizes",
        title: "CDN deployment sizes (§4)".into(),
        x_label: String::new(),
        series: Vec::new(),
        scalars: vec![
            ("CDNs compared".to_string(), CDN_CATALOG.len() as f64),
            ("anycast CDNs".to_string(), anycast_count as f64),
        ],
        text: Some(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_every_cdn() {
        let fig = compute();
        let text = fig.text.as_ref().unwrap();
        for e in CDN_CATALOG {
            assert!(text.contains(e.name), "{} missing", e.name);
        }
        assert!(text.contains(">1000"));
        let rendered = fig.render();
        assert!(rendered.contains("table-cdn-sizes"));
    }
}
